// Quickstart: build a synthetic Internet, run both reused-address detectors
// and the blocklist ecosystem, and print the headline impact numbers — the
// whole study in one binary at test scale.
//
// Usage: quickstart [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/impact.h"
#include "analysis/scenario.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::cout << "Running full scenario (test scale, seed " << seed << ")...\n";
  const analysis::Scenario scenario =
      analysis::run_scenario(analysis::test_scenario_config(seed));

  const auto& world = scenario.world;
  std::cout << "World: " << world.ases().size() << " ASes, "
            << world.prefix_count() << " /24s, " << world.user_count()
            << " users (" << world.bittorrent_users().size()
            << " on BitTorrent)\n";
  std::cout << "Blocklists: " << scenario.catalogue.size()
            << " lists, " << scenario.ecosystem.store.address_count()
            << " distinct blocklisted addresses, "
            << scenario.ecosystem.store.listing_count() << " listings\n";
  std::cout << "Crawler: " << scenario.crawl.evidence.size()
            << " IPs seen, " << scenario.crawl.nated.size()
            << " NATed (ping response rate "
            << net::percent(scenario.crawl.stats.ping_response_rate()) << ")\n";
  std::cout << "Atlas pipeline: knee at " << scenario.pipeline.knee_allocations
            << " allocations, " << scenario.pipeline.probes_daily
            << " qualifying probes, "
            << scenario.pipeline.dynamic_prefixes.size() << " dynamic /24s\n";
  std::cout << "Census baseline: " << scenario.census.dynamic_blocks.size()
            << " dynamic /24s from " << scenario.census.blocks_surveyed
            << " surveyed blocks\n\n";

  const analysis::ReuseImpact impact = analysis::compute_reuse_impact(
      scenario.ecosystem.store, scenario.catalogue, scenario.crawl.nated_set,
      scenario.pipeline.dynamic_prefixes);

  net::AsciiTable table({"impact metric", "value"});
  table.add_row({"lists with >=1 NATed address",
                 net::percent(impact.fraction_lists_with_nated())});
  table.add_row({"lists with >=1 dynamic address",
                 net::percent(impact.fraction_lists_with_dynamic())});
  table.add_row({"NATed listings", net::with_thousands(
                                       static_cast<std::int64_t>(impact.nated_listings))});
  table.add_row({"dynamic listings",
                 net::with_thousands(static_cast<std::int64_t>(impact.dynamic_listings))});
  table.add_row({"NATed blocklisted addresses",
                 net::with_thousands(static_cast<std::int64_t>(
                     impact.nated_blocklisted_addresses))});
  table.add_row({"dynamic blocklisted addresses",
                 net::with_thousands(static_cast<std::int64_t>(
                     impact.dynamic_blocklisted_addresses))});
  std::cout << table.to_string() << '\n';

  const analysis::ListingDurations durations = analysis::compute_listing_durations(
      scenario.ecosystem.store, scenario.crawl.nated_set,
      scenario.pipeline.dynamic_prefixes);
  const net::EmpiricalCdf all_cdf(std::vector<double>(durations.all_days));
  const net::EmpiricalCdf nat_cdf(std::vector<double>(durations.nated_days));
  const net::EmpiricalCdf dyn_cdf(std::vector<double>(durations.dynamic_days));
  std::cout << "Median listing duration (days): all " << all_cdf.median()
            << ", NATed " << nat_cdf.median() << ", dynamic "
            << dyn_cdf.median() << "\n";

  const net::IntDistribution users = analysis::users_behind_blocklisted_nats(
      scenario.ecosystem.store, scenario.crawl.nated);
  std::cout << "Users behind blocklisted NATed IPs: max " << users.max_value()
            << ", share with exactly 2: "
            << net::percent(users.fraction_at_most(2) -
                            users.fraction_at_most(1))
            << "\n";

  const auto nat_validation =
      analysis::validate_nat_detection(world, scenario.crawl.nated_set);
  const auto dyn_validation = analysis::validate_dynamic_detection(
      world, scenario.pipeline.dynamic_prefixes);
  std::cout << "Detection precision: NAT "
            << net::percent(nat_validation.precision()) << ", dynamic "
            << net::percent(dyn_validation.precision()) << "\n";
  return 0;
}
