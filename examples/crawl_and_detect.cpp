// Example: run the BitTorrent DHT crawler standalone against a synthetic
// Internet and report the NATed (reused) addresses it verifies, with
// precision/recall against the world's ground truth.
//
// Usage: crawl_and_detect [days] [seed]
#include <cstdlib>
#include <iostream>

#include "crawler/crawler.h"
#include "dht/network.h"
#include "internet/world.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  const int days = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  inet::WorldConfig world_config = inet::test_world_config(seed);
  world_config.as_count = 120;
  std::cout << "Building world (seed " << seed << ")...\n";
  const inet::World world(world_config);
  std::cout << "  ASes: " << world.ases().size()
            << ", /24 prefixes: " << world.prefix_count()
            << ", users: " << world.user_count()
            << ", BitTorrent users: " << world.bittorrent_users().size()
            << "\n";

  sim::EventQueue events;
  dht::DhtNetworkConfig dht_config;
  dht_config.seed = seed ^ 0xd47;
  dht::DhtNetwork network(world, events, dht_config);
  const net::TimeWindow window{net::SimTime(0),
                               net::SimTime(days * 86400)};
  network.schedule_churn(window);
  std::cout << "DHT: " << network.peer_count() << " peers on "
            << network.distinct_addresses() << " addresses\n";

  crawler::CrawlerConfig crawler_config;
  crawler_config.seed = seed ^ 0xc4a3;
  crawler::Crawler crawler(network.transport(), events,
                           network.bootstrap_endpoint(), crawler_config);
  crawler.start(window);
  events.run_until(window.end + net::Duration::minutes(5));

  const auto& stats = crawler.stats();
  net::AsciiTable table({"crawl statistic", "value"});
  table.add_row({"get_nodes sent", net::with_thousands(
                                       static_cast<std::int64_t>(stats.get_nodes_sent))});
  table.add_row({"get_nodes responses",
                 net::with_thousands(static_cast<std::int64_t>(stats.get_nodes_responses))});
  table.add_row({"bt_pings sent", net::with_thousands(
                                      static_cast<std::int64_t>(stats.pings_sent))});
  table.add_row({"bt_ping responses",
                 net::with_thousands(static_cast<std::int64_t>(stats.ping_responses))});
  table.add_row({"ping response rate",
                 net::percent(stats.ping_response_rate())});
  table.add_row({"IPs discovered", net::with_thousands(
                                       static_cast<std::int64_t>(crawler.discovered().size()))});
  table.add_row({"distinct node_ids",
                 net::with_thousands(static_cast<std::int64_t>(crawler.distinct_node_ids()))});
  table.add_row({"verification rounds",
                 net::with_thousands(static_cast<std::int64_t>(stats.verification_rounds))});
  std::cout << '\n' << table.to_string();

  // Validate against ground truth.
  const auto nated = crawler.nated();
  std::size_t true_positive = 0;
  for (const auto& [address, users] : nated) {
    if (world.is_shared_address(address)) ++true_positive;
  }
  std::size_t truly_shared_discovered = 0;
  for (const auto& [address, evidence] : crawler.discovered()) {
    if (world.is_shared_address(address)) ++truly_shared_discovered;
  }
  std::cout << "\nNATed addresses flagged: " << nated.size()
            << "  (precision "
            << net::percent(nated.empty() ? 1.0
                                          : static_cast<double>(true_positive) /
                                                static_cast<double>(nated.size()))
            << ", recall over discovered shared IPs "
            << net::percent(truly_shared_discovered == 0
                                ? 1.0
                                : static_cast<double>(true_positive) /
                                      static_cast<double>(truly_shared_discovered))
            << ")\n";

  std::size_t max_users = 0;
  for (const auto& [address, users] : nated) max_users = std::max(max_users, users);
  std::cout << "Max concurrent users observed behind one IP: " << max_users
            << "\n";
  return 0;
}
