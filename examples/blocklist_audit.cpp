// Example: the operator-side workflow from §6 of the paper.
//
// Runs the full study once, publishes the reused-address list (the paper's
// released artifact), then audits one blocklist snapshot against it:
// entries on reused addresses are diverted to a greylist (soft-fail /
// challenge) instead of the hard block list, so bystanders behind NATs and
// future leaseholders of dynamic addresses are not punished outright.
//
// Usage: blocklist_audit [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/greylist.h"
#include "analysis/scenario.h"
#include "blocklist/parse.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::cout << "Running detectors (test scale, seed " << seed << ")...\n";
  const analysis::Scenario scenario =
      analysis::run_scenario(analysis::test_scenario_config(seed));

  // 1. Build and publish the reused-address list.
  const auto reused = analysis::build_reused_address_list(
      scenario.ecosystem.store, scenario.crawl.nated_set,
      scenario.pipeline.dynamic_prefixes);
  std::size_t nated = 0;
  std::size_t dynamic = 0;
  std::vector<net::Ipv4Address> reused_addresses;
  for (const auto& entry : reused) {
    nated += entry.nated;
    dynamic += entry.dynamic;
    reused_addresses.push_back(entry.address);
  }
  std::cout << "Reused-address list: " << reused.size() << " entries ("
            << nated << " NATed, " << dynamic << " dynamic)\n";
  {
    std::ofstream out("reused_addresses.txt");
    blocklist::write_list(out, "reused blocklisted addresses (NAT + dynamic)",
                          reused_addresses);
    std::cout << "Published to reused_addresses.txt\n\n";
  }

  // 2. Audit each sizeable blocklist: how much of it would greylist?
  net::AsciiTable table(
      {"blocklist", "entries", "to greylist", "share"});
  std::size_t audited = 0;
  for (const auto& info : scenario.catalogue) {
    const auto snapshot = scenario.ecosystem.store.addresses_of(info.id);
    if (snapshot.size() < 50) continue;  // skip tiny feeds in the demo
    const analysis::GreylistSplit split =
        analysis::split_for_greylisting(snapshot, reused);
    table.add_row({info.name,
                   net::with_thousands(static_cast<std::int64_t>(snapshot.size())),
                   net::with_thousands(static_cast<std::int64_t>(split.greylist.size())),
                   net::percent(static_cast<double>(split.greylist.size()) /
                                static_cast<double>(snapshot.size()))});
    if (++audited == 15) break;
  }
  std::cout << table.to_string();

  // 3. The affected-user view: how many users would hard-blocking the
  // reused entries have hit?
  std::size_t users_protected = 0;
  for (const auto& [address, users] : scenario.crawl.nated) {
    if (scenario.ecosystem.store.contains_address(address)) {
      users_protected += users;
    }
  }
  std::cout << "\nLower bound of concurrent users spared by greylisting the "
               "NATed entries: "
            << users_protected << "\n";
  return 0;
}
