// Example: run the RIPE-Atlas-style dynamic-address pipeline over a
// simulated 16-month probe log and show the funnel, the knee point, and the
// precision of the emitted dynamic /24 list against ground truth.
//
// Usage: dynamic_prefixes [probes] [seed]
#include <cstdlib>
#include <iostream>

#include "atlas/fleet.h"
#include "dynadetect/pipeline.h"
#include "internet/world.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  const std::size_t probes = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2000;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  inet::WorldConfig world_config = inet::test_world_config(seed);
  world_config.as_count = 120;
  const inet::World world(world_config);

  atlas::FleetConfig fleet_config;
  fleet_config.seed = seed ^ 0xa71a5;
  fleet_config.probe_count = probes;
  const atlas::AtlasFleet fleet(world, fleet_config);
  std::cout << "Probes: " << fleet.probe_count()
            << ", connection records: " << fleet.record_count() << " ("
            << fleet.compressed_log().run_count() << " compressed runs)\n\n";

  const dynadetect::PipelineResult result =
      dynadetect::run_pipeline(fleet.compressed_log());

  net::AsciiTable funnel({"pipeline stage", "probes"});
  funnel.add_row({"total probes", net::with_thousands(static_cast<std::int64_t>(result.probes_total))});
  funnel.add_row({"multi-AS (dropped)", net::with_thousands(static_cast<std::int64_t>(result.probes_multi_as))});
  funnel.add_row({"single-AS", net::with_thousands(static_cast<std::int64_t>(result.probes_single_as))});
  funnel.add_row({"single-AS with >=2 allocations", net::with_thousands(static_cast<std::int64_t>(result.probes_with_changes))});
  funnel.add_row({"above knee (" + std::to_string(result.knee_allocations) + " allocations)",
                  net::with_thousands(static_cast<std::int64_t>(result.probes_above_knee))});
  funnel.add_row({"daily changers (qualifying)", net::with_thousands(static_cast<std::int64_t>(result.probes_daily))});
  std::cout << funnel.to_string() << "\n";

  std::cout << "Dynamic /24 prefixes emitted: " << result.dynamic_prefixes.size()
            << "\n";

  // Precision against ground truth: every emitted /24 should belong to a
  // dynamic pool; fast-pool membership is the paper's actual target.
  std::size_t in_dynamic = 0;
  std::size_t in_fast = 0;
  for (const net::Ipv4Prefix& prefix : result.dynamic_prefixes.to_vector()) {
    if (world.dynamic_prefixes().contains_prefix(prefix)) ++in_dynamic;
    if (world.fast_dynamic_prefixes().contains_prefix(prefix)) ++in_fast;
  }
  const double n = std::max<std::size_t>(1, result.dynamic_prefixes.size());
  std::cout << "  in true dynamic pools:      " << net::percent(in_dynamic / n)
            << "\n  in fast (<=1d lease) pools: " << net::percent(in_fast / n)
            << "\n";

  // Probe-level validation.
  std::size_t qualifying_on_fast = 0;
  for (const atlas::ProbeId id : result.qualifying_probes) {
    if (fleet.truth(id).on_fast_pool) ++qualifying_on_fast;
  }
  std::cout << "Qualifying probes actually on fast pools: "
            << qualifying_on_fast << "/" << result.qualifying_probes.size()
            << "\n";
  return 0;
}
