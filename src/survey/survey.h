// Operator survey dataset and tabulation (paper §6, Appendix A).
//
// The paper surveys 65 network operators about blocklist usage. The raw
// responses are not published, so this module embeds a synthetic response
// set whose aggregations reproduce the published marginals exactly (Table 1)
// and the type-usage bars of Figure 9, plus the tabulators that compute
// those aggregates from any response set of this schema.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace reuse::survey {

/// Blocklist types operators reported using (Figure 9's y-axis).
enum class OperatorListType : std::uint8_t {
  kVoip,
  kBanking,
  kFtp,
  kBackdoor,
  kHttp,
  kSsh,
  kRansomware,
  kBruteforce,
  kDdos,
  kReputation,
  kSpam,
};
inline constexpr int kOperatorListTypeCount = 11;

[[nodiscard]] std::string_view to_string(OperatorListType type);

struct SurveyResponse {
  std::uint32_t respondent_id = 0;
  bool maintains_internal = false;
  bool uses_external = false;
  int paid_lists = 0;
  int public_lists = 0;
  bool blocks_directly = false;       ///< uses lists to directly drop traffic
  bool feeds_threat_intel = false;
  /// Answers to the reuse questions; unanswered (31 of 65) is nullopt.
  std::optional<bool> cgn_hurts_accuracy;
  std::optional<bool> dynamic_hurts_accuracy;
  /// Bitmask over OperatorListType of external list types used.
  std::uint16_t list_types_used = 0;

  [[nodiscard]] bool uses_type(OperatorListType type) const {
    return (list_types_used >> static_cast<unsigned>(type)) & 1u;
  }
  [[nodiscard]] int type_count() const;
  /// "Faced issues with reused addresses": answered yes to either question.
  [[nodiscard]] bool faced_reuse_issue() const {
    return cgn_hurts_accuracy.value_or(false) ||
           dynamic_hurts_accuracy.value_or(false);
  }
};

/// The embedded 65-respondent dataset.
[[nodiscard]] const std::vector<SurveyResponse>& embedded_survey();

/// Table 1 aggregates.
struct SurveySummary {
  std::size_t respondents = 0;
  double external_usage_fraction = 0.0;
  double internal_usage_fraction = 0.0;
  double paid_lists_mean = 0.0;
  int paid_lists_max = 0;
  double public_lists_mean = 0.0;
  int public_lists_max = 0;
  double direct_block_fraction = 0.0;
  double threat_intel_fraction = 0.0;
  std::size_t reuse_question_respondents = 0;
  double cgn_concern_fraction = 0.0;      ///< of those who answered
  double dynamic_concern_fraction = 0.0;  ///< of those who answered
  double multi_type_fraction = 0.0;       ///< used >= 2 list types
};

[[nodiscard]] SurveySummary summarize(std::span<const SurveyResponse> responses);

/// Figure 9: for each list type, the fraction of reuse-issue operators using
/// it, sorted ascending (the paper's bar order).
[[nodiscard]] std::vector<std::pair<std::string, double>>
reuse_issue_type_usage(std::span<const SurveyResponse> responses);

}  // namespace reuse::survey
