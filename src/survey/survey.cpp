#include "survey/survey.h"

#include <algorithm>
#include <bit>

namespace reuse::survey {
namespace {

constexpr std::size_t kRespondents = 65;

std::uint16_t type_bit(OperatorListType type) {
  return static_cast<std::uint16_t>(1u << static_cast<unsigned>(type));
}

// Builds the synthetic response set. Index ranges are chosen so every
// published marginal comes out exactly; see the tests for the checklist:
//   external 55/65 (85%), internal 46/65 (70%), direct block 38/65 (59%),
//   threat intel 22/65 (<35%), reuse questions answered by 34,
//   CGN concern 19/34 (56%), dynamic concern 26/34 (76%),
//   paid lists avg 2 / max 39, public lists avg 10 / max 68,
//   >= 2 list types for 36/65 (55%).
std::vector<SurveyResponse> build_survey() {
  std::vector<SurveyResponse> responses(kRespondents);
  for (std::size_t i = 0; i < kRespondents; ++i) {
    SurveyResponse& r = responses[i];
    r.respondent_id = static_cast<std::uint32_t>(i + 1);
    r.uses_external = i < 55;
    r.maintains_internal = i < 46;
    r.blocks_directly = i < 38;
    r.feeds_threat_intel = i >= 20 && i < 42;
    if (i < 34) {
      r.cgn_hurts_accuracy = i < 19;
      r.dynamic_hurts_accuracy = i < 26;
    }
  }

  // Paid-for lists: one heavy subscriber (39), a tier on 3, a tier on 1;
  // sum = 130 => mean 2.0.
  responses[0].paid_lists = 39;
  for (std::size_t i = 1; i <= 21; ++i) responses[i].paid_lists = 3;
  for (std::size_t i = 22; i <= 49; ++i) responses[i].paid_lists = 1;

  // Public lists: one aggregator on 68; external users on 12 or 6;
  // sum = 650 => mean 10.0.
  responses[1].public_lists = 68;
  responses[0].public_lists = 12;
  for (std::size_t i = 2; i <= 43; ++i) responses[i].public_lists = 12;
  for (std::size_t i = 44; i <= 53; ++i) responses[i].public_lists = 6;
  responses[2].public_lists += 6;  // residual to hit the published mean

  // List types. The 26 respondents who reported reuse issues (indices 0..25)
  // use types with the Figure 9 frequencies: type t is used by the first
  // `kIssueGroupCounts[t]` members of that group.
  struct TypeCount {
    OperatorListType type;
    std::size_t count;
  };
  constexpr TypeCount kIssueGroupCounts[] = {
      {OperatorListType::kSpam, 24},      {OperatorListType::kReputation, 22},
      {OperatorListType::kDdos, 20},      {OperatorListType::kBruteforce, 18},
      {OperatorListType::kRansomware, 17},{OperatorListType::kSsh, 15},
      {OperatorListType::kHttp, 13},      {OperatorListType::kBackdoor, 11},
      {OperatorListType::kFtp, 9},        {OperatorListType::kBanking, 7},
      {OperatorListType::kVoip, 5},
  };
  for (const TypeCount& entry : kIssueGroupCounts) {
    for (std::size_t i = 0; i < entry.count; ++i) {
      responses[i].list_types_used |= type_bit(entry.type);
    }
  }
  // Remaining external users: indices 26..39 run spam + reputation (two
  // types), 40..54 spam only — this lands the ">= 2 types" share at 36/65.
  for (std::size_t i = 26; i <= 39; ++i) {
    responses[i].list_types_used |=
        type_bit(OperatorListType::kSpam) | type_bit(OperatorListType::kReputation);
  }
  for (std::size_t i = 40; i <= 54; ++i) {
    responses[i].list_types_used |= type_bit(OperatorListType::kSpam);
  }
  return responses;
}

}  // namespace

std::string_view to_string(OperatorListType type) {
  switch (type) {
    case OperatorListType::kVoip: return "VOIP";
    case OperatorListType::kBanking: return "Banking";
    case OperatorListType::kFtp: return "FTP";
    case OperatorListType::kBackdoor: return "Backdoor";
    case OperatorListType::kHttp: return "HTTP";
    case OperatorListType::kSsh: return "SSH";
    case OperatorListType::kRansomware: return "Ransomware";
    case OperatorListType::kBruteforce: return "Bruteforce";
    case OperatorListType::kDdos: return "DDoS";
    case OperatorListType::kReputation: return "Reputation";
    case OperatorListType::kSpam: return "Spam";
  }
  return "?";
}

int SurveyResponse::type_count() const {
  return std::popcount(list_types_used);
}

const std::vector<SurveyResponse>& embedded_survey() {
  static const std::vector<SurveyResponse> kSurvey = build_survey();
  return kSurvey;
}

SurveySummary summarize(std::span<const SurveyResponse> responses) {
  SurveySummary summary;
  summary.respondents = responses.size();
  if (responses.empty()) return summary;
  std::size_t external = 0;
  std::size_t internal = 0;
  std::size_t direct = 0;
  std::size_t intel = 0;
  std::size_t answered = 0;
  std::size_t cgn_yes = 0;
  std::size_t dynamic_yes = 0;
  std::size_t multi_type = 0;
  std::int64_t paid_sum = 0;
  std::int64_t public_sum = 0;
  for (const SurveyResponse& r : responses) {
    external += r.uses_external;
    internal += r.maintains_internal;
    direct += r.blocks_directly;
    intel += r.feeds_threat_intel;
    if (r.cgn_hurts_accuracy || r.dynamic_hurts_accuracy) {
      ++answered;
      cgn_yes += r.cgn_hurts_accuracy.value_or(false);
      dynamic_yes += r.dynamic_hurts_accuracy.value_or(false);
    }
    multi_type += r.type_count() >= 2;
    paid_sum += r.paid_lists;
    public_sum += r.public_lists;
    summary.paid_lists_max = std::max(summary.paid_lists_max, r.paid_lists);
    summary.public_lists_max = std::max(summary.public_lists_max, r.public_lists);
  }
  const double n = static_cast<double>(responses.size());
  summary.external_usage_fraction = external / n;
  summary.internal_usage_fraction = internal / n;
  summary.direct_block_fraction = direct / n;
  summary.threat_intel_fraction = intel / n;
  summary.paid_lists_mean = static_cast<double>(paid_sum) / n;
  summary.public_lists_mean = static_cast<double>(public_sum) / n;
  summary.reuse_question_respondents = answered;
  if (answered > 0) {
    summary.cgn_concern_fraction = static_cast<double>(cgn_yes) / answered;
    summary.dynamic_concern_fraction =
        static_cast<double>(dynamic_yes) / answered;
  }
  summary.multi_type_fraction = multi_type / n;
  return summary;
}

std::vector<std::pair<std::string, double>> reuse_issue_type_usage(
    std::span<const SurveyResponse> responses) {
  std::size_t issue_group = 0;
  std::array<std::size_t, kOperatorListTypeCount> counts{};
  for (const SurveyResponse& r : responses) {
    if (!r.faced_reuse_issue()) continue;
    ++issue_group;
    for (int t = 0; t < kOperatorListTypeCount; ++t) {
      if (r.uses_type(static_cast<OperatorListType>(t))) {
        ++counts[static_cast<std::size_t>(t)];
      }
    }
  }
  std::vector<std::pair<std::string, double>> out;
  for (int t = 0; t < kOperatorListTypeCount; ++t) {
    out.emplace_back(std::string(to_string(static_cast<OperatorListType>(t))),
                     issue_group == 0
                         ? 0.0
                         : static_cast<double>(counts[static_cast<std::size_t>(t)]) /
                               static_cast<double>(issue_group));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  return out;
}

}  // namespace reuse::survey
