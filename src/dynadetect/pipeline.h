// The paper's dynamic-address detection pipeline (Section 3.2).
//
// Input: Atlas-style connection logs over a long window. Steps, exactly as
// published:
//   1. Build per-probe allocation histories (consecutive duplicates collapse
//      into one allocation).
//   2. Drop probes whose allocations span multiple ASes (relocated probes /
//      multi-AS ISPs — ambiguous evidence).
//   3. Sort the remaining probes by allocation count and find the knee of
//      that curve with kneedle; keep probes at or above the knee (the paper
//      finds the knee at 8 allocations).
//   4. Keep probes whose mean time between address changes is <= 1 day —
//      blocklisting those addresses is stale within a day.
//   5. Expand every address the qualifying probes held to its covering /24;
//      the union is the dynamically allocated prefix set.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atlas/compressed_log.h"
#include "atlas/connection_log.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"
#include "netbase/sim_time.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::dynadetect {

/// One probe's deduplicated allocation history.
struct ProbeHistory {
  atlas::ProbeId probe_id = 0;
  /// Allocation events: (time, address, asn); consecutive records with the
  /// same address collapse into the first sighting.
  std::vector<atlas::ConnectionRecord> allocations;

  [[nodiscard]] std::size_t allocation_count() const {
    return allocations.size();
  }
  [[nodiscard]] bool multi_as() const;
  [[nodiscard]] std::size_t distinct_addresses() const;
  /// Mean gap between consecutive allocation events; nullopt with < 2.
  [[nodiscard]] std::optional<net::Duration> mean_change_interval() const;
  /// Gap-capped variant: gaps longer than `max_gap` are excluded from the
  /// mean (a monitoring outage looks like one absurdly long "lease" and
  /// would otherwise disqualify a genuinely fast-churning probe). `max_gap`
  /// of 0 disables the cap — then this equals mean_change_interval(), since
  /// the plain mean is span/(n-1) == sum of consecutive gaps/(n-1). Returns
  /// nullopt when < 2 allocations or every gap was excluded; `excluded`
  /// (optional) receives the number of gaps dropped.
  [[nodiscard]] std::optional<net::Duration> mean_change_interval(
      net::Duration max_gap, std::size_t* excluded = nullptr) const;
};

/// Groups raw (time-sorted or unsorted) records into per-probe histories.
[[nodiscard]] std::vector<ProbeHistory> build_histories(
    std::span<const atlas::ConnectionRecord> records);

/// Builds histories straight from a run-compressed log: a run *is* an
/// allocation sighting (keepalives never materialize), so this is
/// O(run count) and never expands the log. Consecutive same-address runs of
/// one probe (a lease split by a controller gap) collapse exactly as
/// consecutive same-address records do in the record-based overload.
[[nodiscard]] std::vector<ProbeHistory> build_histories(
    const atlas::CompressedLog& log);

struct PipelineConfig {
  /// Fixed allocation-count threshold; <= 0 means "find the knee" (paper).
  int min_allocations = 0;
  /// Maximum mean change interval for a probe to count as fast-churning.
  net::Duration daily_threshold = net::Duration::days(1);
  /// Prefix width the qualifying addresses expand to (24 in the paper).
  int expand_prefix_length = 24;
  /// Kneedle sensitivity for the automatic threshold.
  double knee_sensitivity = 1.0;
  /// Inter-change gaps longer than this are treated as log gaps and excluded
  /// from the mean-change-interval (step 4); 0 disables the cap and keeps
  /// the published pipeline exactly.
  net::Duration max_change_gap = net::Duration(0);
};

struct PipelineResult {
  // Funnel counters (Figure 4 analogues).
  std::size_t probes_total = 0;
  std::size_t probes_multi_as = 0;       ///< dropped at step 2
  std::size_t probes_single_as = 0;
  std::size_t probes_with_changes = 0;   ///< single-AS, >= 2 allocations
  std::size_t probes_above_knee = 0;     ///< step 3 survivors
  std::size_t probes_daily = 0;          ///< step 4 survivors (qualifying)
  /// Gap-cap accounting (zero when max_change_gap is 0 or logs are whole).
  std::size_t change_gaps_capped = 0;    ///< gaps excluded from step-4 means
  std::size_t probes_gap_affected = 0;   ///< above-knee probes with a gap cut
  int knee_allocations = 0;              ///< detected (or configured) threshold
  /// Total addresses allocated to qualifying probes / all single-AS probes.
  std::size_t qualifying_addresses = 0;
  std::size_t single_as_addresses = 0;

  /// Sorted (descending) allocation counts of single-AS probes — Figure 2.
  std::vector<double> allocation_curve;

  /// The emitted dynamic /24 set (step-4 survivors' addresses).
  net::PrefixSet dynamic_prefixes;
  /// Qualifying probe ids (step-4 survivors).
  std::vector<atlas::ProbeId> qualifying_probes;

  // Intermediate prefix sets per funnel stage (Figure 4 joins blocklisted
  // addresses against each of these):
  net::PrefixSet all_probe_prefixes;        ///< every address any probe held
  net::PrefixSet single_as_change_prefixes; ///< single-AS probes with changes
  net::PrefixSet above_knee_prefixes;       ///< ... with >= knee allocations
};

/// Runs steps 1–5. Per-probe summaries (AS spread, distinct addresses, /24
/// expansion, gap-capped change interval) are pure per history, so with a
/// thread pool they compute in parallel; the funnel itself then folds them
/// serially in probe order — byte-identical results for any pool size
/// (nullptr = serial).
[[nodiscard]] PipelineResult run_pipeline(
    std::span<const atlas::ConnectionRecord> records,
    const PipelineConfig& config = {}, net::ThreadPool* pool = nullptr);

/// Same funnel over a run-compressed log. Histories come straight from the
/// runs — identical results to expanding the log and calling the record
/// overload, without ever materializing per-keepalive records.
[[nodiscard]] PipelineResult run_pipeline(
    const atlas::CompressedLog& log, const PipelineConfig& config = {},
    net::ThreadPool* pool = nullptr);

/// Step 3 in isolation: the knee of a descending allocation-count curve,
/// returned as the allocation count at the knee. Returns fallback when the
/// curve has no knee (degenerate worlds).
[[nodiscard]] int knee_allocation_threshold(std::span<const double> sorted_desc,
                                            double sensitivity,
                                            int fallback = 8);

}  // namespace reuse::dynadetect
