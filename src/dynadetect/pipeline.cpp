#include "dynadetect/pipeline.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "netbase/kneedle.h"
#include "netbase/metrics.h"
#include "netbase/thread_pool.h"

namespace reuse::dynadetect {
namespace {

/// Everything the funnel needs from one probe, precomputed: the per-history
/// work (AS spread, distinct addresses, /24 expansion, gap-capped interval)
/// is pure, so it runs in parallel; the funnel folds the summaries serially
/// in probe order, which keeps every counter and prefix-insertion sequence
/// identical to a serial run.
struct HistorySummary {
  bool multi_as = false;
  std::size_t allocation_count = 0;
  std::size_t distinct_addresses = 0;
  /// Covering prefix per allocation, in allocation order.
  std::vector<net::Ipv4Prefix> prefixes;
  std::optional<net::Duration> capped_interval;
  std::size_t gaps_excluded = 0;
};

HistorySummary summarize_history(const ProbeHistory& history,
                                 const PipelineConfig& config) {
  HistorySummary summary;
  summary.multi_as = history.multi_as();
  summary.allocation_count = history.allocation_count();
  summary.distinct_addresses = history.distinct_addresses();
  summary.prefixes.reserve(history.allocations.size());
  for (const auto& record : history.allocations) {
    summary.prefixes.emplace_back(record.address, config.expand_prefix_length);
  }
  summary.capped_interval = history.mean_change_interval(
      config.max_change_gap, &summary.gaps_excluded);
  return summary;
}

}  // namespace

bool ProbeHistory::multi_as() const {
  for (const auto& record : allocations) {
    if (record.asn != allocations.front().asn) return true;
  }
  return false;
}

std::size_t ProbeHistory::distinct_addresses() const {
  std::unordered_set<net::Ipv4Address> seen;
  for (const auto& record : allocations) seen.insert(record.address);
  return seen.size();
}

std::optional<net::Duration> ProbeHistory::mean_change_interval() const {
  if (allocations.size() < 2) return std::nullopt;
  const std::int64_t span =
      allocations.back().time_seconds - allocations.front().time_seconds;
  return net::Duration(span /
                       static_cast<std::int64_t>(allocations.size() - 1));
}

std::optional<net::Duration> ProbeHistory::mean_change_interval(
    net::Duration max_gap, std::size_t* excluded) const {
  if (excluded != nullptr) *excluded = 0;
  if (allocations.size() < 2) return std::nullopt;
  std::int64_t sum = 0;
  std::int64_t kept = 0;
  for (std::size_t i = 1; i < allocations.size(); ++i) {
    const std::int64_t gap =
        allocations[i].time_seconds - allocations[i - 1].time_seconds;
    if (max_gap.count() > 0 && gap > max_gap.count()) {
      if (excluded != nullptr) ++*excluded;
      continue;
    }
    sum += gap;
    ++kept;
  }
  if (kept == 0) return std::nullopt;
  return net::Duration(sum / kept);
}

std::vector<ProbeHistory> build_histories(
    std::span<const atlas::ConnectionRecord> records) {
  // Group by probe, then sort each group by time and collapse consecutive
  // same-address records (keepalives) into single allocations.
  std::unordered_map<atlas::ProbeId, std::vector<atlas::ConnectionRecord>>
      by_probe;
  for (const auto& record : records) by_probe[record.probe_id].push_back(record);

  std::vector<ProbeHistory> histories;
  histories.reserve(by_probe.size());
  for (auto& [probe_id, group] : by_probe) {
    std::sort(group.begin(), group.end(),
              [](const atlas::ConnectionRecord& a,
                 const atlas::ConnectionRecord& b) {
                return a.time_seconds < b.time_seconds;
              });
    ProbeHistory history;
    history.probe_id = probe_id;
    for (const auto& record : group) {
      if (history.allocations.empty() ||
          history.allocations.back().address != record.address) {
        history.allocations.push_back(record);
      }
    }
    histories.push_back(std::move(history));
  }
  std::sort(histories.begin(), histories.end(),
            [](const ProbeHistory& a, const ProbeHistory& b) {
              return a.probe_id < b.probe_id;
            });
  return histories;
}

std::vector<ProbeHistory> build_histories(const atlas::CompressedLog& log) {
  // The log is already probe-major in ascending id order with time-sorted
  // runs, and every run holds one address — so a run maps to one candidate
  // allocation at its first record time, and the only work left is the
  // consecutive-duplicate collapse.
  std::vector<ProbeHistory> histories;
  histories.reserve(log.probe_count());
  for (std::size_t p = 0; p < log.probe_count(); ++p) {
    ProbeHistory history;
    history.probe_id = log.probe_id_at(p);
    const auto [first, last] = log.runs_of(p);
    if (first == last) continue;  // every record suppressed: no history
    history.allocations.reserve(last - first);
    for (std::size_t r = first; r < last; ++r) {
      const atlas::LogRun run = log.run_at(r);
      if (history.allocations.empty() ||
          history.allocations.back().address != run.address) {
        history.allocations.push_back(atlas::ConnectionRecord{
            run.first_seconds, history.probe_id, run.address, run.asn});
      }
    }
    histories.push_back(std::move(history));
  }
  return histories;
}

int knee_allocation_threshold(std::span<const double> sorted_desc,
                              double sensitivity, int fallback) {
  if (sorted_desc.size() < 3) return fallback;
  // Figure 2 plots allocation counts on a log axis, and that is the scale on
  // which the churner-vs-stable bend is a knee; run kneedle on log10(y).
  std::vector<double> log_counts;
  log_counts.reserve(sorted_desc.size());
  for (const double count : sorted_desc) {
    log_counts.push_back(std::log10(std::max(1.0, count)));
  }
  net::KneedleParams params;
  params.sensitivity = sensitivity;
  params.direction = net::CurveDirection::kDecreasing;
  // Integer counts step in plateaus which spawn micro local-maxima on the
  // difference curve; smooth them away before knee detection (the kneedle
  // paper's preprocessing step).
  params.smoothing_window = std::max<std::size_t>(3, log_counts.size() / 100);
  params.global_maximum = true;
  const auto knee = net::find_knee(log_counts, params);
  if (!knee) return fallback;
  // The knee sits where the churner spectrum meets the stable mass; the
  // count there is the reallocation threshold (>= 2 by definition of
  // "multiple allocations").
  return std::max(2, static_cast<int>(std::llround(std::pow(10.0, knee->y))));
}

namespace {

/// End-of-stage metrics publish: the funnel survivor counts become gauges
/// (they are per-run totals, not accumulating events), the per-probe
/// allocation counts feed one histogram. All values derive from the
/// deterministic PipelineResult, so they are identical for every --jobs.
void publish_pipeline_metrics(const PipelineResult& result,
                              std::span<const ProbeHistory> histories) {
  auto& registry = net::metrics::Registry::global();
  registry
      .counter("pipeline_probes_processed_total",
               "Probe histories fed into the detection funnel")
      .add(result.probes_total);
  registry
      .counter("pipeline_change_gaps_capped_total",
               "Inter-change gaps excluded from step-4 means by the gap cap")
      .add(result.change_gaps_capped);
  const auto set = [&registry](std::string_view name, std::string_view help,
                               std::size_t value) {
    registry.gauge(name, help).set(static_cast<std::int64_t>(value));
  };
  set("pipeline_probes_total", "Funnel input probes (this run)",
      result.probes_total);
  set("pipeline_probes_multi_as", "Probes dropped by the same-AS filter",
      result.probes_multi_as);
  set("pipeline_probes_single_as", "Probes surviving the same-AS filter",
      result.probes_single_as);
  set("pipeline_probes_with_changes",
      "Single-AS probes with >= 2 allocations", result.probes_with_changes);
  set("pipeline_probes_above_knee", "Probes at or above the knee threshold",
      result.probes_above_knee);
  set("pipeline_probes_daily",
      "Probes qualifying as daily churners (step-4 survivors)",
      result.probes_daily);
  set("pipeline_probes_gap_affected",
      "Above-knee probes whose mean lost at least one capped gap",
      result.probes_gap_affected);
  set("pipeline_knee_allocations",
      "Allocation-count threshold detected (or configured)",
      static_cast<std::size_t>(result.knee_allocations));
  set("pipeline_qualifying_addresses",
      "Distinct addresses held by qualifying probes",
      result.qualifying_addresses);
  set("pipeline_single_as_addresses",
      "Distinct addresses held by single-AS probes",
      result.single_as_addresses);
  set("pipeline_dynamic_prefixes", "Emitted dynamic /24 prefixes",
      result.dynamic_prefixes.size());
  auto& allocations = registry.histogram(
      "pipeline_allocations_per_probe",
      "Distribution of allocation counts over probe histories (Figure 2)",
      {1, 2, 4, 8, 16, 32, 64, 128, 256});
  for (const ProbeHistory& history : histories) {
    allocations.observe(static_cast<std::int64_t>(history.allocation_count()));
  }
}

/// Steps 2-5 over already-built histories: the shared tail of both
/// run_pipeline overloads.
PipelineResult run_funnel(const std::vector<ProbeHistory>& histories,
                          const PipelineConfig& config, net::ThreadPool* pool) {
  PipelineResult result;
  result.probes_total = histories.size();

  // The per-history work, in parallel; everything after folds serially.
  std::vector<HistorySummary> summaries(histories.size());
  net::for_each_index(pool, histories.size(), [&](std::size_t i) {
    summaries[i] = summarize_history(histories[i], config);
  });

  // Step 2: same-AS filter.
  std::vector<std::size_t> single_as;
  single_as.reserve(histories.size());
  for (std::size_t i = 0; i < histories.size(); ++i) {
    if (summaries[i].multi_as) {
      ++result.probes_multi_as;
    } else {
      single_as.push_back(i);
      result.single_as_addresses += summaries[i].distinct_addresses;
    }
  }
  result.probes_single_as = single_as.size();
  for (const std::size_t i : single_as) {
    if (summaries[i].allocation_count >= 2) ++result.probes_with_changes;
  }

  // Step 3: knee of the allocation-count curve (Figure 2).
  result.allocation_curve.reserve(single_as.size());
  for (const std::size_t i : single_as) {
    result.allocation_curve.push_back(
        static_cast<double>(summaries[i].allocation_count));
  }
  std::sort(result.allocation_curve.rbegin(), result.allocation_curve.rend());
  result.knee_allocations =
      config.min_allocations > 0
          ? config.min_allocations
          : knee_allocation_threshold(result.allocation_curve,
                                      config.knee_sensitivity);

  // Stage-0 prefix footprint: everything any probe held.
  for (const HistorySummary& summary : summaries) {
    for (const net::Ipv4Prefix prefix : summary.prefixes) {
      result.all_probe_prefixes.insert(prefix);
    }
  }

  // Steps 3+4: thresholds, then /24 expansion; intermediate footprints are
  // kept for the Figure 4 funnel.
  for (const std::size_t i : single_as) {
    const HistorySummary& summary = summaries[i];
    if (summary.allocation_count >= 2) {
      for (const net::Ipv4Prefix prefix : summary.prefixes) {
        result.single_as_change_prefixes.insert(prefix);
      }
    }
    if (summary.allocation_count <
        static_cast<std::size_t>(result.knee_allocations)) {
      continue;
    }
    ++result.probes_above_knee;
    for (const net::Ipv4Prefix prefix : summary.prefixes) {
      result.above_knee_prefixes.insert(prefix);
    }
    if (summary.gaps_excluded > 0) {
      result.change_gaps_capped += summary.gaps_excluded;
      ++result.probes_gap_affected;
    }
    if (!summary.capped_interval ||
        *summary.capped_interval > config.daily_threshold) {
      continue;
    }
    ++result.probes_daily;
    result.qualifying_probes.push_back(histories[i].probe_id);
    result.qualifying_addresses += summary.distinct_addresses;
    for (const net::Ipv4Prefix prefix : summary.prefixes) {
      result.dynamic_prefixes.insert(prefix);
    }
  }
  publish_pipeline_metrics(result, histories);
  return result;
}

}  // namespace

PipelineResult run_pipeline(std::span<const atlas::ConnectionRecord> records,
                            const PipelineConfig& config,
                            net::ThreadPool* pool) {
  return run_funnel(build_histories(records), config, pool);
}

PipelineResult run_pipeline(const atlas::CompressedLog& log,
                            const PipelineConfig& config,
                            net::ThreadPool* pool) {
  return run_funnel(build_histories(log), config, pool);
}

}  // namespace reuse::dynadetect
