// Minimal command-line flag parsing for the tools/ binaries.
//
// Supports --name=value, --name value, and boolean --name. Unknown flags are
// errors (typos in measurement tooling silently change experiments
// otherwise); positional arguments are collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace reuse::net {

class FlagParser {
 public:
  /// Registers a flag with a help line; call before parse().
  void define(const std::string& name, const std::string& help,
              const std::string& default_value = "");
  void define_bool(const std::string& name, const std::string& help);
  /// Registers a repeatable flag: every occurrence appends its value, in
  /// command-line order (`--axis a=1 --axis b=2`). get() returns the last
  /// occurrence; get_multi() returns them all.
  void define_multi(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or a
  /// missing value.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  /// All values of a repeatable flag, in the order given; empty when unset.
  [[nodiscard]] std::vector<std::string> get_multi(const std::string& name) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(const std::string& name) const;
  [[nodiscard]] std::optional<double> get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Formatted flag reference for --help output.
  [[nodiscard]] std::string usage(const std::string& program,
                                  const std::string& description) const;

 private:
  struct Flag {
    std::string help;
    std::string default_value;
    bool boolean = false;
    bool multi = false;
    bool set = false;
    std::string value;
    std::vector<std::string> values;  ///< every occurrence, multi flags only
  };

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::string error_;
};

/// Validates a jobs knob (--jobs flag or REUSE_JOBS environment variable).
/// Accepts a base-10 integer >= 0 with nothing trailing; 0 means "one
/// worker per hardware thread". Negative values, garbage, and empty text
/// return nullopt so callers can fail fast with a clear error instead of
/// casting whatever atoi produced into a thread-pool size.
[[nodiscard]] std::optional<int> parse_jobs(const std::string& text);

/// Output encoding of a --metrics-out file.
enum class MetricsFormat {
  kJson,        ///< the run manifest document (DESIGN.md §9)
  kPrometheus,  ///< text exposition of the metrics registry only
};

/// Validates a --metrics-format value: exactly "json" or "prometheus".
/// Anything else returns nullopt so callers can fail fast with exit 2 —
/// the same convention as parse_jobs; a typo in measurement tooling must
/// never silently fall back to a default encoding.
[[nodiscard]] std::optional<MetricsFormat> parse_metrics_format(
    const std::string& text);

/// Validates a bounded integer knob (--clients, --deadline-ms, ...): a
/// base-10 integer in [low, high] with nothing leading or trailing.
/// Garbage, empty text, partial parses ("12x"), and out-of-range values
/// return nullopt — same fail-fast convention as parse_jobs, and the same
/// reason: a serving knob must never be whatever atoi salvaged from a typo.
[[nodiscard]] std::optional<std::int64_t> parse_bounded_int(
    const std::string& text, std::int64_t low, std::int64_t high);

}  // namespace reuse::net
