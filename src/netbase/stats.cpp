#include "netbase/stats.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace reuse::net {

double OnlineStats::stddev() const { return std::sqrt(variance()); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::fraction_at_most(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())) - 1.0);
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> points;
  if (sorted_.empty()) return points;
  const std::size_t n = sorted_.size();
  // Ceiling division: a floor stride of n / max_points emits up to twice
  // max_points when n is slightly above it (e.g. n = 399, max = 200 gives
  // stride 1 and 399 points).
  max_points = std::max<std::size_t>(1, max_points);
  const std::size_t stride = (n + max_points - 1) / max_points;
  for (std::size_t i = 0; i < n; i += stride) {
    points.emplace_back(sorted_[i],
                        static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (points.back().first != sorted_.back() || points.back().second != 1.0) {
    points.emplace_back(sorted_.back(), 1.0);
  }
  return points;
}

Histogram::Histogram(double low, double high, std::size_t bins)
    : low_(low), high_(high), counts_(bins, 0.0) {
  if (!(low < high) || bins == 0) {
    throw std::invalid_argument("Histogram: need low < high and bins > 0");
  }
}

void Histogram::add(double x, double weight) {
  if (std::isnan(x)) return;  // no meaningful bin; see header
  const double span = high_ - low_;
  auto index = static_cast<std::ptrdiff_t>((x - low_) / span *
                                           static_cast<double>(counts_.size()));
  index = std::clamp<std::ptrdiff_t>(
      index, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(index)] += weight;
  total_ += weight;
}

double Histogram::bin_low(std::size_t i) const {
  return low_ + (high_ - low_) * static_cast<double>(i) /
                    static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

void IntDistribution::rebuild_cumulative() const {
  cumulative_.clear();
  cumulative_.reserve(counts_.size());
  std::int64_t running = 0;
  for (const auto& [value, count] : counts_) {
    running += count;
    cumulative_.emplace_back(value, running);
  }
  cumulative_stale_ = false;
}

double IntDistribution::fraction_at_most(std::int64_t v) const {
  if (total_ == 0) return 0.0;
  if (cumulative_stale_) rebuild_cumulative();
  const auto it = std::upper_bound(
      cumulative_.begin(), cumulative_.end(), v,
      [](std::int64_t x, const auto& entry) { return x < entry.first; });
  if (it == cumulative_.begin()) return 0.0;
  return static_cast<double>((it - 1)->second) / static_cast<double>(total_);
}

double round_significant(double value, int digits) {
  if (value == 0.0) return 0.0;
  const double magnitude =
      std::pow(10.0, digits - 1 - static_cast<int>(std::floor(
                                      std::log10(std::fabs(value)))));
  return std::round(value * magnitude) / magnitude;
}

std::string percent(double fraction, int decimals) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

}  // namespace reuse::net
