// ASCII chart rendering so each bench binary can show the *shape* of the
// figure it reproduces (CDFs, sorted bar series) directly in the terminal,
// next to the numeric rows.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace reuse::net {

struct ChartSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< (x, y), sorted by x.
  char glyph = '*';
};

struct ChartOptions {
  int width = 72;     ///< plot columns
  int height = 16;    ///< plot rows
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
};

/// Renders one or more series on shared axes as a character raster with a
/// small legend. Intended for quick visual confirmation of curve shapes, not
/// publication graphics.
[[nodiscard]] std::string render_chart(const std::vector<ChartSeries>& series,
                                       const ChartOptions& options = {});

/// Renders a horizontal bar chart (label, value) — used for Figure 9.
[[nodiscard]] std::string render_bars(
    const std::vector<std::pair<std::string, double>>& bars, int width = 50,
    const std::string& unit = "");

}  // namespace reuse::net
