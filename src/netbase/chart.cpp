#include "netbase/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace reuse::net {
namespace {

double transform(double v, bool log_scale) {
  if (!log_scale) return v;
  return std::log10(std::max(v, 1e-12));
}

std::string axis_number(double v) {
  char buffer[32];
  if (std::fabs(v) >= 1000.0 || (std::fabs(v) < 0.01 && v != 0.0)) {
    std::snprintf(buffer, sizeof(buffer), "%.2g", v);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f", v);
  }
  return buffer;
}

}  // namespace

std::string render_chart(const std::vector<ChartSeries>& series,
                         const ChartOptions& options) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform(x, options.log_x);
      const double ty = transform(y, options.log_y);
      x_min = std::min(x_min, tx);
      x_max = std::max(x_max, tx);
      y_min = std::min(y_min, ty);
      y_max = std::max(y_max, ty);
    }
  }
  if (!(x_min < x_max)) x_max = x_min + 1.0;
  if (!(y_min < y_max)) y_max = y_min + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> raster(static_cast<std::size_t>(h),
                                  std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (const auto& [x, y] : s.points) {
      const double tx = transform(x, options.log_x);
      const double ty = transform(y, options.log_y);
      int col = static_cast<int>(std::lround((tx - x_min) / (x_max - x_min) *
                                             (w - 1)));
      int row = static_cast<int>(std::lround((ty - y_min) / (y_max - y_min) *
                                             (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      raster[static_cast<std::size_t>(h - 1 - row)]
            [static_cast<std::size_t>(col)] = s.glyph;
    }
  }

  std::ostringstream out;
  if (!options.y_label.empty()) out << options.y_label << '\n';
  for (int r = 0; r < h; ++r) {
    const double y_here =
        y_max - (y_max - y_min) * static_cast<double>(r) / (h - 1);
    const double y_display = options.log_y ? std::pow(10.0, y_here) : y_here;
    char margin[16];
    std::snprintf(margin, sizeof(margin), "%9s |", axis_number(y_display).c_str());
    out << margin << raster[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(11, ' ') << std::string(static_cast<std::size_t>(w), '-')
      << '\n';
  const double x_lo = options.log_x ? std::pow(10.0, x_min) : x_min;
  const double x_hi = options.log_x ? std::pow(10.0, x_max) : x_max;
  out << std::string(11, ' ') << axis_number(x_lo);
  const std::string hi = axis_number(x_hi);
  const int pad = w - static_cast<int>(axis_number(x_lo).size()) -
                  static_cast<int>(hi.size());
  out << std::string(static_cast<std::size_t>(std::max(1, pad)), ' ') << hi
      << "  " << options.x_label << '\n';
  for (const auto& s : series) {
    out << "  " << s.glyph << " = " << s.label << '\n';
  }
  return out.str();
}

std::string render_bars(const std::vector<std::pair<std::string, double>>& bars,
                        int width, const std::string& unit) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;
  std::ostringstream out;
  for (const auto& [label, value] : bars) {
    const int filled =
        static_cast<int>(std::lround(value / max_value * width));
    out << label << std::string(label_width - label.size(), ' ') << " |"
        << std::string(static_cast<std::size_t>(filled), '#')
        << std::string(static_cast<std::size_t>(width - filled), ' ') << "| "
        << axis_number(value) << unit << '\n';
  }
  return out.str();
}

}  // namespace reuse::net
