// Sorted disjoint interval set over int64 keys.
//
// Listing presence over the 83-day measurement window is a union of
// half-open day intervals per (blocklist, address) pair; this container
// stores them merged and answers coverage queries for the duration CDFs.
#pragma once

#include <cstdint>
#include <vector>

namespace reuse::net {

/// A set of half-open intervals [begin, end) over std::int64_t, kept sorted
/// and coalesced (touching intervals merge).
class IntervalSet {
 public:
  struct Interval {
    std::int64_t begin = 0;
    std::int64_t end = 0;

    friend constexpr auto operator<=>(const Interval&, const Interval&) = default;
  };

  /// Adds [begin, end); no-op when begin >= end.
  void insert(std::int64_t begin, std::int64_t end);

  /// Replaces the contents with [first, last), which must already be in
  /// canonical form: begin-sorted, disjoint, non-touching, each non-empty —
  /// exactly what insert() maintains. The compressed presence store
  /// materializes transient sets through this in one O(n) copy.
  void assign_sorted(const Interval* first, const Interval* last) {
    intervals_.assign(first, last);
  }

  /// Removes [begin, end) from the set, splitting intervals as needed.
  void erase(std::int64_t begin, std::int64_t end);

  [[nodiscard]] bool contains(std::int64_t point) const;

  /// Total covered length.
  [[nodiscard]] std::int64_t measure() const;

  /// Length of the overlap with [begin, end).
  [[nodiscard]] std::int64_t overlap(std::int64_t begin, std::int64_t end) const;

  [[nodiscard]] bool empty() const { return intervals_.empty(); }
  [[nodiscard]] std::size_t interval_count() const { return intervals_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

  /// Earliest covered point; undefined when empty.
  [[nodiscard]] std::int64_t min() const { return intervals_.front().begin; }
  /// One past the last covered point; undefined when empty.
  [[nodiscard]] std::int64_t max() const { return intervals_.back().end; }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace reuse::net
