#include "netbase/sim_time.h"

#include <cstdio>

namespace reuse::net {

std::string Duration::to_string() const {
  std::int64_t s = seconds_;
  const bool negative = s < 0;
  if (negative) s = -s;
  const std::int64_t days = s / 86400;
  s %= 86400;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%s%lldd %02lld:%02lld:%02lld",
                negative ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(s / 3600),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buffer;
}

std::string SimTime::to_string() const {
  char buffer[64];
  const std::int64_t s = seconds_;
  std::snprintf(buffer, sizeof(buffer), "day %lld %02lld:%02lld:%02lld",
                static_cast<long long>(s / 86400),
                static_cast<long long>((s / 3600) % 24),
                static_cast<long long>((s / 60) % 60),
                static_cast<long long>(s % 60));
  return buffer;
}

}  // namespace reuse::net
