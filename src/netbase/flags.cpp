#include "netbase/flags.h"

#include <charconv>
#include <sstream>

namespace reuse::net {

void FlagParser::define(const std::string& name, const std::string& help,
                        const std::string& default_value) {
  flags_[name] = Flag{help, default_value, /*boolean=*/false, /*multi=*/false,
                      false, {}, {}};
}

void FlagParser::define_bool(const std::string& name, const std::string& help) {
  flags_[name] = Flag{help, "false", /*boolean=*/true, /*multi=*/false,
                      false, {}, {}};
}

void FlagParser::define_multi(const std::string& name,
                              const std::string& help) {
  flags_[name] = Flag{help, "", /*boolean=*/false, /*multi=*/true,
                      false, {}, {}};
}

bool FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto equals = token.find('='); equals != std::string::npos) {
      value = token.substr(equals + 1);
      token.resize(equals);
      has_value = true;
    }
    const auto it = flags_.find(token);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + token;
      return false;
    }
    Flag& flag = it->second;
    if (flag.boolean) {
      flag.set = true;
      flag.value = has_value ? value : "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "flag --" + token + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    flag.set = true;
    flag.value = std::move(value);
    if (flag.multi) flag.values.push_back(flag.value);
  }
  return true;
}

bool FlagParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::string FlagParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return {};
  return it->second.set ? it->second.value : it->second.default_value;
}

std::vector<std::string> FlagParser::get_multi(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return {};
  return it->second.values;
}

std::optional<std::int64_t> FlagParser::get_int(const std::string& name) const {
  const std::string text = get(name);
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

std::optional<double> FlagParser::get_double(const std::string& name) const {
  const std::string text = get(name);
  if (text.empty()) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

bool FlagParser::get_bool(const std::string& name) const {
  const std::string text = get(name);
  return text == "true" || text == "1" || text == "yes";
}

std::string FlagParser::usage(const std::string& program,
                              const std::string& description) const {
  std::ostringstream out;
  out << program << " — " << description << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    if (!flag.boolean) out << "=<value>";
    out << "\n      " << flag.help;
    if (!flag.default_value.empty() && !flag.boolean) {
      out << " (default: " << flag.default_value << ")";
    }
    out << '\n';
  }
  return out.str();
}

std::optional<int> parse_jobs(const std::string& text) {
  if (text.empty()) return std::nullopt;
  int jobs = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), jobs);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (jobs < 0) return std::nullopt;
  return jobs;
}

std::optional<MetricsFormat> parse_metrics_format(const std::string& text) {
  if (text == "json") return MetricsFormat::kJson;
  if (text == "prometheus") return MetricsFormat::kPrometheus;
  return std::nullopt;
}

std::optional<std::int64_t> parse_bounded_int(const std::string& text,
                                              std::int64_t low,
                                              std::int64_t high) {
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  if (value < low || value > high) return std::nullopt;
  return value;
}

}  // namespace reuse::net
