// Dense address index: the shared SoA key layer of the hot data plane.
//
// Every world-scale structure (presence store, NAT fanout, static occupancy,
// census matrices) keys per-address state by a dense u32 index instead of
// hashing Ipv4Address into a node-based map. An AddressTable owns the sorted
// unique address universe and answers address -> index (and back) with the
// same two-level /24-bucketed lookup the compiled serving snapshot proved:
//
//   * buckets_ holds the sorted occupied /24 keys (addr >> 8);
//   * bucket_offsets_ (size buckets + 1) slices the address array per bucket;
//   * addresses_ holds the sorted unique addresses themselves.
//
// A lookup binary-searches at most 2^24 bucket keys and then at most 256
// entries — two branch-predictable lower_bound loops over contiguous memory,
// no pointer chasing, ~8 bytes of overhead per occupied /24. Construction
// sorts and dedups once; the table is immutable afterwards, so any number of
// threads may query one instance concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/ipv4.h"

namespace reuse::net {

class AddressTable {
 public:
  /// index_of() result for addresses not in the table.
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFFu;

  AddressTable() = default;

  /// Builds from arbitrary address values: sorts, dedups, buckets. The
  /// dense index of an address is its rank in the sorted unique order.
  explicit AddressTable(std::vector<std::uint32_t> addresses);

  /// Builds from an already sorted, duplicate-free value array (the common
  /// case when the producer maintained sorted state) — skips the sort.
  /// Precondition: strictly ascending.
  static AddressTable from_sorted_unique(std::vector<std::uint32_t> addresses);

  /// Dense index of `address`, or kNotFound.
  [[nodiscard]] std::uint32_t index_of(Ipv4Address address) const;

  [[nodiscard]] bool contains(Ipv4Address address) const {
    return index_of(address) != kNotFound;
  }

  /// Inverse of index_of. Precondition: index < size().
  [[nodiscard]] Ipv4Address address_at(std::uint32_t index) const {
    return Ipv4Address(addresses_[index]);
  }

  [[nodiscard]] std::size_t size() const { return addresses_.size(); }
  [[nodiscard]] bool empty() const { return addresses_.empty(); }
  /// Occupied /24 buckets.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

  /// The sorted unique address values, index-aligned with the dense index.
  [[nodiscard]] const std::vector<std::uint32_t>& values() const {
    return addresses_;
  }

  /// Bytes of heap the three arrays occupy (the occupancy gauge input).
  [[nodiscard]] std::size_t memory_bytes() const {
    return (buckets_.size() + bucket_offsets_.size() + addresses_.size()) *
           sizeof(std::uint32_t);
  }

 private:
  void build_buckets();

  std::vector<std::uint32_t> buckets_;         ///< sorted /24 keys (addr>>8)
  std::vector<std::uint32_t> bucket_offsets_;  ///< size buckets+1, into addresses_
  std::vector<std::uint32_t> addresses_;       ///< sorted unique values
};

}  // namespace reuse::net
