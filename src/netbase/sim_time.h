// Simulated time for every substrate.
//
// The study spans 16 months of Atlas logs and 83 days of blocklist
// snapshots; the crawler reasons in 20-minute cooldowns and hourly re-pings.
// A single integer timeline in seconds keeps all of that consistent and
// exactly reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace reuse::net {

/// A span of simulated time, in whole seconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t seconds) : seconds_(seconds) {}

  static constexpr Duration seconds(std::int64_t n) { return Duration(n); }
  static constexpr Duration minutes(std::int64_t n) { return Duration(n * 60); }
  static constexpr Duration hours(std::int64_t n) { return Duration(n * 3600); }
  static constexpr Duration days(std::int64_t n) { return Duration(n * 86400); }

  [[nodiscard]] constexpr std::int64_t count() const { return seconds_; }
  [[nodiscard]] constexpr double as_days() const {
    return static_cast<double>(seconds_) / 86400.0;
  }
  [[nodiscard]] constexpr double as_hours() const {
    return static_cast<double>(seconds_) / 3600.0;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.seconds_ + b.seconds_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.seconds_ - b.seconds_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.seconds_ * k);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.seconds_ / k);
  }

  /// Human-readable rendering, e.g. "2d 03:15:07".
  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t seconds_ = 0;
};

/// An instant on the simulated timeline (seconds since simulation epoch).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) : seconds_(seconds) {}

  static constexpr SimTime epoch() { return SimTime(0); }

  [[nodiscard]] constexpr std::int64_t seconds() const { return seconds_; }
  /// Whole days elapsed since the epoch; snapshot indices use this.
  [[nodiscard]] constexpr std::int64_t day() const { return seconds_ / 86400; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime(t.seconds_ + d.count());
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime(t.seconds_ - d.count());
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration(a.seconds_ - b.seconds_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t seconds_ = 0;
};

/// A half-open interval [begin, end) on the simulated timeline.
struct TimeWindow {
  SimTime begin;
  SimTime end;

  [[nodiscard]] constexpr bool contains(SimTime t) const {
    return begin <= t && t < end;
  }
  [[nodiscard]] constexpr Duration length() const { return end - begin; }

  friend constexpr auto operator<=>(const TimeWindow&,
                                    const TimeWindow&) = default;
};

}  // namespace reuse::net
