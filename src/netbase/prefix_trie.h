// Binary (Patricia-lite) trie keyed by IPv4 CIDR prefixes.
//
// The analysis joins millions of blocklisted addresses against sets of
// dynamic /24 prefixes and against per-AS prefix tables, so longest-prefix
// match has to be cheap and allocation-friendly. Nodes are stored in a flat
// vector with index links; children are created per consumed bit (a plain
// binary trie — at most 32 steps per lookup, no path compression needed at
// this scale).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netbase/ipv4.h"

namespace reuse::net {

/// Maps CIDR prefixes to values of type T with longest-prefix-match lookup.
///
/// Inserting the same prefix twice overwrites the previous value.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.emplace_back(); }

  /// Inserts or replaces the value stored at `prefix`.
  void insert(Ipv4Prefix prefix, T value) {
    std::uint32_t index = 0;
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      std::uint32_t child = nodes_[index].child[bit];
      if (child == kNone) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.emplace_back();  // may reallocate: re-index below, no refs held
        nodes_[index].child[bit] = child;
      }
      index = child;
    }
    if (!nodes_[index].value) ++size_;
    nodes_[index].value = std::move(value);
  }

  /// Longest-prefix match: the value of the most specific stored prefix
  /// containing `address`, or nullopt when none contains it.
  [[nodiscard]] std::optional<T> lookup(Ipv4Address address) const {
    const T* found = lookup_ptr(address);
    if (found == nullptr) return std::nullopt;
    return *found;
  }

  /// Like lookup() but without copying; the pointer is invalidated by the
  /// next insert().
  [[nodiscard]] const T* lookup_ptr(Ipv4Address address) const {
    const T* best = nodes_[0].value ? &*nodes_[0].value : nullptr;
    std::uint32_t index = 0;
    const std::uint32_t bits = address.value();
    for (int depth = 0; depth < 32; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[index].child[bit];
      if (child == kNone) break;
      index = child;
      if (nodes_[index].value) best = &*nodes_[index].value;
    }
    return best;
  }

  /// The value stored at exactly `prefix`, ignoring covering prefixes.
  [[nodiscard]] const T* exact(Ipv4Prefix prefix) const {
    std::uint32_t index = 0;
    const std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      const std::uint32_t child = nodes_[index].child[bit];
      if (child == kNone) return nullptr;
      index = child;
    }
    return nodes_[index].value ? &*nodes_[index].value : nullptr;
  }

  [[nodiscard]] bool contains(Ipv4Address address) const {
    return lookup_ptr(address) != nullptr;
  }

  /// Number of distinct stored prefixes.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Visits every (prefix, value) pair in address order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(0, 0, 0, fn);
  }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  struct Node {
    std::uint32_t child[2] = {kNone, kNone};
    std::optional<T> value;
  };

  template <typename Fn>
  void walk(std::uint32_t index, std::uint32_t bits, int depth, Fn& fn) const {
    const Node& node = nodes_[index];
    if (node.value) fn(Ipv4Prefix(Ipv4Address(bits), depth), *node.value);
    if (depth == 32) return;
    if (node.child[0] != kNone) walk(node.child[0], bits, depth + 1, fn);
    if (node.child[1] != kNone) {
      walk(node.child[1], bits | (1u << (31 - depth)), depth + 1, fn);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

/// A set of prefixes with containment queries; thin wrapper over PrefixTrie.
class PrefixSet {
 public:
  void insert(Ipv4Prefix prefix) { trie_.insert(prefix, true); }

  [[nodiscard]] bool contains_address(Ipv4Address address) const {
    return trie_.contains(address);
  }
  [[nodiscard]] bool contains_prefix(Ipv4Prefix prefix) const {
    return trie_.exact(prefix) != nullptr;
  }
  [[nodiscard]] std::size_t size() const { return trie_.size(); }
  [[nodiscard]] bool empty() const { return trie_.empty(); }

  [[nodiscard]] std::vector<Ipv4Prefix> to_vector() const {
    std::vector<Ipv4Prefix> out;
    out.reserve(trie_.size());
    trie_.for_each([&](Ipv4Prefix prefix, bool) { out.push_back(prefix); });
    return out;
  }

 private:
  PrefixTrie<bool> trie_;
};

}  // namespace reuse::net
