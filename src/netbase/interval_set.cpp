#include "netbase/interval_set.h"

#include <algorithm>

namespace reuse::net {

void IntervalSet::insert(std::int64_t begin, std::int64_t end) {
  if (begin >= end) return;
  // Find the first interval whose end >= begin (could merge with us).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, std::int64_t b) { return iv.end < b; });
  // Find one past the last interval whose begin <= end.
  auto last = std::upper_bound(
      first, intervals_.end(), end,
      [](std::int64_t e, const Interval& iv) { return e < iv.begin; });
  if (first != last) {
    begin = std::min(begin, first->begin);
    end = std::max(end, (last - 1)->end);
  }
  const auto insert_at = intervals_.erase(first, last);
  intervals_.insert(insert_at, Interval{begin, end});
}

void IntervalSet::erase(std::int64_t begin, std::int64_t end) {
  if (begin >= end || intervals_.empty()) return;
  std::vector<Interval> result;
  result.reserve(intervals_.size() + 1);
  for (const Interval& iv : intervals_) {
    if (iv.end <= begin || iv.begin >= end) {
      result.push_back(iv);
      continue;
    }
    if (iv.begin < begin) result.push_back(Interval{iv.begin, begin});
    if (iv.end > end) result.push_back(Interval{end, iv.end});
  }
  intervals_ = std::move(result);
}

bool IntervalSet::contains(std::int64_t point) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), point,
      [](std::int64_t p, const Interval& iv) { return p < iv.begin; });
  if (it == intervals_.begin()) return false;
  --it;
  return point < it->end;
}

std::int64_t IntervalSet::measure() const {
  std::int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.end - iv.begin;
  return total;
}

std::int64_t IntervalSet::overlap(std::int64_t begin, std::int64_t end) const {
  std::int64_t total = 0;
  for (const Interval& iv : intervals_) {
    const std::int64_t lo = std::max(begin, iv.begin);
    const std::int64_t hi = std::min(end, iv.end);
    if (lo < hi) total += hi - lo;
  }
  return total;
}

}  // namespace reuse::net
