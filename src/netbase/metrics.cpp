#include "netbase/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "netbase/json.h"

namespace reuse::net::metrics {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head_ok = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head_ok(name.front())) return false;
  for (const char c : name) {
    if (!head_ok(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// Prometheus HELP text escapes only backslash and newline.
std::string prometheus_escape_help(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::logic_error("metrics: histogram needs at least one bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::logic_error(
          "metrics: histogram bounds must be strictly increasing");
    }
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::check_kind(std::string_view name, Kind kind) const {
  if (!valid_metric_name(name)) {
    throw std::logic_error("metrics: invalid metric name \"" +
                           std::string(name) + '"');
  }
  const auto it = kinds_.find(name);
  if (it != kinds_.end() && it->second != kind) {
    throw std::logic_error("metrics: \"" + std::string(name) +
                           "\" already registered as a different kind");
  }
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, Kind::kCounter);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
    kinds_.emplace(it->first, Kind::kCounter);
    help_.emplace(it->first, std::string(help));
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, Kind::kGauge);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    kinds_.emplace(it->first, Kind::kGauge);
    help_.emplace(it->first, std::string(help));
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<std::int64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  check_kind(name, Kind::kHistogram);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
    kinds_.emplace(it->first, Kind::kHistogram);
    help_.emplace(it->first, std::string(help));
  }
  return *it->second;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(name) << "\": " << counter->value();
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(name) << "\": " << gauge->value();
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(name) << "\": {\"buckets\": [";
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": " << bounds[i]
          << ", \"count\": " << histogram->bucket_count(i) << '}';
    }
    out << "], \"overflow\": " << histogram->bucket_count(bounds.size())
        << ", \"sum\": " << histogram->sum()
        << ", \"count\": " << histogram->count() << '}';
  }
  out << "}}";
  return out.str();
}

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << "# HELP " << name << ' '
        << prometheus_escape_help(help_.at(name)) << '\n';
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << counter->value() << '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "# HELP " << name << ' '
        << prometheus_escape_help(help_.at(name)) << '\n';
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << gauge->value() << '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "# HELP " << name << ' '
        << prometheus_escape_help(help_.at(name)) << '\n';
    out << "# TYPE " << name << " histogram\n";
    const auto& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cumulative += histogram->bucket_count(i);
      out << name << "_bucket{le=\"" << bounds[i] << "\"} " << cumulative
          << '\n';
    }
    cumulative += histogram->bucket_count(bounds.size());
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    out << name << "_sum " << histogram->sum() << '\n';
    out << name << "_count " << histogram->count() << '\n';
  }
  return out.str();
}

std::vector<std::pair<std::string, std::int64_t>> Registry::flat_values(
    std::string_view exclude_prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto excluded = [&](std::string_view name) {
    return !exclude_prefix.empty() &&
           name.substr(0, exclude_prefix.size()) == exclude_prefix;
  };
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, counter] : counters_) {
    if (excluded(name)) continue;
    out.emplace_back(name, static_cast<std::int64_t>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    if (excluded(name)) continue;
    out.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    if (excluded(name)) continue;
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      out.emplace_back(
          name + "_bucket_" +
              (i < bounds.size() ? std::to_string(bounds[i])
                                 : std::string("inf")),
          static_cast<std::int64_t>(histogram->bucket_count(i)));
    }
    out.emplace_back(name + "_sum", histogram->sum());
    out.emplace_back(name + "_count",
                     static_cast<std::int64_t>(histogram->count()));
  }
  // The three per-kind maps are each sorted; a final sort merges them into
  // one name-ordered list.
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace reuse::net::metrics
