// Fixed-size thread pool for the embarrassingly-parallel simulation stages.
//
// The scenario runner's hot loops (per-feed blocklist evolution, per-probe
// allocation simulation, per-sample census probing, per-/24 join work) are
// independent by construction — the paper collects each blocklist and each
// Atlas probe separately — so they parallelize without any cross-unit
// communication. The pool provides the one primitive they need:
// `parallel_for(count, body)` runs body(i) for every i in [0, count),
// blocking until all complete.
//
// Determinism contract: the pool never influences results. Work is handed
// out by an atomic index counter (dynamic load balancing), but each unit
// writes only to its own index-addressed slot, so merged results are in
// index order no matter how the units were scheduled. Combined with
// counter-derived RNG substreams (net::substream), a run with N workers is
// byte-identical to a serial run. Exceptions thrown by units are caught,
// the batch drains, and the exception with the lowest index rethrows on the
// caller — so error behaviour is deterministic too.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reuse::net {

class ThreadPool {
 public:
  /// Total parallelism `jobs` (>= 1): the caller participates in every
  /// batch, so `jobs - 1` worker threads are spawned. A pool with jobs == 1
  /// spawns no threads and runs every batch inline on the caller — that is
  /// the serial path, byte-identical by construction.
  explicit ThreadPool(std::size_t jobs = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + the calling thread).
  [[nodiscard]] std::size_t jobs() const { return workers_.size() + 1; }

  /// The machine's hardware thread count (>= 1); what `--jobs 0` resolves to.
  [[nodiscard]] static std::size_t hardware_jobs();

  /// Runs body(i) for every i in [0, count); returns when all completed.
  /// `grain` is the number of consecutive indices claimed per grab (0 picks
  /// one automatically). If any body throws, the batch stops claiming new
  /// work and the exception with the lowest index is rethrown here. Nested
  /// calls from inside a body run inline on that worker (no deadlock).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 0);

  /// parallel_for that collects fn(i) into a vector in index order — the
  /// result is identical for every jobs value. T must be default-
  /// constructible and move-assignable.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t count, Fn&& fn,
                                            std::size_t grain = 0) {
    std::vector<T> results(count);
    parallel_for(
        count, [&](std::size_t i) { results[i] = fn(i); }, grain);
    return results;
  }

 private:
  struct Batch {
    std::size_t count = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    // The two hot atomics live on their own cache lines: every participant
    // hammers `next` on each claim, and `failed` is polled per index — if
    // they shared a line (with each other or with the cold fields above),
    // each claim would invalidate the poll line on every other core.
    alignas(64) std::atomic<std::size_t> next{0};
    alignas(64) std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void worker_loop();
  /// `stealing` marks a worker thread draining someone else's batch (vs the
  /// submitting caller); it only feeds the pool_steals_total metric.
  static void run_batch(Batch& batch, bool stealing);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* current_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

namespace detail {
/// Feeds pool_tasks_run_total for loop indices executed outside run_batch
/// (serial paths), so the metric counts every unit of work at any --jobs
/// value and the pool_ metric family exists even in all-serial runs.
void note_tasks_run(std::size_t count);
}  // namespace detail

/// Serial-or-parallel helper for call sites holding a nullable pool: runs
/// body(i) for i in [0, count) on the pool when one is given, else inline.
inline void for_each_index(ThreadPool* pool, std::size_t count,
                           const std::function<void(std::size_t)>& body,
                           std::size_t grain = 0) {
  if (pool != nullptr) {
    pool->parallel_for(count, body, grain);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
  detail::note_tasks_run(count);
}

}  // namespace reuse::net
