#include "netbase/thread_pool.h"

#include <algorithm>

namespace reuse::net {
namespace {

// Set while a thread (worker or caller) executes a batch; a parallel_for
// issued from inside a body then runs inline instead of deadlocking on the
// pool that is already busy running it.
thread_local bool t_in_batch = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t worker_count = jobs < 2 ? 0 : jobs - 1;
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_batch(Batch& batch) {
  t_in_batch = true;
  for (;;) {
    const std::size_t begin =
        batch.next.fetch_add(batch.grain, std::memory_order_relaxed);
    if (begin >= batch.count) break;
    const std::size_t end = std::min(batch.count, begin + batch.grain);
    for (std::size_t i = begin; i < end; ++i) {
      if (batch.failed.load(std::memory_order_relaxed)) {
        t_in_batch = false;
        return;
      }
      try {
        (*batch.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.error_mutex);
        if (batch.error == nullptr || i < batch.error_index) {
          batch.error = std::current_exception();
          batch.error_index = i;
        }
        batch.failed.store(true, std::memory_order_relaxed);
        t_in_batch = false;
        return;
      }
    }
  }
  t_in_batch = false;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // Fine enough to balance uneven units, coarse enough that the atomic
    // counter is not contended; 8 grabs per participant on average.
    grain = std::max<std::size_t>(1, count / (jobs() * 8));
  }
  if (t_in_batch || workers_.empty() || count == 1) {
    // Serial path: exceptions propagate directly from the failing index.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  Batch batch;
  batch.count = count;
  batch.grain = grain;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_batch(batch);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    current_ = nullptr;
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Batch* batch = current_;
    lock.unlock();
    run_batch(*batch);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

}  // namespace reuse::net
