#include "netbase/thread_pool.h"

#include <algorithm>

#include "netbase/metrics.h"

namespace reuse::net {
namespace {

// Set while a thread (worker or caller) executes a batch; a parallel_for
// issued from inside a body then runs inline instead of deadlocking on the
// pool that is already busy running it.
thread_local bool t_in_batch = false;

// Registered on first use and cached. tasks_run is deterministic (it counts
// loop indices); steals, queue_depth and max_queue_depth depend on OS
// scheduling and are excluded from the determinism contract (DESIGN.md §9).
struct PoolMetrics {
  metrics::Counter& tasks_run;
  metrics::Counter& steals;
  metrics::Gauge& queue_depth;
  metrics::Gauge& max_queue_depth;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      metrics::counter("pool_tasks_run_total",
                       "Parallel-loop indices executed (all paths, "
                       "including serial)"),
      metrics::counter("pool_steals_total",
                       "Work chunks claimed by pool workers rather than the "
                       "submitting caller (scheduling-dependent)"),
      metrics::gauge("pool_queue_depth",
                     "Work units dispatched to the pool and not yet claimed "
                     "(live; 0 between batches)"),
      metrics::gauge("pool_max_queue_depth",
                     "Largest batch (in work units) ever dispatched to the "
                     "pool workers"),
  };
  return m;
}

}  // namespace

namespace detail {

void note_tasks_run(std::size_t count) {
  // No count guard: a zero-count call still registers the pool_ family,
  // which is exactly what the run manifest's registration touch relies on.
  pool_metrics().tasks_run.add(count);
}

}  // namespace detail

ThreadPool::ThreadPool(std::size_t jobs) {
  const std::size_t worker_count = jobs < 2 ? 0 : jobs - 1;
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_batch(Batch& batch, bool stealing) {
  PoolMetrics& metrics = pool_metrics();
  // Per-participant accumulators: the global counters are shared cache
  // lines, so recording per chunk would ping-pong them between cores. Each
  // participant tallies locally and flushes once per batch — one relaxed
  // RMW per counter per participant, independent of chunk count.
  std::size_t tasks_run = 0;
  std::size_t units_claimed = 0;
  std::size_t chunks_claimed = 0;
  const auto flush = [&] {
    metrics.tasks_run.add(tasks_run);
    if (stealing && chunks_claimed > 0) metrics.steals.add(chunks_claimed);
    // Claimed units leave the queue whether or not the failure flag cut
    // their chunk short — they will never run. Clamped chunk widths over
    // all participants sum to at most batch.count, and the dispatcher
    // raised the gauge by exactly batch.count first, so a concurrent
    // reader can never observe a negative depth.
    metrics.queue_depth.add(-static_cast<std::int64_t>(units_claimed));
    t_in_batch = false;
  };
  t_in_batch = true;
  for (;;) {
    const std::size_t begin =
        batch.next.fetch_add(batch.grain, std::memory_order_relaxed);
    if (begin >= batch.count) break;
    const std::size_t end = std::min(batch.count, begin + batch.grain);
    ++chunks_claimed;
    units_claimed += end - begin;
    for (std::size_t i = begin; i < end; ++i) {
      if (batch.failed.load(std::memory_order_relaxed)) {
        flush();
        return;
      }
      try {
        (*batch.body)(i);
        ++tasks_run;
      } catch (...) {
        ++tasks_run;
        std::lock_guard<std::mutex> lock(batch.error_mutex);
        if (batch.error == nullptr || i < batch.error_index) {
          batch.error = std::current_exception();
          batch.error_index = i;
        }
        batch.failed.store(true, std::memory_order_relaxed);
        flush();
        return;
      }
    }
  }
  flush();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) {
    // Fine enough to balance uneven units, coarse enough that the atomic
    // counter is not contended; 8 grabs per participant on average.
    grain = std::max<std::size_t>(1, count / (jobs() * 8));
  }
  if (t_in_batch || workers_.empty() || count == 1) {
    // Serial path: exceptions propagate directly from the failing index.
    for (std::size_t i = 0; i < count; ++i) body(i);
    detail::note_tasks_run(count);
    return;
  }

  PoolMetrics& metrics = pool_metrics();
  metrics.max_queue_depth.record_max(static_cast<std::int64_t>(count));
  // Raised before any worker can claim (the batch is published under the
  // mutex below), lowered as claimed chunks complete — so a concurrent
  // reader sees the depth go count -> 0, never a negative transient. A
  // failed batch leaves unclaimed units on the gauge; reconcile here so the
  // next batch starts level.
  metrics.queue_depth.add(static_cast<std::int64_t>(count));
  Batch batch;
  batch.count = count;
  batch.grain = grain;
  batch.body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  run_batch(batch, /*stealing=*/false);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    current_ = nullptr;
  }
  // A failed batch stops claiming, stranding unclaimed units on the gauge.
  // Everything below min(next, count) was claimed (and decremented) by some
  // participant; settle the remainder in one update so the gauge reads 0
  // between batches even after an exception.
  const std::size_t claimed =
      std::min(batch.next.load(std::memory_order_relaxed), count);
  if (claimed < count) {
    metrics.queue_depth.add(-static_cast<std::int64_t>(count - claimed));
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Batch* batch = current_;
    lock.unlock();
    run_batch(*batch, /*stealing=*/true);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

}  // namespace reuse::net
