// Minimal JSON string escaping, shared by every hand-rolled JSON emitter
// (StageTimer::to_json, the metrics exporter, the run manifest).
//
// The repo deliberately has no JSON library dependency; emitters build
// documents with ostringstream. That is fine as long as every string that
// reaches the output passes through json_escape — a stray '"' or control
// character in a stage or metric name must never produce invalid JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace reuse::net {

/// Returns `text` with every character escaped as required inside a JSON
/// string literal: '"', '\\', and all control characters below 0x20
/// (common ones as two-character escapes, the rest as \u00XX). Bytes >= 0x20
/// other than '"' and '\\' pass through untouched, so UTF-8 survives.
inline std::string json_escape(std::string_view text) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace reuse::net
