// Kneedle knee/elbow detection (Satopää, Albrecht, Irwin, Raghavan 2011).
//
// The paper derives its "8 address allocations" threshold by running kneedle
// on the sorted per-probe allocation-count curve (Figure 2). We implement the
// published algorithm: normalise the curve, form the difference curve against
// the diagonal, and accept the first local maximum whose prominence survives
// the sensitivity-scaled threshold until the next local maximum.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace reuse::net {

enum class CurveDirection { kIncreasing, kDecreasing };
enum class CurveShape { kConcave, kConvex };

struct KneedleParams {
  /// Sensitivity S from the paper; larger demands a more pronounced knee.
  double sensitivity = 1.0;
  /// Moving-average half-width applied before normalisation; 0 disables.
  std::size_t smoothing_window = 0;
  /// When unset, direction/shape are detected from the data.
  std::optional<CurveDirection> direction;
  std::optional<CurveShape> shape;
  /// Offline variant: take the global maximum of the difference curve
  /// instead of the first threshold-confirmed local maximum. Robust against
  /// plateau noise on step-valued curves.
  bool global_maximum = false;
};

struct KneePoint {
  std::size_t index = 0;  ///< Index into the input samples.
  double x = 0.0;
  double y = 0.0;
};

/// Finds the knee of y(x) for points sorted by strictly increasing x.
/// Returns nullopt when no knee satisfies the threshold test (e.g. straight
/// lines) or when fewer than three points are supplied.
[[nodiscard]] std::optional<KneePoint> find_knee(std::span<const double> xs,
                                                 std::span<const double> ys,
                                                 const KneedleParams& params = {});

/// Convenience overload: x is the sample index 0..n-1.
[[nodiscard]] std::optional<KneePoint> find_knee(std::span<const double> ys,
                                                 const KneedleParams& params = {});

}  // namespace reuse::net
