// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, exportable as structured JSON and as Prometheus text
// exposition.
//
// Design rules (see DESIGN.md §9):
//   * Cheap on hot paths. Recording is a relaxed atomic RMW on a
//     pre-resolved handle; the registry mutex is taken only at
//     registration and snapshot time, never per observation.
//   * Deterministic in value. Every metric counts simulation events —
//     packets, snapshots, records, funnel survivors — never wall-clock or
//     memory addresses. The one exception is the `pool_` family, whose
//     steal/queue-depth numbers depend on OS scheduling; those are
//     documented as scheduling-dependent and excluded from the
//     determinism contract (flat_values() can filter them out).
//   * Observability only. Nothing ever reads a metric to make a
//     simulation decision, so instrumentation cannot perturb products.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// process lifetime; idiomatic call sites cache them in a function-local
// static struct.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reuse::net::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void increment() { add(1); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or maximum) point-in-time value.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) { value_.fetch_add(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if `v` is larger (high-water mark).
  void record_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bucket bounds are inclusive upper bounds
/// ("le" in Prometheus terms), fixed at registration; observations above
/// the last bound land in an implicit overflow (+Inf) bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::vector<std::int64_t>& bounds() const {
    return bounds_;
  }
  /// Count in bucket i (i == bounds().size() is the +Inf overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  void reset();
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Named metric store. One global() instance serves the whole process;
/// independent instances exist only for tests.
class Registry {
 public:
  static Registry& global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Names must match [a-zA-Z_][a-zA-Z0-9_]* (valid Prometheus
  /// metric names). Re-registering an existing name with a different
  /// metric kind throws std::logic_error.
  Counter& counter(std::string_view name, std::string_view help);
  Gauge& gauge(std::string_view name, std::string_view help);
  /// `bounds` must be non-empty and strictly increasing; they are fixed by
  /// the first registration and ignored on later lookups of the same name.
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<std::int64_t> bounds);

  /// Zeroes every value but keeps all registrations. For tests and for
  /// processes that run several scenarios and want per-run snapshots.
  void reset();

  /// {"counters": {name: value, ...}, "gauges": {...},
  ///  "histograms": {name: {"buckets": [{"le": B, "count": N}, ...],
  ///                        "overflow": N, "sum": S, "count": N}}}
  /// Names are sorted, so equal registries produce identical strings.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (# HELP / # TYPE / samples).
  [[nodiscard]] std::string to_prometheus() const;

  /// Every metric flattened to sorted (name, value) pairs — histograms
  /// expand to one pair per bucket plus _sum/_count. Pairs whose name
  /// starts with `exclude_prefix` are skipped (empty prefix keeps all).
  /// This is the hook the determinism tests compare across --jobs values
  /// (excluding the scheduling-dependent "pool_" family).
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> flat_values(
      std::string_view exclude_prefix = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(std::string_view name, Kind kind) const;

  mutable std::mutex mutex_;
  std::map<std::string, Kind, std::less<>> kinds_;
  std::map<std::string, std::string, std::less<>> help_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthands against the global registry.
inline Counter& counter(std::string_view name, std::string_view help) {
  return Registry::global().counter(name, help);
}
inline Gauge& gauge(std::string_view name, std::string_view help) {
  return Registry::global().gauge(name, help);
}
inline Histogram& histogram(std::string_view name, std::string_view help,
                            std::vector<std::int64_t> bounds) {
  return Registry::global().histogram(name, help, std::move(bounds));
}

}  // namespace reuse::net::metrics
