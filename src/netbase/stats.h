// Statistics utilities shared by the analysis and report layers.
//
// Everything the paper plots is either an empirical CDF (Figures 3, 7, 8), a
// sorted per-entity curve (Figure 2) or a sorted per-list bar series
// (Figures 5, 6); these helpers compute them once so every bench renders the
// same way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace reuse::net {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const {
    return mean_ * static_cast<double>(count_);
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical cumulative distribution over a sample.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Fraction of samples <= x, in [0, 1].
  [[nodiscard]] double fraction_at_most(double x) const;

  /// The q-quantile (q in [0, 1]) by the nearest-rank rule.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return sorted_.empty() ? 0 : sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.empty() ? 0 : sorted_.back(); }

  /// The underlying sorted sample, for plotting.
  [[nodiscard]] std::span<const double> sorted() const { return sorted_; }

  /// (x, F(x)) step points thinned to at most `max_points` for plotting.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t max_points = 200) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-bin histogram over [low, high); out-of-range samples clamp to the
/// edge bins so totals are preserved. NaN samples are dropped (they have no
/// meaningful bin, and clamping them to bin 0 would skew the distribution).
class Histogram {
 public:
  Histogram(double low, double high, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double total() const { return total_; }

 private:
  double low_;
  double high_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Counter keyed by integer values; renders "value -> count" distributions
/// such as users-behind-NAT.
class IntDistribution {
 public:
  void add(std::int64_t value, std::int64_t count = 1) {
    counts_[value] += count;
    total_ += count;
    cumulative_stale_ = true;
  }

  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] const std::map<std::int64_t, std::int64_t>& counts() const {
    return counts_;
  }

  /// Fraction of mass at values <= v. Amortized O(log n): the first query
  /// after a mutation builds cumulative prefix sums once, so CDF sweeps
  /// (one query per x value, as the Figure 8 chart does) stay linear
  /// overall instead of quadratic.
  [[nodiscard]] double fraction_at_most(std::int64_t v) const;
  [[nodiscard]] std::int64_t max_value() const {
    return counts_.empty() ? 0 : counts_.rbegin()->first;
  }

 private:
  void rebuild_cumulative() const;

  std::map<std::int64_t, std::int64_t> counts_;
  std::int64_t total_ = 0;
  /// (value, running count) per distinct value, rebuilt lazily on query.
  mutable std::vector<std::pair<std::int64_t, std::int64_t>> cumulative_;
  mutable bool cumulative_stale_ = true;
};

/// Rounds to `digits` significant decimal digits; report helpers use this to
/// keep paper-vs-measured tables readable.
[[nodiscard]] double round_significant(double value, int digits);

/// Formats a fraction as a percentage string like "61.3%".
[[nodiscard]] std::string percent(double fraction, int decimals = 1);

}  // namespace reuse::net
