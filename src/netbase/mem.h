// Process memory introspection for the memory gauges and the world-scale
// bench: peak resident set size (VmHWM) read from /proc/self/status.
//
// VmHWM is the kernel's lifetime high-water mark for the process — it only
// ever grows, which is exactly the "did this stage blow the memory budget"
// question the bench asks. Callers comparing configurations must isolate
// each configuration in its own process (bench_worldscale forks a child per
// run for this reason).
#pragma once

#include <cstdint>

namespace reuse::net {

/// Peak resident set size of the calling process in bytes (VmHWM), or 0 on
/// platforms without /proc (the gauges then simply read 0).
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (VmRSS), or 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes();

}  // namespace reuse::net
