#include "netbase/address_table.h"

#include <algorithm>

namespace reuse::net {

AddressTable::AddressTable(std::vector<std::uint32_t> addresses)
    : addresses_(std::move(addresses)) {
  std::sort(addresses_.begin(), addresses_.end());
  addresses_.erase(std::unique(addresses_.begin(), addresses_.end()),
                   addresses_.end());
  build_buckets();
}

AddressTable AddressTable::from_sorted_unique(
    std::vector<std::uint32_t> addresses) {
  AddressTable table;
  table.addresses_ = std::move(addresses);
  table.build_buckets();
  return table;
}

void AddressTable::build_buckets() {
  buckets_.clear();
  bucket_offsets_.clear();
  std::size_t i = 0;
  while (i < addresses_.size()) {
    const std::uint32_t key = addresses_[i] >> 8;
    buckets_.push_back(key);
    bucket_offsets_.push_back(static_cast<std::uint32_t>(i));
    while (i < addresses_.size() && (addresses_[i] >> 8) == key) ++i;
  }
  bucket_offsets_.push_back(static_cast<std::uint32_t>(addresses_.size()));
}

std::uint32_t AddressTable::index_of(Ipv4Address address) const {
  const std::uint32_t value = address.value();
  const std::uint32_t key = value >> 8;
  const auto bucket =
      std::lower_bound(buckets_.begin(), buckets_.end(), key);
  if (bucket == buckets_.end() || *bucket != key) return kNotFound;
  const std::size_t b = static_cast<std::size_t>(bucket - buckets_.begin());
  const auto first = addresses_.begin() + bucket_offsets_[b];
  const auto last = addresses_.begin() + bucket_offsets_[b + 1];
  const auto it = std::lower_bound(first, last, value);
  if (it == last || *it != value) return kNotFound;
  return static_cast<std::uint32_t>(it - addresses_.begin());
}

}  // namespace reuse::net
