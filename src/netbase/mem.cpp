#include "netbase/mem.h"

#include <cstdio>
#include <cstring>

namespace reuse::net {
namespace {

// Reads a "VmXXX:  12345 kB" line from /proc/self/status. Returns 0 when
// the file or the field is missing (non-Linux platforms).
std::uint64_t status_field_kb(const char* field) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  const std::size_t field_len = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0) continue;
    if (std::sscanf(line + field_len, ": %lu", &kb) == 1) break;
    kb = 0;
  }
  std::fclose(file);
  return kb;
}

}  // namespace

std::uint64_t peak_rss_bytes() { return status_field_kb("VmHWM") * 1024; }

std::uint64_t current_rss_bytes() { return status_field_kb("VmRSS") * 1024; }

}  // namespace reuse::net
