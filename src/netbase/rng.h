// Deterministic pseudo-random generation for all simulators.
//
// Every experiment in this reproduction is seeded, so results are exactly
// reproducible run-to-run. We use splitmix64 for seeding/stream-splitting and
// xoshiro256** as the workhorse generator (fast, passes BigCrush, and —
// unlike std::mt19937 — has a tiny state that is cheap to fork per entity).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

namespace reuse::net {

/// splitmix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng;

/// Counter-derived RNG substream: an independent generator for unit `index`
/// of the stream tagged `salt`, as a pure function of (seed, salt, index).
/// Unlike Rng::fork(), no draws are taken from any parent generator, so unit
/// k's stream is identical no matter how many units exist, in which order
/// they run, or on which thread — the property the parallel simulation
/// stages rely on for byte-identical results at any --jobs value.
[[nodiscard]] Rng substream(std::uint64_t seed, std::uint64_t salt,
                            std::uint64_t index);

/// xoshiro256** generator with distribution helpers used across the
/// simulators. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// The raw xoshiro256** state, for checkpointing a generator mid-stream
  /// (the incremental scenario cache persists per-feed cursors this way).
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }

  /// Rebuilds a generator from a state() snapshot; the restored generator
  /// continues the original draw sequence exactly.
  [[nodiscard]] static Rng from_state(
      const std::array<std::uint64_t, 4>& state) {
    Rng rng;
    rng.state_ = state;
    return rng;
  }

  /// Derives an independent generator; `salt` distinguishes streams forked
  /// from the same parent (e.g. one stream per simulated host).
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng(next() ^ (salt * 0x9e3779b97f4a7c15ULL));
  }

  /// Uniform in [0, bound). Precondition: bound > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform(std::uint64_t bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const std::uint64_t draw = next();
      if (draw >= threshold) return draw % bound;
    }
  }

  /// Uniform integer in [low, high] inclusive. Precondition: low <= high.
  std::int64_t uniform_int(std::int64_t low, std::int64_t high) {
    return low + static_cast<std::int64_t>(
                     uniform(static_cast<std::uint64_t>(high - low) + 1));
  }

  /// Uniform real in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [low, high).
  double uniform_real(double low, double high) {
    return low + (high - low) * uniform_real();
  }

  bool bernoulli(double probability) { return uniform_real() < probability; }

  /// Exponential with the given mean (= 1/rate). Used for lease durations,
  /// listing lifetimes and inter-event gaps.
  double exponential(double mean) {
    double u = uniform_real();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard normal via Box–Muller (one value per call; simple and stateless).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = uniform_real();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform_real();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return mean + stddev * radius * std::cos(kTwoPi * u2);
  }

  /// Pareto with given minimum and shape alpha; heavy-tailed sizes (AS
  /// populations, NAT fan-outs) come from here.
  double pareto(double minimum, double alpha) {
    double u = uniform_real();
    if (u <= 0.0) u = 0x1.0p-53;
    return minimum / std::pow(u, 1.0 / alpha);
  }

  /// Poisson-distributed count with the given mean. Knuth's method for small
  /// means, normal approximation above 60 (abuse-event counts never need
  /// exact tails there).
  std::uint64_t poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 60.0) {
      const double draw = normal(mean, std::sqrt(mean));
      return draw < 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform_real();
    while (product > limit) {
      ++count;
      product *= uniform_real();
    }
    return count;
  }

  /// Geometric: number of failures before the first success; p in (0, 1].
  std::uint64_t geometric(double p) {
    if (p >= 1.0) return 0;
    double u = uniform_real();
    if (u <= 0.0) u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
  }

  /// Zipf-distributed rank in [1, n] with exponent s, via inverse-CDF on a
  /// precomputed table-free approximation (rejection sampling per Devroye).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Precondition: at least one weight > 0.
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

inline Rng substream(std::uint64_t seed, std::uint64_t salt,
                     std::uint64_t index) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(state);
  state ^= index * 0xbf58476d1ce4e5b9ULL;
  return Rng(splitmix64(state));
}

}  // namespace reuse::net
