#include "netbase/kneedle.h"

#include <algorithm>
#include <cmath>

namespace reuse::net {
namespace {

std::vector<double> moving_average(std::span<const double> ys,
                                   std::size_t half_width) {
  if (half_width == 0) return {ys.begin(), ys.end()};
  std::vector<double> smoothed(ys.size());
  const auto n = static_cast<std::ptrdiff_t>(ys.size());
  const auto w = static_cast<std::ptrdiff_t>(half_width);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - w);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + w);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += ys[static_cast<std::size_t>(j)];
    smoothed[static_cast<std::size_t>(i)] =
        sum / static_cast<double>(hi - lo + 1);
  }
  return smoothed;
}

CurveDirection detect_direction(std::span<const double> ys) {
  return ys.back() >= ys.front() ? CurveDirection::kIncreasing
                                 : CurveDirection::kDecreasing;
}

// Shape detection: a curve lying above its end-to-end chord is concave,
// below it convex — independent of direction (y=x^2 and y=1/(1+x) both sit
// below their chords and are both convex).
CurveShape detect_shape(std::span<const double> xs, std::span<const double> ys) {
  double deviation = 0.0;
  const double x0 = xs.front();
  const double x1 = xs.back();
  const double y0 = ys.front();
  const double y1 = ys.back();
  const double dx = x1 - x0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double chord = y0 + (y1 - y0) * ((xs[i] - x0) / dx);
    deviation += ys[i] - chord;
  }
  return deviation >= 0.0 ? CurveShape::kConcave : CurveShape::kConvex;
}

}  // namespace

std::optional<KneePoint> find_knee(std::span<const double> xs,
                                   std::span<const double> ys,
                                   const KneedleParams& params) {
  const std::size_t n = xs.size();
  if (n < 3 || ys.size() != n) return std::nullopt;

  const std::vector<double> smooth = moving_average(ys, params.smoothing_window);

  // Normalise both axes to [0, 1].
  const double x_min = xs.front();
  const double x_span = xs.back() - x_min;
  const auto [y_min_it, y_max_it] = std::minmax_element(smooth.begin(), smooth.end());
  const double y_min = *y_min_it;
  const double y_span = *y_max_it - y_min;
  if (x_span <= 0.0 || y_span <= 0.0) return std::nullopt;

  const CurveDirection direction =
      params.direction ? *params.direction : detect_direction(smooth);
  const CurveShape shape =
      params.shape ? *params.shape : detect_shape(xs, smooth);

  // Transform every curve into the canonical increasing/concave form, in
  // which the knee is the maximum of y_n - x_n.
  std::vector<double> xn(n);
  std::vector<double> yn(n);
  for (std::size_t i = 0; i < n; ++i) {
    xn[i] = (xs[i] - x_min) / x_span;
    yn[i] = (smooth[i] - y_min) / y_span;
  }
  // Vertical flip turns a decreasing curve into an increasing one and
  // toggles its shape (convex <-> concave).
  CurveShape effective_shape = shape;
  if (direction == CurveDirection::kDecreasing) {
    for (std::size_t i = 0; i < n; ++i) yn[i] = 1.0 - yn[i];
    effective_shape = shape == CurveShape::kConvex ? CurveShape::kConcave
                                                   : CurveShape::kConvex;
  }
  if (effective_shape == CurveShape::kConvex) {
    // Mirror horizontally so the bend faces the canonical (concave) way.
    std::reverse(xn.begin(), xn.end());
    std::reverse(yn.begin(), yn.end());
    for (std::size_t i = 0; i < n; ++i) xn[i] = 1.0 - xn[i];
  }

  // Difference curve.
  std::vector<double> diff(n);
  for (std::size_t i = 0; i < n; ++i) diff[i] = yn[i] - xn[i];

  // Mean spacing of normalised x, used in the threshold decay.
  const double mean_dx = 1.0 / static_cast<double>(n - 1);

  std::optional<std::size_t> best;
  if (params.global_maximum) {
    std::size_t arg = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (diff[i] > diff[arg]) arg = i;
    }
    // A knee must actually protrude above the diagonal by the sensitivity
    // margin; straight lines stay knee-free.
    if (diff[arg] > params.sensitivity * mean_dx) best = arg;
  }
  for (std::size_t i = 1; !best && i + 1 < n; ++i) {
    const bool local_max = diff[i] >= diff[i - 1] && diff[i] >= diff[i + 1];
    if (!local_max) continue;
    const double threshold = diff[i] - params.sensitivity * mean_dx;
    // Accept if the difference curve drops below the threshold before the
    // next local maximum (the kneedle confirmation step).
    for (std::size_t j = i + 1; j < n; ++j) {
      if (diff[j] >= diff[i] && j + 1 < n) break;  // superseded by later max
      if (diff[j] < threshold) {
        best = i;
        break;
      }
    }
    if (best) break;
  }
  if (!best) return std::nullopt;

  // Map back through the transforms to the original index.
  std::size_t index = *best;
  if (effective_shape == CurveShape::kConvex) index = n - 1 - index;
  return KneePoint{index, xs[index], ys[index]};
}

std::optional<KneePoint> find_knee(std::span<const double> ys,
                                   const KneedleParams& params) {
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  return find_knee(xs, ys, params);
}

}  // namespace reuse::net
