// Minimal little-endian binary serialization for cache files.
//
// The bench harness runs one expensive end-to-end simulation and shares its
// results across a dozen figure binaries through an on-disk cache; this is
// the encoding layer. Fixed-width little-endian integers, length-prefixed
// containers, no alignment assumptions.
#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace reuse::net {

/// 64-bit FNV-1a over a byte range. The scenario cache uses it twice: to
/// fingerprint the serialized scenario configuration (cache keying) and to
/// checksum the payload (corruption detection). Stable across platforms.
inline constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv64Prime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a_64(
    std::string_view bytes, std::uint64_t hash = kFnv64OffsetBasis) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnv64Prime;
  }
  return hash;
}

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  template <typename T>
    requires std::is_integral_v<T>
  void write(T value) {
    // Serialize as unsigned little-endian of the same width.
    using U = std::make_unsigned_t<T>;
    U u;
    std::memcpy(&u, &value, sizeof(T));
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((u >> (8 * i)) & 0xFF);
    }
    os_.write(bytes, sizeof(T));
  }

  void write(double value) {
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    write(bits);
  }

  void write(const std::string& text) {
    write(static_cast<std::uint64_t>(text.size()));
    os_.write(text.data(), static_cast<std::streamsize>(text.size()));
  }

  /// Writes a container of elements via a per-element callback.
  template <typename Container, typename Fn>
  void write_sequence(const Container& items, Fn&& fn) {
    write(static_cast<std::uint64_t>(items.size()));
    for (const auto& item : items) fn(*this, item);
  }

  [[nodiscard]] bool ok() const { return os_.good(); }

 private:
  std::ostream& os_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is) : is_(is) {}

  template <typename T>
    requires std::is_integral_v<T>
  [[nodiscard]] T read() {
    char bytes[sizeof(T)] = {};
    is_.read(bytes, sizeof(T));
    using U = std::make_unsigned_t<T>;
    U u = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      u |= static_cast<U>(static_cast<unsigned char>(bytes[i])) << (8 * i);
    }
    T value;
    std::memcpy(&value, &u, sizeof(T));
    return value;
  }

  [[nodiscard]] double read_double() {
    const std::uint64_t bits = read<std::uint64_t>();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  [[nodiscard]] std::string read_string() {
    const auto size = read<std::uint64_t>();
    if (size > kMaxString || !is_.good()) {
      is_.setstate(std::ios::failbit);
      return {};
    }
    std::string text(size, '\0');
    is_.read(text.data(), static_cast<std::streamsize>(size));
    return text;
  }

  /// Reads a length prefix; returns 0 and poisons the stream if implausible.
  [[nodiscard]] std::uint64_t read_size(std::uint64_t sanity_limit) {
    const auto size = read<std::uint64_t>();
    if (size > sanity_limit) {
      is_.setstate(std::ios::failbit);
      return 0;
    }
    return size;
  }

  /// Poisons the stream; decoders call this on semantic violations (values
  /// that decoded fine but cannot be valid) so `ok()` reports the failure.
  void fail() { is_.setstate(std::ios::failbit); }

  [[nodiscard]] bool ok() const { return is_.good(); }

 private:
  static constexpr std::uint64_t kMaxString = 1 << 20;

  std::istream& is_;
};

}  // namespace reuse::net
