// Plain-text table and CSV rendering for bench/report output.
//
// Every experiment binary prints a paper-vs-measured table; rendering lives
// here so the formatting is uniform across all of bench/.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace reuse::net {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// consistently (thousands separators for counts, fixed decimals for rates).
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  AsciiTable& add_row(std::vector<std::string> cells);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats 1234567 as "1,234,567".
[[nodiscard]] std::string with_thousands(std::int64_t value);

/// Formats a double with `decimals` fixed decimals.
[[nodiscard]] std::string fixed(double value, int decimals = 2);

/// Formats large counts the way the paper does: 29.7K, 2M, 1.6B.
[[nodiscard]] std::string compact_count(double value);

/// Escapes a cell for CSV output (quotes when needed).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace reuse::net
