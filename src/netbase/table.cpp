#include "netbase/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace reuse::net {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != ',' && c != '-' && c != '+' && c != '%' && c != 'K' && c != 'M' &&
        c != 'B' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

AsciiTable& AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      const bool right = align_right && looks_numeric(row[c]);
      const std::size_t pad = widths[c] - row[c].size();
      if (right) out << std::string(pad, ' ') << row[c];
      else out << row[c] << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit_row(headers_, false);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void AsciiTable::print(std::ostream& os) const { os << to_string(); }

std::string AsciiTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string with_thousands(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string fixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string compact_count(double value) {
  const double magnitude = std::fabs(value);
  char buffer[64];
  if (magnitude >= 1e9) {
    std::snprintf(buffer, sizeof(buffer), "%.1fB", value / 1e9);
  } else if (magnitude >= 1e6) {
    std::snprintf(buffer, sizeof(buffer), "%.1fM", value / 1e6);
  } else if (magnitude >= 1e3) {
    std::snprintf(buffer, sizeof(buffer), "%.1fK", value / 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  }
  return buffer;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace reuse::net
