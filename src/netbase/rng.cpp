#include "netbase/rng.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace reuse::net {

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be positive");
  if (n == 1) return 1;
  // Devroye's rejection method for the Zipf(s) distribution truncated at n.
  // Handles s == 1 via the log form of the integrated weight function.
  const double nd = static_cast<double>(n);
  auto weight_integral = [s, nd](double x) {
    if (s == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto weight_integral_inv = [s](double y) {
    if (s == 1.0) return std::exp(y);
    return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = weight_integral(0.5) - 1.0;
  const double hn = weight_integral(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform_real() * (hn - hx0);
    const double x = weight_integral_inv(u);
    const auto k = static_cast<std::uint64_t>(std::llround(std::max(1.0, x)));
    if (k > n) continue;
    const double kd = static_cast<double>(k);
    const double ratio =
        std::pow(kd, -s) /
        (weight_integral(kd + 0.5) - weight_integral(kd - 0.5));
    if (uniform_real() * 1.2 <= ratio) return k;
  }
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_index: total weight must be > 0");
  }
  double draw = uniform_real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last item.
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_indices: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense fraction: partial Fisher–Yates over an index vector.
  if (k * 3 >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + uniform(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse fraction: rejection into a hash set.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const std::size_t candidate = uniform(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace reuse::net
