// IPv4 address and CIDR prefix value types.
//
// These are the fundamental identifiers of the whole study: blocklists list
// IPv4 addresses, the BitTorrent crawler discovers (address, port) endpoints,
// and the dynamic-address pipeline reasons about covering /24 prefixes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace reuse::net {

/// An IPv4 address held in host byte order.
///
/// A plain value type: cheap to copy, totally ordered, hashable. The numeric
/// value is exposed because the simulators allocate address ranges
/// arithmetically.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Builds an address from its four dotted-quad octets (a.b.c.d).
  static constexpr Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
    return Ipv4Address((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | std::uint32_t{d});
  }

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// malformed input (missing octets, values > 255, stray characters).
  static std::optional<Ipv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  [[nodiscard]] constexpr std::uint8_t octet(int index) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - index)));
  }

  /// Dotted-quad rendering ("192.0.2.1").
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address address);

/// A CIDR prefix, e.g. 192.0.2.0/24. The network address is stored masked,
/// so two prefixes compare equal iff they denote the same address block.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Builds a prefix from any address inside it; host bits are cleared.
  /// Precondition: 0 <= length <= 32.
  constexpr Ipv4Prefix(Ipv4Address address, int length)
      : network_(address.value() & mask_for(length)), length_(length) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  static std::optional<Ipv4Prefix> parse(std::string_view text);

  /// The covering /24 of an address — the granularity the paper uses for
  /// dynamic address pools.
  static constexpr Ipv4Prefix slash24_of(Ipv4Address address) {
    return Ipv4Prefix(address, 24);
  }

  [[nodiscard]] constexpr Ipv4Address network() const {
    return Ipv4Address(network_);
  }
  [[nodiscard]] constexpr int length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address address) const {
    return (address.value() & mask_for(length_)) == network_;
  }

  /// True if `other` is fully inside this prefix (or equal).
  [[nodiscard]] constexpr bool contains(Ipv4Prefix other) const {
    return other.length_ >= length_ &&
           (other.network_ & mask_for(length_)) == network_;
  }

  [[nodiscard]] constexpr Ipv4Address first_address() const {
    return Ipv4Address(network_);
  }
  [[nodiscard]] constexpr Ipv4Address last_address() const {
    return Ipv4Address(network_ | ~mask_for(length_));
  }

  /// Number of addresses covered (2^(32-length)); 0 means 2^32 for a /0.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The address at `offset` within the block. Precondition: offset < size().
  [[nodiscard]] constexpr Ipv4Address address_at(std::uint64_t offset) const {
    return Ipv4Address(network_ + static_cast<std::uint32_t>(offset));
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Prefix, Ipv4Prefix) = default;

  static constexpr std::uint32_t mask_for(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  std::uint32_t network_ = 0;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Prefix prefix);

/// A transport endpoint: the unit the DHT crawler discovers. Multiple
/// endpoints sharing an address is the crawler's NAT signal.
struct Endpoint {
  Ipv4Address address;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

std::ostream& operator<<(std::ostream& os, const Endpoint& endpoint);
[[nodiscard]] std::string to_string(const Endpoint& endpoint);

}  // namespace reuse::net

template <>
struct std::hash<reuse::net::Ipv4Address> {
  std::size_t operator()(reuse::net::Ipv4Address address) const noexcept {
    // Finalizer from splitmix64: cheap and well mixed for table use.
    std::uint64_t x = address.value();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<reuse::net::Ipv4Prefix> {
  std::size_t operator()(reuse::net::Ipv4Prefix prefix) const noexcept {
    std::uint64_t x = (std::uint64_t{prefix.network().value()} << 6) |
                      static_cast<std::uint64_t>(prefix.length());
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

template <>
struct std::hash<reuse::net::Endpoint> {
  std::size_t operator()(const reuse::net::Endpoint& endpoint) const noexcept {
    std::uint64_t x = (std::uint64_t{endpoint.address.value()} << 16) |
                      endpoint.port;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
