#include "netbase/ipv4.h"

#include <array>
#include <charconv>
#include <ostream>

namespace reuse::net {
namespace {

// Parses one decimal octet (0..255) from the front of `text`, advancing it.
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  // Reject leading zeros like "01" which from_chars accepts; blocklist feeds
  // never emit them and silently accepting masks corrupt input.
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_octet(text);
    if (!octet) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = *octet;
  }
  if (!text.empty()) return std::nullopt;
  return from_octets(octets[0], octets[1], octets[2], octets[3]);
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out.append(std::to_string(octet(i)));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address address) {
  return os << address.to_string();
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto address = Ipv4Address::parse(text);
    if (!address) return std::nullopt;
    return Ipv4Prefix(*address, 32);
  }
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  auto [ptr, ec] = std::from_chars(len_text.data(),
                                   len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*address, length);
}

std::string Ipv4Prefix::to_string() const {
  return network().to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, Ipv4Prefix prefix) {
  return os << prefix.to_string();
}

std::ostream& operator<<(std::ostream& os, const Endpoint& endpoint) {
  return os << endpoint.address << ':' << endpoint.port;
}

std::string to_string(const Endpoint& endpoint) {
  return endpoint.address.to_string() + ":" + std::to_string(endpoint.port);
}

}  // namespace reuse::net
