#include "blocklist/catalogue.h"

#include <algorithm>
#include <cmath>

#include "netbase/rng.h"

namespace reuse::blocklist {
namespace {

using enum ListCategory;

// Table 2, as published, with category/size assignments from the maintainers'
// public descriptions (badips = per-service abuse trackers, abuse.ch =
// malware C2 feeds, nixspam/stopforumspam = spam traps, etc.).
const std::vector<MaintainerRow> kTable2 = {
    {"Bad IPs", 44, kReputation, 2.0, false},
    {"Bambenek", 22, kMalware, 0.6, false},
    {"Abuse.ch", 10, kMalware, 0.8, true},
    {"Normshield", 9, kReputation, 0.7, false},
    {"Blocklist.de", 9, kBruteforce, 1.2, true},
    {"Malware bytes", 9, kMalware, 0.8, false},
    {"Project Honeypot", 4, kReputation, 0.9, true},
    {"CoinBlockerLists", 4, kMalware, 0.4, false},
    {"NoThink", 3, kScan, 0.5, false},
    {"Emerging threats", 2, kDdos, 1.0, false},
    {"ImproWare", 2, kSpam, 0.6, false},
    {"Botvrij.EU", 2, kMalware, 0.4, false},
    {"IP Finder", 1, kReputation, 0.5, false},
    {"Cleantalk", 1, kSpam, 1.2, true},
    {"Sblam!", 1, kSpam, 0.8, false},
    {"Nixspam", 1, kSpam, 3.0, true},
    {"Blocklist Project", 1, kReputation, 0.6, false},
    {"BruteforceBlocker", 1, kBruteforce, 0.7, false},
    {"Cruzit", 1, kReputation, 0.6, false},
    {"Haley", 1, kBruteforce, 0.6, false},
    {"Botscout", 1, kSpam, 0.8, false},
    {"My IP", 1, kReputation, 0.5, false},
    {"Taichung", 1, kScan, 0.6, false},
    {"Cisco Talos", 1, kReputation, 1.0, true},
    {"Alienvault", 1, kReputation, 2.6, false},
    {"Binary Defense", 1, kReputation, 0.8, false},
    {"GreenSnow", 1, kBruteforce, 0.9, false},
    {"Snort Labs", 1, kReputation, 0.7, false},
    {"GPF Comics", 1, kScan, 0.4, false},
    {"Turris", 1, kScan, 0.6, false},
    {"CINSscore", 1, kReputation, 0.9, false},
    {"Nullsecure", 1, kScan, 0.4, false},
    {"DYN", 1, kMalware, 0.5, false},
    {"Malware domain list", 1, kMalware, 0.5, false},
    {"Malc0de", 1, kMalware, 0.4, false},
    {"URLVir", 1, kMalware, 0.4, false},
    {"Threatcrowd", 1, kReputation, 0.6, false},
    {"CyberCrime", 1, kMalware, 0.5, false},
    {"IBM X-Force", 1, kReputation, 1.0, false},
    {"VXVault", 1, kMalware, 0.4, false},
    {"Stopforumspam", 1, kSpam, 3.2, true},
};

// Bad IPs runs one sub-list per monitored service; spread its 44 lists over
// the service categories it actually tracks.
constexpr ListCategory kBadIpsRotation[] = {kBruteforce, kSpam, kScan,
                                            kDdos, kReputation};

// Per-category retention: spam/scan feeds expire fast, malware feeds hold
// entries long, reputation in between. Means in days.
double removal_mean_for(ListCategory category) {
  switch (category) {
    case kSpam: return 2.2;
    case kBruteforce: return 3.4;
    case kScan: return 2.2;
    case kDdos: return 3.8;
    case kReputation: return 4.5;
    case kMalware: return 7.5;
  }
  return 6.0;
}

}  // namespace

const std::vector<MaintainerRow>& table2_rows() { return kTable2; }

std::vector<BlocklistInfo> build_catalogue(std::uint64_t seed) {
  net::Rng rng(seed);
  std::vector<BlocklistInfo> catalogue;
  ListId next_id = 1;
  for (const MaintainerRow& row : kTable2) {
    for (int i = 0; i < row.list_count; ++i) {
      BlocklistInfo info;
      info.id = next_id++;
      info.maintainer = row.maintainer;
      info.name = std::string(row.maintainer);
      std::replace(info.name.begin(), info.name.end(), ' ', '-');
      if (row.list_count > 1) info.name += "-" + std::to_string(i + 1);
      info.category = row.maintainer == std::string_view("Bad IPs")
                          ? kBadIpsRotation[static_cast<std::size_t>(i) %
                                            std::size(kBadIpsRotation)]
                          : row.primary_category;
      // Sub-lists of one maintainer split its sensor coverage.
      const double divisor = row.list_count > 1
                                 ? std::sqrt(static_cast<double>(row.list_count))
                                 : 1.0;
      info.pickup_rate = std::min(
          0.9, 0.0010 * row.size_factor / divisor *
                   std::exp(rng.normal(0.0, 0.35)));
      info.removal_mean_days =
          removal_mean_for(info.category) * std::exp(rng.normal(0.0, 0.25));
      info.used_by_operators = row.used_by_operators;
      catalogue.push_back(std::move(info));
    }
  }
  return catalogue;
}

}  // namespace reuse::blocklist
