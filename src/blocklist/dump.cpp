#include "blocklist/dump.h"

#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "blocklist/parse.h"

namespace reuse::blocklist {

std::optional<DumpStats> write_daily_dumps(
    const SnapshotStore& store, std::span<const BlocklistInfo> catalogue,
    const std::filesystem::path& directory) {
  std::unordered_map<ListId, const BlocklistInfo*> by_id;
  for (const BlocklistInfo& info : catalogue) by_id[info.id] = &info;

  // Regroup presence intervals into per-(day, list) address vectors.
  std::map<std::pair<std::int64_t, ListId>, std::vector<net::Ipv4Address>>
      daily;
  store.for_each_listing([&](ListId list, net::Ipv4Address address,
                             const net::IntervalSet& presence) {
    for (const auto& interval : presence.intervals()) {
      for (std::int64_t day = interval.begin; day < interval.end; ++day) {
        daily[{day, list}].push_back(address);
      }
    }
  });

  DumpStats stats;
  std::error_code ec;
  for (auto& [key, addresses] : daily) {
    const auto& [day, list] = key;
    const auto it = by_id.find(list);
    if (it == by_id.end()) continue;
    const std::filesystem::path day_dir = directory / std::to_string(day);
    std::filesystem::create_directories(day_dir, ec);
    if (ec) return std::nullopt;
    std::ofstream os(day_dir / (it->second->name + ".txt"));
    if (!os) return std::nullopt;
    std::sort(addresses.begin(), addresses.end());
    write_list(os, it->second->name + " day " + std::to_string(day), addresses);
    ++stats.files;
    stats.entries += addresses.size();
  }
  return stats;
}

std::optional<DumpStats> read_daily_dumps(
    const std::filesystem::path& directory,
    std::span<const BlocklistInfo> catalogue, SnapshotStore& store) {
  std::unordered_map<std::string, ListId> by_name;
  for (const BlocklistInfo& info : catalogue) by_name[info.name] = info.id;

  DumpStats stats;
  std::error_code ec;
  if (!std::filesystem::is_directory(directory, ec)) return std::nullopt;
  for (const auto& day_entry :
       std::filesystem::directory_iterator(directory, ec)) {
    if (!day_entry.is_directory()) continue;
    std::int64_t day = 0;
    const std::string day_name = day_entry.path().filename().string();
    auto [ptr, parse_ec] =
        std::from_chars(day_name.data(), day_name.data() + day_name.size(), day);
    if (parse_ec != std::errc{} || ptr != day_name.data() + day_name.size()) {
      continue;  // not a day directory
    }
    for (const auto& file_entry :
         std::filesystem::directory_iterator(day_entry.path(), ec)) {
      if (!file_entry.is_regular_file() ||
          file_entry.path().extension() != ".txt") {
        continue;
      }
      const auto it = by_name.find(file_entry.path().stem().string());
      if (it == by_name.end()) continue;
      std::ifstream is(file_entry.path());
      if (!is) return std::nullopt;
      std::ostringstream buffer;
      buffer << is.rdbuf();
      const ParsedList parsed = parse_list_text(buffer.str());
      stats.skipped_lines += parsed.skipped_lines;
      if (parsed.skipped_lines > 0) {
        stats.skipped_by_list[it->second] += parsed.skipped_lines;
      }
      for (const net::Ipv4Address address : parsed.addresses) {
        store.record(it->second, address, day);
        ++stats.entries;
      }
      ++stats.files;
    }
  }
  if (ec) return std::nullopt;
  return stats;
}

}  // namespace reuse::blocklist
