// Blocklist text-format reading and writing.
//
// Real public blocklists are newline-separated IPv4 addresses or CIDR
// blocks with '#' (or ';') comments. These helpers let the audit tooling
// consume externally supplied list files and publish our own reused-address
// list in the same format the paper's artifact uses.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "netbase/ipv4.h"

namespace reuse::blocklist {

struct ParsedList {
  std::vector<net::Ipv4Address> addresses;
  std::vector<net::Ipv4Prefix> prefixes;  ///< CIDR entries (length < 32)
  std::size_t skipped_lines = 0;          ///< comments/blank/garbage
};

/// Parses one list file's content. Never throws: malformed lines are counted
/// in `skipped_lines`, matching how operators treat messy feeds.
[[nodiscard]] ParsedList parse_list_text(std::string_view text);

/// Writes addresses one per line with a comment header.
void write_list(std::ostream& os, std::string_view title,
                const std::vector<net::Ipv4Address>& addresses);

}  // namespace reuse::blocklist
