#include "blocklist/ecosystem.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "blocklist/parse.h"
#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::blocklist {
namespace {

/// Live state of one list: address -> expiry time (seconds).
using LiveMap = std::unordered_map<net::Ipv4Address, std::int64_t>;

/// Salt for the per-feed RNG substreams (see net::substream): feed i draws
/// from substream(config.seed, kFeedStreamSalt, i), so its evolution is a
/// pure function of (config, catalogue, events, i) — independent of every
/// other feed and of the number of worker threads.
constexpr std::uint64_t kFeedStreamSalt = 0xfeedULL;

/// Retention draw: short auto-expiry or sticky category retention.
std::int64_t draw_retention(net::Rng& rng, const EcosystemConfig& config,
                            const BlocklistInfo& info) {
  const double mean_days =
      rng.bernoulli(config.short_retention_fraction)
          ? config.short_retention_mean_days
          : info.removal_mean_days * config.long_retention_factor;
  return static_cast<std::int64_t>(rng.exponential(mean_days * 86400.0));
}

/// Everything one feed produces: a single-list store fragment plus its
/// health counters. Fragments merge into the shared result in feed-index
/// order, so the merged store is identical for every --jobs value.
struct FeedOutcome {
  SnapshotStore store;
  FeedHealth health;
  std::uint64_t events_picked_up = 0;
};

/// Evolves feed `i` over the whole event stream: pickups, retention expiry,
/// daily snapshots, and (under faults) missed or corrupted dumps. Pure
/// apart from the shared injector's atomic ledger.
FeedOutcome evolve_feed(std::size_t i, const BlocklistInfo& info,
                        std::span<const inet::AbuseEvent> events,
                        std::span<const std::int64_t> snapshot_days,
                        const EcosystemConfig& config,
                        sim::FaultInjector* faults) {
  FeedOutcome out;
  out.health.list = info.id;
  net::Rng rng = net::substream(config.seed, kFeedStreamSalt, i);
  LiveMap live;
  std::size_t next_snapshot = 0;

  // Ingest a corrupted dump: the maintainer published *something*, but not
  // what the live set says. Mostly-garbage dumps are quarantined outright
  // (treated like a missed day, so presence bridging can ride over them);
  // lightly damaged dumps are salvaged line by line.
  auto ingest_corrupted = [&](std::int64_t day) {
    std::vector<net::Ipv4Address> addresses;
    addresses.reserve(live.size());
    for (const auto& [address, expiry] : live) addresses.push_back(address);
    std::sort(addresses.begin(), addresses.end());  // stable render order
    std::string text;
    for (const net::Ipv4Address address : addresses) {
      text += address.to_string();
      text += '\n';
    }
    text = faults->corrupt_feed_text(std::move(text), i, day);
    const ParsedList parsed = parse_list_text(text);
    out.health.lines_skipped += parsed.skipped_lines;
    // Quarantine rule: more than 10% of the live set's lines unparseable
    // means the dump as a whole cannot be trusted.
    if (parsed.skipped_lines * 10 > live.size()) {
      ++out.health.days_quarantined;
      return;
    }
    for (const net::Ipv4Address address : parsed.addresses) {
      out.store.record(info.id, address, day);
    }
    out.store.mark_observed(info.id, day);
    ++out.health.days_salvaged;
    // Corruption never adds lines, so parsed entries <= live entries and the
    // difference is exactly what the damage cost us.
    out.health.entries_discarded += live.size() - parsed.addresses.size();
  };

  auto take_snapshot = [&](std::int64_t day) {
    const std::int64_t moment = day * 86400;  // snapshot at 00:00
    // Expiry runs on every path: list state evolves whether or not the
    // dump reaches us that day.
    for (auto it = live.begin(); it != live.end();) {
      it = it->second <= moment ? live.erase(it) : std::next(it);
    }
    if (faults != nullptr && faults->feed_snapshot_missing(i, day)) {
      ++out.health.days_missed;
      return;
    }
    if (faults != nullptr && faults->feed_corrupted(i, day)) {
      ingest_corrupted(day);
      return;
    }
    for (const auto& [address, expiry] : live) {
      out.store.record(info.id, address, day);
    }
    out.store.mark_observed(info.id, day);
    ++out.health.days_recorded;
  };

  for (const inet::AbuseEvent& event : events) {
    // Take any snapshots due before this event.
    while (next_snapshot < snapshot_days.size() &&
           snapshot_days[next_snapshot] * 86400 <= event.time_seconds) {
      take_snapshot(snapshot_days[next_snapshot++]);
    }
    if (!category_matches(info.category, event.category)) continue;
    const auto existing = live.find(event.source);
    if (existing != live.end() && existing->second > event.time_seconds) {
      // Already listed: the maintainer is watching this address, so the
      // event extends the listing with the (much higher) re-observation
      // rate.
      if (rng.bernoulli(config.reobservation_extend_rate)) {
        const std::int64_t retention = draw_retention(rng, config, info);
        existing->second =
            std::max(existing->second, event.time_seconds + retention);
      }
      continue;
    }
    if (!rng.bernoulli(info.pickup_rate)) continue;
    ++out.events_picked_up;
    live[event.source] = event.time_seconds + draw_retention(rng, config, info);
  }
  // Snapshots after the last event.
  while (next_snapshot < snapshot_days.size()) {
    take_snapshot(snapshot_days[next_snapshot++]);
  }
  return out;
}

}  // namespace

std::vector<net::TimeWindow> paper_periods() {
  return {
      net::TimeWindow{net::SimTime(0), net::SimTime(39 * 86400)},
      net::TimeWindow{net::SimTime(60 * 86400), net::SimTime(104 * 86400)},
  };
}

/// See ecosystem.h: one-shot aggregation of the finished EcosystemStats
/// into the global metrics registry — end-of-stage publishing, zero cost
/// in the per-feed hot loops, and deterministic because the stats are.
void publish_feed_metrics(const EcosystemStats& stats) {
  auto& registry = net::metrics::Registry::global();
  registry
      .counter("feeds_fetches_total",
               "Daily (list, day) feed fetch attempts (clean + missed + "
               "quarantined + salvaged)")
      .add(stats.snapshots_taken *
           static_cast<std::uint64_t>(stats.per_list.size()));
  std::uint64_t recorded = 0;
  for (const FeedHealth& health : stats.per_list) {
    recorded += static_cast<std::uint64_t>(health.days_recorded);
  }
  registry
      .counter("feeds_snapshots_recorded_total",
               "Clean daily feed dumps ingested")
      .add(recorded);
  registry
      .counter("feeds_snapshots_missed_total",
               "Daily feed dumps suppressed by outages")
      .add(stats.snapshots_missed);
  registry
      .counter("feeds_quarantines_total",
               "Corrupted dumps rejected wholesale")
      .add(stats.feeds_quarantined);
  registry
      .counter("feeds_salvages_total",
               "Corrupted dumps partially kept line by line")
      .add(stats.feeds_salvaged);
  registry
      .counter("feeds_lines_skipped_total",
               "Unparseable feed lines skipped across all lists")
      .add(stats.feed_lines_skipped);
  registry
      .counter("feeds_entries_discarded_total",
               "Live entries lost to dump corruption")
      .add(stats.entries_discarded);
  auto& per_list = registry.histogram(
      "feeds_lines_skipped_per_list",
      "Distribution of skipped-line counts over the catalogue's lists",
      {0, 1, 2, 4, 8, 16, 32, 64, 128});
  for (const FeedHealth& health : stats.per_list) {
    per_list.observe(static_cast<std::int64_t>(health.lines_skipped));
  }
}

EcosystemResult simulate_ecosystem(std::span<const BlocklistInfo> catalogue,
                                   std::span<const inet::AbuseEvent> events,
                                   const EcosystemConfig& config,
                                   sim::FaultInjector* faults,
                                   net::ThreadPool* pool) {
  EcosystemResult result;

  // Snapshot days: every whole day inside each period.
  std::vector<std::int64_t> snapshot_days;
  for (const net::TimeWindow& period : config.periods) {
    for (std::int64_t day = period.begin.day(); day < period.end.day(); ++day) {
      snapshot_days.push_back(day);
    }
  }
  std::sort(snapshot_days.begin(), snapshot_days.end());

  // Per-feed evolution: feeds are independent by construction (the paper
  // collects each blocklist separately), so they run in parallel; each gets
  // its own counter-derived RNG substream and its own store fragment.
  std::vector<FeedOutcome> outcomes(catalogue.size());
  net::for_each_index(
      pool, catalogue.size(),
      [&](std::size_t i) {
        outcomes[i] =
            evolve_feed(i, catalogue[i], events, snapshot_days, config, faults);
      },
      /*grain=*/1);

  // Index-ordered merge: identical insertion sequence for every --jobs
  // value, so downstream consumers that iterate the (unordered) store see
  // the same order as a serial run.
  result.stats.per_list.reserve(catalogue.size());
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    FeedOutcome& out = outcomes[i];
    result.stats.per_list.push_back(out.health);
    result.stats.events_picked_up += out.events_picked_up;
    result.stats.snapshots_missed +=
        static_cast<std::uint64_t>(out.health.days_missed);
    result.stats.feeds_quarantined +=
        static_cast<std::uint64_t>(out.health.days_quarantined);
    result.stats.feeds_salvaged +=
        static_cast<std::uint64_t>(out.health.days_salvaged);
    result.stats.entries_discarded += out.health.entries_discarded;
    result.stats.feed_lines_skipped += out.health.lines_skipped;
    out.store.for_each_listing([&](ListId list, net::Ipv4Address address,
                                   const net::IntervalSet& intervals) {
      for (const net::IntervalSet::Interval& span : intervals.intervals()) {
        result.store.record_span(list, address, span.begin, span.end);
      }
    });
    out.store.for_each_observed([&](ListId list, const net::IntervalSet& days) {
      for (const net::IntervalSet::Interval& span : days.intervals()) {
        result.store.mark_observed_span(list, span.begin, span.end);
      }
    });
    out.store = SnapshotStore{};  // free the fragment as we go
  }
  result.stats.events_seen = events.size();
  result.stats.snapshots_taken = snapshot_days.size();
  publish_feed_metrics(result.stats);
  return result;
}

}  // namespace reuse::blocklist
