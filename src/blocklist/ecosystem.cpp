#include "blocklist/ecosystem.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "blocklist/parse.h"
#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::blocklist {
namespace {

/// Live state of one list: address -> expiry time (seconds).
using LiveMap = std::unordered_map<net::Ipv4Address, std::int64_t>;

/// Salt for the per-feed RNG substreams (see net::substream): feed i draws
/// from substream(config.seed, kFeedStreamSalt, i), so its evolution is a
/// pure function of (config, catalogue, events, i) — independent of every
/// other feed and of the number of worker threads.
constexpr std::uint64_t kFeedStreamSalt = 0xfeedULL;

/// Retention draw: short auto-expiry or sticky category retention.
std::int64_t draw_retention(net::Rng& rng, const EcosystemConfig& config,
                            const BlocklistInfo& info) {
  const double mean_days =
      rng.bernoulli(config.short_retention_fraction)
          ? config.short_retention_mean_days
          : info.removal_mean_days * config.long_retention_factor;
  return static_cast<std::int64_t>(rng.exponential(mean_days * 86400.0));
}

/// Everything one feed produces: a single-list store fragment plus its
/// health counters. Fragments merge into the shared result in feed-index
/// order, so the merged store is identical for every --jobs value.
struct FeedOutcome {
  SnapshotStore store;
  FeedHealth health;
  std::uint64_t events_picked_up = 0;
};

/// Evolution state of one feed, carried between chunks of the abuse stream.
/// feed_ingest on consecutive chunks replays exactly what the old whole-
/// stream loop did — the loop body only ever looked at the current event,
/// and everything it read across iterations (rng, live map, snapshot
/// cursor, outcome) lives here.
struct FeedState {
  FeedOutcome out;
  net::Rng rng;
  LiveMap live;
  std::size_t next_snapshot = 0;
};

/// Ingest a corrupted dump: the maintainer published *something*, but not
/// what the live set says. Mostly-garbage dumps are quarantined outright
/// (treated like a missed day, so presence bridging can ride over them);
/// lightly damaged dumps are salvaged line by line.
void feed_ingest_corrupted(FeedState& s, std::size_t i,
                           const BlocklistInfo& info, std::int64_t day,
                           sim::FaultInjector* faults) {
  std::vector<net::Ipv4Address> addresses;
  addresses.reserve(s.live.size());
  for (const auto& [address, expiry] : s.live) addresses.push_back(address);
  std::sort(addresses.begin(), addresses.end());  // stable render order
  std::string text;
  for (const net::Ipv4Address address : addresses) {
    text += address.to_string();
    text += '\n';
  }
  text = faults->corrupt_feed_text(std::move(text), i, day);
  const ParsedList parsed = parse_list_text(text);
  s.out.health.lines_skipped += parsed.skipped_lines;
  // Quarantine rule: more than 10% of the live set's lines unparseable
  // means the dump as a whole cannot be trusted.
  if (parsed.skipped_lines * 10 > s.live.size()) {
    ++s.out.health.days_quarantined;
    return;
  }
  for (const net::Ipv4Address address : parsed.addresses) {
    s.out.store.record(info.id, address, day);
  }
  s.out.store.mark_observed(info.id, day);
  ++s.out.health.days_salvaged;
  // Corruption never adds lines, so parsed entries <= live entries and the
  // difference is exactly what the damage cost us.
  s.out.health.entries_discarded += s.live.size() - parsed.addresses.size();
}

void feed_take_snapshot(FeedState& s, std::size_t i, const BlocklistInfo& info,
                        std::int64_t day, sim::FaultInjector* faults) {
  const std::int64_t moment = day * 86400;  // snapshot at 00:00
  // Expiry runs on every path: list state evolves whether or not the
  // dump reaches us that day.
  for (auto it = s.live.begin(); it != s.live.end();) {
    it = it->second <= moment ? s.live.erase(it) : std::next(it);
  }
  if (faults != nullptr && faults->feed_snapshot_missing(i, day)) {
    ++s.out.health.days_missed;
    return;
  }
  if (faults != nullptr && faults->feed_corrupted(i, day)) {
    feed_ingest_corrupted(s, i, info, day, faults);
    return;
  }
  for (const auto& [address, expiry] : s.live) {
    s.out.store.record(info.id, address, day);
  }
  s.out.store.mark_observed(info.id, day);
  ++s.out.health.days_recorded;
}

/// Evolves feed `i` over one chunk of the event stream: pickups, retention
/// expiry, daily snapshots, and (under faults) missed or corrupted dumps.
/// Pure apart from the shared injector's atomic ledger.
void feed_ingest(FeedState& s, std::size_t i, const BlocklistInfo& info,
                 std::span<const inet::AbuseEvent> events,
                 std::span<const std::int64_t> snapshot_days,
                 const EcosystemConfig& config, sim::FaultInjector* faults) {
  for (const inet::AbuseEvent& event : events) {
    // Take any snapshots due before this event.
    while (s.next_snapshot < snapshot_days.size() &&
           snapshot_days[s.next_snapshot] * 86400 <= event.time_seconds) {
      feed_take_snapshot(s, i, info, snapshot_days[s.next_snapshot++], faults);
    }
    if (!category_matches(info.category, event.category)) continue;
    const auto existing = s.live.find(event.source);
    if (existing != s.live.end() && existing->second > event.time_seconds) {
      // Already listed: the maintainer is watching this address, so the
      // event extends the listing with the (much higher) re-observation
      // rate.
      if (s.rng.bernoulli(config.reobservation_extend_rate)) {
        const std::int64_t retention = draw_retention(s.rng, config, info);
        existing->second =
            std::max(existing->second, event.time_seconds + retention);
      }
      continue;
    }
    if (!s.rng.bernoulli(info.pickup_rate)) continue;
    ++s.out.events_picked_up;
    s.live[event.source] =
        event.time_seconds + draw_retention(s.rng, config, info);
  }
}

/// Snapshots after the last event of the stream.
void feed_finish(FeedState& s, std::size_t i, const BlocklistInfo& info,
                 std::span<const std::int64_t> snapshot_days,
                 sim::FaultInjector* faults) {
  while (s.next_snapshot < snapshot_days.size()) {
    feed_take_snapshot(s, i, info, snapshot_days[s.next_snapshot++], faults);
  }
}

}  // namespace

std::vector<net::TimeWindow> paper_periods() {
  return {
      net::TimeWindow{net::SimTime(0), net::SimTime(39 * 86400)},
      net::TimeWindow{net::SimTime(60 * 86400), net::SimTime(104 * 86400)},
  };
}

/// See ecosystem.h: one-shot aggregation of the finished EcosystemStats
/// into the global metrics registry — end-of-stage publishing, zero cost
/// in the per-feed hot loops, and deterministic because the stats are.
void publish_feed_metrics(const EcosystemStats& stats) {
  auto& registry = net::metrics::Registry::global();
  registry
      .counter("feeds_fetches_total",
               "Daily (list, day) feed fetch attempts (clean + missed + "
               "quarantined + salvaged)")
      .add(stats.snapshots_taken *
           static_cast<std::uint64_t>(stats.per_list.size()));
  std::uint64_t recorded = 0;
  for (const FeedHealth& health : stats.per_list) {
    recorded += static_cast<std::uint64_t>(health.days_recorded);
  }
  registry
      .counter("feeds_snapshots_recorded_total",
               "Clean daily feed dumps ingested")
      .add(recorded);
  registry
      .counter("feeds_snapshots_missed_total",
               "Daily feed dumps suppressed by outages")
      .add(stats.snapshots_missed);
  registry
      .counter("feeds_quarantines_total",
               "Corrupted dumps rejected wholesale")
      .add(stats.feeds_quarantined);
  registry
      .counter("feeds_salvages_total",
               "Corrupted dumps partially kept line by line")
      .add(stats.feeds_salvaged);
  registry
      .counter("feeds_lines_skipped_total",
               "Unparseable feed lines skipped across all lists")
      .add(stats.feed_lines_skipped);
  registry
      .counter("feeds_entries_discarded_total",
               "Live entries lost to dump corruption")
      .add(stats.entries_discarded);
  auto& per_list = registry.histogram(
      "feeds_lines_skipped_per_list",
      "Distribution of skipped-line counts over the catalogue's lists",
      {0, 1, 2, 4, 8, 16, 32, 64, 128});
  for (const FeedHealth& health : stats.per_list) {
    per_list.observe(static_cast<std::int64_t>(health.lines_skipped));
  }
}

struct EcosystemSimulator::Impl {
  std::vector<BlocklistInfo> catalogue;
  EcosystemConfig config;
  sim::FaultInjector* faults = nullptr;
  net::ThreadPool* pool = nullptr;
  std::vector<std::int64_t> snapshot_days;
  std::vector<FeedState> states;
  std::uint64_t events_seen = 0;
};

EcosystemSimulator::EcosystemSimulator(
    std::span<const BlocklistInfo> catalogue, const EcosystemConfig& config,
    sim::FaultInjector* faults, net::ThreadPool* pool)
    : impl_(std::make_unique<Impl>()) {
  impl_->catalogue.assign(catalogue.begin(), catalogue.end());
  impl_->config = config;
  impl_->faults = faults;
  impl_->pool = pool;

  // Snapshot days: every whole day inside each period.
  for (const net::TimeWindow& period : config.periods) {
    for (std::int64_t day = period.begin.day(); day < period.end.day(); ++day) {
      impl_->snapshot_days.push_back(day);
    }
  }
  std::sort(impl_->snapshot_days.begin(), impl_->snapshot_days.end());

  impl_->states.resize(impl_->catalogue.size());
  for (std::size_t i = 0; i < impl_->states.size(); ++i) {
    impl_->states[i].out.health.list = impl_->catalogue[i].id;
    impl_->states[i].rng = net::substream(config.seed, kFeedStreamSalt, i);
  }
}

EcosystemSimulator::EcosystemSimulator(EcosystemSimulator&&) noexcept =
    default;
EcosystemSimulator& EcosystemSimulator::operator=(
    EcosystemSimulator&&) noexcept = default;
EcosystemSimulator::~EcosystemSimulator() = default;

void EcosystemSimulator::ingest(std::span<const inet::AbuseEvent> events) {
  Impl& im = *impl_;
  im.events_seen += events.size();
  // Per-feed evolution: feeds are independent by construction (the paper
  // collects each blocklist separately), so each chunk fans out across
  // them; each feed draws from its own counter-derived RNG substream and
  // fills its own store fragment, so the per-chunk barrier is the only
  // synchronization.
  net::for_each_index(
      im.pool, im.states.size(),
      [&](std::size_t i) {
        feed_ingest(im.states[i], i, im.catalogue[i], events,
                    im.snapshot_days, im.config, im.faults);
      },
      /*grain=*/1);
}

bool EcosystemSimulator::resume_from(const EcosystemCarry& carry,
                                     const EcosystemStats& previous,
                                     std::uint64_t snapshots_taken) {
  Impl& im = *impl_;
  if (carry.feeds.size() != im.states.size() ||
      previous.per_list.size() != im.states.size() ||
      snapshots_taken > im.snapshot_days.size()) {
    return false;
  }
  for (std::size_t i = 0; i < im.states.size(); ++i) {
    if (previous.per_list[i].list != im.catalogue[i].id) return false;
  }
  for (std::size_t i = 0; i < im.states.size(); ++i) {
    FeedState& s = im.states[i];
    const FeedCarry& cursor = carry.feeds[i];
    s.rng = net::Rng::from_state(cursor.rng_state);
    s.live.clear();
    s.live.reserve(cursor.live.size());
    for (const auto& [address, expiry] : cursor.live) s.live[address] = expiry;
    s.out.events_picked_up = cursor.events_picked_up;
    // Continuing the previous run's health counters means finish()'s merge
    // sums whole-run totals per feed, exactly like an unbroken run.
    s.out.health = previous.per_list[i];
    s.next_snapshot = static_cast<std::size_t>(snapshots_taken);
  }
  return true;
}

EcosystemResult EcosystemSimulator::finish(EcosystemCarry* carry) {
  Impl& im = *impl_;
  net::for_each_index(
      im.pool, im.states.size(),
      [&](std::size_t i) {
        feed_finish(im.states[i], i, im.catalogue[i], im.snapshot_days,
                    im.faults);
      },
      /*grain=*/1);
  if (carry != nullptr) {
    carry->feeds.clear();
    carry->feeds.resize(im.states.size());
    for (std::size_t i = 0; i < im.states.size(); ++i) {
      FeedCarry& cursor = carry->feeds[i];
      const FeedState& s = im.states[i];
      cursor.rng_state = s.rng.state();
      cursor.live.assign(s.live.begin(), s.live.end());
      std::sort(cursor.live.begin(), cursor.live.end());
      cursor.events_picked_up = s.out.events_picked_up;
    }
  }

  // Index-ordered merge: identical insertion sequence for every --jobs
  // value, so downstream consumers that iterate the (unordered) store see
  // the same order as a serial run.
  EcosystemResult result;
  result.stats.per_list.reserve(im.catalogue.size());
  for (std::size_t i = 0; i < im.catalogue.size(); ++i) {
    FeedOutcome& out = im.states[i].out;
    result.stats.per_list.push_back(out.health);
    result.stats.events_picked_up += out.events_picked_up;
    result.stats.snapshots_missed +=
        static_cast<std::uint64_t>(out.health.days_missed);
    result.stats.feeds_quarantined +=
        static_cast<std::uint64_t>(out.health.days_quarantined);
    result.stats.feeds_salvaged +=
        static_cast<std::uint64_t>(out.health.days_salvaged);
    result.stats.entries_discarded += out.health.entries_discarded;
    result.stats.feed_lines_skipped += out.health.lines_skipped;
    out.store.for_each_listing([&](ListId list, net::Ipv4Address address,
                                   const net::IntervalSet& intervals) {
      for (const net::IntervalSet::Interval& span : intervals.intervals()) {
        result.store.record_span(list, address, span.begin, span.end);
      }
    });
    out.store.for_each_observed([&](ListId list, const net::IntervalSet& days) {
      for (const net::IntervalSet::Interval& span : days.intervals()) {
        result.store.mark_observed_span(list, span.begin, span.end);
      }
    });
    out.store = SnapshotStore{};  // free the fragment as we go
  }
  result.stats.events_seen = im.events_seen;
  result.stats.snapshots_taken = im.snapshot_days.size();
  publish_feed_metrics(result.stats);
  return result;
}

EcosystemResult simulate_ecosystem(std::span<const BlocklistInfo> catalogue,
                                   std::span<const inet::AbuseEvent> events,
                                   const EcosystemConfig& config,
                                   sim::FaultInjector* faults,
                                   net::ThreadPool* pool) {
  EcosystemSimulator simulator(catalogue, config, faults, pool);
  simulator.ingest(events);
  return simulator.finish();
}

}  // namespace reuse::blocklist
