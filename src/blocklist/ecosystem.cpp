#include "blocklist/ecosystem.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "blocklist/parse.h"
#include "netbase/rng.h"

namespace reuse::blocklist {
namespace {

/// Live state of one list: address -> expiry time (seconds).
using LiveMap = std::unordered_map<net::Ipv4Address, std::int64_t>;

/// Retention draw: short auto-expiry or sticky category retention.
std::int64_t draw_retention(net::Rng& rng, const EcosystemConfig& config,
                            const BlocklistInfo& info) {
  const double mean_days =
      rng.bernoulli(config.short_retention_fraction)
          ? config.short_retention_mean_days
          : info.removal_mean_days * config.long_retention_factor;
  return static_cast<std::int64_t>(rng.exponential(mean_days * 86400.0));
}

}  // namespace

std::vector<net::TimeWindow> paper_periods() {
  return {
      net::TimeWindow{net::SimTime(0), net::SimTime(39 * 86400)},
      net::TimeWindow{net::SimTime(60 * 86400), net::SimTime(104 * 86400)},
  };
}

EcosystemResult simulate_ecosystem(std::span<const BlocklistInfo> catalogue,
                                   std::span<const inet::AbuseEvent> events,
                                   const EcosystemConfig& config,
                                   sim::FaultInjector* faults) {
  EcosystemResult result;
  net::Rng rng(config.seed);
  result.stats.per_list.resize(catalogue.size());
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    result.stats.per_list[i].list = catalogue[i].id;
  }

  // Listening sets per abuse category (reputation lists listen to all), so
  // each event only touches the lists that could ingest it.
  std::vector<std::vector<std::size_t>> listeners(inet::kAbuseCategoryCount);
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    for (int c = 0; c < inet::kAbuseCategoryCount; ++c) {
      if (category_matches(catalogue[i].category,
                           static_cast<inet::AbuseCategory>(c))) {
        listeners[static_cast<std::size_t>(c)].push_back(i);
      }
    }
  }

  std::vector<LiveMap> live(catalogue.size());

  // Snapshot days: every whole day inside each period.
  std::vector<std::int64_t> snapshot_days;
  for (const net::TimeWindow& period : config.periods) {
    for (std::int64_t day = period.begin.day(); day < period.end.day(); ++day) {
      snapshot_days.push_back(day);
    }
  }
  std::sort(snapshot_days.begin(), snapshot_days.end());
  std::size_t next_snapshot = 0;

  // Ingest a corrupted dump: the maintainer published *something*, but not
  // what the live set says. Mostly-garbage dumps are quarantined outright
  // (treated like a missed day, so presence bridging can ride over them);
  // lightly damaged dumps are salvaged line by line.
  auto ingest_corrupted = [&](std::size_t i, std::int64_t day,
                              const LiveMap& entries) {
    FeedHealth& health = result.stats.per_list[i];
    std::vector<net::Ipv4Address> addresses;
    addresses.reserve(entries.size());
    for (const auto& [address, expiry] : entries) addresses.push_back(address);
    std::sort(addresses.begin(), addresses.end());  // stable render order
    std::string text;
    for (const net::Ipv4Address address : addresses) {
      text += address.to_string();
      text += '\n';
    }
    text = faults->corrupt_feed_text(std::move(text), i, day);
    const ParsedList parsed = parse_list_text(text);
    health.lines_skipped += parsed.skipped_lines;
    result.stats.feed_lines_skipped += parsed.skipped_lines;
    // Quarantine rule: more than 10% of the live set's lines unparseable
    // means the dump as a whole cannot be trusted.
    if (parsed.skipped_lines * 10 > entries.size()) {
      ++health.days_quarantined;
      ++result.stats.feeds_quarantined;
      return;
    }
    for (const net::Ipv4Address address : parsed.addresses) {
      result.store.record(catalogue[i].id, address, day);
    }
    result.store.mark_observed(catalogue[i].id, day);
    ++health.days_salvaged;
    ++result.stats.feeds_salvaged;
    // Corruption never adds lines, so parsed entries <= live entries and the
    // difference is exactly what the damage cost us.
    const std::uint64_t discarded = entries.size() - parsed.addresses.size();
    health.entries_discarded += discarded;
    result.stats.entries_discarded += discarded;
  };

  auto take_snapshot = [&](std::int64_t day) {
    const std::int64_t moment = day * 86400;  // snapshot at 00:00
    for (std::size_t i = 0; i < catalogue.size(); ++i) {
      auto& entries = live[i];
      // Expiry runs on every path: list state evolves whether or not the
      // dump reaches us that day.
      for (auto it = entries.begin(); it != entries.end();) {
        it = it->second <= moment ? entries.erase(it) : std::next(it);
      }
      if (faults != nullptr && faults->feed_snapshot_missing(i, day)) {
        ++result.stats.per_list[i].days_missed;
        ++result.stats.snapshots_missed;
        continue;
      }
      if (faults != nullptr && faults->feed_corrupted(i, day)) {
        ingest_corrupted(i, day, entries);
        continue;
      }
      for (const auto& [address, expiry] : entries) {
        result.store.record(catalogue[i].id, address, day);
      }
      result.store.mark_observed(catalogue[i].id, day);
      ++result.stats.per_list[i].days_recorded;
    }
    ++result.stats.snapshots_taken;
  };

  for (const inet::AbuseEvent& event : events) {
    // Take any snapshots due before this event.
    while (next_snapshot < snapshot_days.size() &&
           snapshot_days[next_snapshot] * 86400 <= event.time_seconds) {
      take_snapshot(snapshot_days[next_snapshot++]);
    }
    ++result.stats.events_seen;
    const auto& interested =
        listeners[static_cast<std::size_t>(event.category)];
    for (const std::size_t i : interested) {
      const BlocklistInfo& info = catalogue[i];
      const auto existing = live[i].find(event.source);
      if (existing != live[i].end() &&
          existing->second > event.time_seconds) {
        // Already listed: the maintainer is watching this address, so the
        // event extends the listing with the (much higher) re-observation
        // rate.
        if (rng.bernoulli(config.reobservation_extend_rate)) {
          const std::int64_t retention = draw_retention(rng, config, info);
          existing->second =
              std::max(existing->second, event.time_seconds + retention);
        }
        continue;
      }
      if (!rng.bernoulli(info.pickup_rate)) continue;
      ++result.stats.events_picked_up;
      live[i][event.source] =
          event.time_seconds + draw_retention(rng, config, info);
    }
  }
  // Snapshots after the last event.
  while (next_snapshot < snapshot_days.size()) {
    take_snapshot(snapshot_days[next_snapshot++]);
  }
  return result;
}

}  // namespace reuse::blocklist
