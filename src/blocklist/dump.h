// Daily-dump import/export for the snapshot store.
//
// The paper's dataset is a directory of daily blocklist downloads: one text
// file per (list, day). These helpers write a SnapshotStore out in that
// layout and rebuild one from it, so the analysis pipeline can run on real
// collected dumps as well as on the simulator's output.
//
// Layout:  <dir>/<day>/<list-name>.txt   (day = integer day index)
#pragma once

#include <filesystem>
#include <map>
#include <span>
#include <string>

#include "blocklist/store.h"
#include "blocklist/types.h"

namespace reuse::blocklist {

struct DumpStats {
  std::size_t files = 0;
  std::size_t entries = 0;
  std::size_t skipped_lines = 0;  ///< malformed lines on import
  /// Import-time skip counts per list, so one rotting feed stands out
  /// instead of drowning in the aggregate (ordered: deterministic output).
  std::map<ListId, std::size_t> skipped_by_list;
};

/// Writes one file per (list, day) with the addresses present that day.
/// Only days with at least one entry produce a file. Returns nullopt on I/O
/// failure.
[[nodiscard]] std::optional<DumpStats> write_daily_dumps(
    const SnapshotStore& store, std::span<const BlocklistInfo> catalogue,
    const std::filesystem::path& directory);

/// Rebuilds a store from a dump directory; list names are resolved through
/// the catalogue (files for unknown lists are skipped and counted).
[[nodiscard]] std::optional<DumpStats> read_daily_dumps(
    const std::filesystem::path& directory,
    std::span<const BlocklistInfo> catalogue, SnapshotStore& store);

}  // namespace reuse::blocklist
