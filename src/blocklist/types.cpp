#include "blocklist/types.h"

namespace reuse::blocklist {

std::string_view to_string(ListCategory category) {
  switch (category) {
    case ListCategory::kSpam: return "spam";
    case ListCategory::kBruteforce: return "bruteforce";
    case ListCategory::kMalware: return "malware";
    case ListCategory::kDdos: return "ddos";
    case ListCategory::kScan: return "scan";
    case ListCategory::kReputation: return "reputation";
  }
  return "?";
}

bool category_matches(ListCategory category, inet::AbuseCategory abuse) {
  switch (category) {
    case ListCategory::kReputation:
      return true;
    case ListCategory::kSpam:
      return abuse == inet::AbuseCategory::kSpam;
    case ListCategory::kBruteforce:
      return abuse == inet::AbuseCategory::kBruteforce;
    case ListCategory::kMalware:
      return abuse == inet::AbuseCategory::kMalware;
    case ListCategory::kDdos:
      return abuse == inet::AbuseCategory::kDdos;
    case ListCategory::kScan:
      return abuse == inet::AbuseCategory::kScan;
  }
  return false;
}

}  // namespace reuse::blocklist
