#include "blocklist/store.h"

#include <algorithm>
#include <tuple>

namespace reuse::blocklist {

namespace {

using Interval = net::IntervalSet::Interval;

/// Appends [begin, end) to `runs`, coalescing with the previous run when
/// they touch or overlap — but never across `base`, the index where the
/// current address's runs start. Input must arrive begin-sorted.
void append_run(std::vector<Interval>* runs, std::size_t base,
                std::int64_t begin, std::int64_t end) {
  if (runs->size() > base && runs->back().end >= begin) {
    runs->back().end = std::max(runs->back().end, end);
  } else {
    runs->push_back(Interval{begin, end});
  }
}

}  // namespace

void SnapshotStore::record(ListId list, net::Ipv4Address address,
                           std::int64_t day) {
  record_span(list, address, day, day + 1);
}

void SnapshotStore::record_span(ListId list, net::Ipv4Address address,
                                std::int64_t begin, std::int64_t end) {
  if (begin >= end) return;
  pending_.push_back(PendingListing{list, address.value(), begin, end});
  if (pending_.size() >= fold_threshold()) fold();
}

std::size_t SnapshotStore::fold_threshold() const {
  // Geometric: small stores fold in 64Ki batches; once the folded state
  // dominates, the pending buffer may grow to 1/8 of it before the next
  // O(folded) merge — bounded memory overhead, amortized-linear fold cost.
  return std::max<std::size_t>(std::size_t{1} << 16, listing_count_ / 8);
}

void SnapshotStore::merge_column(ListColumn* column,
                                 const PendingListing* first,
                                 const PendingListing* last) {
  const std::size_t incoming = static_cast<std::size_t>(last - first);
  ListColumn merged;
  merged.addrs.reserve(column->addrs.size() + incoming);
  merged.run_offsets.reserve(column->addrs.size() + incoming + 1);
  merged.runs.reserve(column->runs.size() + incoming);

  std::size_t i = 0;  // old address rank
  const PendingListing* p = first;
  while (i < column->addrs.size() || p != last) {
    const bool take_old =
        i < column->addrs.size() && (p == last || column->addrs[i] <= p->addr);
    const bool take_new =
        p != last && (i >= column->addrs.size() || p->addr <= column->addrs[i]);
    const std::uint32_t addr = take_old ? column->addrs[i] : p->addr;
    const std::size_t base = merged.runs.size();
    merged.run_offsets.push_back(static_cast<std::uint32_t>(base));
    merged.addrs.push_back(addr);

    const PendingListing* pend = p;
    if (take_new) {
      while (pend != last && pend->addr == addr) ++pend;
    }
    if (take_old && !take_new) {
      merged.runs.insert(merged.runs.end(),
                         column->runs.begin() + column->run_offsets[i],
                         column->runs.begin() + column->run_offsets[i + 1]);
      ++i;
    } else if (take_new && !take_old) {
      for (const PendingListing* q = p; q != pend; ++q) {
        append_run(&merged.runs, base, q->begin, q->end);
      }
      p = pend;
    } else {
      // Both sides hold this address: merge the two begin-sorted run lists,
      // coalescing as they interleave.
      auto ob = column->runs.begin() + column->run_offsets[i];
      const auto oe = column->runs.begin() + column->run_offsets[i + 1];
      const PendingListing* q = p;
      while (ob != oe || q != pend) {
        if (ob != oe && (q == pend || ob->begin <= q->begin)) {
          append_run(&merged.runs, base, ob->begin, ob->end);
          ++ob;
        } else {
          append_run(&merged.runs, base, q->begin, q->end);
          ++q;
        }
      }
      ++i;
      p = pend;
    }
  }
  merged.run_offsets.push_back(static_cast<std::uint32_t>(merged.runs.size()));
  *column = std::move(merged);
}

void SnapshotStore::fold() const {
  if (pending_.empty()) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingListing& a, const PendingListing& b) {
              return std::tie(a.list, a.addr, a.begin, a.end) <
                     std::tie(b.list, b.addr, b.begin, b.end);
            });
  std::size_t g = 0;
  while (g < pending_.size()) {
    const ListId list = pending_[g].list;
    std::size_t h = g;
    while (h < pending_.size() && pending_[h].list == list) ++h;
    ListColumn& column = columns_[list];
    const std::size_t before = column.addrs.size();
    merge_column(&column, pending_.data() + g, pending_.data() + h);
    listing_count_ += column.addrs.size() - before;
    g = h;
  }

  // Fold the address universe: new addresses merge into the sorted vector
  // (and the /24 bitmap, if a point query already forced it into being).
  std::vector<net::Ipv4Address> fresh;
  fresh.reserve(pending_.size());
  for (const PendingListing& listing : pending_) {
    fresh.emplace_back(listing.addr);
  }
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::vector<net::Ipv4Address> added;
  for (const net::Ipv4Address address : fresh) {
    if (!std::binary_search(all_addresses_.begin(), all_addresses_.end(),
                            address)) {
      added.push_back(address);
    }
  }
  if (!added.empty()) {
    const std::size_t old_size = all_addresses_.size();
    all_addresses_.insert(all_addresses_.end(), added.begin(), added.end());
    std::inplace_merge(all_addresses_.begin(),
                       all_addresses_.begin() + static_cast<std::ptrdiff_t>(old_size),
                       all_addresses_.end());
    if (!slash24_bits_.empty()) {
      for (const net::Ipv4Address address : added) {
        const std::uint32_t key = address.value() >> 8;
        slash24_bits_[key >> 6] |= std::uint64_t{1} << (key & 63);
      }
    }
  }
  pending_.clear();
}

void SnapshotStore::ensure_bitmap() const {
  if (!slash24_bits_.empty()) return;
  slash24_bits_.assign(std::size_t{1} << (24 - 6), 0);
  for (const net::Ipv4Address address : all_addresses_) {
    const std::uint32_t key = address.value() >> 8;
    slash24_bits_[key >> 6] |= std::uint64_t{1} << (key & 63);
  }
}

bool SnapshotStore::bitmap_may_contain(net::Ipv4Address address) const {
  const std::uint32_t key = address.value() >> 8;
  return (slash24_bits_[key >> 6] >> (key & 63)) & 1;
}

const SnapshotStore::ListColumn* SnapshotStore::column_of(ListId list) const {
  const auto it = columns_.find(list);
  return it == columns_.end() ? nullptr : &it->second;
}

void SnapshotStore::materialize(const ListColumn& column, std::size_t index,
                                net::IntervalSet* out) const {
  const std::uint32_t first = column.run_offsets[index];
  const std::uint32_t last = column.run_offsets[index + 1];
  out->assign_sorted(column.runs.data() + first, column.runs.data() + last);
}

net::IntervalSet SnapshotStore::presence(ListId list,
                                         net::Ipv4Address address) const {
  net::IntervalSet out;
  fold();
  ensure_bitmap();
  if (!bitmap_may_contain(address)) return out;
  const ListColumn* column = column_of(list);
  if (column == nullptr) return out;
  const auto it = std::lower_bound(column->addrs.begin(), column->addrs.end(),
                                   address.value());
  if (it == column->addrs.end() || *it != address.value()) return out;
  materialize(*column,
              static_cast<std::size_t>(it - column->addrs.begin()), &out);
  return out;
}

bool SnapshotStore::has_listing(ListId list, net::Ipv4Address address) const {
  fold();
  ensure_bitmap();
  if (!bitmap_may_contain(address)) return false;
  const ListColumn* column = column_of(list);
  if (column == nullptr) return false;
  return std::binary_search(column->addrs.begin(), column->addrs.end(),
                            address.value());
}

void SnapshotStore::mark_observed(ListId list, std::int64_t day) {
  mark_observed_span(list, day, day + 1);
}

void SnapshotStore::mark_observed_span(ListId list, std::int64_t begin,
                                       std::int64_t end) {
  if (begin >= end) return;
  observed_[list].insert(begin, end);
}

const net::IntervalSet* SnapshotStore::observed_days(ListId list) const {
  const auto it = observed_.find(list);
  return it == observed_.end() ? nullptr : &it->second;
}

net::IntervalSet SnapshotStore::bridged_presence(
    ListId list, net::Ipv4Address address) const {
  net::IntervalSet bridged;
  const net::IntervalSet raw = presence(list, address);
  if (raw.empty()) return bridged;
  const net::IntervalSet* observed = observed_days(list);
  const auto& intervals = raw.intervals();
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    bridged.insert(intervals[i].begin, intervals[i].end);
    if (i + 1 == intervals.size() || observed == nullptr) continue;
    // The listing vanished over [end, next.begin). If the feed was never
    // snapshotted on any of those days, the absence was unobservable —
    // fill the hole so the two runs merge.
    if (observed->overlap(intervals[i].end, intervals[i + 1].begin) == 0) {
      bridged.insert(intervals[i].end, intervals[i + 1].begin);
    }
  }
  return bridged;
}

std::size_t SnapshotStore::listing_count() const {
  fold();
  return listing_count_;
}

const std::vector<net::Ipv4Address>& SnapshotStore::sorted_addresses() const {
  fold();
  return all_addresses_;
}

bool SnapshotStore::contains_address(net::Ipv4Address address) const {
  fold();
  ensure_bitmap();
  if (!bitmap_may_contain(address)) return false;
  return std::binary_search(all_addresses_.begin(), all_addresses_.end(),
                            address);
}

std::vector<net::Ipv4Address> SnapshotStore::addresses_of(ListId list) const {
  fold();
  const ListColumn* column = column_of(list);
  if (column == nullptr) return {};
  std::vector<net::Ipv4Address> out;
  out.reserve(column->addrs.size());
  for (const std::uint32_t value : column->addrs) {
    out.emplace_back(value);
  }
  return out;
}

std::size_t SnapshotStore::address_count_of(ListId list) const {
  fold();
  const ListColumn* column = column_of(list);
  return column == nullptr ? 0 : column->addrs.size();
}

std::vector<ListId> SnapshotStore::active_lists() const {
  fold();
  std::vector<ListId> out;
  out.reserve(columns_.size());
  for (const auto& [list, column] : columns_) {
    if (!column.addrs.empty()) out.push_back(list);
  }
  return out;
}

net::PrefixSet SnapshotStore::blocklisted_slash24s() const {
  fold();
  net::PrefixSet prefixes;
  std::uint32_t last_key = 0;
  bool have_last = false;
  for (const net::Ipv4Address address : all_addresses_) {
    const std::uint32_t key = address.value() >> 8;
    if (have_last && key == last_key) continue;
    prefixes.insert(net::Ipv4Prefix::slash24_of(address));
    last_key = key;
    have_last = true;
  }
  return prefixes;
}

std::size_t SnapshotStore::memory_bytes() const {
  std::size_t bytes = slash24_bits_.size() * sizeof(std::uint64_t) +
                      all_addresses_.size() * sizeof(net::Ipv4Address) +
                      pending_.size() * sizeof(PendingListing);
  for (const auto& [list, column] : columns_) {
    bytes += column.addrs.size() * sizeof(std::uint32_t) +
             column.run_offsets.size() * sizeof(std::uint32_t) +
             column.runs.size() * sizeof(net::IntervalSet::Interval);
  }
  return bytes;
}

}  // namespace reuse::blocklist
