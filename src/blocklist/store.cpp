#include "blocklist/store.h"

#include <algorithm>

namespace reuse::blocklist {

void SnapshotStore::record(ListId list, net::Ipv4Address address,
                           std::int64_t day) {
  record_span(list, address, day, day + 1);
}

void SnapshotStore::record_span(ListId list, net::Ipv4Address address,
                                std::int64_t begin, std::int64_t end) {
  if (begin >= end) return;
  presence_[make_key(list, address)].insert(begin, end);
  per_list_[list].insert(address);
  all_addresses_.insert(address);
}

const net::IntervalSet* SnapshotStore::presence(ListId list,
                                                net::Ipv4Address address) const {
  const auto it = presence_.find(make_key(list, address));
  return it == presence_.end() ? nullptr : &it->second;
}

void SnapshotStore::mark_observed(ListId list, std::int64_t day) {
  mark_observed_span(list, day, day + 1);
}

void SnapshotStore::mark_observed_span(ListId list, std::int64_t begin,
                                       std::int64_t end) {
  if (begin >= end) return;
  observed_[list].insert(begin, end);
}

const net::IntervalSet* SnapshotStore::observed_days(ListId list) const {
  const auto it = observed_.find(list);
  return it == observed_.end() ? nullptr : &it->second;
}

net::IntervalSet SnapshotStore::bridged_presence(
    ListId list, net::Ipv4Address address) const {
  net::IntervalSet bridged;
  const net::IntervalSet* raw = presence(list, address);
  if (raw == nullptr) return bridged;
  const net::IntervalSet* observed = observed_days(list);
  const auto& intervals = raw->intervals();
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    bridged.insert(intervals[i].begin, intervals[i].end);
    if (i + 1 == intervals.size() || observed == nullptr) continue;
    // The listing vanished over [end, next.begin). If the feed was never
    // snapshotted on any of those days, the absence was unobservable —
    // fill the hole so the two runs merge.
    if (observed->overlap(intervals[i].end, intervals[i + 1].begin) == 0) {
      bridged.insert(intervals[i].end, intervals[i + 1].begin);
    }
  }
  return bridged;
}

std::vector<net::Ipv4Address> SnapshotStore::sorted_addresses() const {
  std::vector<net::Ipv4Address> out(all_addresses_.begin(),
                                    all_addresses_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Ipv4Address> SnapshotStore::addresses_of(ListId list) const {
  const auto it = per_list_.find(list);
  if (it == per_list_.end()) return {};
  std::vector<net::Ipv4Address> out(it->second.begin(), it->second.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SnapshotStore::address_count_of(ListId list) const {
  const auto it = per_list_.find(list);
  return it == per_list_.end() ? 0 : it->second.size();
}

std::vector<ListId> SnapshotStore::active_lists() const {
  std::vector<ListId> out;
  out.reserve(per_list_.size());
  for (const auto& [list, addresses] : per_list_) {
    if (!addresses.empty()) out.push_back(list);
  }
  std::sort(out.begin(), out.end());
  return out;
}

net::PrefixSet SnapshotStore::blocklisted_slash24s() const {
  net::PrefixSet prefixes;
  for (const net::Ipv4Address address : all_addresses_) {
    prefixes.insert(net::Ipv4Prefix::slash24_of(address));
  }
  return prefixes;
}

}  // namespace reuse::blocklist
