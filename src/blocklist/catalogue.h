// The blocklist catalogue — Table 2 of the paper (BLAG dataset).
//
// The paper monitors 151 public IPv4 blocklists from 41 maintainers. This
// module instantiates one BlocklistInfo per list with per-maintainer
// category assignments and size/retention characteristics. (The published
// Table 2 rows actually sum to 149; we encode the rows as printed and note
// the discrepancy in EXPERIMENTS.md.)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "blocklist/types.h"

namespace reuse::blocklist {

/// One row of Table 2.
struct MaintainerRow {
  std::string_view maintainer;
  int list_count;
  ListCategory primary_category;
  /// Relative sensor coverage: scales each list's pickup rate. The paper's
  /// top-10 lists contribute 53–70% of all listings, so a few maintainers
  /// (Stopforumspam, Nixspam, Bad IPs, Alienvault) are far larger.
  double size_factor;
  bool used_by_operators;  ///< the (*) marker in Table 2
};

/// The 41 maintainers of Table 2, row order as published.
[[nodiscard]] const std::vector<MaintainerRow>& table2_rows();

/// Materialises the full list catalogue. `seed` drives per-list jitter of
/// pickup and removal parameters around the maintainer's characteristics.
[[nodiscard]] std::vector<BlocklistInfo> build_catalogue(std::uint64_t seed);

}  // namespace reuse::blocklist
