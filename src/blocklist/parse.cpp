#include "blocklist/parse.h"

#include <ostream>

namespace reuse::blocklist {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' ||
                           text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

ParsedList parse_list_text(std::string_view text) {
  ParsedList result;
  while (!text.empty()) {
    const std::size_t newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text = newline == std::string_view::npos ? std::string_view{}
                                             : text.substr(newline + 1);
    // Strip inline comments, then whitespace.
    if (const std::size_t hash = line.find_first_of("#;");
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (const auto prefix = net::Ipv4Prefix::parse(line)) {
      if (prefix->length() == 32) {
        result.addresses.push_back(prefix->network());
      } else {
        result.prefixes.push_back(*prefix);
      }
      continue;
    }
    ++result.skipped_lines;
  }
  return result;
}

void write_list(std::ostream& os, std::string_view title,
                const std::vector<net::Ipv4Address>& addresses) {
  os << "# " << title << "\n# entries: " << addresses.size() << '\n';
  for (const net::Ipv4Address address : addresses) {
    os << address.to_string() << '\n';
  }
}

}  // namespace reuse::blocklist
