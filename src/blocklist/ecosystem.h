// Blocklist ecosystem simulation.
//
// Drives the 151-list catalogue over the abuse-event stream: each list
// samples matching events at its pickup rate, holds entries until a
// retention timer past the last observation expires, and is snapshotted
// daily inside the measurement periods — mirroring the paper's collection of
// daily blocklist dumps over 39 + 44 days.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blocklist/store.h"
#include "blocklist/types.h"
#include "internet/types.h"
#include "netbase/sim_time.h"

namespace reuse::blocklist {

struct EcosystemConfig {
  std::uint64_t seed = 11;
  /// Measurement periods (the paper: 39 days, then 44 days after a gap).
  /// Snapshots are taken at every whole day inside these windows; list state
  /// keeps evolving in the gap, exactly like the real collection.
  std::vector<net::TimeWindow> periods;
  /// Retention is a two-component mixture: many feeds auto-expire entries
  /// within a day or two (fail2ban-style reporting windows), while sticky
  /// entries ride the list's category retention. This reproduces Figure 7's
  /// heavy short-duration mass alongside multi-week tails.
  double short_retention_fraction = 0.55;
  double short_retention_mean_days = 0.8;
  /// Multiplier on the list's removal_mean_days for the sticky component
  /// (keeps overall means stable given the short component).
  double long_retention_factor = 2.2;
  /// Probability that a matching abuse event from an *already listed*
  /// address extends its listing. Monitoring a known-bad address is easier
  /// than discovering a new one, so this exceeds the pickup rate by far —
  /// it is what keeps persistently abusive (static) addresses listed long
  /// while rotated-away (dynamic) addresses fall off quickly (Figure 7).
  double reobservation_extend_rate = 0.08;
};

/// The paper's two collection periods, in simulation time: days 0–39 and
/// days 60–104 (a 21-day gap standing in for 10 Sep 2019 → 29 Mar 2020).
[[nodiscard]] std::vector<net::TimeWindow> paper_periods();

struct EcosystemStats {
  std::uint64_t events_seen = 0;
  std::uint64_t events_picked_up = 0;
  std::uint64_t snapshots_taken = 0;
};

struct EcosystemResult {
  SnapshotStore store;
  EcosystemStats stats;
};

/// Runs the ecosystem over `events` (must be time-sorted). Events before the
/// first period warm the lists up; events after the last snapshot are
/// ignored.
[[nodiscard]] EcosystemResult simulate_ecosystem(
    std::span<const BlocklistInfo> catalogue,
    std::span<const inet::AbuseEvent> events, const EcosystemConfig& config);

}  // namespace reuse::blocklist
