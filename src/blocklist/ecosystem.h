// Blocklist ecosystem simulation.
//
// Drives the 151-list catalogue over the abuse-event stream: each list
// samples matching events at its pickup rate, holds entries until a
// retention timer past the last observation expires, and is snapshotted
// daily inside the measurement periods — mirroring the paper's collection of
// daily blocklist dumps over 39 + 44 days.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "blocklist/store.h"
#include "blocklist/types.h"
#include "internet/types.h"
#include "netbase/sim_time.h"
#include "simnet/faults.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::blocklist {

struct EcosystemConfig {
  std::uint64_t seed = 11;
  /// Measurement periods (the paper: 39 days, then 44 days after a gap).
  /// Snapshots are taken at every whole day inside these windows; list state
  /// keeps evolving in the gap, exactly like the real collection.
  std::vector<net::TimeWindow> periods;
  /// Retention is a two-component mixture: many feeds auto-expire entries
  /// within a day or two (fail2ban-style reporting windows), while sticky
  /// entries ride the list's category retention. This reproduces Figure 7's
  /// heavy short-duration mass alongside multi-week tails.
  double short_retention_fraction = 0.55;
  double short_retention_mean_days = 0.8;
  /// Multiplier on the list's removal_mean_days for the sticky component
  /// (keeps overall means stable given the short component).
  double long_retention_factor = 2.2;
  /// Probability that a matching abuse event from an *already listed*
  /// address extends its listing. Monitoring a known-bad address is easier
  /// than discovering a new one, so this exceeds the pickup rate by far —
  /// it is what keeps persistently abusive (static) addresses listed long
  /// while rotated-away (dynamic) addresses fall off quickly (Figure 7).
  double reobservation_extend_rate = 0.08;
};

/// The paper's two collection periods, in simulation time: days 0–39 and
/// days 60–104 (a 21-day gap standing in for 10 Sep 2019 → 29 Mar 2020).
[[nodiscard]] std::vector<net::TimeWindow> paper_periods();

/// Per-feed collection health over the whole run. On a fault-free run every
/// snapshot day lands in `days_recorded` and everything else stays zero. The
/// per-list invariant `days_recorded + days_missed + days_quarantined +
/// days_salvaged == snapshots_taken` holds exactly.
struct FeedHealth {
  ListId list = 0;
  std::int64_t days_recorded = 0;     ///< clean daily dumps
  std::int64_t days_missed = 0;       ///< feed outage: no dump at all
  std::int64_t days_quarantined = 0;  ///< dump too mangled to trust
  std::int64_t days_salvaged = 0;     ///< mangled dump, clean lines kept
  std::uint64_t lines_skipped = 0;    ///< unparseable lines across all days
  std::uint64_t entries_discarded = 0;  ///< live entries lost to corruption

  friend bool operator==(const FeedHealth&, const FeedHealth&) = default;
};

struct EcosystemStats {
  std::uint64_t events_seen = 0;
  std::uint64_t events_picked_up = 0;
  std::uint64_t snapshots_taken = 0;
  // Degradation accounting (zero on a fault-free run):
  std::uint64_t snapshots_missed = 0;    ///< (list, day) dumps suppressed
  std::uint64_t feeds_quarantined = 0;   ///< corrupted dumps rejected
  std::uint64_t feeds_salvaged = 0;      ///< corrupted dumps partially kept
  std::uint64_t entries_discarded = 0;   ///< live entries lost to corruption
  std::uint64_t feed_lines_skipped = 0;  ///< unparseable lines seen
  std::vector<FeedHealth> per_list;      ///< one entry per catalogue list
};

struct EcosystemResult {
  SnapshotStore store;
  EcosystemStats stats;
};

/// Resumable cursor of one feed at the end of a run: the mid-stream RNG
/// state, the live address -> expiry map (rendered as address-sorted pairs
/// so the serialized form is canonical), and the feed's pickup counter.
/// Together with the merged store and the per-list health (both already in
/// EcosystemResult) this is everything feed evolution reads across events —
/// restoring it and ingesting the next slice of the SAME abuse stream is
/// byte-identical to having run the longer stream in one piece.
struct FeedCarry {
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<std::pair<net::Ipv4Address, std::int64_t>> live;
  std::uint64_t events_picked_up = 0;
};

/// Per-feed carry for the whole ecosystem, in catalogue (feed-index) order.
/// The scenario cache persists this as part of its v6 payload.
struct EcosystemCarry {
  std::vector<FeedCarry> feeds;
};

/// Publishes the feeds_ metric family from finished ecosystem stats.
/// simulate_ecosystem calls it itself; the scenario-cache loader calls it
/// again when a hit restores the stats instead of re-simulating, so a
/// cached run's manifest still carries the ecosystem's real numbers.
void publish_feed_metrics(const EcosystemStats& stats);

/// Runs the ecosystem over `events` (must be time-sorted). Events before the
/// first period warm the lists up; events after the last snapshot are
/// ignored. An optional fault injector suppresses or corrupts individual
/// (list, day) dumps; nullptr (or an empty plan) leaves the run untouched.
///
/// Feeds are independent, so with a thread pool they evolve in parallel —
/// each on its own counter-derived RNG substream, merged back in feed-index
/// order. The result is byte-identical for any pool size (nullptr = serial).
[[nodiscard]] EcosystemResult simulate_ecosystem(
    std::span<const BlocklistInfo> catalogue,
    std::span<const inet::AbuseEvent> events, const EcosystemConfig& config,
    sim::FaultInjector* faults = nullptr, net::ThreadPool* pool = nullptr);

/// Chunked form of simulate_ecosystem: construct, ingest() the abuse stream
/// in disjoint time-ordered chunks, then finish() once. Feeding the whole
/// stream as a single chunk is exactly simulate_ecosystem — the scenario
/// instead feeds inet::stream_abuse slices, so peak memory holds one slice
/// of the stream instead of every event of the run (the difference between
/// flat and linear-in-days RSS at world scale; see DESIGN.md). Feeds still
/// evolve in parallel within each chunk on their per-feed RNG substreams,
/// and the products are byte-identical for every chunking and pool size.
class EcosystemSimulator {
 public:
  EcosystemSimulator(std::span<const BlocklistInfo> catalogue,
                     const EcosystemConfig& config,
                     sim::FaultInjector* faults = nullptr,
                     net::ThreadPool* pool = nullptr);
  EcosystemSimulator(EcosystemSimulator&&) noexcept;
  EcosystemSimulator& operator=(EcosystemSimulator&&) noexcept;
  ~EcosystemSimulator();

  /// Feeds the next chunk: every event must be no earlier than the events
  /// of previous chunks (stream_abuse's slices satisfy this by
  /// construction).
  void ingest(std::span<const inet::AbuseEvent> events);

  /// Flushes trailing snapshots, merges the per-feed fragments in index
  /// order, publishes the feeds_ metrics, and returns the result. Call at
  /// most once. When `carry` is non-null it receives each feed's
  /// end-of-run cursor (captured after the trailing snapshots), ready for
  /// resume_from() on a later simulator.
  [[nodiscard]] EcosystemResult finish(EcosystemCarry* carry = nullptr);

  /// Rewinds this (freshly constructed, nothing ingested) simulator to the
  /// end of a previous run: per-feed RNG/live/pickup cursors from `carry`,
  /// per-feed health from the previous run's `per_list` stats, and the
  /// snapshot cursor past the first `snapshots_taken` snapshot days —
  /// which must be a prefix of this simulator's own snapshot days (the
  /// extended periods append days, never reorder them). Subsequent
  /// ingest()/finish() then produce the *tail* of the longer run: a store
  /// holding only new-era recordings (fold it into the previous store) and
  /// stats whose per-feed counters continue the previous run's, with
  /// events_seen counting only the newly ingested events. Returns false
  /// (and leaves the simulator untouched) if the carry's shape does not
  /// match the catalogue or the snapshot prefix does not exist.
  [[nodiscard]] bool resume_from(const EcosystemCarry& carry,
                                 const EcosystemStats& previous,
                                 std::uint64_t snapshots_taken);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace reuse::blocklist
