// Presence store: which address was on which blocklist on which day.
//
// Everything Section 5 measures comes from this structure: listings (the
// (list, address) pairs), per-list reused-address counts, and the
// duration-in-blocklist distributions of Figure 7.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocklist/types.h"
#include "netbase/interval_set.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"

namespace reuse::blocklist {

class SnapshotStore {
 public:
  /// Marks `address` present on `list` for day index `day` (one day long).
  void record(ListId list, net::Ipv4Address address, std::int64_t day);

  /// Marks `address` present on `list` for every day in [begin, end) in one
  /// interval insertion — O(intervals), not O(days). The cache loader
  /// restores multi-week listings through this path; `record()` is the
  /// one-day special case. No-op when begin >= end.
  void record_span(ListId list, net::Ipv4Address address, std::int64_t begin,
                   std::int64_t end);

  /// Presence intervals (in day units) of one listing, or nullptr.
  [[nodiscard]] const net::IntervalSet* presence(ListId list,
                                                 net::Ipv4Address address) const;

  /// Records that `list` was actually snapshotted on `day` — the feed was
  /// fetched and parsed, whether or not it held entries. Days never marked
  /// are gaps: absence of a listing on them is "unknown", not "delisted".
  void mark_observed(ListId list, std::int64_t day);
  void mark_observed_span(ListId list, std::int64_t begin, std::int64_t end);

  /// Days on which `list` was snapshotted, or nullptr if never marked.
  [[nodiscard]] const net::IntervalSet* observed_days(ListId list) const;

  /// Presence of one listing with unobservable holes bridged: two presence
  /// intervals separated only by days the list was never snapshotted merge
  /// into one (the address may well have stayed listed through the outage;
  /// splitting the listing would fabricate a delist/relist cycle). A gap
  /// containing even one observed absence stays a gap. Lists with no
  /// observed-day record (stores built before gap tracking) pass through
  /// unchanged.
  [[nodiscard]] net::IntervalSet bridged_presence(ListId list,
                                                  net::Ipv4Address address) const;

  /// Number of distinct (list, address) pairs ever present.
  [[nodiscard]] std::size_t listing_count() const { return presence_.size(); }

  /// Distinct addresses across all lists.
  [[nodiscard]] const std::unordered_set<net::Ipv4Address>& addresses() const {
    return all_addresses_;
  }

  /// addresses() in ascending order — the export hook for consumers that
  /// need a canonical ordering (the serving-snapshot compiler, the
  /// reused-address list) without each re-sorting the unordered set.
  [[nodiscard]] std::vector<net::Ipv4Address> sorted_addresses() const;

  /// Distinct addresses ever present on one list.
  [[nodiscard]] std::vector<net::Ipv4Address> addresses_of(ListId list) const;
  [[nodiscard]] std::size_t address_count_of(ListId list) const;

  /// Lists that ever held at least one entry.
  [[nodiscard]] std::vector<ListId> active_lists() const;

  /// The covering /24s of every blocklisted address (crawler restriction and
  /// coverage analysis).
  [[nodiscard]] net::PrefixSet blocklisted_slash24s() const;

  /// Visits every listing: fn(ListId, Ipv4Address, const IntervalSet&).
  template <typename Fn>
  void for_each_listing(Fn&& fn) const {
    for (const auto& [key, intervals] : presence_) {
      fn(list_of(key), address_of(key), intervals);
    }
  }

  /// Visits every list's observed-day record: fn(ListId, const IntervalSet&).
  template <typename Fn>
  void for_each_observed(Fn&& fn) const {
    for (const auto& [list, days] : observed_) {
      fn(list, days);
    }
  }

 private:
  using Key = std::uint64_t;
  static constexpr Key make_key(ListId list, net::Ipv4Address address) {
    return (Key{list} << 32) | address.value();
  }
  static constexpr ListId list_of(Key key) {
    return static_cast<ListId>(key >> 32);
  }
  static constexpr net::Ipv4Address address_of(Key key) {
    return net::Ipv4Address(static_cast<std::uint32_t>(key));
  }

  std::unordered_map<Key, net::IntervalSet> presence_;
  std::unordered_map<ListId, std::unordered_set<net::Ipv4Address>> per_list_;
  std::unordered_map<ListId, net::IntervalSet> observed_;
  std::unordered_set<net::Ipv4Address> all_addresses_;
};

}  // namespace reuse::blocklist
