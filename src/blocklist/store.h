// Presence store: which address was on which blocklist on which day.
//
// Everything Section 5 measures comes from this structure: listings (the
// (list, address) pairs), per-list reused-address counts, and the
// duration-in-blocklist distributions of Figure 7.
//
// Layout (world-scale rebuild): instead of one heap-allocated IntervalSet
// per (list, address) pair in an unordered_map, listings live in per-list
// columns —
//
//   addrs        sorted unique u32 addresses of the list
//   run_offsets  size addrs+1, slicing the run column per address
//   runs         coalesced half-open day intervals, begin-sorted per address
//
// so a million listings cost ~24 bytes each in three flat arrays rather
// than a node + vector header each. Writes append to a small pending buffer
// that is *folded* into the columns by a sort + two-pointer merge whenever
// it crosses a geometric threshold: per-day recording of a stable listing
// coalesces into one run at fold time, which is what keeps peak RSS flat as
// simulated days accumulate (the streaming-evolution memory model,
// DESIGN.md). Point lookups first consult a /24 occupancy bitmap (2 MiB,
// built lazily on the first point query so short-lived per-feed fragment
// stores never pay for it) and then binary-search the owning column.
//
// The store is single-writer: mutation and the fold it triggers are not
// thread safe. Concurrent *reads* are safe once folded — every parallel
// consumer performs a serial read (which folds) before fanning out.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "blocklist/types.h"
#include "netbase/interval_set.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"

namespace reuse::blocklist {

class SnapshotStore {
 public:
  /// Marks `address` present on `list` for day index `day` (one day long).
  void record(ListId list, net::Ipv4Address address, std::int64_t day);

  /// Marks `address` present on `list` for every day in [begin, end) in one
  /// append — O(1) amortized, folded into compressed runs in batches. The
  /// cache loader restores multi-week listings through this path; `record()`
  /// is the one-day special case. No-op when begin >= end.
  void record_span(ListId list, net::Ipv4Address address, std::int64_t begin,
                   std::int64_t end);

  /// Presence intervals (in day units) of one listing, materialized from
  /// the compressed runs. Empty iff the pair was never recorded (a listing
  /// always covers at least one day).
  [[nodiscard]] net::IntervalSet presence(ListId list,
                                          net::Ipv4Address address) const;

  /// True iff (list, address) was ever recorded — the allocation-free form
  /// of !presence(...).empty().
  [[nodiscard]] bool has_listing(ListId list, net::Ipv4Address address) const;

  /// Records that `list` was actually snapshotted on `day` — the feed was
  /// fetched and parsed, whether or not it held entries. Days never marked
  /// are gaps: absence of a listing on them is "unknown", not "delisted".
  void mark_observed(ListId list, std::int64_t day);
  void mark_observed_span(ListId list, std::int64_t begin, std::int64_t end);

  /// Days on which `list` was snapshotted, or nullptr if never marked.
  [[nodiscard]] const net::IntervalSet* observed_days(ListId list) const;

  /// Presence of one listing with unobservable holes bridged: two presence
  /// intervals separated only by days the list was never snapshotted merge
  /// into one (the address may well have stayed listed through the outage;
  /// splitting the listing would fabricate a delist/relist cycle). A gap
  /// containing even one observed absence stays a gap. Lists with no
  /// observed-day record (stores built before gap tracking) pass through
  /// unchanged.
  [[nodiscard]] net::IntervalSet bridged_presence(ListId list,
                                                  net::Ipv4Address address) const;

  /// Number of distinct (list, address) pairs ever present.
  [[nodiscard]] std::size_t listing_count() const;

  /// Distinct addresses across all lists, ascending — the canonical
  /// ordering every consumer (serving-snapshot compiler, reused-address
  /// list, coverage analysis) iterates.
  [[nodiscard]] const std::vector<net::Ipv4Address>& sorted_addresses() const;

  /// True iff `address` was ever present on any list. /24-bitmap
  /// fast-reject, then a column binary search.
  [[nodiscard]] bool contains_address(net::Ipv4Address address) const;

  /// Distinct addresses across all lists.
  [[nodiscard]] std::size_t address_count() const {
    return sorted_addresses().size();
  }

  /// Distinct addresses ever present on one list, ascending.
  [[nodiscard]] std::vector<net::Ipv4Address> addresses_of(ListId list) const;
  [[nodiscard]] std::size_t address_count_of(ListId list) const;

  /// Lists that ever held at least one entry, ascending.
  [[nodiscard]] std::vector<ListId> active_lists() const;

  /// The covering /24s of every blocklisted address (crawler restriction and
  /// coverage analysis).
  [[nodiscard]] net::PrefixSet blocklisted_slash24s() const;

  /// Visits every listing in ascending (list, address) order:
  /// fn(ListId, Ipv4Address, const IntervalSet&). The IntervalSet is a
  /// transient materialized from the compressed runs — valid only for the
  /// duration of the callback; do not retain a pointer to it.
  template <typename Fn>
  void for_each_listing(Fn&& fn) const {
    fold();
    net::IntervalSet scratch;
    for (const auto& [list, column] : columns_) {
      for (std::size_t i = 0; i < column.addrs.size(); ++i) {
        materialize(column, i, &scratch);
        fn(list, net::Ipv4Address(column.addrs[i]), scratch);
      }
    }
  }

  /// Visits every list's observed-day record in ascending list order:
  /// fn(ListId, const IntervalSet&).
  template <typename Fn>
  void for_each_observed(Fn&& fn) const {
    for (const auto& [list, days] : observed_) {
      fn(list, days);
    }
  }

  /// Bytes of heap held by the folded columns, pending buffer, address
  /// universe and /24 bitmap (the occupancy gauge input).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  /// One list's listings: SoA columns, index-aligned on the address rank.
  struct ListColumn {
    std::vector<std::uint32_t> addrs;        ///< sorted unique
    std::vector<std::uint32_t> run_offsets;  ///< size addrs+1, into runs
    std::vector<net::IntervalSet::Interval> runs;  ///< coalesced, per address
  };
  struct PendingListing {
    ListId list = 0;
    std::uint32_t addr = 0;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  /// Folds pending_ into the columns. Cheap no-op when nothing is pending;
  /// const because every read accessor triggers it (members are mutable).
  void fold() const;
  [[nodiscard]] std::size_t fold_threshold() const;
  static void merge_column(ListColumn* column,
                           const PendingListing* first,
                           const PendingListing* last);
  void materialize(const ListColumn& column, std::size_t index,
                   net::IntervalSet* out) const;
  [[nodiscard]] const ListColumn* column_of(ListId list) const;
  void ensure_bitmap() const;
  [[nodiscard]] bool bitmap_may_contain(net::Ipv4Address address) const;

  mutable std::map<ListId, ListColumn> columns_;
  mutable std::vector<PendingListing> pending_;
  mutable std::vector<net::Ipv4Address> all_addresses_;  ///< sorted unique
  mutable std::size_t listing_count_ = 0;  ///< folded (list, addr) pairs
  /// One bit per /24 with any listing; empty until the first point query.
  mutable std::vector<std::uint64_t> slash24_bits_;
  std::map<ListId, net::IntervalSet> observed_;
};

}  // namespace reuse::blocklist
