// Blocklist model types.
//
// A blocklist is a feed of IPv4 addresses associated with some class of
// malicious activity. Lists differ in what they monitor (category), how much
// of the world they see (pickup rate), and how quickly they expire entries —
// the parameters that shape every distribution in Section 5 of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "internet/types.h"

namespace reuse::blocklist {

using ListId = std::uint32_t;

/// What a list monitors; reputation lists aggregate everything.
enum class ListCategory : std::uint8_t {
  kSpam,
  kBruteforce,
  kMalware,
  kDdos,
  kScan,
  kReputation,
};
inline constexpr int kListCategoryCount = 6;

[[nodiscard]] std::string_view to_string(ListCategory category);

/// True if a list of `category` would ingest an abuse event of `abuse`.
[[nodiscard]] bool category_matches(ListCategory category,
                                    inet::AbuseCategory abuse);

struct BlocklistInfo {
  ListId id = 0;
  std::string name;        ///< e.g. "badips-12"
  std::string maintainer;  ///< e.g. "Bad IPs"
  ListCategory category = ListCategory::kReputation;
  /// Probability the list observes (and therefore lists) any given abuse
  /// event matching its category — feeds differ hugely in sensor coverage.
  double pickup_rate = 0.05;
  /// Mean days an entry stays listed after its last observation.
  double removal_mean_days = 5.0;
  /// Marked (*) in Table 2: named by surveyed operators.
  bool used_by_operators = false;
};

}  // namespace reuse::blocklist
