// Cai & Heidemann-style ICMP census baseline (the paper's §5 comparator).
//
// Pings a sample of the assigned address space on a fixed schedule and
// derives per-address availability (A), volatility (V) and median up-time,
// then aggregates per /24 block and classifies blocks as dynamically
// allocated with an ad-hoc threshold rule — reproducing both the baseline's
// broader coverage (no probe deployment needed) and its documented failure
// modes (middlebox replies make CGN/home-NAT space look static; ICMP
// filtering blinds it entirely).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "internet/ping_model.h"
#include "internet/world.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"
#include "netbase/sim_time.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::census {

struct CensusConfig {
  std::uint64_t seed = 13;
  /// Fraction of the world's assigned /24s surveyed (Cai et al. survey ~1%
  /// of all IPv4; we sample a larger share of our smaller world).
  double block_sample_fraction = 0.25;
  /// Probe cadence per address (Cai: every ~11 minutes; coarser here, the
  /// metrics only need enough samples to see diurnal/lease cycles).
  net::Duration probe_interval = net::Duration::hours(2);
  net::TimeWindow window{net::SimTime(0), net::SimTime(14 * 86400)};
};

/// Per-address observation summary.
struct AddressMetrics {
  std::uint32_t probes = 0;
  std::uint32_t responses = 0;
  std::uint32_t transitions = 0;  ///< up<->down flips between probes
  std::int64_t median_uptime_seconds = 0;

  [[nodiscard]] double availability() const {
    return probes == 0 ? 0.0
                       : static_cast<double>(responses) /
                             static_cast<double>(probes);
  }
  [[nodiscard]] double volatility() const {
    return probes < 2 ? 0.0
                      : static_cast<double>(transitions) /
                            static_cast<double>(probes - 1);
  }
};

/// Per-/24 aggregate over its responsive addresses.
struct BlockMetrics {
  net::Ipv4Prefix block;
  std::uint32_t responsive_addresses = 0;  ///< answered at least once
  double mean_availability = 0.0;
  double mean_volatility = 0.0;
  std::int64_t median_uptime_seconds = 0;
};

/// The ad-hoc dynamic-block rule, instantiated for this world's ping model:
/// a dynamic pool shows mid-range availability (addresses idle between
/// leases), short median up-times (a lease), and *slow* state flips —
/// unlike diurnal residential hosts, which flip up/down twice a day and
/// produce high volatility at survey cadence. Stable server/NAT space is
/// excluded by the availability ceiling. Like the original, the rule is a
/// heuristic: it misses sub-cadence (very fast) pools and ICMP-filtered
/// networks, and can confuse unusual host behaviour — the inaccuracies the
/// paper discusses.
struct DynamicBlockRule {
  std::uint32_t min_responsive = 12;
  double min_availability = 0.05;
  /// Residential blocks mix always-on hosts with diurnal ones and average
  /// well above this; pool addresses are idle between leases and sit below.
  double max_availability = 0.5;
  double min_volatility = 0.01;
  double max_volatility = 0.7;
  net::Duration max_median_uptime = net::Duration::days(6);
};

[[nodiscard]] bool is_dynamic_block(const BlockMetrics& metrics,
                                    const DynamicBlockRule& rule = {});

struct CensusResult {
  std::size_t blocks_surveyed = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;
  std::vector<BlockMetrics> blocks;     ///< blocks with >= 1 responsive address
  net::PrefixSet dynamic_blocks;        ///< rule-qualifying /24s
};

/// Runs the survey against the deterministic ping model. The per-block
/// measurement is a pure function of (world, config, block), so with a
/// thread pool blocks are surveyed in parallel and merged in sample order —
/// byte-identical results for any pool size (nullptr = serial).
[[nodiscard]] CensusResult run_census(const inet::World& world,
                                      const CensusConfig& config,
                                      const DynamicBlockRule& rule = {},
                                      net::ThreadPool* pool = nullptr);

/// Computes per-address metrics from a raw response sequence (exposed for
/// unit tests of the metric definitions). `interval` is the probe spacing.
[[nodiscard]] AddressMetrics metrics_from_sequence(
    const std::vector<bool>& responses, net::Duration interval);

}  // namespace reuse::census
