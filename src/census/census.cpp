#include "census/census.h"

#include <algorithm>

#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::census {

namespace {

/// Core metric fold over one address's probe row — a contiguous byte row of
/// the block's flat response matrix (0 = silent, 1 = responded).
AddressMetrics metrics_from_row(const std::uint8_t* row, std::size_t slots,
                                net::Duration interval) {
  AddressMetrics metrics;
  metrics.probes = static_cast<std::uint32_t>(slots);
  std::vector<std::int64_t> uptimes;
  std::int64_t run = 0;
  bool previous = false;
  for (std::size_t i = 0; i < slots; ++i) {
    const bool up = row[i] != 0;
    if (up) {
      ++metrics.responses;
      run += interval.count();
    }
    if (i > 0 && up != previous) ++metrics.transitions;
    if (!up && run > 0) {
      uptimes.push_back(run);
      run = 0;
    }
    previous = up;
  }
  if (run > 0) uptimes.push_back(run);
  if (!uptimes.empty()) {
    std::sort(uptimes.begin(), uptimes.end());
    metrics.median_uptime_seconds = uptimes[uptimes.size() / 2];
  }
  return metrics;
}

}  // namespace

AddressMetrics metrics_from_sequence(const std::vector<bool>& responses,
                                     net::Duration interval) {
  const std::vector<std::uint8_t> row(responses.begin(), responses.end());
  return metrics_from_row(row.data(), row.size(), interval);
}

bool is_dynamic_block(const BlockMetrics& metrics, const DynamicBlockRule& rule) {
  return metrics.responsive_addresses >= rule.min_responsive &&
         metrics.mean_availability >= rule.min_availability &&
         metrics.mean_availability <= rule.max_availability &&
         metrics.mean_volatility >= rule.min_volatility &&
         metrics.mean_volatility <= rule.max_volatility &&
         metrics.median_uptime_seconds <= rule.max_median_uptime.count();
}

namespace {

/// Survey of one sampled /24: the aggregate metrics plus the raw probe
/// counters that fold into the result totals. Pure function of
/// (model, config, block), so blocks survey in parallel and merge in
/// sample order.
struct BlockOutcome {
  BlockMetrics metrics;
  std::uint64_t probes_sent = 0;
  std::uint64_t responses = 0;
  bool responsive = false;
  bool dynamic_block = false;
};

BlockOutcome survey_block(const inet::PingModel& model,
                          const CensusConfig& config,
                          const DynamicBlockRule& rule,
                          net::Ipv4Prefix block) {
  const std::int64_t begin = config.window.begin.seconds();
  const std::int64_t end = config.window.end.seconds();
  const std::int64_t step = config.probe_interval.count();

  BlockOutcome out;
  BlockMetrics& aggregate = out.metrics;
  aggregate.block = block;
  double availability_sum = 0.0;
  double volatility_sum = 0.0;
  // Flat response matrix: one byte per (address, probe slot), one allocation
  // per block instead of a bit-vector rebuild per address. Rows are
  // contiguous, so the metric fold below streams cache lines in order.
  const std::size_t slots =
      end > begin
          ? static_cast<std::size_t>((end - begin + step - 1) / step)
          : 0;
  std::vector<std::uint8_t> matrix(static_cast<std::size_t>(block.size()) *
                                   slots);
  std::vector<std::int64_t> block_uptimes;
  for (std::uint64_t offset = 0; offset < block.size(); ++offset) {
    const net::Ipv4Address address = block.address_at(offset);
    std::uint8_t* row = matrix.data() + offset * slots;
    std::size_t s = 0;
    for (std::int64_t t = begin; t < end; t += step) {
      row[s++] = model.responds(address, net::SimTime(t)) ? 1 : 0;
    }
    out.probes_sent += slots;
    const AddressMetrics metrics =
        metrics_from_row(row, slots, config.probe_interval);
    out.responses += metrics.responses;
    if (metrics.responses == 0) continue;
    ++aggregate.responsive_addresses;
    availability_sum += metrics.availability();
    volatility_sum += metrics.volatility();
    block_uptimes.push_back(metrics.median_uptime_seconds);
  }
  if (aggregate.responsive_addresses == 0) return out;
  out.responsive = true;
  aggregate.mean_availability =
      availability_sum / aggregate.responsive_addresses;
  aggregate.mean_volatility = volatility_sum / aggregate.responsive_addresses;
  std::sort(block_uptimes.begin(), block_uptimes.end());
  aggregate.median_uptime_seconds = block_uptimes[block_uptimes.size() / 2];
  out.dynamic_block = is_dynamic_block(aggregate, rule);
  return out;
}

}  // namespace

CensusResult run_census(const inet::World& world, const CensusConfig& config,
                        const DynamicBlockRule& rule, net::ThreadPool* pool) {
  CensusResult result;
  net::Rng rng(config.seed);
  const inet::PingModel model(world, config.seed ^ 0x9137ULL);

  // Collect every assigned /24, then sample. The sampling draw stays on the
  // serial prologue's generator: the chosen set is independent of pool size.
  std::vector<net::Ipv4Prefix> all_blocks;
  for (const inet::AsInfo& as_info : world.ases()) {
    all_blocks.insert(all_blocks.end(), as_info.prefixes.begin(),
                      as_info.prefixes.end());
  }
  const auto sample_size = static_cast<std::size_t>(
      static_cast<double>(all_blocks.size()) * config.block_sample_fraction);
  const std::vector<std::size_t> chosen =
      rng.sample_indices(all_blocks.size(), sample_size);
  result.blocks_surveyed = chosen.size();

  std::vector<BlockOutcome> outcomes(chosen.size());
  net::for_each_index(pool, chosen.size(), [&](std::size_t i) {
    outcomes[i] = survey_block(model, config, rule, all_blocks[chosen[i]]);
  });

  // Merge in sample order — identical block/insert order to a serial run.
  for (const BlockOutcome& out : outcomes) {
    result.probes_sent += out.probes_sent;
    result.responses += out.responses;
    if (!out.responsive) continue;
    if (out.dynamic_block) result.dynamic_blocks.insert(out.metrics.block);
    result.blocks.push_back(out.metrics);
  }
  return result;
}

}  // namespace reuse::census
