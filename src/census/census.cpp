#include "census/census.h"

#include <algorithm>

#include "netbase/rng.h"

namespace reuse::census {

AddressMetrics metrics_from_sequence(const std::vector<bool>& responses,
                                     net::Duration interval) {
  AddressMetrics metrics;
  metrics.probes = static_cast<std::uint32_t>(responses.size());
  std::vector<std::int64_t> uptimes;
  std::int64_t run = 0;
  bool previous = false;
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const bool up = responses[i];
    if (up) {
      ++metrics.responses;
      run += interval.count();
    }
    if (i > 0 && up != previous) ++metrics.transitions;
    if (!up && run > 0) {
      uptimes.push_back(run);
      run = 0;
    }
    previous = up;
  }
  if (run > 0) uptimes.push_back(run);
  if (!uptimes.empty()) {
    std::sort(uptimes.begin(), uptimes.end());
    metrics.median_uptime_seconds = uptimes[uptimes.size() / 2];
  }
  return metrics;
}

bool is_dynamic_block(const BlockMetrics& metrics, const DynamicBlockRule& rule) {
  return metrics.responsive_addresses >= rule.min_responsive &&
         metrics.mean_availability >= rule.min_availability &&
         metrics.mean_availability <= rule.max_availability &&
         metrics.mean_volatility >= rule.min_volatility &&
         metrics.mean_volatility <= rule.max_volatility &&
         metrics.median_uptime_seconds <= rule.max_median_uptime.count();
}

CensusResult run_census(const inet::World& world, const CensusConfig& config,
                        const DynamicBlockRule& rule) {
  CensusResult result;
  net::Rng rng(config.seed);
  const inet::PingModel model(world, config.seed ^ 0x9137ULL);

  // Collect every assigned /24, then sample.
  std::vector<net::Ipv4Prefix> all_blocks;
  for (const inet::AsInfo& as_info : world.ases()) {
    all_blocks.insert(all_blocks.end(), as_info.prefixes.begin(),
                      as_info.prefixes.end());
  }
  const auto sample_size = static_cast<std::size_t>(
      static_cast<double>(all_blocks.size()) * config.block_sample_fraction);
  const std::vector<std::size_t> chosen =
      rng.sample_indices(all_blocks.size(), sample_size);
  result.blocks_surveyed = chosen.size();

  const std::int64_t begin = config.window.begin.seconds();
  const std::int64_t end = config.window.end.seconds();
  const std::int64_t step = config.probe_interval.count();

  std::vector<bool> sequence;
  std::vector<std::int64_t> block_uptimes;
  for (const std::size_t index : chosen) {
    const net::Ipv4Prefix block = all_blocks[index];
    BlockMetrics aggregate;
    aggregate.block = block;
    double availability_sum = 0.0;
    double volatility_sum = 0.0;
    block_uptimes.clear();
    for (std::uint64_t offset = 0; offset < block.size(); ++offset) {
      const net::Ipv4Address address = block.address_at(offset);
      sequence.clear();
      for (std::int64_t t = begin; t < end; t += step) {
        sequence.push_back(model.responds(address, net::SimTime(t)));
      }
      result.probes_sent += sequence.size();
      const AddressMetrics metrics =
          metrics_from_sequence(sequence, config.probe_interval);
      result.responses += metrics.responses;
      if (metrics.responses == 0) continue;
      ++aggregate.responsive_addresses;
      availability_sum += metrics.availability();
      volatility_sum += metrics.volatility();
      block_uptimes.push_back(metrics.median_uptime_seconds);
    }
    if (aggregate.responsive_addresses == 0) continue;
    aggregate.mean_availability =
        availability_sum / aggregate.responsive_addresses;
    aggregate.mean_volatility = volatility_sum / aggregate.responsive_addresses;
    std::sort(block_uptimes.begin(), block_uptimes.end());
    aggregate.median_uptime_seconds = block_uptimes[block_uptimes.size() / 2];
    if (is_dynamic_block(aggregate, rule)) {
      result.dynamic_blocks.insert(block);
    }
    result.blocks.push_back(aggregate);
  }
  return result;
}

}  // namespace reuse::census
