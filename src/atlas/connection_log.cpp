#include "atlas/connection_log.h"

#include <charconv>
#include <istream>
#include <ostream>

namespace reuse::atlas {
namespace {

template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<ConnectionRecord>& records) {
  os << "time,probe_id,address,asn\n";
  for (const ConnectionRecord& record : records) {
    os << record.time_seconds << ',' << record.probe_id << ','
       << record.address.to_string() << ',' << record.asn << '\n';
  }
}

std::optional<ConnectionRecord> parse_record(std::string_view line) {
  ConnectionRecord record;
  std::size_t field = 0;
  while (field < 4) {
    const std::size_t comma = line.find(',');
    const std::string_view cell =
        comma == std::string_view::npos ? line : line.substr(0, comma);
    switch (field) {
      case 0: {
        const auto value = parse_number<std::int64_t>(cell);
        if (!value) return std::nullopt;
        record.time_seconds = *value;
        break;
      }
      case 1: {
        const auto value = parse_number<ProbeId>(cell);
        if (!value) return std::nullopt;
        record.probe_id = *value;
        break;
      }
      case 2: {
        const auto address = net::Ipv4Address::parse(cell);
        if (!address) return std::nullopt;
        record.address = *address;
        break;
      }
      case 3: {
        const auto value = parse_number<inet::Asn>(cell);
        if (!value) return std::nullopt;
        record.asn = *value;
        break;
      }
    }
    ++field;
    if (comma == std::string_view::npos) {
      line = {};
      break;
    }
    line.remove_prefix(comma + 1);
  }
  if (field != 4 || !line.empty()) return std::nullopt;
  return record;
}

std::optional<std::vector<ConnectionRecord>> read_csv(std::istream& is) {
  std::vector<ConnectionRecord> records;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {  // header
      first = false;
      continue;
    }
    if (line.empty()) continue;
    const auto record = parse_record(line);
    if (!record) return std::nullopt;
    records.push_back(*record);
  }
  return records;
}

}  // namespace reuse::atlas
