#include "atlas/fleet.h"

#include <algorithm>

#include "internet/lease.h"
#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::atlas {
namespace {

/// Salt for the per-probe RNG substreams: probe p draws from
/// substream(config.seed, kProbeStreamSalt, p), making its host choice,
/// relocation and move time a pure function of (world, config, p) —
/// independent of every other probe and of thread count.
constexpr std::uint64_t kProbeStreamSalt = 0xa71a5ULL;

/// Collects the injector's atlas-gap episode windows, merged into a
/// begin-sorted disjoint list. Empty without an injector or when the plan
/// has no atlas-gap episodes — then every span emits as one run with zero
/// injector calls.
std::vector<std::pair<std::int64_t, std::int64_t>> atlas_gap_windows(
    const sim::FaultInjector* faults) {
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  if (faults == nullptr || !faults->active()) return windows;
  for (const sim::FaultEpisode& episode : faults->plan().episodes) {
    if (episode.kind != sim::FaultKind::kAtlasGap) continue;
    if (episode.window.begin >= episode.window.end) continue;
    windows.emplace_back(episode.window.begin.seconds(),
                         episode.window.end.seconds());
  }
  std::sort(windows.begin(), windows.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (out > 0 && windows[i].first <= windows[out - 1].second) {
      windows[out - 1].second =
          std::max(windows[out - 1].second, windows[i].second);
    } else {
      windows[out++] = windows[i];
    }
  }
  windows.resize(out);
  return windows;
}

}  // namespace

AtlasFleet::ProbeOutcome AtlasFleet::simulate_probe(
    std::size_t p, const inet::World& world, const FleetConfig& config,
    sim::FaultInjector* faults, const GapWindows& gaps) {
  ProbeOutcome out;
  net::Rng rng = net::substream(config.seed, kProbeStreamSalt, p);
  const auto& users = world.users();
  const auto probe_id = static_cast<ProbeId>(p + 1);
  ProbeTruth& truth = out.truth;
  truth.probe_id = probe_id;
  // Hosts are drawn uniformly from the subscriber population — Atlas
  // volunteers are ordinary broadband users.
  truth.host = users[rng.uniform(users.size())].id;
  const inet::User& host = world.user(truth.host);
  if (host.attachment == inet::AttachmentKind::kDynamic) {
    const auto& pool = world.pool(host.pool_index);
    truth.on_dynamic_pool = true;
    truth.on_fast_pool = pool.mean_lease_seconds <= 86400.0;
  }
  truth.relocated = rng.bernoulli(config.relocate_fraction);
  if (truth.relocated) {
    // The probe moves mid-window to a different host; resample until the
    // new host sits in another AS so the move is observable.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const inet::UserId candidate = users[rng.uniform(users.size())].id;
      if (world.user(candidate).asn != host.asn) {
        truth.second_host = candidate;
        break;
      }
    }
    if (truth.second_host == 0) truth.relocated = false;
  }

  if (truth.relocated) {
    const std::int64_t begin = config.window.begin.seconds();
    const std::int64_t end = config.window.end.seconds();
    const std::int64_t move_at =
        begin + static_cast<std::int64_t>(
                    rng.uniform(static_cast<std::uint64_t>(end - begin)));
    emit_for_host(out, world, truth.host,
                  net::TimeWindow{config.window.begin, net::SimTime(move_at)},
                  config.keepalive, faults, gaps);
    emit_for_host(out, world, truth.second_host,
                  net::TimeWindow{net::SimTime(move_at), config.window.end},
                  config.keepalive, faults, gaps);
  } else {
    emit_for_host(out, world, truth.host, config.window, config.keepalive,
                  faults, gaps);
  }
  return out;
}

AtlasFleet::AtlasFleet(const inet::World& world, const FleetConfig& config,
                       sim::FaultInjector* faults, net::ThreadPool* pool)
    : log_(config.keepalive.count()) {
  if (world.users().empty()) return;

  const GapWindows gaps = atlas_gap_windows(faults);
  std::vector<ProbeOutcome> outcomes(config.probe_count);
  net::for_each_index(pool, config.probe_count, [&](std::size_t p) {
    outcomes[p] = simulate_probe(p, world, config, faults, gaps);
  });

  // Merge in probe-index order: ascending probe ids is exactly the
  // CompressedLog's probe-major build order, so no global sort is needed —
  // expand_log() reapplies the (time, probe) sort when a flat view is asked
  // for.
  truths_.reserve(config.probe_count);
  for (ProbeOutcome& out : outcomes) {
    truths_.push_back(out.truth);
    records_suppressed_ += out.suppressed;
    allocations_ += out.allocations;
    gap_bridged_days_ += out.suppressed_days;
    log_.append_probe(out.truth.probe_id, out.runs);
    out.runs = std::vector<LogRun>{};
  }

  publish_metrics();
}

AtlasFleet AtlasFleet::restore(CompressedLog log,
                               std::vector<ProbeTruth> truths,
                               std::uint64_t records_suppressed,
                               std::uint64_t allocations,
                               std::uint64_t gap_bridged_days) {
  AtlasFleet fleet;
  fleet.log_ = std::move(log);
  fleet.truths_ = std::move(truths);
  fleet.records_suppressed_ = records_suppressed;
  fleet.allocations_ = allocations;
  fleet.gap_bridged_days_ = gap_bridged_days;
  fleet.publish_metrics();
  return fleet;
}

void AtlasFleet::publish_metrics() const {
  // End-of-stage metrics publish: one aggregation over the finished merge,
  // nothing in the per-probe hot path.
  auto& registry = net::metrics::Registry::global();
  registry.gauge("atlas_probes", "Probes deployed in the fleet")
      .set(static_cast<std::int64_t>(truths_.size()));
  registry
      .counter("atlas_allocations_total",
               "Address allocations probes lived through (lease segments + "
               "fixed-line attachments)")
      .add(allocations_);
  registry
      .counter("atlas_records_emitted_total",
               "Connection records that reached the controller log")
      .add(log_.record_count());
  registry
      .counter("atlas_records_suppressed_total",
               "Connection records swallowed by controller gaps")
      .add(records_suppressed_);
  registry
      .counter("atlas_gap_bridged_days_total",
               "Probe-days with records lost to a gap while the probe "
               "stayed connected")
      .add(gap_bridged_days_);
}

void AtlasFleet::emit_for_host(ProbeOutcome& out, const inet::World& world,
                               inet::UserId host_id, net::TimeWindow span,
                               net::Duration keepalive,
                               sim::FaultInjector* faults,
                               const GapWindows& gaps) {
  if (span.begin >= span.end) return;
  const inet::User& host = world.user(host_id);
  const std::int64_t ka = keepalive.count();

  // Emits the record train begin, begin + ka, ... (< end) for one address
  // stretch. The fault-free case appends a single run with zero injector
  // calls. Stretches overlapping an atlas-gap window consult the injector
  // only for the record times inside the windows, in increasing order — the
  // hook is side-effect-free outside gap episodes, so skipping those calls
  // leaves the injector ledger and the suppressed-day watermark identical
  // to the record-at-a-time path.
  auto emit_stretch = [&](std::int64_t begin, std::int64_t end,
                          net::Ipv4Address address) {
    if (begin >= end) return;
    const std::int64_t count = (end - begin + ka - 1) / ka;
    const std::int64_t last = begin + (count - 1) * ka;
    std::int64_t run_first = begin;  // next unemitted record time
    for (const auto& [gap_begin, gap_end] : gaps) {
      if (gap_end <= run_first) continue;
      if (gap_begin > last) break;
      const std::int64_t from = std::max(run_first, gap_begin);
      // First record time >= from, staying on the begin + k*ka grid.
      std::int64_t t = begin + ((from - begin + ka - 1) / ka) * ka;
      for (; t <= last && t < gap_end; t += ka) {
        if (!faults->atlas_record_suppressed(net::SimTime(t))) continue;
        ++out.suppressed;
        const std::int64_t day = net::SimTime(t).day();
        if (day != out.last_suppressed_day) {
          ++out.suppressed_days;
          out.last_suppressed_day = day;
        }
        if (run_first < t) {
          out.runs.push_back(LogRun{run_first, t - ka, address, host.asn});
        }
        run_first = t + ka;
      }
    }
    if (run_first <= last) {
      out.runs.push_back(LogRun{run_first, last, address, host.asn});
    }
  };

  if (host.attachment == inet::AttachmentKind::kDynamic) {
    const inet::LeaseTimeline timeline(world.pool(host.pool_index), host.seed,
                                       span);
    for (const inet::LeaseSegment& segment : timeline.segments()) {
      ++out.allocations;
      emit_stretch(segment.begin.seconds(), segment.end.seconds(),
                   segment.address);
    }
  } else {
    ++out.allocations;
    emit_stretch(span.begin.seconds(), span.end.seconds(), host.fixed_address);
  }
}

}  // namespace reuse::atlas
