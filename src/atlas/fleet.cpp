#include "atlas/fleet.h"

#include <algorithm>

#include "internet/lease.h"
#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::atlas {
namespace {

/// Salt for the per-probe RNG substreams: probe p draws from
/// substream(config.seed, kProbeStreamSalt, p), making its host choice,
/// relocation and move time a pure function of (world, config, p) —
/// independent of every other probe and of thread count.
constexpr std::uint64_t kProbeStreamSalt = 0xa71a5ULL;

}  // namespace

AtlasFleet::ProbeOutcome AtlasFleet::simulate_probe(
    std::size_t p, const inet::World& world, const FleetConfig& config,
    sim::FaultInjector* faults) {
  ProbeOutcome out;
  net::Rng rng = net::substream(config.seed, kProbeStreamSalt, p);
  const auto& users = world.users();
  const auto probe_id = static_cast<ProbeId>(p + 1);
  ProbeTruth& truth = out.truth;
  truth.probe_id = probe_id;
  // Hosts are drawn uniformly from the subscriber population — Atlas
  // volunteers are ordinary broadband users.
  truth.host = users[rng.uniform(users.size())].id;
  const inet::User& host = world.user(truth.host);
  if (host.attachment == inet::AttachmentKind::kDynamic) {
    const auto& pool = world.pool(host.pool_index);
    truth.on_dynamic_pool = true;
    truth.on_fast_pool = pool.mean_lease_seconds <= 86400.0;
  }
  truth.relocated = rng.bernoulli(config.relocate_fraction);
  if (truth.relocated) {
    // The probe moves mid-window to a different host; resample until the
    // new host sits in another AS so the move is observable.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const inet::UserId candidate = users[rng.uniform(users.size())].id;
      if (world.user(candidate).asn != host.asn) {
        truth.second_host = candidate;
        break;
      }
    }
    if (truth.second_host == 0) truth.relocated = false;
  }

  if (truth.relocated) {
    const std::int64_t begin = config.window.begin.seconds();
    const std::int64_t end = config.window.end.seconds();
    const std::int64_t move_at =
        begin + static_cast<std::int64_t>(
                    rng.uniform(static_cast<std::uint64_t>(end - begin)));
    emit_for_host(out, world, truth.host,
                  net::TimeWindow{config.window.begin, net::SimTime(move_at)},
                  config.keepalive, faults);
    emit_for_host(out, world, truth.second_host,
                  net::TimeWindow{net::SimTime(move_at), config.window.end},
                  config.keepalive, faults);
  } else {
    emit_for_host(out, world, truth.host, config.window, config.keepalive,
                  faults);
  }
  return out;
}

AtlasFleet::AtlasFleet(const inet::World& world, const FleetConfig& config,
                       sim::FaultInjector* faults, net::ThreadPool* pool) {
  if (world.users().empty()) return;

  std::vector<ProbeOutcome> outcomes(config.probe_count);
  net::for_each_index(pool, config.probe_count, [&](std::size_t p) {
    outcomes[p] = simulate_probe(p, world, config, faults);
  });

  // Merge in probe-index order, then apply the global (time, probe) sort —
  // the same final order a serial run produces.
  std::size_t total_records = 0;
  for (const ProbeOutcome& out : outcomes) total_records += out.records.size();
  log_.reserve(total_records);
  truths_.reserve(config.probe_count);
  for (ProbeOutcome& out : outcomes) {
    truths_.push_back(out.truth);
    records_suppressed_ += out.suppressed;
    allocations_ += out.allocations;
    gap_bridged_days_ += out.suppressed_days;
    log_.insert(log_.end(), out.records.begin(), out.records.end());
    out.records = std::vector<ConnectionRecord>{};
  }

  std::sort(log_.begin(), log_.end(),
            [](const ConnectionRecord& a, const ConnectionRecord& b) {
              if (a.time_seconds != b.time_seconds) {
                return a.time_seconds < b.time_seconds;
              }
              return a.probe_id < b.probe_id;
            });

  // End-of-stage metrics publish: one aggregation over the finished merge,
  // nothing in the per-probe hot path.
  auto& registry = net::metrics::Registry::global();
  registry.gauge("atlas_probes", "Probes deployed in the fleet")
      .set(static_cast<std::int64_t>(truths_.size()));
  registry
      .counter("atlas_allocations_total",
               "Address allocations probes lived through (lease segments + "
               "fixed-line attachments)")
      .add(allocations_);
  registry
      .counter("atlas_records_emitted_total",
               "Connection records that reached the controller log")
      .add(log_.size());
  registry
      .counter("atlas_records_suppressed_total",
               "Connection records swallowed by controller gaps")
      .add(records_suppressed_);
  registry
      .counter("atlas_gap_bridged_days_total",
               "Probe-days with records lost to a gap while the probe "
               "stayed connected")
      .add(gap_bridged_days_);
}

void AtlasFleet::emit_for_host(ProbeOutcome& out, const inet::World& world,
                               inet::UserId host_id, net::TimeWindow span,
                               net::Duration keepalive,
                               sim::FaultInjector* faults) {
  if (span.begin >= span.end) return;
  const inet::User& host = world.user(host_id);
  auto emit = [&](net::SimTime t, net::Ipv4Address address) {
    if (faults != nullptr && faults->atlas_record_suppressed(t)) {
      ++out.suppressed;
      if (t.day() != out.last_suppressed_day) {
        ++out.suppressed_days;
        out.last_suppressed_day = t.day();
      }
      return;
    }
    out.records.push_back(
        ConnectionRecord{t.seconds(), out.truth.probe_id, address, host.asn});
  };
  if (host.attachment == inet::AttachmentKind::kDynamic) {
    const inet::LeaseTimeline timeline(world.pool(host.pool_index), host.seed,
                                       span);
    for (const inet::LeaseSegment& segment : timeline.segments()) {
      ++out.allocations;
      emit(segment.begin, segment.address);
      // Keepalives within long segments.
      for (net::SimTime t = segment.begin + keepalive; t < segment.end;
           t = t + keepalive) {
        emit(t, segment.address);
      }
    }
  } else {
    ++out.allocations;
    for (net::SimTime t = span.begin; t < span.end; t = t + keepalive) {
      emit(t, host.fixed_address);
    }
  }
}

}  // namespace reuse::atlas
