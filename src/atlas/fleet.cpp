#include "atlas/fleet.h"

#include <algorithm>

#include "internet/lease.h"
#include "netbase/rng.h"

namespace reuse::atlas {

AtlasFleet::AtlasFleet(const inet::World& world, const FleetConfig& config,
                       sim::FaultInjector* faults)
    : faults_(faults) {
  net::Rng rng(config.seed);
  const auto& users = world.users();
  if (users.empty()) return;

  truths_.reserve(config.probe_count);
  for (std::size_t p = 0; p < config.probe_count; ++p) {
    const auto probe_id = static_cast<ProbeId>(p + 1);
    ProbeTruth truth;
    truth.probe_id = probe_id;
    // Hosts are drawn uniformly from the subscriber population — Atlas
    // volunteers are ordinary broadband users.
    truth.host = users[rng.uniform(users.size())].id;
    const inet::User& host = world.user(truth.host);
    if (host.attachment == inet::AttachmentKind::kDynamic) {
      const auto& pool = world.pool(host.pool_index);
      truth.on_dynamic_pool = true;
      truth.on_fast_pool = pool.mean_lease_seconds <= 86400.0;
    }
    truth.relocated = rng.bernoulli(config.relocate_fraction);
    if (truth.relocated) {
      // The probe moves mid-window to a different host; resample until the
      // new host sits in another AS so the move is observable.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const inet::UserId candidate = users[rng.uniform(users.size())].id;
        if (world.user(candidate).asn != host.asn) {
          truth.second_host = candidate;
          break;
        }
      }
      if (truth.second_host == 0) truth.relocated = false;
    }

    if (truth.relocated) {
      const std::int64_t begin = config.window.begin.seconds();
      const std::int64_t end = config.window.end.seconds();
      const std::int64_t move_at =
          begin + static_cast<std::int64_t>(
                      rng.uniform(static_cast<std::uint64_t>(end - begin)));
      emit_for_host(probe_id, world, truth.host,
                    net::TimeWindow{config.window.begin, net::SimTime(move_at)},
                    config.keepalive);
      emit_for_host(probe_id, world, truth.second_host,
                    net::TimeWindow{net::SimTime(move_at), config.window.end},
                    config.keepalive);
    } else {
      emit_for_host(probe_id, world, truth.host, config.window,
                    config.keepalive);
    }
    truths_.push_back(truth);
  }

  std::sort(log_.begin(), log_.end(),
            [](const ConnectionRecord& a, const ConnectionRecord& b) {
              if (a.time_seconds != b.time_seconds) {
                return a.time_seconds < b.time_seconds;
              }
              return a.probe_id < b.probe_id;
            });
}

void AtlasFleet::emit_for_host(ProbeId probe, const inet::World& world,
                               inet::UserId host_id, net::TimeWindow span,
                               net::Duration keepalive) {
  if (span.begin >= span.end) return;
  const inet::User& host = world.user(host_id);
  auto emit = [&](net::SimTime t, net::Ipv4Address address) {
    if (faults_ != nullptr && faults_->atlas_record_suppressed(t)) {
      ++records_suppressed_;
      return;
    }
    log_.push_back(ConnectionRecord{t.seconds(), probe, address, host.asn});
  };
  if (host.attachment == inet::AttachmentKind::kDynamic) {
    const inet::LeaseTimeline timeline(world.pool(host.pool_index), host.seed,
                                       span);
    for (const inet::LeaseSegment& segment : timeline.segments()) {
      emit(segment.begin, segment.address);
      // Keepalives within long segments.
      for (net::SimTime t = segment.begin + keepalive; t < segment.end;
           t = t + keepalive) {
        emit(t, segment.address);
      }
    }
  } else {
    for (net::SimTime t = span.begin; t < span.end; t = t + keepalive) {
      emit(t, host.fixed_address);
    }
  }
}

}  // namespace reuse::atlas
