#include "atlas/compressed_log.h"

#include <algorithm>
#include <cassert>

namespace reuse::atlas {

void CompressedLog::append_probe(ProbeId id, std::span<const LogRun> runs) {
  assert(probe_ids_.empty() || probe_ids_.back() < id);
  probe_ids_.push_back(id);
  for (const LogRun& run : runs) {
    assert(run.last_seconds >= run.first_seconds);
    assert(stride_seconds_ > 0 &&
           (run.last_seconds - run.first_seconds) % stride_seconds_ == 0);
    run_first_.push_back(run.first_seconds);
    run_last_.push_back(run.last_seconds);
    run_address_.push_back(run.address);
    run_asn_.push_back(run.asn);
    record_count_ += static_cast<std::uint64_t>(
                         (run.last_seconds - run.first_seconds) /
                         stride_seconds_) +
                     1;
  }
  probe_offsets_.push_back(run_first_.size());
}

std::uint64_t CompressedLog::run_record_count(std::size_t run_index) const {
  return static_cast<std::uint64_t>(
             (run_last_[run_index] - run_first_[run_index]) /
             stride_seconds_) +
         1;
}

std::vector<ConnectionRecord> CompressedLog::expand() const {
  std::vector<ConnectionRecord> records;
  records.reserve(record_count_);
  for (std::size_t p = 0; p < probe_count(); ++p) {
    const ProbeId id = probe_ids_[p];
    const auto [first, last] = runs_of(p);
    for (std::size_t r = first; r < last; ++r) {
      for (std::int64_t t = run_first_[r]; t <= run_last_[r];
           t += stride_seconds_) {
        records.push_back(ConnectionRecord{t, id, run_address_[r], run_asn_[r]});
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const ConnectionRecord& a, const ConnectionRecord& b) {
              if (a.time_seconds != b.time_seconds) {
                return a.time_seconds < b.time_seconds;
              }
              return a.probe_id < b.probe_id;
            });
  return records;
}

std::size_t CompressedLog::memory_bytes() const {
  return probe_ids_.size() * sizeof(ProbeId) +
         probe_offsets_.size() * sizeof(std::uint64_t) +
         run_first_.size() * sizeof(std::int64_t) +
         run_last_.size() * sizeof(std::int64_t) +
         run_address_.size() * sizeof(net::Ipv4Address) +
         run_asn_.size() * sizeof(inet::Asn);
}

}  // namespace reuse::atlas
