// Run-compressed probe connection log.
//
// The fleet's emission pattern is arithmetic: a probe holding one address
// reports it at `first, first + stride, ..., last` (the allocation record
// plus daily keepalives). Storing every record materializes hundreds of
// identical (address, asn) tuples per lease; at world scale (100k probes,
// 488 days) that is tens of gigabytes. A CompressedLog stores one LogRun per
// maximal arithmetic train instead — probe-major SoA columns (first/last
// times, address, ASN in parallel arrays, probes delimited by an offset
// column) — so memory scales with *address changes*, not with elapsed days.
//
// The expansion `expand()` reproduces the exact (time, probe)-sorted record
// vector the fleet used to emit; consumers that only need allocation events
// (the detection pipeline) read the runs directly and never expand.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atlas/connection_log.h"
#include "internet/types.h"
#include "netbase/ipv4.h"

namespace reuse::atlas {

/// One maximal arithmetic train of records: the probe reported `address`
/// (in `asn`) at times `first_seconds, first_seconds + stride, ...,
/// last_seconds` inclusive. `first_seconds == last_seconds` is a single
/// record. The stride is global to the log (the fleet keepalive).
struct LogRun {
  std::int64_t first_seconds = 0;
  std::int64_t last_seconds = 0;
  net::Ipv4Address address;
  inet::Asn asn = 0;

  friend bool operator==(const LogRun&, const LogRun&) = default;
};

/// Probe-major, run-compressed connection log. Build order: probes append in
/// ascending ProbeId with their runs already time-sorted; every accessor is
/// then O(1) or a contiguous scan. Immutable once built — concurrent reads
/// are safe.
class CompressedLog {
 public:
  CompressedLog() = default;
  explicit CompressedLog(std::int64_t stride_seconds)
      : stride_seconds_(stride_seconds) {}

  /// Appends one probe's runs. Probes must arrive in strictly ascending id
  /// order and each run list must be time-sorted (the fleet's natural
  /// emission order). A probe with no surviving records (all suppressed)
  /// still occupies a row so probe_count() matches the fleet.
  void append_probe(ProbeId id, std::span<const LogRun> runs);

  [[nodiscard]] std::int64_t stride_seconds() const { return stride_seconds_; }
  [[nodiscard]] std::size_t probe_count() const { return probe_ids_.size(); }
  [[nodiscard]] std::size_t run_count() const { return run_first_.size(); }
  /// Total records the runs expand to (arithmetic, no materialization).
  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  [[nodiscard]] bool empty() const { return record_count_ == 0; }

  [[nodiscard]] ProbeId probe_id_at(std::size_t probe_index) const {
    return probe_ids_[probe_index];
  }
  /// Half-open [first, last) run-index range of one probe's runs.
  [[nodiscard]] std::pair<std::size_t, std::size_t> runs_of(
      std::size_t probe_index) const {
    return {probe_offsets_[probe_index], probe_offsets_[probe_index + 1]};
  }
  /// Materializes one run from the SoA columns.
  [[nodiscard]] LogRun run_at(std::size_t run_index) const {
    return LogRun{run_first_[run_index], run_last_[run_index],
                  run_address_[run_index], run_asn_[run_index]};
  }
  /// Records in one run (inclusive arithmetic train).
  [[nodiscard]] std::uint64_t run_record_count(std::size_t run_index) const;

  /// Materializes the full record vector in (time, probe) order — the exact
  /// log a record-at-a-time fleet emitted. For CSV export and tests; the
  /// pipeline consumes runs directly.
  [[nodiscard]] std::vector<ConnectionRecord> expand() const;

  /// Heap footprint of the SoA columns.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::int64_t stride_seconds_ = 86400;
  std::uint64_t record_count_ = 0;
  std::vector<ProbeId> probe_ids_;
  /// size probe_ids_.size() + 1; probe i owns runs [offsets[i], offsets[i+1]).
  std::vector<std::uint64_t> probe_offsets_{0};
  // Parallel run columns (SoA).
  std::vector<std::int64_t> run_first_;
  std::vector<std::int64_t> run_last_;
  std::vector<net::Ipv4Address> run_address_;
  std::vector<inet::Asn> run_asn_;
};

}  // namespace reuse::atlas
