// RIPE-Atlas-style probe fleet simulator.
//
// Probes are deployed inside customer premises: each one rides a host user
// drawn from the World, so its public address follows that user's attachment
// (fixed for static/NAT lines, rotating for dynamic pools). A fraction of
// probes relocate mid-study — they reappear behind a host in a different AS,
// the confounder the paper's pipeline removes with its same-AS filter. The
// fleet emits the connection log the pipeline consumes: a record at every
// address change plus a daily keepalive. The log is held run-compressed
// (CompressedLog): each stretch of one address becomes a single arithmetic
// run, so the fleet's memory scales with address changes rather than with
// probe-count x days.
#pragma once

#include <cstdint>
#include <vector>

#include "atlas/compressed_log.h"
#include "atlas/connection_log.h"
#include "internet/world.h"
#include "netbase/sim_time.h"
#include "simnet/faults.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::atlas {

struct FleetConfig {
  std::uint64_t seed = 5;
  std::size_t probe_count = 2000;
  /// Monitoring window — the paper observes 16 months.
  net::TimeWindow window{net::SimTime(0), net::SimTime(488 * 86400)};
  /// Fraction of probes that physically move to a different network during
  /// the window.
  double relocate_fraction = 0.13;
  /// Keepalive cadence (records between address changes).
  net::Duration keepalive = net::Duration::days(1);
};

/// Ground-truth facts about one probe, for validating the pipeline.
struct ProbeTruth {
  ProbeId probe_id = 0;
  inet::UserId host = 0;            ///< initial host user
  inet::UserId second_host = 0;     ///< nonzero when the probe relocated
  bool on_dynamic_pool = false;     ///< host leases from a pool
  bool on_fast_pool = false;        ///< ... with mean lease <= 1 day
  bool relocated = false;
};

class AtlasFleet {
 public:
  /// An optional fault injector models controller-side collection gaps:
  /// records falling inside an atlas-gap episode never reach the log (the
  /// probe stayed connected; the controller lost the data). nullptr or an
  /// empty plan leaves the log bit-identical. The injector is consulted
  /// during construction only — it need not outlive the fleet.
  ///
  /// Probes are independent — each draws from its own counter-derived RNG
  /// substream — so with a thread pool they simulate in parallel and merge
  /// back in probe-index order. The log and truths are byte-identical for
  /// any pool size (nullptr = serial).
  AtlasFleet(const inet::World& world, const FleetConfig& config,
             sim::FaultInjector* faults = nullptr,
             net::ThreadPool* pool = nullptr);

  /// Rebuilds a fleet from previously captured products — the compressed
  /// log, the truths, and the three counters — without re-simulating any
  /// probe. Publishes the same end-of-stage atlas_ metrics the simulating
  /// constructor does, so a run restored from cache carries the fleet's
  /// real numbers in its manifest. The caller is responsible for only
  /// restoring products that were produced by an identical (world, config,
  /// fault plan) triple; the scenario cache keys its fleet section on a
  /// fleet-config fingerprint for exactly that reason.
  [[nodiscard]] static AtlasFleet restore(CompressedLog log,
                                          std::vector<ProbeTruth> truths,
                                          std::uint64_t records_suppressed,
                                          std::uint64_t allocations,
                                          std::uint64_t gap_bridged_days);

  /// The run-compressed connection log (probe-major).
  [[nodiscard]] const CompressedLog& compressed_log() const { return log_; }

  /// Materializes the full record vector in (time, probe) order — exactly
  /// the log a record-at-a-time fleet emitted. O(record count); use for CSV
  /// export and tests, not in scaling paths.
  [[nodiscard]] std::vector<ConnectionRecord> expand_log() const {
    return log_.expand();
  }

  /// Records in the log, counted arithmetically from the runs.
  [[nodiscard]] std::uint64_t record_count() const {
    return log_.record_count();
  }

  [[nodiscard]] const std::vector<ProbeTruth>& truths() const {
    return truths_;
  }
  [[nodiscard]] const ProbeTruth& truth(ProbeId id) const {
    return truths_.at(id - 1);
  }

  [[nodiscard]] std::size_t probe_count() const { return truths_.size(); }

  /// Records swallowed by controller gaps (0 without faults).
  [[nodiscard]] std::uint64_t records_suppressed() const {
    return records_suppressed_;
  }

  /// Address allocations the fleet lived through: one per lease segment for
  /// probes on dynamic pools, one per (host, span) for fixed lines. Counted
  /// at the allocation itself, so a controller gap that swallows the record
  /// does not hide the allocation.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

  /// Probe-days bridged over controller gaps: (probe, day) pairs where the
  /// probe stayed connected but an atlas-gap episode swallowed at least one
  /// of its records that day, summed over probes (0 without faults).
  [[nodiscard]] std::uint64_t gap_bridged_days() const {
    return gap_bridged_days_;
  }

 private:
  AtlasFleet() = default;  ///< restore() fills the members directly

  /// Aggregates the finished products into the atlas_ metric family; called
  /// once at the end of construction (simulated or restored).
  void publish_metrics() const;

  /// One probe's entire simulated life: its truth, the runs it produced,
  /// and how many records controller gaps swallowed. Built independently per
  /// probe, merged in probe-index order.
  struct ProbeOutcome {
    ProbeTruth truth;
    std::vector<LogRun> runs;
    std::uint64_t suppressed = 0;
    std::uint64_t allocations = 0;
    /// Distinct days with >= 1 suppressed record; times are emitted in
    /// increasing order, so a last-day watermark suffices.
    std::uint64_t suppressed_days = 0;
    std::int64_t last_suppressed_day = -1;
  };

  /// Merged, begin-sorted atlas-gap windows as plain second bounds. Only
  /// record times inside one of these can be suppressed, so run emission
  /// consults the injector exclusively inside them.
  using GapWindows = std::vector<std::pair<std::int64_t, std::int64_t>>;

  [[nodiscard]] static ProbeOutcome simulate_probe(std::size_t p,
                                                   const inet::World& world,
                                                   const FleetConfig& config,
                                                   sim::FaultInjector* faults,
                                                   const GapWindows& gaps);
  static void emit_for_host(ProbeOutcome& out, const inet::World& world,
                            inet::UserId host, net::TimeWindow span,
                            net::Duration keepalive,
                            sim::FaultInjector* faults,
                            const GapWindows& gaps);

  std::uint64_t records_suppressed_ = 0;
  std::uint64_t allocations_ = 0;
  std::uint64_t gap_bridged_days_ = 0;
  CompressedLog log_;
  std::vector<ProbeTruth> truths_;
};

}  // namespace reuse::atlas
