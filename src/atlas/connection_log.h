// RIPE-Atlas-style probe connection log records.
//
// The dynamic-address pipeline consumes only this schema: which probe was
// seen with which address (and AS) at what time. Serialisation to/from CSV
// lets the pipeline run on externally supplied logs as well.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "internet/types.h"
#include "netbase/ipv4.h"

namespace reuse::atlas {

using ProbeId = std::uint32_t;

struct ConnectionRecord {
  std::int64_t time_seconds = 0;
  ProbeId probe_id = 0;
  net::Ipv4Address address;
  inet::Asn asn = 0;

  friend bool operator==(const ConnectionRecord&,
                         const ConnectionRecord&) = default;
};

/// Writes records as CSV: time,probe_id,address,asn (one header line).
void write_csv(std::ostream& os, const std::vector<ConnectionRecord>& records);

/// Parses the CSV format written by write_csv. Returns nullopt on malformed
/// input (wrong column count, bad address, non-numeric fields).
[[nodiscard]] std::optional<std::vector<ConnectionRecord>> read_csv(
    std::istream& is);

/// Parses a single CSV data line (exposed for incremental/streaming use).
[[nodiscard]] std::optional<ConnectionRecord> parse_record(std::string_view line);

}  // namespace reuse::atlas
