// On-disk cache of the expensive scenario results.
//
// The bench suite is one binary per table/figure; without a cache each
// binary would redo the same multi-minute simulation. The cache stores the
// two costly products — the crawl output and the blocklist presence store —
// keyed by an FNV-1a fingerprint of the full scenario configuration;
// everything else (world, fleet, pipeline, catalogue) is deterministic and
// cheap to rebuild.
//
// File format (little-endian; see DESIGN.md "Scenario cache format"):
//   magic, format version, calibration version, config fingerprint,
//   seed, as_count, payload size, payload FNV-1a checksum, payload.
// The payload holds the crawl output and the presence store, both written
// in sorted order so the same configuration always produces byte-identical
// files. Writers publish atomically: the file is assembled under
// `<path>.tmp.<pid>` and rename()d into place, so concurrent readers see
// either the previous complete cache or the new one, never a partial write.
// Concurrent writers race benignly — every candidate is complete and
// equivalent, and the last rename wins.
#pragma once

#include <optional>
#include <string>

#include "analysis/scenario.h"
#include "netbase/metrics.h"

namespace reuse::analysis {

/// The cached products of the fleet stage, keyed by a fingerprint of the
/// fleet configuration (which is deliberately OUTSIDE config_fingerprint:
/// configs differing only in fleet knobs share one cache file, so the fleet
/// section carries its own key and a mismatch just re-simulates the fleet,
/// exactly like the payload-v5 behaviour).
struct CachedFleet {
  std::uint64_t fingerprint = 0;
  atlas::CompressedLog log;
  std::vector<atlas::ProbeTruth> truths;
  std::uint64_t records_suppressed = 0;
  std::uint64_t allocations = 0;
  std::uint64_t gap_bridged_days = 0;
};

/// The cached heavy products of a scenario run.
struct CachedCore {
  CrawlOutput crawl;
  blocklist::EcosystemResult ecosystem;
  /// Injector-side fault ledger of the run that produced the cache. The
  /// atlas counter is refreshed from the (recomputed) fleet on load when
  /// the fleet section cannot be restored.
  sim::FaultStats injected;
  /// End-of-run feed cursors (payload v6): present on every cache written
  /// by a full run, and what evolve_scenario_cached() resumes from.
  bool has_carry = false;
  blocklist::EcosystemCarry carry;
  /// Fleet products (payload v6); restored on load when `fleet.fingerprint`
  /// matches the loading config's fleet fingerprint.
  bool has_fleet = false;
  CachedFleet fleet;
};

/// Fingerprint of the fleet knobs that shape the fleet products but sit
/// outside config_fingerprint (seed is derived from the scenario seed,
/// which IS inside). Keys the cache's fleet section.
[[nodiscard]] std::uint64_t fleet_config_fingerprint(
    const atlas::FleetConfig& fleet);

/// Writes the cache atomically (tmp file + rename); returns false on I/O
/// failure, in which case no partial file is left at `path`. `injected` is
/// the fault ledger of the producing run (empty for fault-free runs).
/// `carry` and `fleet` fill the v6 resume sections when provided; without
/// them the file still loads but cannot seed an evolved run or restore the
/// fleet stage.
bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem,
                         const sim::FaultStats& injected = {},
                         const blocklist::EcosystemCarry* carry = nullptr,
                         const atlas::AtlasFleet* fleet = nullptr);

/// Loads the cache if the file exists, parses, passes the payload checksum,
/// and matches `config`'s fingerprint; nullopt otherwise. Truncated or
/// bit-flipped files are rejected without unbounded reads.
[[nodiscard]] std::optional<CachedCore> load_scenario_cache(
    const std::string& path, const ScenarioConfig& config);

/// A Scenario-equivalent built around the cache: world/catalogue/fleet/
/// pipeline are recomputed (fast, deterministic); crawl and ecosystem come
/// from the cache when possible, else are simulated and then cached. The
/// census is recomputed only when `config.run_census` is set.
struct CachedScenario {
  ScenarioConfig config;
  inet::World world;
  std::vector<blocklist::BlocklistInfo> catalogue;
  blocklist::EcosystemResult ecosystem;
  CrawlOutput crawl;
  atlas::AtlasFleet fleet;
  dynadetect::PipelineResult pipeline;
  census::CensusResult census;
  DegradationReport degradation;
  bool cache_hit = false;
  /// Wall-clock per stage of this load-or-run (cache hits report
  /// "cache-load" plus the recomputed stages; misses report the full run).
  /// Appended after `cache_hit` so the positional aggregate initializers
  /// stay valid; assigned after construction.
  StageTimer stage_times;
};

/// Standard cache location for the bench binaries:
/// `reuse_scenario_<seed>_<fingerprint>.cache`, placed in $REUSE_CACHE_DIR
/// when that environment variable is set, else the working directory.
/// Distinct configurations map to distinct files, so two benches with
/// different knobs never share or evict each other's cache.
[[nodiscard]] std::string default_cache_path(const ScenarioConfig& config);

[[nodiscard]] CachedScenario run_scenario_cached(ScenarioConfig config,
                                                 const std::string& path = {});

/// `config` with the last collection period extended by `extra_days` whole
/// days — the shape of scenario evolve_scenario_cached() produces. The
/// horizon (and every other knob) is inherited unchanged, so a base run
/// whose horizon_days already covers the extension yields byte-identical
/// resumed products.
[[nodiscard]] ScenarioConfig extend_scenario_days(ScenarioConfig config,
                                                  int extra_days);

/// How evolve_scenario_cached() obtained its result.
enum class EvolvePath {
  kResumed,   ///< base cache found; only the +K tail was simulated
  kFreshRun,  ///< no usable base cache (or horizon too short): full run
};

struct EvolvedScenario {
  CachedScenario scenario;
  EvolvePath path = EvolvePath::kFreshRun;
};

/// Evolves a cached N-day scenario K days forward: loads `base_config`'s
/// cache (at `base_path` or its default location), restores the per-feed
/// cursors, streams ONLY the [N, N+K) slice of the abuse stream through
/// the feeds, folds the new-era recordings into the cached store, reuses
/// the cached crawl when the blocklisted /24 set is unchanged (else re-runs
/// the crawl stage), restores the fleet products when the fleet section
/// matches, and recomputes the cheap stages — producing a scenario
/// byte-identical (products fingerprint) to a fresh run of the extended
/// config. Requires base_config.horizon_days to cover the extension; if it
/// does not, or no usable base cache exists, falls back to a fresh
/// run_scenario_cached() of the extended config. Either way the extended
/// scenario is saved to `extended_path` (or its default location), so
/// evolves chain: N -> N+K -> N+2K each resume from the previous file.
[[nodiscard]] EvolvedScenario evolve_scenario_cached(
    ScenarioConfig base_config, int extra_days,
    const std::string& base_path = {}, const std::string& extended_path = {});

/// Registry handles for the cache_ metric family, registered on first use.
/// Shared by the loader/saver and the run-manifest writer, so a run that
/// never consults the cache still exports the family (at zero).
struct CacheMetrics {
  net::metrics::Counter& hits;           ///< valid cache files restored
  net::metrics::Counter& misses;         ///< file absent or unreadable
  net::metrics::Counter& rejects;        ///< present but failed validation
  net::metrics::Counter& saves;          ///< cache files written
  net::metrics::Counter& bytes_read;     ///< payload bytes of restored caches
  net::metrics::Counter& bytes_written;  ///< payload bytes of saved caches
};
CacheMetrics& cache_metrics();

/// Checks whether `path` can serve as a cache file before any simulation
/// work is spent: an existing path must be a readable regular file, and a
/// missing one needs an existing, writable parent directory. Returns a
/// human-readable error, or nullopt when the path is usable. The CLI fails
/// fast on this instead of silently simulating afresh.
[[nodiscard]] std::optional<std::string> preflight_cache_path(
    const std::string& path);

}  // namespace reuse::analysis
