// On-disk cache of the expensive scenario results.
//
// The bench suite is one binary per table/figure; without a cache each
// binary would redo the same multi-minute simulation. The cache stores the
// two costly products — the crawl output and the blocklist presence store —
// keyed by an FNV-1a fingerprint of the full scenario configuration;
// everything else (world, fleet, pipeline, catalogue) is deterministic and
// cheap to rebuild.
//
// File format (little-endian; see DESIGN.md "Scenario cache format"):
//   magic, format version, calibration version, config fingerprint,
//   seed, as_count, payload size, payload FNV-1a checksum, payload.
// The payload holds the crawl output and the presence store, both written
// in sorted order so the same configuration always produces byte-identical
// files. Writers publish atomically: the file is assembled under
// `<path>.tmp.<pid>` and rename()d into place, so concurrent readers see
// either the previous complete cache or the new one, never a partial write.
// Concurrent writers race benignly — every candidate is complete and
// equivalent, and the last rename wins.
#pragma once

#include <optional>
#include <string>

#include "analysis/scenario.h"
#include "netbase/metrics.h"

namespace reuse::analysis {

/// The cached heavy products of a scenario run.
struct CachedCore {
  CrawlOutput crawl;
  blocklist::EcosystemResult ecosystem;
  /// Injector-side fault ledger of the run that produced the cache. The
  /// atlas counter is refreshed from the (recomputed) fleet on load.
  sim::FaultStats injected;
};

/// Writes the cache atomically (tmp file + rename); returns false on I/O
/// failure, in which case no partial file is left at `path`. `injected` is
/// the fault ledger of the producing run (empty for fault-free runs).
bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem,
                         const sim::FaultStats& injected = {});

/// Loads the cache if the file exists, parses, passes the payload checksum,
/// and matches `config`'s fingerprint; nullopt otherwise. Truncated or
/// bit-flipped files are rejected without unbounded reads.
[[nodiscard]] std::optional<CachedCore> load_scenario_cache(
    const std::string& path, const ScenarioConfig& config);

/// A Scenario-equivalent built around the cache: world/catalogue/fleet/
/// pipeline are recomputed (fast, deterministic); crawl and ecosystem come
/// from the cache when possible, else are simulated and then cached. The
/// census is recomputed only when `config.run_census` is set.
struct CachedScenario {
  ScenarioConfig config;
  inet::World world;
  std::vector<blocklist::BlocklistInfo> catalogue;
  blocklist::EcosystemResult ecosystem;
  CrawlOutput crawl;
  atlas::AtlasFleet fleet;
  dynadetect::PipelineResult pipeline;
  census::CensusResult census;
  DegradationReport degradation;
  bool cache_hit = false;
  /// Wall-clock per stage of this load-or-run (cache hits report
  /// "cache-load" plus the recomputed stages; misses report the full run).
  /// Appended after `cache_hit` so the positional aggregate initializers
  /// stay valid; assigned after construction.
  StageTimer stage_times;
};

/// Standard cache location for the bench binaries:
/// `reuse_scenario_<seed>_<fingerprint>.cache`, placed in $REUSE_CACHE_DIR
/// when that environment variable is set, else the working directory.
/// Distinct configurations map to distinct files, so two benches with
/// different knobs never share or evict each other's cache.
[[nodiscard]] std::string default_cache_path(const ScenarioConfig& config);

[[nodiscard]] CachedScenario run_scenario_cached(ScenarioConfig config,
                                                 const std::string& path = {});

/// Registry handles for the cache_ metric family, registered on first use.
/// Shared by the loader/saver and the run-manifest writer, so a run that
/// never consults the cache still exports the family (at zero).
struct CacheMetrics {
  net::metrics::Counter& hits;           ///< valid cache files restored
  net::metrics::Counter& misses;         ///< file absent or unreadable
  net::metrics::Counter& rejects;        ///< present but failed validation
  net::metrics::Counter& saves;          ///< cache files written
  net::metrics::Counter& bytes_read;     ///< payload bytes of restored caches
  net::metrics::Counter& bytes_written;  ///< payload bytes of saved caches
};
CacheMetrics& cache_metrics();

/// Checks whether `path` can serve as a cache file before any simulation
/// work is spent: an existing path must be a readable regular file, and a
/// missing one needs an existing, writable parent directory. Returns a
/// human-readable error, or nullopt when the path is usable. The CLI fails
/// fast on this instead of silently simulating afresh.
[[nodiscard]] std::optional<std::string> preflight_cache_path(
    const std::string& path);

}  // namespace reuse::analysis
