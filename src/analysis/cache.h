// On-disk cache of the expensive scenario results.
//
// The bench suite is one binary per table/figure; without a cache each
// binary would redo the same multi-minute simulation. The cache stores the
// two costly products — the crawl output and the blocklist presence store —
// keyed by the scenario seed and scale; everything else (world, fleet,
// pipeline, catalogue) is deterministic and cheap to rebuild.
#pragma once

#include <optional>
#include <string>

#include "analysis/scenario.h"

namespace reuse::analysis {

/// The cached heavy products of a scenario run.
struct CachedCore {
  CrawlOutput crawl;
  blocklist::EcosystemResult ecosystem;
};

/// Writes the cache; returns false on I/O failure.
bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem);

/// Loads the cache if the file exists, parses, and matches `config`'s seed
/// and world scale; nullopt otherwise.
[[nodiscard]] std::optional<CachedCore> load_scenario_cache(
    const std::string& path, const ScenarioConfig& config);

/// A Scenario-equivalent built around the cache: world/catalogue/fleet/
/// pipeline are recomputed (fast, deterministic); crawl and ecosystem come
/// from the cache when possible, else are simulated and then cached. The
/// census is recomputed only when `config.run_census` is set.
struct CachedScenario {
  ScenarioConfig config;
  inet::World world;
  std::vector<blocklist::BlocklistInfo> catalogue;
  blocklist::EcosystemResult ecosystem;
  CrawlOutput crawl;
  atlas::AtlasFleet fleet;
  dynadetect::PipelineResult pipeline;
  census::CensusResult census;
  bool cache_hit = false;
};

/// Standard cache location for the bench binaries.
[[nodiscard]] std::string default_cache_path(const ScenarioConfig& config);

[[nodiscard]] CachedScenario run_scenario_cached(ScenarioConfig config,
                                                 const std::string& path = {});

}  // namespace reuse::analysis
