#include "analysis/degradation.h"

#include <sstream>

#include "netbase/table.h"

namespace reuse::analysis {
namespace {

void check(std::vector<std::string>& failures, bool ok, const char* law,
           std::uint64_t lhs, std::uint64_t rhs) {
  if (ok) return;
  std::ostringstream message;
  message << law << ": " << lhs << " != " << rhs;
  failures.push_back(message.str());
}

}  // namespace

bool DegradationReport::degraded() const {
  // Only counters that cannot fire without an injector count: the retry and
  // gap-cap machinery also runs under natural loss and churn, and a
  // fault-free run must never read as degraded.
  return injected.total() > 0 || transport_request_drops > 0 ||
         transport_response_drops > 0 || feed_snapshots_missed > 0 ||
         feeds_quarantined > 0 || feeds_salvaged > 0 ||
         feed_entries_discarded > 0 || atlas_records_suppressed > 0;
}

std::vector<std::string> DegradationReport::reconciliation_failures() const {
  std::vector<std::string> failures;
  const std::uint64_t injected_requests =
      injected.burst_request_drops + injected.bootstrap_blackholes;
  check(failures, transport_request_drops == injected_requests,
        "transport request drops vs injected", transport_request_drops,
        injected_requests);
  check(failures, transport_response_drops == injected.burst_response_drops,
        "transport response drops vs injected", transport_response_drops,
        injected.burst_response_drops);
  check(failures, feed_snapshots_missed == injected.feed_snapshots_suppressed,
        "feed snapshots missed vs suppressed", feed_snapshots_missed,
        injected.feed_snapshots_suppressed);
  check(failures,
        feeds_quarantined + feeds_salvaged == injected.feeds_corrupted,
        "quarantined+salvaged vs corrupted",
        feeds_quarantined + feeds_salvaged, injected.feeds_corrupted);
  check(failures, atlas_records_suppressed == injected.atlas_records_suppressed,
        "atlas records suppressed vs injected", atlas_records_suppressed,
        injected.atlas_records_suppressed);
  return failures;
}

std::string DegradationReport::to_string() const {
  net::AsciiTable table({"Subsystem", "Counter", "Injected", "Observed"});
  auto row = [&](const char* subsystem, const char* counter,
                 std::uint64_t injected_count, std::uint64_t observed) {
    table.add_row({subsystem, counter,
                   net::with_thousands(static_cast<std::int64_t>(injected_count)),
                   net::with_thousands(static_cast<std::int64_t>(observed))});
  };
  row("transport", "request drops (burst+bootstrap)",
      injected.burst_request_drops + injected.bootstrap_blackholes,
      transport_request_drops);
  row("transport", "response drops (burst)", injected.burst_response_drops,
      transport_response_drops);
  row("crawler", "bootstrap retries / recoveries", bootstrap_retries,
      bootstrap_recoveries);
  row("crawler", "verification retries / recoveries", verification_retries,
      verification_recoveries);
  row("blocklist", "snapshots missed", injected.feed_snapshots_suppressed,
      feed_snapshots_missed);
  row("blocklist", "feeds quarantined / salvaged", feeds_quarantined,
      feeds_salvaged);
  row("blocklist", "entries discarded / lines skipped", feed_entries_discarded,
      feed_lines_skipped);
  row("atlas", "records suppressed", injected.atlas_records_suppressed,
      atlas_records_suppressed);
  row("dynadetect", "gaps capped / probes affected", change_gaps_capped,
      probes_gap_affected);

  std::ostringstream out;
  out << table.to_string();
  const std::vector<std::string> failures = reconciliation_failures();
  if (failures.empty()) {
    out << "reconciliation: OK ("
        << net::with_thousands(static_cast<std::int64_t>(injected.total()))
        << " faults injected, all accounted for)\n";
  } else {
    out << "reconciliation: FAILED\n";
    for (const std::string& failure : failures) {
      out << "  " << failure << "\n";
    }
  }
  return out.str();
}

DegradationReport build_degradation_report(
    const sim::FaultStats& injected, const crawler::CrawlStats& crawl,
    std::uint64_t transport_request_drops,
    std::uint64_t transport_response_drops,
    const blocklist::EcosystemStats& ecosystem, std::uint64_t atlas_suppressed,
    const dynadetect::PipelineResult& pipeline) {
  DegradationReport report;
  report.injected = injected;
  report.transport_request_drops = transport_request_drops;
  report.transport_response_drops = transport_response_drops;
  report.bootstrap_retries = crawl.bootstrap_retries;
  report.bootstrap_recoveries = crawl.bootstrap_recoveries;
  report.verification_retries = crawl.verification_retries;
  report.verification_recoveries = crawl.verification_recoveries;
  report.feed_snapshots_missed = ecosystem.snapshots_missed;
  report.feeds_quarantined = ecosystem.feeds_quarantined;
  report.feeds_salvaged = ecosystem.feeds_salvaged;
  report.feed_entries_discarded = ecosystem.entries_discarded;
  report.feed_lines_skipped = ecosystem.feed_lines_skipped;
  report.atlas_records_suppressed = atlas_suppressed;
  report.change_gaps_capped = pipeline.change_gaps_capped;
  report.probes_gap_affected = pipeline.probes_gap_affected;
  return report;
}

}  // namespace reuse::analysis
