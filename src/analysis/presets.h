// Named scenario presets: ISP-mix and adversarial variants of a base config.
//
// Each preset is a deterministic transform over a caller-supplied
// ScenarioConfig — it rewrites generator knobs, never seeds or scale, so one
// base config (test/bench/world-scale) fans out into comparable variants
// whose differences are exactly the ISP mix. The sweep runner (src/sweep)
// crosses these presets with parameter axes; reuse_study exposes them via
// --preset. Registry order is fixed and meaningful: sweeps report every cell
// relative to the first preset (`baseline`).
#pragma once

#include <string>
#include <vector>

#include "analysis/scenario.h"

namespace reuse::analysis {

/// One named configuration transform. `apply` must be deterministic and
/// depend only on its argument — the preset's config_fingerprint is golden-
/// tested, so any change to a transform is a visible calibration event.
struct ScenarioPreset {
  const char* name;
  /// One-line description for --list-presets and the sweep report.
  const char* summary;
  void (*apply)(ScenarioConfig& config);
};

/// All presets, in registry order: baseline (identity), cgn_dominant,
/// dhcp_churn, static_enterprise, adversarial_evasion.
[[nodiscard]] const std::vector<ScenarioPreset>& scenario_presets();

/// Looks a preset up by exact name; nullptr when unknown. CLIs exit 2 on
/// nullptr, listing `preset_names()`.
[[nodiscard]] const ScenarioPreset* parse_preset(const std::string& name);

/// Comma-separated registry names, for error messages and --list-presets.
[[nodiscard]] std::string preset_names();

}  // namespace reuse::analysis
