#include "analysis/manifest.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/cache.h"
#include "netbase/json.h"
#include "netbase/mem.h"
#include "netbase/metrics.h"
#include "netbase/thread_pool.h"
#include "simnet/faults.h"

namespace reuse::analysis {
namespace {

std::string hex_fingerprint(std::uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

void append_fault_plan(std::ostringstream& out, const sim::FaultPlan& plan) {
  out << "{\"seed\": " << plan.seed
      << ", \"episodes\": " << plan.episodes.size() << ", \"by_kind\": {";
  // std::map: kinds render in sorted order, so equal plans render equally.
  std::map<std::string, std::size_t> by_kind;
  for (const sim::FaultEpisode& episode : plan.episodes) {
    ++by_kind[std::string(sim::to_string(episode.kind))];
  }
  bool first = true;
  for (const auto& [kind, count] : by_kind) {
    if (!first) out << ", ";
    first = false;
    out << '"' << net::json_escape(kind) << "\": " << count;
  }
  out << "}}";
}

}  // namespace

std::string run_manifest_json(const RunManifestInfo& info) {
  // Touch the registration hooks of families a run may never exercise, so
  // the snapshot below always covers every instrumented subsystem.
  (void)cache_metrics();
  (void)sim::FaultInjector(sim::FaultPlan{});
  net::detail::note_tasks_run(0);

  std::ostringstream out;
  out << "{\"schema_version\": 1";
  out << ", \"tool\": \"" << net::json_escape(info.tool) << '"';
  out << ", \"calibration_version\": " << kCalibrationVersion;
  if (info.config != nullptr) {
    out << ", \"config_fingerprint\": \""
        << hex_fingerprint(config_fingerprint(*info.config)) << '"';
    out << ", \"seed\": " << info.config->seed;
    out << ", \"jobs\": " << info.config->jobs;
    out << ", \"fault_plan\": ";
    append_fault_plan(out, info.config->faults);
  } else {
    out << ", \"config_fingerprint\": null, \"seed\": null, \"jobs\": null"
        << ", \"fault_plan\": null";
  }
  if (info.cache_hit.has_value()) {
    out << ", \"cache\": {\"consulted\": true, \"hit\": "
        << (*info.cache_hit ? "true" : "false") << '}';
  } else {
    out << ", \"cache\": null";
  }
  if (info.snapshot_fingerprint.has_value()) {
    out << ", \"snapshot_fingerprint\": \""
        << net::json_escape(*info.snapshot_fingerprint) << '"';
  } else {
    out << ", \"snapshot_fingerprint\": null";
  }
  if (info.preset.has_value()) {
    out << ", \"preset\": \"" << net::json_escape(*info.preset) << '"';
  } else {
    out << ", \"preset\": null";
  }
  if (info.sweep_cell_id.has_value()) {
    out << ", \"sweep_cell_id\": \"" << net::json_escape(*info.sweep_cell_id)
        << '"';
  } else {
    out << ", \"sweep_cell_id\": null";
  }
  if (info.stage_times != nullptr) {
    out << ", \"stages\": "
        << info.stage_times->to_json(
               info.config != nullptr ? info.config->jobs : 0);
  } else {
    out << ", \"stages\": null";
  }
  // Memory gauges are sampled here, at manifest time, not during the run:
  // VmHWM/VmRSS are wall-clock-dependent, and setting them any earlier
  // would plant nondeterministic values in metric snapshots that the
  // parallel-equivalence tests compare across jobs values.
  net::metrics::gauge("mem_peak_rss_bytes",
                      "process peak resident set size (VmHWM) at manifest "
                      "time")
      .set(static_cast<std::int64_t>(net::peak_rss_bytes()));
  net::metrics::gauge("mem_current_rss_bytes",
                      "process resident set size (VmRSS) at manifest time")
      .set(static_cast<std::int64_t>(net::current_rss_bytes()));
  out << ", \"metrics\": " << net::metrics::Registry::global().to_json();
  out << '}';
  return out.str();
}

std::optional<std::string> write_run_manifest(const std::string& path,
                                              const RunManifestInfo& info,
                                              net::MetricsFormat format) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return "cannot open metrics output file: " + path;
  if (format == net::MetricsFormat::kPrometheus) {
    // Exposition comments are free-form '#' lines (only HELP/TYPE are
    // structured), so the run identity rides along without breaking
    // scrapers. The manifest proper stays a JSON-only document.
    os << "# run_manifest tool=" << info.tool;
    if (info.config != nullptr) {
      os << " config_fingerprint="
         << hex_fingerprint(config_fingerprint(*info.config));
    }
    if (info.snapshot_fingerprint.has_value()) {
      os << " snapshot_fingerprint=" << *info.snapshot_fingerprint;
    }
    os << '\n' << net::metrics::Registry::global().to_prometheus();
  } else {
    os << run_manifest_json(info) << '\n';
  }
  os.flush();
  if (!os.good()) return "failed writing metrics output file: " + path;
  return std::nullopt;
}

}  // namespace reuse::analysis
