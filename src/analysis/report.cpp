#include "analysis/report.h"

namespace reuse::analysis {

PaperComparison::PaperComparison(std::string title)
    : title_(std::move(title)),
      table_({"metric", "paper", "measured", "note"}) {}

PaperComparison& PaperComparison::row(std::string metric, std::string paper,
                                      std::string measured, std::string note) {
  table_.add_row({std::move(metric), std::move(paper), std::move(measured),
                  std::move(note)});
  return *this;
}

std::string PaperComparison::to_string() const {
  std::string out = "== " + title_ + " ==\n";
  out += table_.to_string();
  return out;
}

}  // namespace reuse::analysis
