#include "analysis/stage_timer.h"

#include <sstream>

#include "netbase/json.h"

namespace reuse::analysis {

void StageTimer::record(std::string_view stage, double millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same-name scopes (re-runs, nested sub-stages, concurrent shard workers)
  // fold into the existing entry so the JSON stays one value per stage.
  for (StageTiming& timing : timings_) {
    if (timing.stage == stage) {
      timing.millis += millis;
      ++timing.scopes;
      return;
    }
  }
  timings_.push_back(StageTiming{std::string(stage), millis, 1});
}

std::vector<StageTiming> StageTimer::timings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timings_;
}

double StageTimer::total_millis() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const StageTiming& timing : timings_) {
    // Sub-stages ("crawl.events") already ran inside their parent scope.
    if (timing.stage.find('.') != std::string::npos) continue;
    total += timing.millis;
  }
  return total;
}

double StageTimer::millis(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const StageTiming& timing : timings_) {
    if (timing.stage == stage) return timing.millis;
  }
  return 0.0;
}

std::string StageTimer::to_json(int jobs) const {
  const std::vector<StageTiming> snapshot = timings();
  double total = 0.0;
  for (const StageTiming& timing : snapshot) total += timing.millis;
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"jobs\": " << jobs << ", \"total_millis\": " << total
      << ", \"stages\": {";
  bool first = true;
  for (const StageTiming& timing : snapshot) {
    if (!first) out << ", ";
    first = false;
    out << '"' << net::json_escape(timing.stage) << "\": " << timing.millis;
  }
  out << "}}";
  return out.str();
}

}  // namespace reuse::analysis
