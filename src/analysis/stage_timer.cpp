#include "analysis/stage_timer.h"

#include <sstream>

#include "netbase/json.h"

namespace reuse::analysis {

void StageTimer::record(std::string_view stage, double millis) {
  // Re-running a stage (e.g. a second scenario on the same timer) folds
  // into the existing entry so the JSON stays one value per stage.
  for (StageTiming& timing : timings_) {
    if (timing.stage == stage) {
      timing.millis += millis;
      return;
    }
  }
  timings_.push_back(StageTiming{std::string(stage), millis});
}

double StageTimer::total_millis() const {
  double total = 0.0;
  for (const StageTiming& timing : timings_) total += timing.millis;
  return total;
}

double StageTimer::millis(std::string_view stage) const {
  for (const StageTiming& timing : timings_) {
    if (timing.stage == stage) return timing.millis;
  }
  return 0.0;
}

std::string StageTimer::to_json(int jobs) const {
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"jobs\": " << jobs << ", \"total_millis\": " << total_millis()
      << ", \"stages\": {";
  bool first = true;
  for (const StageTiming& timing : timings_) {
    if (!first) out << ", ";
    first = false;
    out << '"' << net::json_escape(timing.stage) << "\": " << timing.millis;
  }
  out << "}}";
  return out.str();
}

}  // namespace reuse::analysis
