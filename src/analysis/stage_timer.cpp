#include "analysis/stage_timer.h"

#include <sstream>

#include "netbase/json.h"

namespace reuse::analysis {

void StageTimer::record(std::string_view stage, double millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same-name scopes (re-runs, nested sub-stages, concurrent shard workers)
  // fold into the existing entry so the JSON stays one value per stage.
  for (StageTiming& timing : timings_) {
    if (timing.stage == stage) {
      timing.millis += millis;
      ++timing.scopes;
      return;
    }
  }
  timings_.push_back(StageTiming{std::string(stage), millis, 0.0, 1});
}

void StageTimer::record_cpu(std::string_view stage, double cpu_millis) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (StageTiming& timing : timings_) {
    if (timing.stage == stage) {
      timing.cpu_millis += cpu_millis;
      return;
    }
  }
  // Entry exists purely for CPU attribution: zero wall, zero scopes.
  timings_.push_back(StageTiming{std::string(stage), 0.0, cpu_millis, 0});
}

std::vector<StageTiming> StageTimer::timings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return timings_;
}

double StageTimer::total_millis() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const StageTiming& timing : timings_) {
    // Sub-stages ("crawl.events") already ran inside their parent scope.
    if (timing.stage.find('.') != std::string::npos) continue;
    total += timing.millis;
  }
  return total;
}

double StageTimer::millis(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const StageTiming& timing : timings_) {
    if (timing.stage == stage) return timing.millis;
  }
  return 0.0;
}

double StageTimer::cpu_millis(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const StageTiming& timing : timings_) {
    if (timing.stage == stage) return timing.cpu_millis;
  }
  return 0.0;
}

std::string StageTimer::to_json(int jobs) const {
  const std::vector<StageTiming> snapshot = timings();
  double total = 0.0;
  for (const StageTiming& timing : snapshot) {
    // Top-level stages only, matching total_millis(): a dotted sub-stage's
    // wall-clock already elapsed inside its parent scope.
    if (timing.stage.find('.') != std::string::npos) continue;
    total += timing.millis;
  }
  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"jobs\": " << jobs << ", \"total_millis\": " << total
      << ", \"stages\": {";
  bool first = true;
  for (const StageTiming& timing : snapshot) {
    if (!first) out << ", ";
    first = false;
    out << '"' << net::json_escape(timing.stage) << "\": " << timing.millis;
  }
  out << "}";
  bool any_cpu = false;
  for (const StageTiming& timing : snapshot) {
    if (timing.cpu_millis <= 0.0) continue;
    out << (any_cpu ? ", " : ", \"stages_cpu\": {");
    any_cpu = true;
    out << '"' << net::json_escape(timing.stage)
        << "\": " << timing.cpu_millis;
  }
  if (any_cpu) out << "}";
  out << "}";
  return out.str();
}

}  // namespace reuse::analysis
