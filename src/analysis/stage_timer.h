// Wall-clock accounting for the scenario runner's stages.
//
// Every stage of a scenario run (world build, ecosystem, crawl, fleet,
// pipeline, census, cache load) records its duration here; the bench
// binaries serialize the result as machine-readable JSON
// (BENCH_scenario.json) so perf regressions across --jobs settings are
// visible in CI artifacts, not just in someone's terminal scrollback.
//
// Timing is observability only: it never feeds back into the simulation, so
// it cannot perturb determinism.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace reuse::analysis {

struct StageTiming {
  std::string stage;
  double millis = 0.0;
  /// CPU-milliseconds summed across worker threads (record_cpu). Kept
  /// separate from `millis` on purpose: a parallel region's per-worker
  /// scopes overlap in wall-clock, so summing them into `millis` would
  /// make a sub-stage "longer" than its enclosing stage (the jobs=8
  /// attribution bug this field fixed). 0 for stages that never record
  /// CPU attribution.
  double cpu_millis = 0.0;
  /// Scopes recorded under this name (a re-run or nested sub-stage
  /// aggregates rather than replacing the entry, so millis is a sum).
  std::uint64_t scopes = 0;
};

class StageTimer {
 public:
  StageTimer() = default;
  /// Movable so Scenario/CachedScenario stay movable. The mutex is not
  /// moved (each timer owns a fresh one); moving while another thread
  /// records into the source is a caller bug, as with any container.
  StageTimer(StageTimer&& other) noexcept : timings_(other.take()) {}
  StageTimer& operator=(StageTimer&& other) noexcept {
    if (this != &other) {
      std::vector<StageTiming> moved = other.take();
      std::lock_guard<std::mutex> lock(mutex_);
      timings_ = std::move(moved);
    }
    return *this;
  }

  /// Folds `millis` into the entry for `stage`, creating it on first use.
  /// Same-name recordings — a stage run twice, nested sub-scopes, or
  /// overlapping scopes on concurrent shard workers — accumulate; nothing
  /// is ever overwritten. Thread-safe: the sharded crawl records its
  /// per-shard sub-stages from pool workers while the scenario thread owns
  /// the enclosing "crawl" scope.
  void record(std::string_view stage, double millis);

  /// Folds CPU-milliseconds (work summed across threads) into the entry for
  /// `stage`, creating it with zero wall-clock on first use. Use this — not
  /// record() — for per-worker scope sums from parallel regions, so
  /// wall-clock attribution stays exclusive.
  void record_cpu(std::string_view stage, double cpu_millis);

  /// Snapshot of the timings in first-recorded order (by value: concurrent
  /// recorders may still be appending).
  [[nodiscard]] std::vector<StageTiming> timings() const;
  /// Sum over top-level stages only. Sub-stage entries (names containing
  /// '.', e.g. "crawl.events" inside "crawl") are attribution detail whose
  /// time is already inside their parent scope — counting them would double
  /// the total.
  [[nodiscard]] double total_millis() const;
  /// Aggregated duration of one stage; 0 when it never ran.
  [[nodiscard]] double millis(std::string_view stage) const;
  /// Aggregated CPU attribution of one stage; 0 when none was recorded.
  [[nodiscard]] double cpu_millis(std::string_view stage) const;

  /// One JSON object: {"jobs": N, "total_millis": ..., "stages": {...},
  /// "stages_cpu": {...}} — stages_cpu holds only entries that recorded
  /// CPU attribution, and is omitted when none did.
  [[nodiscard]] std::string to_json(int jobs) const;

  /// Runs `fn`, records its wall-clock under `stage`, and forwards its
  /// return value (also works for void). The recording happens in a scope
  /// guard, so a stage aborted by an exception (e.g. under fault
  /// injection) still accounts for the time it spent before throwing.
  template <typename Fn>
  auto time(std::string_view stage, Fn&& fn) {
    struct Guard {
      StageTimer* timer;
      std::string_view stage;
      std::chrono::steady_clock::time_point start;
      ~Guard() {
        // record() may allocate; swallow rather than terminate if that
        // fails while an exception is already unwinding through us.
        try {
          timer->record(stage, elapsed_millis(start));
        } catch (...) {
        }
      }
    } guard{this, stage, std::chrono::steady_clock::now()};
    return std::forward<Fn>(fn)();
  }

 private:
  [[nodiscard]] static double elapsed_millis(
      std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  [[nodiscard]] std::vector<StageTiming> take() {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(timings_);
  }

  mutable std::mutex mutex_;
  std::vector<StageTiming> timings_;
};

}  // namespace reuse::analysis
