// Wall-clock accounting for the scenario runner's stages.
//
// Every stage of a scenario run (world build, ecosystem, crawl, fleet,
// pipeline, census, cache load) records its duration here; the bench
// binaries serialize the result as machine-readable JSON
// (BENCH_scenario.json) so perf regressions across --jobs settings are
// visible in CI artifacts, not just in someone's terminal scrollback.
//
// Timing is observability only: it never feeds back into the simulation, so
// it cannot perturb determinism.
#pragma once

#include <chrono>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace reuse::analysis {

struct StageTiming {
  std::string stage;
  double millis = 0.0;
};

class StageTimer {
 public:
  void record(std::string_view stage, double millis);

  /// Timings in the order the stages ran.
  [[nodiscard]] const std::vector<StageTiming>& timings() const {
    return timings_;
  }
  [[nodiscard]] double total_millis() const;
  /// Duration of one stage; 0 when it never ran.
  [[nodiscard]] double millis(std::string_view stage) const;

  /// One JSON object: {"jobs": N, "total_millis": ..., "stages": {...}}.
  [[nodiscard]] std::string to_json(int jobs) const;

  /// Runs `fn`, records its wall-clock under `stage`, and forwards its
  /// return value (also works for void). The recording happens in a scope
  /// guard, so a stage aborted by an exception (e.g. under fault
  /// injection) still accounts for the time it spent before throwing.
  template <typename Fn>
  auto time(std::string_view stage, Fn&& fn) {
    struct Guard {
      StageTimer* timer;
      std::string_view stage;
      std::chrono::steady_clock::time_point start;
      ~Guard() {
        // record() may allocate; swallow rather than terminate if that
        // fails while an exception is already unwinding through us.
        try {
          timer->record(stage, elapsed_millis(start));
        } catch (...) {
        }
      }
    } guard{this, stage, std::chrono::steady_clock::now()};
    return std::forward<Fn>(fn)();
  }

 private:
  [[nodiscard]] static double elapsed_millis(
      std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  std::vector<StageTiming> timings_;
};

}  // namespace reuse::analysis
