#include "analysis/policy_sim.h"

#include <unordered_map>

namespace reuse::analysis {
namespace {

/// One traffic source drawn from the blocklisted space.
struct Source {
  net::Ipv4Address address;
  std::uint32_t legit_users = 0;   ///< bystanders emitting real sessions
  std::uint32_t abuse_actors = 0;  ///< infected users / servers behind it
};

}  // namespace

std::string_view to_string(FilterPolicy policy) {
  switch (policy) {
    case FilterPolicy::kAllowAll: return "allow all";
    case FilterPolicy::kBlockListed: return "block listed";
    case FilterPolicy::kGreylistReused: return "greylist reused";
  }
  return "?";
}

std::vector<PolicyOutcome> simulate_policies(
    const inet::World& world, const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes, const PolicySimConfig& config) {
  // Build the source population: every blocklisted address, with its ground
  // truth bystander and abuser head-counts.
  std::unordered_set<inet::UserId> infected(world.infected_users().begin(),
                                            world.infected_users().end());
  std::unordered_map<net::Ipv4Address, const inet::NatGroup*> groups;
  for (const inet::NatGroup& group : world.nat_groups()) {
    groups.emplace(group.public_address, &group);
  }

  std::vector<Source> sources;
  sources.reserve(store.address_count());
  for (const net::Ipv4Address address : store.sorted_addresses()) {
    Source source;
    source.address = address;
    if (const auto it = groups.find(address); it != groups.end()) {
      for (const inet::UserId member : it->second->members) {
        if (infected.contains(member)) {
          ++source.abuse_actors;
        } else {
          ++source.legit_users;
        }
      }
    } else {
      switch (world.role_of(address)) {
        case inet::PrefixRole::kServerHosting:
          // Conservatively treat every listed server as an abuser (benign
          // servers rarely end up listed in this world).
          source.abuse_actors = 1;
          break;
        case inet::PrefixRole::kStaticResidential:
          if (world.is_static_occupied(address)) {
            // The listed resident is the abuser while infected; the harmed
            // party is the same household after cleanup — count as one
            // abuser plus one bystander-equivalent (post-cleanup self).
            source.abuse_actors = 1;
            source.legit_users = 1;
          }
          break;
        case inet::PrefixRole::kDynamicPool:
          // The abuser has rotated away with high likelihood; the current
          // leaseholder is an unrelated bystander.
          source.legit_users = 1;
          break;
        default:
          break;
      }
    }
    if (source.legit_users > 0 || source.abuse_actors > 0) {
      sources.push_back(source);
    }
  }

  const auto policies = {FilterPolicy::kAllowAll, FilterPolicy::kBlockListed,
                         FilterPolicy::kGreylistReused};
  std::vector<PolicyOutcome> outcomes;
  for (const FilterPolicy policy : policies) {
    // Common random numbers across policies: one generator seeded per
    // policy-independent stream index.
    net::Rng rng(config.seed);
    PolicyOutcome outcome;
    outcome.policy = policy;
    for (const Source& source : sources) {
      net::Rng source_rng = rng.fork(source.address.value());
      const bool reused = nated.contains(source.address) ||
                          dynamic_prefixes.contains_address(source.address);
      const std::uint64_t legit = source_rng.poisson(
          source.legit_users * config.legit_sessions_per_user_day *
          config.days);
      const std::uint64_t abuse = source_rng.poisson(
          source.abuse_actors * config.abuse_sessions_per_actor_day *
          config.days);
      outcome.legit_sessions += legit;
      outcome.abuse_sessions += abuse;
      switch (policy) {
        case FilterPolicy::kAllowAll:
          outcome.abuse_admitted += abuse;
          break;
        case FilterPolicy::kBlockListed:
          outcome.legit_blocked += legit;
          break;
        case FilterPolicy::kGreylistReused: {
          if (!reused) {
            outcome.legit_blocked += legit;  // still hard-blocked
            break;
          }
          for (std::uint64_t i = 0; i < legit; ++i) {
            if (source_rng.bernoulli(config.legit_retry_rate)) {
              ++outcome.legit_delayed;
            } else {
              ++outcome.legit_blocked;
            }
          }
          for (std::uint64_t i = 0; i < abuse; ++i) {
            outcome.abuse_admitted += source_rng.bernoulli(config.abuse_retry_rate);
          }
          break;
        }
      }
    }
    outcomes.push_back(outcome);
  }
  return outcomes;
}

}  // namespace reuse::analysis
