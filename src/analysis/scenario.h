// End-to-end scenario runner.
//
// Every bench binary reproduces one table or figure from the same measured
// world: synthetic Internet -> abuse stream -> blocklist ecosystem; DHT ->
// crawler; Atlas fleet -> dynamic pipeline; ICMP census. Scenario bundles
// those runs behind one seed + scale knob so each bench stays a thin
// formatter, and the results are plain value types (no live references to
// the simulation machinery).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/degradation.h"
#include "analysis/stage_timer.h"
#include "atlas/fleet.h"
#include "blocklist/ecosystem.h"
#include "census/census.h"
#include "crawler/crawler.h"
#include "dht/network.h"
#include "dynadetect/pipeline.h"
#include "internet/abuse.h"
#include "internet/world.h"
#include "netbase/thread_pool.h"
#include "simnet/faults.h"

namespace reuse::analysis {

/// Bumped whenever generator/ecosystem calibration constants change, so
/// stale scenario caches are rejected (the cache header records it).
/// 14: per-feed / per-probe RNG substreams (deterministic parallelism)
/// changed the ecosystem and fleet products.
/// 15: the crawl runs as `crawl_shards` partitioned vantage simulations
/// (crawler/sharded.h), changing every crawl product.
/// 16: the fleet log is stored run-compressed (atlas/compressed_log.h); the
/// products fingerprint hashes the probe-major runs instead of the expanded
/// per-record log.
inline constexpr std::uint32_t kCalibrationVersion = 16;

struct ScenarioConfig {
  std::uint64_t seed = 42;
  inet::WorldConfig world = inet::bench_world_config();
  /// Crawl length in simulated days (the real crawl ran for the whole
  /// 39/44-day collection; shorter crawls underestimate further).
  int crawl_days = 5;
  dht::DhtNetworkConfig dht;
  crawler::CrawlerConfig crawl;
  /// Independent crawl shard simulations (crawler/sharded.h): each crawls
  /// one hash-partition of the space from its own overlay replica, and the
  /// harvests merge in index order. Part of the config fingerprint — unlike
  /// `jobs`, which only decides how many shards run concurrently, the shard
  /// count changes the products.
  std::size_t crawl_shards = 8;
  /// Restrict the crawler to blocklisted /24s, as the paper did.
  bool restrict_crawler_to_blocklisted = true;
  atlas::FleetConfig fleet;
  dynadetect::PipelineConfig pipeline;
  blocklist::EcosystemConfig ecosystem;
  census::CensusConfig census;
  bool run_census = true;
  /// Fault schedule injected across the whole run (transport, feeds, Atlas).
  /// Empty (the default) keeps every subsystem byte-identical to a run with
  /// no injector at all.
  sim::FaultPlan faults;
  /// Abuse-generation horizon, as an absolute simulated day number. 0 (the
  /// default) resolves to the end of the last collection period. Actor
  /// episode placement depends on the generation window's END, so a run
  /// that will later be evolved past its last period must declare the
  /// final horizon up front — then extending the periods toward that
  /// horizon only *appends* events, and a resumed run is byte-identical to
  /// a fresh one (see DESIGN § incremental pipeline). Ingestion is always
  /// clipped to the periods' span, so for any horizon >= the span end the
  /// products of the *base* run are unchanged.
  int horizon_days = 0;
  /// Worker threads for the parallel stages (ecosystem, fleet, pipeline,
  /// census): 1 = serial, 0 = one per hardware thread. Deliberately NOT part
  /// of `config_fingerprint` (like `run_census`): products are byte-identical
  /// for every value, so every jobs setting shares one cache file.
  int jobs = 1;

  /// Wires sub-seeds and paper-default windows from the master seed.
  void finalize();
};

/// The thread pool a scenario with `jobs` uses: nullptr for serial (jobs
/// <= 1 after resolving 0 to the hardware thread count). Exposed so cache
/// replays and CLI joins can share the scenario's threading policy.
[[nodiscard]] std::unique_ptr<net::ThreadPool> make_scenario_pool(int jobs);

/// Small preset for tests; big preset for bench binaries.
[[nodiscard]] ScenarioConfig test_scenario_config(std::uint64_t seed = 7);
[[nodiscard]] ScenarioConfig bench_scenario_config(std::uint64_t seed = 42);

/// Memory-stress preset: a world past one million addresses with a ~100k
/// probe fleet, a single crawl day, and no census — the configuration
/// bench_worldscale uses to measure addresses/sec and peak RSS of the hot
/// per-address data plane. Products stay byte-identical across `jobs`, like
/// every other preset.
[[nodiscard]] ScenarioConfig world_scale_scenario_config(
    std::uint64_t seed = 42);

/// A representative chaos schedule for `config`: one episode of every
/// FaultKind, placed deterministically from `chaos_seed` — a bootstrap
/// outage at crawl start, a loss burst mid-crawl, a multi-day feed outage
/// and a corruption spell inside the first collection period, and an Atlas
/// controller gap inside the fleet window.
[[nodiscard]] sim::FaultPlan default_chaos_plan(const ScenarioConfig& config,
                                                std::uint64_t chaos_seed);

/// FNV-1a fingerprint of every configuration field that feeds the cached
/// scenario products (crawl + blocklist ecosystem): seed, the full world
/// generator config, crawl length, DHT, crawler, the crawler-restriction
/// flag, and the ecosystem knobs — serialized field-by-field through
/// `netbase/serialize.h` and hashed. Fields the cache loader replays fresh
/// on every load (`fleet`, `pipeline`, `census`, `run_census`) are
/// deliberately excluded so e.g. census and census-less benches keep
/// sharing one cache file. The config is finalized internally, so callers
/// may pass it before or after `finalize()`.
[[nodiscard]] std::uint64_t config_fingerprint(const ScenarioConfig& config);

/// The abuse-generation config a scenario derives from `config`: the
/// 15-day warm-up lead, the per-actor rates from the world config, the
/// abuse sub-seed, and the generation window resolved against
/// `horizon_days`. Exposed for the incremental cache, which re-streams the
/// tail of exactly this stream when it evolves a cached scenario.
[[nodiscard]] inet::AbuseGenConfig scenario_abuse_config(
    const inet::World& world, const ScenarioConfig& config);

/// Crawl outputs copied into plain data (the crawler itself dies with the
/// event queue).
struct CrawlOutput {
  crawler::CrawlStats stats;
  std::unordered_map<net::Ipv4Address, crawler::IpEvidence> evidence;
  std::vector<std::pair<net::Ipv4Address, std::size_t>> nated;
  std::unordered_set<net::Ipv4Address> nated_set;
  std::size_t distinct_node_ids = 0;
  std::size_t dht_peers = 0;
  std::size_t dht_addresses = 0;
  /// Datagrams consumed by fault episodes (TransportStats counters, carried
  /// out of the event-queue scope for the degradation report).
  std::uint64_t transport_fault_request_drops = 0;
  std::uint64_t transport_fault_response_drops = 0;
};

/// Publishes the crawler_ metric family from a finished crawl. Called by
/// the scenario runner after the crawl stage, and by the cache loader when
/// a hit restores the crawl instead of re-running it — either way the run
/// manifest carries the same numbers the crawl actually produced.
void publish_crawl_metrics(const CrawlOutput& crawl);

/// Runs the scenario's sharded crawl stage against `store` (the blocklist
/// presence the crawler restriction reads). Exposed for the incremental
/// cache, which must re-run exactly this stage when an evolved scenario's
/// blocklisted /24 set diverges from the cached one. Folds the shard fault
/// ledgers into `faults` and records the crawl.* sub-stage timings into
/// `stage_times` (both optional).
[[nodiscard]] CrawlOutput run_scenario_crawl(
    const inet::World& world, const blocklist::SnapshotStore& store,
    const ScenarioConfig& config, sim::FaultInjector* faults,
    net::ThreadPool* pool, StageTimer* stage_times);

struct Scenario {
  ScenarioConfig config;
  /// Wall-clock per stage; filled as the constructor runs the stages.
  /// Declared before the subsystems so the timing wrappers in the
  /// member-init list may record into it.
  StageTimer stage_times;
  /// One injector shared by every subsystem so its ledger spans the whole
  /// run. Heap-allocated: subsystems keep raw pointers to it, which must
  /// stay valid when the Scenario is moved. Declared before the subsystems
  /// it feeds (member-init order).
  std::unique_ptr<sim::FaultInjector> injector;
  /// Worker pool for the parallel stages (nullptr = serial). Released at
  /// the end of construction — the products keep no reference to it.
  std::unique_ptr<net::ThreadPool> pool;
  inet::World world;
  std::vector<blocklist::BlocklistInfo> catalogue;
  /// End-of-run feed cursors captured by the ecosystem stage; the scenario
  /// cache saves them (payload v6) so a later run can evolve this scenario
  /// forward instead of replaying it from day 0. Declared before
  /// `ecosystem` so the stage can fill it during member init.
  std::unique_ptr<blocklist::EcosystemCarry> ecosystem_carry;
  blocklist::EcosystemResult ecosystem;
  CrawlOutput crawl;
  atlas::AtlasFleet fleet;
  dynadetect::PipelineResult pipeline;
  census::CensusResult census;
  DegradationReport degradation;

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;
  Scenario(Scenario&&) = default;

  explicit Scenario(ScenarioConfig cfg);
};

/// Convenience: build and run everything.
[[nodiscard]] inline Scenario run_scenario(ScenarioConfig config) {
  return Scenario(std::move(config));
}

/// FNV-1a fingerprint of every scenario *product* (ecosystem store and
/// stats, crawl outputs, fleet log and truths, pipeline funnel and prefix
/// sets, census metrics) in a canonical order. Two runs produced identical
/// results iff their fingerprints match — the equivalence tests and
/// bench_scenario use this to prove --jobs N is byte-identical to --jobs 1.
[[nodiscard]] std::uint64_t products_fingerprint(
    const CrawlOutput& crawl, const blocklist::EcosystemResult& ecosystem,
    const atlas::AtlasFleet& fleet, const dynadetect::PipelineResult& pipeline,
    const census::CensusResult& census);

}  // namespace reuse::analysis
