#include "analysis/greylist.h"

#include <algorithm>

namespace reuse::analysis {

std::vector<ReusedAddressEntry> build_reused_address_list(
    const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes) {
  std::vector<ReusedAddressEntry> entries;
  for (const net::Ipv4Address address : store.sorted_addresses()) {
    ReusedAddressEntry entry;
    entry.address = address;
    entry.nated = nated.contains(address);
    entry.dynamic = dynamic_prefixes.contains_address(address);
    if (entry.nated || entry.dynamic) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(),
            [](const ReusedAddressEntry& a, const ReusedAddressEntry& b) {
              return a.address < b.address;
            });
  return entries;
}

GreylistSplit split_for_greylisting(
    const std::vector<net::Ipv4Address>& snapshot,
    const std::vector<ReusedAddressEntry>& reused) {
  std::unordered_set<net::Ipv4Address> reused_set;
  reused_set.reserve(reused.size());
  for (const ReusedAddressEntry& entry : reused) {
    reused_set.insert(entry.address);
  }
  GreylistSplit split;
  for (const net::Ipv4Address address : snapshot) {
    if (reused_set.contains(address)) {
      split.greylist.push_back(address);
    } else {
      split.block.push_back(address);
    }
  }
  return split;
}

}  // namespace reuse::analysis
