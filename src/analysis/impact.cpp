#include "analysis/impact.h"

#include <algorithm>
#include <map>

#include "netbase/thread_pool.h"

namespace reuse::analysis {

ReuseImpact compute_reuse_impact(
    const blocklist::SnapshotStore& store,
    const std::vector<blocklist::BlocklistInfo>& catalogue,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes, net::ThreadPool* pool) {
  ReuseImpact impact;
  impact.lists_total = catalogue.size();
  std::unordered_map<blocklist::ListId, ListReuseCounts> per_list;
  for (const blocklist::BlocklistInfo& info : catalogue) {
    per_list[info.id].list = info.id;
  }

  // Materialize the listings, probe the two membership structures in
  // parallel (pure lookups), then fold serially in listing order.
  struct ListingRef {
    blocklist::ListId list;
    net::Ipv4Address address;
  };
  std::vector<ListingRef> listings;
  listings.reserve(store.listing_count());
  store.for_each_listing([&](blocklist::ListId list, net::Ipv4Address address,
                             const net::IntervalSet&) {
    listings.push_back(ListingRef{list, address});
  });

  constexpr std::uint8_t kNated = 1;
  constexpr std::uint8_t kDynamic = 2;
  std::vector<std::uint8_t> flags(listings.size(), 0);
  net::for_each_index(
      pool, listings.size(),
      [&](std::size_t i) {
        std::uint8_t flag = 0;
        if (nated.contains(listings[i].address)) flag |= kNated;
        if (dynamic_prefixes.contains_address(listings[i].address)) {
          flag |= kDynamic;
        }
        flags[i] = flag;
      },
      /*grain=*/1024);

  std::unordered_set<net::Ipv4Address> nated_blocklisted;
  std::unordered_set<net::Ipv4Address> dynamic_blocklisted;
  for (std::size_t i = 0; i < listings.size(); ++i) {
    ++impact.total_listings;
    ListReuseCounts& counts = per_list[listings[i].list];
    ++counts.total_addresses;
    if ((flags[i] & kNated) != 0) {
      ++counts.nated_addresses;
      ++impact.nated_listings;
      nated_blocklisted.insert(listings[i].address);
    }
    if ((flags[i] & kDynamic) != 0) {
      ++counts.dynamic_addresses;
      ++impact.dynamic_listings;
      dynamic_blocklisted.insert(listings[i].address);
    }
  }

  impact.nated_blocklisted_addresses = nated_blocklisted.size();
  impact.dynamic_blocklisted_addresses = dynamic_blocklisted.size();
  impact.per_list.reserve(per_list.size());
  for (auto& [list, counts] : per_list) {
    if (counts.nated_addresses > 0) ++impact.lists_with_nated;
    if (counts.dynamic_addresses > 0) ++impact.lists_with_dynamic;
    impact.per_list.push_back(counts);
  }
  std::sort(impact.per_list.begin(), impact.per_list.end(),
            [](const ListReuseCounts& a, const ListReuseCounts& b) {
              return a.list < b.list;
            });
  return impact;
}

ListingDurations compute_listing_durations(
    const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes) {
  ListingDurations durations;
  store.for_each_listing([&](blocklist::ListId, net::Ipv4Address address,
                             const net::IntervalSet& presence) {
    const bool is_nated = nated.contains(address);
    const bool is_dynamic = dynamic_prefixes.contains_address(address);
    // One sample per contiguous listing spell: days from addition until
    // removal (a re-listing later counts as a new spell, exactly as daily
    // snapshots of real lists would show it).
    for (const net::IntervalSet::Interval& spell : presence.intervals()) {
      const auto days = static_cast<double>(spell.end - spell.begin);
      durations.all_days.push_back(days);
      if (is_nated) durations.nated_days.push_back(days);
      if (is_dynamic) durations.dynamic_days.push_back(days);
    }
  });
  return durations;
}

AsCoverage compute_as_coverage(
    const inet::World& world, const blocklist::SnapshotStore& store,
    const std::unordered_map<net::Ipv4Address, crawler::IpEvidence>&
        crawler_discovered,
    const net::PrefixSet& probe_prefixes) {
  std::map<inet::Asn, AsCoverageRow> rows;
  for (const net::Ipv4Address address : store.sorted_addresses()) {
    const inet::Asn asn = world.asn_of(address);
    AsCoverageRow& row = rows[asn];
    row.asn = asn;
    ++row.blocklisted;
    if (crawler_discovered.contains(address)) ++row.blocklisted_bittorrent;
    if (probe_prefixes.contains_address(address)) ++row.blocklisted_ripe;
  }
  AsCoverage coverage;
  coverage.rows.reserve(rows.size());
  for (auto& [asn, row] : rows) coverage.rows.push_back(row);
  std::sort(coverage.rows.begin(), coverage.rows.end(),
            [](const AsCoverageRow& a, const AsCoverageRow& b) {
              return a.blocklisted < b.blocklisted;
            });
  coverage.ases_with_blocklisted = coverage.rows.size();
  for (const AsCoverageRow& row : coverage.rows) {
    if (row.blocklisted_bittorrent > 0) ++coverage.ases_with_bittorrent;
    if (row.blocklisted_ripe > 0) ++coverage.ases_with_ripe;
  }
  return coverage;
}

namespace {

std::vector<std::pair<double, double>> cumulative_curve(
    const std::vector<AsCoverageRow>& rows,
    std::size_t AsCoverageRow::*field) {
  std::vector<std::pair<double, double>> curve;
  curve.reserve(rows.size());
  const double total = rows.empty() ? 1.0 : static_cast<double>(rows.size());
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].*field > 0) ++cumulative;
    curve.emplace_back(static_cast<double>(i + 1),
                       static_cast<double>(cumulative) / total);
  }
  return curve;
}

}  // namespace

std::vector<std::pair<double, double>> AsCoverage::curve_blocklisted() const {
  return cumulative_curve(rows, &AsCoverageRow::blocklisted);
}
std::vector<std::pair<double, double>> AsCoverage::curve_bittorrent() const {
  return cumulative_curve(rows, &AsCoverageRow::blocklisted_bittorrent);
}
std::vector<std::pair<double, double>> AsCoverage::curve_ripe() const {
  return cumulative_curve(rows, &AsCoverageRow::blocklisted_ripe);
}

net::IntDistribution users_behind_blocklisted_nats(
    const blocklist::SnapshotStore& store,
    const std::vector<std::pair<net::Ipv4Address, std::size_t>>& nated) {
  net::IntDistribution distribution;
  for (const auto& [address, users] : nated) {
    if (!store.contains_address(address)) continue;
    distribution.add(static_cast<std::int64_t>(users));
  }
  return distribution;
}

std::vector<ConcentrationRow> top_lists_by(
    const ReuseImpact& impact,
    const std::vector<blocklist::BlocklistInfo>& catalogue, bool nated,
    std::size_t top_n) {
  std::vector<ConcentrationRow> rows;
  rows.reserve(impact.per_list.size());
  for (const ListReuseCounts& counts : impact.per_list) {
    ConcentrationRow row;
    row.list = counts.list;
    row.listings = nated ? counts.nated_addresses : counts.dynamic_addresses;
    for (const blocklist::BlocklistInfo& info : catalogue) {
      if (info.id == counts.list) {
        row.name = info.name;
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const ConcentrationRow& a, const ConcentrationRow& b) {
              return a.listings > b.listings;
            });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

DetectorValidation validate_nat_detection(
    const inet::World& world,
    const std::unordered_set<net::Ipv4Address>& nated) {
  DetectorValidation validation;
  validation.detected = nated.size();
  for (const net::Ipv4Address address : nated) {
    if (world.is_shared_address(address)) ++validation.true_positives;
  }
  return validation;
}

DetectorValidation validate_dynamic_detection(
    const inet::World& world, const net::PrefixSet& dynamic_prefixes) {
  DetectorValidation validation;
  for (const net::Ipv4Prefix& prefix : dynamic_prefixes.to_vector()) {
    ++validation.detected;
    if (world.dynamic_prefixes().contains_prefix(prefix)) {
      ++validation.true_positives;
    }
  }
  return validation;
}

}  // namespace reuse::analysis
