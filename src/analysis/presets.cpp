#include "analysis/presets.h"

namespace reuse::analysis {
namespace {

// The identity transform: the base config as handed in. Kept as a real
// registry entry (not a special case) so sweeps always have a cell 0 to
// normalize against and --preset baseline is a valid spelling.
void apply_baseline(ScenarioConfig&) {}

// Carrier-grade-NAT-heavy region (the paper's Section 5 worst case: one
// listed address penalizes up to 78 users). Most eyeball ASes deploy CGN on
// a large share of their space; classic per-subscriber dynamic pools shrink
// correspondingly, and the users-per-address tail fattens.
void apply_cgn_dominant(ScenarioConfig& config) {
  config.world.cgn_as_fraction = 0.45;
  config.world.cgn_prefix_share = 0.40;
  config.world.dynamic_as_fraction = 0.15;
  config.world.weight_home_nat = 0.38;
  config.world.weight_static_residential = 0.25;
  // Fatter subscriber fan-out per public address (lower alpha = heavier
  // Pareto tail toward the cgn_users_cap).
  config.world.cgn_users_alpha = 1.5;
}

// Short-lease consumer-DSL region: most ASes run dynamic pools and the
// lease-mean range is squeezed toward daily churn, so reuse is dominated by
// honest DHCP rotation rather than NAT sharing.
void apply_dhcp_churn(ScenarioConfig& config) {
  config.world.dynamic_as_fraction = 0.65;
  config.world.dynamic_prefix_share = 0.45;
  config.world.cgn_as_fraction = 0.03;
  config.world.min_mean_lease_seconds = 2.0 * 3600;    // 2 hours
  config.world.max_mean_lease_seconds = 30.0 * 86400;  // a month
}

// Enterprise / hosting-centric region: statically assigned space with high
// occupancy, few dynamic pools, almost no CGN — the regime where blocklists
// work as intended (a listing names a persistent host).
void apply_static_enterprise(ScenarioConfig& config) {
  config.world.dynamic_as_fraction = 0.04;
  config.world.cgn_as_fraction = 0.01;
  config.world.weight_static_residential = 0.45;
  config.world.weight_server = 0.25;
  config.world.weight_home_nat = 0.12;
  config.world.static_occupancy = 0.75;
  config.world.min_mean_lease_seconds = 30.0 * 86400;  // leases look static
}

// Listing-evasion via rapid re-allocation: infected dynamic subscribers
// rotate addresses ~12x faster than honest tenants of the same pools
// (WorldConfig::evasion_lease_factor), and feeds rarely re-observe a listed
// address because the abuser has already moved on — so listings go stale
// fast while collateral smears across more of each pool.
void apply_adversarial_evasion(ScenarioConfig& config) {
  config.world.evasion_lease_factor = 12.0;
  config.ecosystem.reobservation_extend_rate = 0.02;
  config.ecosystem.short_retention_fraction = 0.65;
}

}  // namespace

const std::vector<ScenarioPreset>& scenario_presets() {
  static const std::vector<ScenarioPreset> kPresets = {
      {"baseline", "the base config unchanged (sweep reference cell)",
       apply_baseline},
      {"cgn_dominant",
       "CGN-heavy region: most ASes NAT large shares of their space",
       apply_cgn_dominant},
      {"dhcp_churn",
       "short-lease consumer region: dynamic pools rotating near-daily",
       apply_dhcp_churn},
      {"static_enterprise",
       "statically assigned enterprise space, minimal reuse",
       apply_static_enterprise},
      {"adversarial_evasion",
       "abusers churn leases ~12x faster to outrun listings",
       apply_adversarial_evasion},
  };
  return kPresets;
}

const ScenarioPreset* parse_preset(const std::string& name) {
  for (const ScenarioPreset& preset : scenario_presets()) {
    if (name == preset.name) return &preset;
  }
  return nullptr;
}

std::string preset_names() {
  std::string out;
  for (const ScenarioPreset& preset : scenario_presets()) {
    if (!out.empty()) out += ", ";
    out += preset.name;
  }
  return out;
}

}  // namespace reuse::analysis
