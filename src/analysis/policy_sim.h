// Filtering-policy outcome simulation (quantifying §6's recommendation).
//
// The paper's motivation is the Cloudflare bystander: a legitimate user
// behind a reused address is challenged or dropped because the address is
// blocklisted. This module makes that harm measurable: it synthesises the
// connection traffic a protected service would see from the blocklisted
// address space — legitimate sessions from the bystanders sharing or
// inheriting reused addresses, plus abusive sessions from the actual actors
// — and scores filtering policies against it:
//
//   kAllowAll     — no filtering: all abuse admitted, no bystanders harmed.
//   kBlockListed  — hard-block every blocklisted address (the 59% of
//                   surveyed operators who block directly).
//   kGreylistReused — hard-block non-reused listings; greylist reused ones
//                   (delay/challenge): legitimate clients retry and pass,
//                   most abuse does not (the Spamassassin/Spamd mechanics
//                   the paper points to).
//
// The interesting numbers are the bystander-harm rate and the abuse-escape
// rate of each policy, per list category and overall.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "blocklist/store.h"
#include "crawler/crawler.h"
#include "internet/world.h"
#include "netbase/prefix_trie.h"
#include "netbase/rng.h"

namespace reuse::analysis {

enum class FilterPolicy : std::uint8_t {
  kAllowAll,
  kBlockListed,
  kGreylistReused,
};

[[nodiscard]] std::string_view to_string(FilterPolicy policy);

struct PolicySimConfig {
  std::uint64_t seed = 23;
  /// Daily legitimate sessions a service sees from one active bystander.
  double legit_sessions_per_user_day = 2.0;
  /// Daily abusive sessions from one active abusive actor.
  double abuse_sessions_per_actor_day = 6.0;
  /// Probability a legitimate client retries through a greylist delay
  /// (browsers/SMTP servers do; the paper's greylisting rationale).
  double legit_retry_rate = 0.92;
  /// Probability an abusive client retries through the greylist (bulk
  /// senders rarely do).
  double abuse_retry_rate = 0.12;
  /// Days of traffic simulated.
  int days = 7;
};

struct PolicyOutcome {
  FilterPolicy policy = FilterPolicy::kAllowAll;
  std::uint64_t legit_sessions = 0;
  std::uint64_t legit_blocked = 0;     ///< bystander harm
  std::uint64_t legit_delayed = 0;     ///< greylisted but passed on retry
  std::uint64_t abuse_sessions = 0;
  std::uint64_t abuse_admitted = 0;    ///< security cost

  [[nodiscard]] double bystander_harm_rate() const {
    return legit_sessions == 0 ? 0.0
                               : static_cast<double>(legit_blocked) /
                                     static_cast<double>(legit_sessions);
  }
  [[nodiscard]] double abuse_escape_rate() const {
    return abuse_sessions == 0 ? 0.0
                               : static_cast<double>(abuse_admitted) /
                                     static_cast<double>(abuse_sessions);
  }
};

/// Simulates the same traffic under each policy (common random numbers, so
/// differences are purely the policy).
[[nodiscard]] std::vector<PolicyOutcome> simulate_policies(
    const inet::World& world, const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes, const PolicySimConfig& config);

}  // namespace reuse::analysis
