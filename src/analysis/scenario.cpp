#include "analysis/scenario.h"

#include <algorithm>
#include <sstream>

#include "blocklist/catalogue.h"
#include "crawler/sharded.h"
#include "internet/abuse.h"
#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/serialize.h"
#include "simnet/event_queue.h"

namespace reuse::analysis {
namespace {

net::TimeWindow overall_window(const std::vector<net::TimeWindow>& periods) {
  net::TimeWindow window = periods.front();
  for (const net::TimeWindow& period : periods) {
    window.begin = std::min(window.begin, period.begin);
    window.end = std::max(window.end, period.end);
  }
  return window;
}

ScenarioConfig finalized(ScenarioConfig config) {
  config.finalize();
  return config;
}

blocklist::EcosystemResult build_ecosystem(
    const inet::World& world, const std::vector<blocklist::BlocklistInfo>& catalogue,
    const ScenarioConfig& config, sim::FaultInjector* faults,
    net::ThreadPool* pool, blocklist::EcosystemCarry* carry) {
  const net::TimeWindow span = overall_window(config.ecosystem.periods);
  const inet::AbuseGenConfig abuse = scenario_abuse_config(world, config);
  // Stream the abuse events through the feeds in month-sized slices instead
  // of materializing the whole span: the event stream grows linearly with
  // the simulated days and would otherwise dominate peak RSS at world
  // scale, while one slice is bounded by the busiest month forever. The
  // products are byte-identical to the materialized path (see stream_abuse).
  // Ingestion keeps [window.begin, span.end): with an auto horizon that is
  // the whole generation window (same bytes as streaming it all); with an
  // explicit later horizon the events past the periods' span are exactly
  // the ones a later evolve_scenario_cached() call will ingest.
  blocklist::EcosystemSimulator simulator(catalogue, config.ecosystem, faults,
                                          pool);
  inet::stream_abuse_range(world, abuse, /*chunk_days=*/32,
                           abuse.window.begin.seconds(), span.end.seconds(),
                           [&](std::span<const inet::AbuseEvent> chunk) {
                             simulator.ingest(chunk);
                           });
  return simulator.finish(carry);
}

}  // namespace

CrawlOutput run_scenario_crawl(const inet::World& world,
                               const blocklist::SnapshotStore& store,
                               const ScenarioConfig& config,
                               sim::FaultInjector* faults,
                               net::ThreadPool* pool,
                               StageTimer* stage_times) {
  crawler::ShardedCrawlConfig sharded;
  sharded.base = config.crawl;
  if (config.restrict_crawler_to_blocklisted) {
    sharded.base.restricted = true;
    sharded.base.restrict_to = store.blocklisted_slash24s();
  }
  sharded.dht = config.dht;
  sharded.window = net::TimeWindow{
      net::SimTime(0), net::SimTime(config.crawl_days * std::int64_t{86400})};
  sharded.shard_count = config.crawl_shards;
  if (faults != nullptr) sharded.faults = faults->plan();

  crawler::ShardedCrawlResult result =
      crawler::run_sharded_crawl(world, sharded, pool);
  // The shards injected from private ledgers; fold them into the scenario's
  // injector so its stats() still span the whole run (degradation report,
  // cache record).
  if (faults != nullptr) faults->absorb(result.fault_stats);
  if (stage_times != nullptr) {
    // Sub-stage attribution: the '.' prefix keeps these out of
    // StageTimer::total_millis() — their time is already inside "crawl".
    // shards/merge are caller-side wall-clock and partition the stage;
    // build/events are per-shard scope sums, which overlap in wall-clock
    // under a pool, so they go in as CPU attribution — never as wall
    // (recording them as wall made crawl.events exceed "crawl" at jobs=8).
    stage_times->record("crawl.shards", result.shards_millis);
    stage_times->record("crawl.merge", result.merge_millis);
    stage_times->record_cpu("crawl.build", result.build_millis);
    stage_times->record_cpu("crawl.events", result.events_millis);
  }

  CrawlOutput output;
  output.stats = result.stats;
  output.evidence = std::move(result.evidence);
  output.nated = std::move(result.nated);
  for (const auto& [address, users] : output.nated) {
    output.nated_set.insert(address);
  }
  output.distinct_node_ids = result.distinct_node_ids;
  output.dht_peers = result.dht_peers;
  output.dht_addresses = result.dht_addresses;
  output.transport_fault_request_drops = result.transport_fault_request_drops;
  output.transport_fault_response_drops =
      result.transport_fault_response_drops;
  publish_crawl_metrics(output);
  return output;
}

namespace {

// Serializes every field that influences the cached products, in a fixed
// order with explicit widths (std::size_t and bool are cast) so the
// resulting fingerprint is identical across platforms. New knobs that feed
// the crawl or the ecosystem MUST be appended here — forgetting one
// re-creates the silent cache-sharing bug this fingerprint exists to fix.
void write_fingerprint_fields(net::BinaryWriter& w,
                              const ScenarioConfig& c) {
  w.write(c.seed);

  const inet::WorldConfig& world = c.world;
  w.write(world.seed);
  w.write(static_cast<std::uint64_t>(world.as_count));
  w.write(world.prefix_pareto_alpha);
  w.write(static_cast<std::uint64_t>(world.min_prefixes_per_as));
  w.write(static_cast<std::uint64_t>(world.max_prefixes_per_as));
  w.write(world.weight_unused);
  w.write(world.weight_server);
  w.write(world.weight_static_residential);
  w.write(world.weight_home_nat);
  w.write(world.cgn_as_fraction);
  w.write(world.cgn_prefix_share);
  w.write(world.dynamic_as_fraction);
  w.write(world.dynamic_prefix_share);
  w.write(static_cast<std::uint64_t>(world.max_pools_per_as));
  w.write(world.static_occupancy);
  w.write(world.home_nat_occupancy);
  w.write(world.home_nat_extra_member_p);
  w.write(world.cgn_users_min);
  w.write(world.cgn_users_alpha);
  w.write(static_cast<std::uint64_t>(world.cgn_users_cap));
  w.write(world.dynamic_subscription_ratio);
  w.write(world.min_mean_lease_seconds);
  w.write(world.max_mean_lease_seconds);
  w.write(world.bt_adoption_min);
  w.write(world.bt_adoption_max);
  w.write(world.bt_blocked_as_fraction);
  w.write(world.infection_rate_base);
  w.write(world.infection_rate_p2p);
  w.write(world.malicious_server_fraction);
  w.write(world.icmp_filtered_as_fraction);
  w.write(world.abuse_events_per_day_user);
  w.write(world.abuse_events_per_day_server);
  // Appending a field re-keys every cache filename (clean misses, no stale
  // reads), so the default world's products stay valid without a
  // kCalibrationVersion bump: factor 1.0 changes no draw.
  w.write(world.evasion_lease_factor);

  w.write(static_cast<std::int64_t>(c.crawl_days));

  const dht::DhtNetworkConfig& dht = c.dht;
  w.write(dht.seed);
  w.write(static_cast<std::uint64_t>(dht.contacts_per_peer));
  w.write(dht.stale_endpoint_fraction);
  w.write(dht.stale_link_share);
  w.write(dht.behavior.always_on_fraction);
  w.write(dht.behavior.duty_min);
  w.write(dht.behavior.duty_max);
  w.write(dht.transport.request_loss);
  w.write(dht.transport.response_loss);
  w.write(dht.transport.min_delay.count());
  w.write(dht.transport.max_delay.count());
  w.write(dht.reboot_rate_per_day);
  w.write(dht.port_change_on_reboot);
  w.write(static_cast<std::uint8_t>(dht.dynamic_address_churn));
  w.write(static_cast<std::uint64_t>(dht.bootstrap_contacts));

  const crawler::CrawlerConfig& crawl = c.crawl;
  w.write(crawl.ip_cooldown.count());
  w.write(crawl.reping_interval.count());
  w.write(crawl.verification_window.count());
  w.write(static_cast<std::uint64_t>(crawl.messages_per_second));
  w.write(static_cast<std::uint64_t>(crawl.get_nodes_per_endpoint));
  w.write(static_cast<std::uint8_t>(crawl.restricted));
  std::vector<net::Ipv4Prefix> restrict_to = crawl.restrict_to.to_vector();
  std::sort(restrict_to.begin(), restrict_to.end());
  w.write(static_cast<std::uint64_t>(restrict_to.size()));
  for (const net::Ipv4Prefix& prefix : restrict_to) {
    w.write(prefix.network().value());
    w.write(static_cast<std::uint8_t>(prefix.length()));
  }
  w.write(static_cast<std::uint64_t>(crawl.partition_count));
  w.write(static_cast<std::uint64_t>(crawl.partition_index));
  w.write(crawl.seed);
  // The shard count changes which partition each discovered address lands
  // in (and every per-shard RNG stream), so it is cache identity.
  w.write(static_cast<std::uint64_t>(c.crawl_shards));

  w.write(static_cast<std::uint8_t>(c.restrict_crawler_to_blocklisted));

  const blocklist::EcosystemConfig& eco = c.ecosystem;
  w.write(eco.seed);
  w.write(static_cast<std::uint64_t>(eco.periods.size()));
  for (const net::TimeWindow& period : eco.periods) {
    w.write(period.begin.seconds());
    w.write(period.end.seconds());
  }
  w.write(eco.short_retention_fraction);
  w.write(eco.short_retention_mean_days);
  w.write(eco.long_retention_factor);
  w.write(eco.reobservation_extend_rate);

  // The fault plan perturbs both cached products (crawl and ecosystem), so
  // every knob of it is part of the cache identity — except when there are
  // no episodes: an empty plan is behaviourally identical to no plan at all
  // (whatever its seed), so both fingerprints coincide and a fault-free
  // cache keeps serving empty-plan configs.
  const sim::FaultPlan& faults = c.faults;
  w.write(static_cast<std::uint64_t>(faults.episodes.size()));
  if (!faults.episodes.empty()) {
    w.write(faults.seed);
    for (const sim::FaultEpisode& episode : faults.episodes) {
      w.write(static_cast<std::uint8_t>(episode.kind));
      w.write(episode.window.begin.seconds());
      w.write(episode.window.end.seconds());
      w.write(episode.severity);
      w.write(episode.salt);
    }
  }

  // The abuse-generation horizon moves every actor's episode draw, so it is
  // cache identity. Hashed in RESOLVED form (seconds of the generation
  // window's end): horizon_days = 0 and an explicit horizon equal to the
  // span end produce the same generation window, the same products, and —
  // by hashing the resolution — the same fingerprint.
  const net::TimeWindow span = overall_window(c.ecosystem.periods);
  w.write(std::max(span.end.seconds(),
                   static_cast<std::int64_t>(c.horizon_days) * 86400));
}

}  // namespace

inet::AbuseGenConfig scenario_abuse_config(const inet::World& world,
                                           const ScenarioConfig& config) {
  // Abuse generation starts before the first snapshot so lists are warm,
  // and runs to the declared horizon (auto: the last period's end) so a
  // later horizon only appends events without moving any actor's draws.
  const net::TimeWindow span = overall_window(config.ecosystem.periods);
  const net::SimTime horizon(
      std::max(span.end.seconds(),
               static_cast<std::int64_t>(config.horizon_days) * 86400));
  inet::AbuseGenConfig abuse;
  abuse.window = net::TimeWindow{span.begin - net::Duration::days(15), horizon};
  abuse.user_events_per_day = world.config().abuse_events_per_day_user;
  abuse.server_events_per_day = world.config().abuse_events_per_day_server;
  abuse.seed = config.seed ^ 0xab5eULL;
  return abuse;
}

void publish_crawl_metrics(const CrawlOutput& crawl) {
  auto& registry = net::metrics::Registry::global();
  const crawler::CrawlStats& stats = crawl.stats;
  const auto count = [&registry](std::string_view name, std::string_view help,
                                 std::uint64_t value) {
    registry.counter(name, help).add(value);
  };
  count("crawler_get_nodes_sent_total", "get_nodes requests sent",
        stats.get_nodes_sent);
  count("crawler_get_nodes_responses_total", "get_nodes responses received",
        stats.get_nodes_responses);
  count("crawler_bt_pings_sent_total", "bt_ping requests sent",
        stats.pings_sent);
  count("crawler_bt_ping_responses_total", "bt_ping responses received",
        stats.ping_responses);
  count("crawler_endpoints_discovered_total",
        "Distinct (IP, port) endpoints discovered", stats.endpoints_discovered);
  count("crawler_endpoints_skipped_restricted_total",
        "Endpoints skipped by the blocklisted-space restriction",
        stats.endpoints_skipped_restricted);
  count("crawler_verification_rounds_total",
        "Multi-port verification rounds run", stats.verification_rounds);
  count("crawler_verification_retries_total",
        "Zero-reply verification rounds re-queued", stats.verification_retries);
  count("crawler_verification_recoveries_total",
        "Retried verifications that got a reply",
        stats.verification_recoveries);
  count("crawler_bootstrap_retries_total",
        "Watchdog re-queues of the bootstrap contact", stats.bootstrap_retries);
  count("crawler_bootstrap_recoveries_total",
        "Bootstrap responses first seen after a retry",
        stats.bootstrap_recoveries);
  registry
      .gauge("crawler_nated_addresses",
             "Addresses verified as NATed (this crawl)")
      .set(static_cast<std::int64_t>(crawl.nated.size()));
}

std::uint64_t config_fingerprint(const ScenarioConfig& config) {
  // Fingerprint what the scenario runner will actually see: finalize() wires
  // sub-seeds and default periods, and is idempotent.
  ScenarioConfig finalized_config = config;
  finalized_config.finalize();
  std::ostringstream buffer;
  net::BinaryWriter writer(buffer);
  write_fingerprint_fields(writer, finalized_config);
  return net::fnv1a_64(buffer.str());
}

void ScenarioConfig::finalize() {
  world.seed = seed;
  dht.seed = seed ^ 0xd47ULL;
  crawl.seed = seed ^ 0xc4a3ULL;
  fleet.seed = seed ^ 0xa71a5ULL;
  census.seed = seed ^ 0xce25ULL;
  if (ecosystem.periods.empty()) {
    ecosystem.periods = blocklist::paper_periods();
  }
  ecosystem.seed = seed ^ 0xb10cULL;
}

ScenarioConfig test_scenario_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 120;
  config.crawl_days = 2;
  config.fleet.probe_count = 800;
  // The real census sampled 1% of all IPv4; at 1/20 scale a much larger
  // share is needed for the census footprint to intersect the (small)
  // blocklisted-dynamic population the way the paper's did.
  config.census.block_sample_fraction = 0.6;
  config.census.window = net::TimeWindow{net::SimTime(0), net::SimTime(7 * 86400)};
  config.finalize();
  return config;
}

ScenarioConfig bench_scenario_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::bench_world_config(seed);
  config.crawl_days = 3;
  config.fleet.probe_count = 5000;
  // The real census sampled 1% of all IPv4; at 1/20 scale a much larger
  // share is needed for the census footprint to intersect the (small)
  // blocklisted-dynamic population the way the paper's did.
  config.census.block_sample_fraction = 0.6;
  config.finalize();
  return config;
}

ScenarioConfig world_scale_scenario_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::world_scale_world_config(seed);
  // One crawl day keeps the DHT event volume proportionate: this preset
  // exists to stress the per-address state (ecosystem store, fleet log,
  // world tables), not the crawler.
  config.crawl_days = 1;
  config.fleet.probe_count = 100000;
  config.run_census = false;
  config.finalize();
  return config;
}

sim::FaultPlan default_chaos_plan(const ScenarioConfig& config,
                                  std::uint64_t chaos_seed) {
  ScenarioConfig cfg = config;
  cfg.finalize();
  sim::FaultPlan plan;
  plan.seed = chaos_seed;
  net::Rng rng(chaos_seed ^ 0xc4a05ULL);

  // Bootstrap outage covering the crawl start: the watchdog has to carry
  // discovery through it.
  const std::int64_t outage_end =
      1800 + static_cast<std::int64_t>(rng.uniform(1800));
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kBootstrapOutage,
      net::TimeWindow{net::SimTime(0), net::SimTime(outage_end)}, 1.0, 1});

  // Loss burst somewhere after the outage, inside the crawl.
  const std::int64_t crawl_end = cfg.crawl_days * std::int64_t{86400};
  const std::int64_t burst_length =
      std::max<std::int64_t>(3600, crawl_end / 12);
  const std::int64_t burst_slack =
      std::max<std::int64_t>(1, crawl_end - outage_end - burst_length);
  const std::int64_t burst_begin =
      outage_end + static_cast<std::int64_t>(
                       rng.uniform(static_cast<std::uint64_t>(burst_slack)));
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kBurstLoss,
      net::TimeWindow{net::SimTime(burst_begin),
                      net::SimTime(burst_begin + burst_length)},
      0.5, 2});

  // A 3-day feed outage and a 2-day corruption spell inside the first
  // collection period, each hitting ~35% of the lists.
  const net::TimeWindow period = cfg.ecosystem.periods.front();
  const std::int64_t first_day = period.begin.day();
  const std::int64_t period_days =
      std::max<std::int64_t>(6, period.end.day() - first_day);
  const std::int64_t outage_day =
      first_day + static_cast<std::int64_t>(
                      rng.uniform(static_cast<std::uint64_t>(period_days - 3)));
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedOutage,
      net::TimeWindow{net::SimTime(outage_day * 86400),
                      net::SimTime((outage_day + 3) * 86400)},
      0.35, 3});
  const std::int64_t corrupt_day =
      first_day + static_cast<std::int64_t>(
                      rng.uniform(static_cast<std::uint64_t>(period_days - 2)));
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedCorruption,
      net::TimeWindow{net::SimTime(corrupt_day * 86400),
                      net::SimTime((corrupt_day + 2) * 86400)},
      0.35, 4});

  // Atlas controller gap somewhere in the fleet window.
  const std::int64_t fleet_begin = cfg.fleet.window.begin.seconds();
  const std::int64_t fleet_length = cfg.fleet.window.end.seconds() - fleet_begin;
  const std::int64_t gap_length =
      std::max<std::int64_t>(86400, fleet_length / 40);
  const std::int64_t gap_slack = std::max<std::int64_t>(1, fleet_length - gap_length);
  const std::int64_t gap_begin =
      fleet_begin + static_cast<std::int64_t>(
                        rng.uniform(static_cast<std::uint64_t>(gap_slack)));
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kAtlasGap,
      net::TimeWindow{net::SimTime(gap_begin),
                      net::SimTime(gap_begin + gap_length)},
      1.0, 5});
  return plan;
}

std::unique_ptr<net::ThreadPool> make_scenario_pool(int jobs) {
  const std::size_t resolved =
      jobs == 0 ? net::ThreadPool::hardware_jobs()
                : static_cast<std::size_t>(std::max(1, jobs));
  if (resolved <= 1) return nullptr;
  return std::make_unique<net::ThreadPool>(resolved);
}

Scenario::Scenario(ScenarioConfig cfg)
    : config(finalized(std::move(cfg))),
      injector(std::make_unique<sim::FaultInjector>(config.faults)),
      pool(make_scenario_pool(config.jobs)),
      world(stage_times.time("world",
                            [&] { return inet::World(config.world); })),
      catalogue(blocklist::build_catalogue(config.seed ^ 0xca7aULL)),
      ecosystem_carry(std::make_unique<blocklist::EcosystemCarry>()),
      ecosystem(stage_times.time("ecosystem",
                                 [&] {
                                   sim::StageGuard guard(
                                       injector.get(),
                                       sim::FaultStage::kEcosystem);
                                   return build_ecosystem(world, catalogue,
                                                          config,
                                                          injector.get(),
                                                          pool.get(),
                                                          ecosystem_carry.get());
                                 })),
      crawl(stage_times.time("crawl",
                             [&] {
                               sim::StageGuard guard(injector.get(),
                                                     sim::FaultStage::kCrawl);
                               return run_scenario_crawl(
                                   world, ecosystem.store, config,
                                   injector.get(), pool.get(), &stage_times);
                             })),
      fleet(stage_times.time("fleet",
                             [&] {
                               sim::StageGuard guard(injector.get(),
                                                     sim::FaultStage::kFleet);
                               return atlas::AtlasFleet(world, config.fleet,
                                                        injector.get(),
                                                        pool.get());
                             })),
      pipeline(stage_times.time("pipeline",
                                [&] {
                                  return dynadetect::run_pipeline(
                                      fleet.compressed_log(), config.pipeline,
                                      pool.get());
                                })),
      census(stage_times.time("census",
                              [&] {
                                return config.run_census
                                           ? census::run_census(world,
                                                                config.census,
                                                                {}, pool.get())
                                           : census::CensusResult{};
                              })) {
  degradation = build_degradation_report(
      injector->stats(), crawl.stats, crawl.transport_fault_request_drops,
      crawl.transport_fault_response_drops, ecosystem.stats,
      fleet.records_suppressed(), pipeline);
  // The products are plain values now; the workers have nothing left to do.
  pool.reset();
}

std::uint64_t products_fingerprint(const CrawlOutput& crawl,
                                   const blocklist::EcosystemResult& ecosystem,
                                   const atlas::AtlasFleet& fleet,
                                   const dynadetect::PipelineResult& pipeline,
                                   const census::CensusResult& census) {
  std::ostringstream buffer;
  net::BinaryWriter w(buffer);

  auto write_prefix = [&](const net::Ipv4Prefix& prefix) {
    w.write(prefix.network().value());
    w.write(static_cast<std::uint8_t>(prefix.length()));
  };
  auto write_prefix_set = [&](const net::PrefixSet& set) {
    std::vector<net::Ipv4Prefix> prefixes = set.to_vector();
    std::sort(prefixes.begin(), prefixes.end());
    w.write(static_cast<std::uint64_t>(prefixes.size()));
    for (const net::Ipv4Prefix& prefix : prefixes) write_prefix(prefix);
  };
  auto write_intervals = [&](const net::IntervalSet& set) {
    w.write(static_cast<std::uint64_t>(set.interval_count()));
    for (const net::IntervalSet::Interval& span : set.intervals()) {
      w.write(span.begin);
      w.write(span.end);
    }
  };

  // Ecosystem: the store streams in canonical (list, address) order — the
  // compressed store's native iteration order — plus stats.
  w.write(static_cast<std::uint64_t>(ecosystem.store.listing_count()));
  ecosystem.store.for_each_listing(
      [&](blocklist::ListId list, net::Ipv4Address address,
          const net::IntervalSet& intervals) {
        w.write(static_cast<std::uint32_t>(list));
        w.write(address.value());
        write_intervals(intervals);
      });
  std::uint64_t observed_count = 0;
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId, const net::IntervalSet&) { ++observed_count; });
  w.write(observed_count);
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId list, const net::IntervalSet& days) {
        w.write(static_cast<std::uint32_t>(list));
        write_intervals(days);
      });
  const blocklist::EcosystemStats& eco = ecosystem.stats;
  w.write(eco.events_seen);
  w.write(eco.events_picked_up);
  w.write(eco.snapshots_taken);
  w.write(eco.snapshots_missed);
  w.write(eco.feeds_quarantined);
  w.write(eco.feeds_salvaged);
  w.write(eco.entries_discarded);
  w.write(eco.feed_lines_skipped);
  for (const blocklist::FeedHealth& health : eco.per_list) {
    w.write(static_cast<std::uint32_t>(health.list));
    w.write(health.days_recorded);
    w.write(health.days_missed);
    w.write(health.days_quarantined);
    w.write(health.days_salvaged);
    w.write(health.lines_skipped);
    w.write(health.entries_discarded);
  }

  // Crawl: stats, the NATed roster, and the evidence set (sorted).
  w.write(crawl.stats.get_nodes_sent);
  w.write(crawl.stats.get_nodes_responses);
  w.write(crawl.stats.pings_sent);
  w.write(crawl.stats.ping_responses);
  w.write(crawl.stats.endpoints_discovered);
  w.write(crawl.stats.endpoints_skipped_restricted);
  w.write(crawl.stats.verification_rounds);
  w.write(static_cast<std::uint64_t>(crawl.distinct_node_ids));
  w.write(static_cast<std::uint64_t>(crawl.dht_peers));
  w.write(static_cast<std::uint64_t>(crawl.dht_addresses));
  w.write(crawl.transport_fault_request_drops);
  w.write(crawl.transport_fault_response_drops);
  std::vector<std::pair<net::Ipv4Address, std::size_t>> nated = crawl.nated;
  std::sort(nated.begin(), nated.end());
  w.write(static_cast<std::uint64_t>(nated.size()));
  for (const auto& [address, users] : nated) {
    w.write(address.value());
    w.write(static_cast<std::uint64_t>(users));
  }
  std::vector<std::pair<net::Ipv4Address, std::size_t>> evidence;
  evidence.reserve(crawl.evidence.size());
  for (const auto& [address, info] : crawl.evidence) {
    evidence.emplace_back(address, info.max_concurrent_users);
  }
  std::sort(evidence.begin(), evidence.end());
  w.write(static_cast<std::uint64_t>(evidence.size()));
  for (const auto& [address, users] : evidence) {
    w.write(address.value());
    w.write(static_cast<std::uint64_t>(users));
  }

  // Fleet: the run-compressed log in its probe-major order (covers every
  // record the expansion would, plus the stride), truths, suppression.
  const atlas::CompressedLog& log = fleet.compressed_log();
  w.write(log.stride_seconds());
  w.write(log.record_count());
  w.write(static_cast<std::uint64_t>(log.probe_count()));
  for (std::size_t p = 0; p < log.probe_count(); ++p) {
    w.write(static_cast<std::uint32_t>(log.probe_id_at(p)));
    const auto [first, last] = log.runs_of(p);
    w.write(static_cast<std::uint64_t>(last - first));
    for (std::size_t r = first; r < last; ++r) {
      const atlas::LogRun run = log.run_at(r);
      w.write(run.first_seconds);
      w.write(run.last_seconds);
      w.write(run.address.value());
      w.write(static_cast<std::uint32_t>(run.asn));
    }
  }
  w.write(static_cast<std::uint64_t>(fleet.truths().size()));
  for (const atlas::ProbeTruth& truth : fleet.truths()) {
    w.write(static_cast<std::uint32_t>(truth.probe_id));
    w.write(static_cast<std::uint64_t>(truth.host));
    w.write(static_cast<std::uint64_t>(truth.second_host));
    w.write(static_cast<std::uint8_t>(truth.on_dynamic_pool));
    w.write(static_cast<std::uint8_t>(truth.on_fast_pool));
    w.write(static_cast<std::uint8_t>(truth.relocated));
  }
  w.write(fleet.records_suppressed());

  // Pipeline: the funnel, the curve, and every prefix footprint.
  w.write(static_cast<std::uint64_t>(pipeline.probes_total));
  w.write(static_cast<std::uint64_t>(pipeline.probes_multi_as));
  w.write(static_cast<std::uint64_t>(pipeline.probes_single_as));
  w.write(static_cast<std::uint64_t>(pipeline.probes_with_changes));
  w.write(static_cast<std::uint64_t>(pipeline.probes_above_knee));
  w.write(static_cast<std::uint64_t>(pipeline.probes_daily));
  w.write(static_cast<std::uint64_t>(pipeline.change_gaps_capped));
  w.write(static_cast<std::uint64_t>(pipeline.probes_gap_affected));
  w.write(static_cast<std::int64_t>(pipeline.knee_allocations));
  w.write(static_cast<std::uint64_t>(pipeline.qualifying_addresses));
  w.write(static_cast<std::uint64_t>(pipeline.single_as_addresses));
  w.write(static_cast<std::uint64_t>(pipeline.allocation_curve.size()));
  for (const double count : pipeline.allocation_curve) w.write(count);
  w.write(static_cast<std::uint64_t>(pipeline.qualifying_probes.size()));
  for (const atlas::ProbeId probe : pipeline.qualifying_probes) {
    w.write(static_cast<std::uint32_t>(probe));
  }
  write_prefix_set(pipeline.dynamic_prefixes);
  write_prefix_set(pipeline.all_probe_prefixes);
  write_prefix_set(pipeline.single_as_change_prefixes);
  write_prefix_set(pipeline.above_knee_prefixes);

  // Census: totals, per-block metrics in survey order, dynamic blocks.
  w.write(static_cast<std::uint64_t>(census.blocks_surveyed));
  w.write(census.probes_sent);
  w.write(census.responses);
  w.write(static_cast<std::uint64_t>(census.blocks.size()));
  for (const census::BlockMetrics& block : census.blocks) {
    write_prefix(block.block);
    w.write(block.responsive_addresses);
    w.write(block.mean_availability);
    w.write(block.mean_volatility);
    w.write(block.median_uptime_seconds);
  }
  write_prefix_set(census.dynamic_blocks);

  return net::fnv1a_64(buffer.str());
}

}  // namespace reuse::analysis
