#include "analysis/scenario.h"

#include <algorithm>

#include "blocklist/catalogue.h"
#include "internet/abuse.h"
#include "simnet/event_queue.h"

namespace reuse::analysis {
namespace {

net::TimeWindow overall_window(const std::vector<net::TimeWindow>& periods) {
  net::TimeWindow window = periods.front();
  for (const net::TimeWindow& period : periods) {
    window.begin = std::min(window.begin, period.begin);
    window.end = std::max(window.end, period.end);
  }
  return window;
}

ScenarioConfig finalized(ScenarioConfig config) {
  config.finalize();
  return config;
}

blocklist::EcosystemResult build_ecosystem(
    const inet::World& world, const std::vector<blocklist::BlocklistInfo>& catalogue,
    const ScenarioConfig& config) {
  // Abuse generation starts before the first snapshot so lists are warm.
  const net::TimeWindow span = overall_window(config.ecosystem.periods);
  inet::AbuseGenConfig abuse;
  abuse.window = net::TimeWindow{span.begin - net::Duration::days(15), span.end};
  abuse.user_events_per_day = world.config().abuse_events_per_day_user;
  abuse.server_events_per_day = world.config().abuse_events_per_day_server;
  abuse.seed = config.seed ^ 0xab5eULL;
  const std::vector<inet::AbuseEvent> events = generate_abuse(world, abuse);
  return simulate_ecosystem(catalogue, events, config.ecosystem);
}

CrawlOutput run_crawl(const inet::World& world,
                      const blocklist::SnapshotStore& store,
                      const ScenarioConfig& config) {
  sim::EventQueue events;
  dht::DhtNetwork network(world, events, config.dht);
  const net::TimeWindow window{
      net::SimTime(0), net::SimTime(config.crawl_days * std::int64_t{86400})};
  network.schedule_churn(window);

  crawler::CrawlerConfig crawl_config = config.crawl;
  if (config.restrict_crawler_to_blocklisted) {
    crawl_config.restricted = true;
    crawl_config.restrict_to = store.blocklisted_slash24s();
  }
  crawler::Crawler crawler(network.transport(), events,
                           network.bootstrap_endpoint(), crawl_config);
  crawler.start(window);
  events.run_until(window.end + net::Duration::minutes(10));

  CrawlOutput output;
  output.stats = crawler.stats();
  output.evidence = crawler.discovered();
  output.nated = crawler.nated();
  for (const auto& [address, users] : output.nated) {
    output.nated_set.insert(address);
  }
  output.distinct_node_ids = crawler.distinct_node_ids();
  output.dht_peers = network.peer_count();
  output.dht_addresses = network.distinct_addresses();
  return output;
}

}  // namespace

void ScenarioConfig::finalize() {
  world.seed = seed;
  dht.seed = seed ^ 0xd47ULL;
  crawl.seed = seed ^ 0xc4a3ULL;
  fleet.seed = seed ^ 0xa71a5ULL;
  census.seed = seed ^ 0xce25ULL;
  if (ecosystem.periods.empty()) {
    ecosystem.periods = blocklist::paper_periods();
  }
  ecosystem.seed = seed ^ 0xb10cULL;
}

ScenarioConfig test_scenario_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 120;
  config.crawl_days = 2;
  config.fleet.probe_count = 800;
  // The real census sampled 1% of all IPv4; at 1/20 scale a much larger
  // share is needed for the census footprint to intersect the (small)
  // blocklisted-dynamic population the way the paper's did.
  config.census.block_sample_fraction = 0.6;
  config.census.window = net::TimeWindow{net::SimTime(0), net::SimTime(7 * 86400)};
  config.finalize();
  return config;
}

ScenarioConfig bench_scenario_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::bench_world_config(seed);
  config.crawl_days = 3;
  config.fleet.probe_count = 5000;
  // The real census sampled 1% of all IPv4; at 1/20 scale a much larger
  // share is needed for the census footprint to intersect the (small)
  // blocklisted-dynamic population the way the paper's did.
  config.census.block_sample_fraction = 0.6;
  config.finalize();
  return config;
}

Scenario::Scenario(ScenarioConfig cfg)
    : config(finalized(std::move(cfg))),
      world(config.world),
      catalogue(blocklist::build_catalogue(config.seed ^ 0xca7aULL)),
      ecosystem(build_ecosystem(world, catalogue, config)),
      crawl(run_crawl(world, ecosystem.store, config)),
      fleet(world, config.fleet),
      pipeline(dynadetect::run_pipeline(fleet.log(), config.pipeline)),
      census(config.run_census
                 ? census::run_census(world, config.census)
                 : census::CensusResult{}) {}

}  // namespace reuse::analysis
