// Reused-address list and greylisting support (paper §6).
//
// The paper's mitigation: publish the reused addresses so operators can
// greylist them (delay/soft-fail) instead of hard-blocking, and so
// maintainers can segregate them. This module assembles that artifact from
// the detector outputs.
#pragma once

#include <unordered_set>
#include <vector>

#include "blocklist/store.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"

namespace reuse::analysis {

/// One entry of the published reused-address list.
struct ReusedAddressEntry {
  net::Ipv4Address address;
  bool nated = false;
  bool dynamic = false;
};

/// All blocklisted addresses that are reused, sorted by address. These are
/// the entries an operator should greylist rather than block.
[[nodiscard]] std::vector<ReusedAddressEntry> build_reused_address_list(
    const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes);

/// Splits one blocklist snapshot into (block, greylist) given the reused
/// list — the operator-side workflow.
struct GreylistSplit {
  std::vector<net::Ipv4Address> block;
  std::vector<net::Ipv4Address> greylist;
};

[[nodiscard]] GreylistSplit split_for_greylisting(
    const std::vector<net::Ipv4Address>& snapshot,
    const std::vector<ReusedAddressEntry>& reused);

}  // namespace reuse::analysis
