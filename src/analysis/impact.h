// Impact quantification: the joins behind Section 5.
//
// Given the blocklist presence store and the two reused-address detectors'
// outputs, these functions compute every quantity the paper reports: how
// many lists contain reused addresses, listings per list, how long listings
// last by class, per-AS coverage, and how many users each NATed listing
// punishes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "blocklist/store.h"
#include "blocklist/types.h"
#include "crawler/crawler.h"
#include "internet/world.h"
#include "netbase/prefix_trie.h"
#include "netbase/stats.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::analysis {

/// Classification of one blocklisted address.
enum class ReuseClass : std::uint8_t { kNone, kNated, kDynamic, kBoth };

/// Per-list reuse exposure.
struct ListReuseCounts {
  blocklist::ListId list = 0;
  std::size_t total_addresses = 0;
  std::size_t nated_addresses = 0;
  std::size_t dynamic_addresses = 0;
};

/// The Section 5 headline aggregates.
struct ReuseImpact {
  std::vector<ListReuseCounts> per_list;  ///< every catalogue list
  std::size_t lists_total = 0;
  std::size_t lists_with_nated = 0;
  std::size_t lists_with_dynamic = 0;
  std::size_t nated_listings = 0;        ///< (list, addr) pairs, addr NATed
  std::size_t dynamic_listings = 0;
  std::size_t total_listings = 0;
  std::size_t nated_blocklisted_addresses = 0;    ///< distinct addrs
  std::size_t dynamic_blocklisted_addresses = 0;

  [[nodiscard]] double fraction_lists_with_nated() const {
    return lists_total == 0
               ? 0.0
               : static_cast<double>(lists_with_nated) / lists_total;
  }
  [[nodiscard]] double fraction_lists_with_dynamic() const {
    return lists_total == 0
               ? 0.0
               : static_cast<double>(lists_with_dynamic) / lists_total;
  }
};

/// Joins the store with detector outputs. `nated` comes from the crawler;
/// `dynamic_prefixes` from the pipeline (already /24-expanded). The
/// per-listing membership probes are pure lookups, so with a thread pool
/// they run in parallel and fold in listing order — byte-identical results
/// for any pool size (nullptr = serial).
[[nodiscard]] ReuseImpact compute_reuse_impact(
    const blocklist::SnapshotStore& store,
    const std::vector<blocklist::BlocklistInfo>& catalogue,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes, net::ThreadPool* pool = nullptr);

/// Figure 7 inputs: listing durations (days present) by class. One sample
/// per (list, address, period-spell).
struct ListingDurations {
  std::vector<double> all_days;
  std::vector<double> nated_days;
  std::vector<double> dynamic_days;
};

[[nodiscard]] ListingDurations compute_listing_durations(
    const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic_prefixes);

/// Figure 3 inputs: per-AS counts of blocklisted addresses and their overlap
/// with the two techniques' observable footprints.
struct AsCoverageRow {
  inet::Asn asn = 0;
  std::size_t blocklisted = 0;
  std::size_t blocklisted_bittorrent = 0;  ///< also seen by the crawler
  std::size_t blocklisted_ripe = 0;        ///< inside probe-covered prefixes
};

struct AsCoverage {
  std::vector<AsCoverageRow> rows;  ///< ascending by `blocklisted`
  std::size_t ases_with_blocklisted = 0;
  std::size_t ases_with_bittorrent = 0;
  std::size_t ases_with_ripe = 0;

  /// CDF curves as plotted: x = AS rank, y = cumulative fraction (of all
  /// blocklisted ASes) of ASes up to rank x that carry each footprint.
  [[nodiscard]] std::vector<std::pair<double, double>> curve_blocklisted() const;
  [[nodiscard]] std::vector<std::pair<double, double>> curve_bittorrent() const;
  [[nodiscard]] std::vector<std::pair<double, double>> curve_ripe() const;
};

[[nodiscard]] AsCoverage compute_as_coverage(
    const inet::World& world, const blocklist::SnapshotStore& store,
    const std::unordered_map<net::Ipv4Address, crawler::IpEvidence>&
        crawler_discovered,
    const net::PrefixSet& probe_prefixes);

/// Figure 8 inputs: concurrent-user lower bounds for blocklisted NATed
/// addresses.
[[nodiscard]] net::IntDistribution users_behind_blocklisted_nats(
    const blocklist::SnapshotStore& store,
    const std::vector<std::pair<net::Ipv4Address, std::size_t>>& nated);

/// Top-N lists by listing counts of a class — the concentration numbers
/// ("top 10 blocklists contribute 65.9% of NATed listings").
struct ConcentrationRow {
  blocklist::ListId list = 0;
  std::string name;
  std::size_t listings = 0;
};

[[nodiscard]] std::vector<ConcentrationRow> top_lists_by(
    const ReuseImpact& impact,
    const std::vector<blocklist::BlocklistInfo>& catalogue, bool nated,
    std::size_t top_n);

/// Detector validation against world ground truth.
struct DetectorValidation {
  std::size_t detected = 0;
  std::size_t true_positives = 0;
  [[nodiscard]] double precision() const {
    return detected == 0 ? 1.0
                         : static_cast<double>(true_positives) / detected;
  }
};

[[nodiscard]] DetectorValidation validate_nat_detection(
    const inet::World& world,
    const std::unordered_set<net::Ipv4Address>& nated);
[[nodiscard]] DetectorValidation validate_dynamic_detection(
    const inet::World& world, const net::PrefixSet& dynamic_prefixes);

}  // namespace reuse::analysis
