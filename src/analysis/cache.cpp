#include "analysis/cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <tuple>

#include "blocklist/catalogue.h"
#include "netbase/serialize.h"

namespace reuse::analysis {
namespace {

constexpr std::uint64_t kMagic = 0x52455553454341ULL;  // "REUSECA"
constexpr std::uint32_t kVersion = 5;

// Decoder bounds: a corrupt length prefix must fail the load immediately,
// not drive a multi-billion-iteration read loop. All generously above
// anything a real scenario produces.
constexpr std::uint64_t kMaxEvidenceEntries = 1ULL << 32;
constexpr std::uint64_t kMaxPortsPerIp = 65536;
constexpr std::uint64_t kMaxListings = 1ULL << 33;
constexpr std::uint64_t kMaxIntervalsPerListing = 1ULL << 22;
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 34;
constexpr std::uint64_t kMaxLists = 1ULL << 20;

void write_crawl(net::BinaryWriter& writer, const CrawlOutput& crawl) {
  const crawler::CrawlStats& stats = crawl.stats;
  writer.write(stats.get_nodes_sent);
  writer.write(stats.get_nodes_responses);
  writer.write(stats.pings_sent);
  writer.write(stats.ping_responses);
  writer.write(stats.endpoints_discovered);
  writer.write(stats.endpoints_skipped_restricted);
  writer.write(stats.verification_rounds);
  writer.write(stats.bootstrap_retries);
  writer.write(stats.bootstrap_recoveries);
  writer.write(stats.verification_retries);
  writer.write(stats.verification_recoveries);
  writer.write(static_cast<std::uint64_t>(crawl.distinct_node_ids));
  writer.write(static_cast<std::uint64_t>(crawl.dht_peers));
  writer.write(static_cast<std::uint64_t>(crawl.dht_addresses));
  writer.write(crawl.transport_fault_request_drops);
  writer.write(crawl.transport_fault_response_drops);

  // Addresses and per-address ports are written sorted so the same crawl
  // always serializes to the same bytes (the in-memory containers are
  // unordered); deterministic bytes make save idempotent and testable.
  std::vector<net::Ipv4Address> addresses;
  addresses.reserve(crawl.evidence.size());
  for (const auto& [address, evidence] : crawl.evidence) {
    addresses.push_back(address);
  }
  std::sort(addresses.begin(), addresses.end());

  writer.write(static_cast<std::uint64_t>(addresses.size()));
  for (const net::Ipv4Address address : addresses) {
    const crawler::IpEvidence& evidence = crawl.evidence.at(address);
    writer.write(address.value());
    std::vector<std::uint16_t> ports(evidence.ports.begin(),
                                     evidence.ports.end());
    std::sort(ports.begin(), ports.end());
    writer.write(static_cast<std::uint64_t>(ports.size()));
    for (const std::uint16_t port : ports) writer.write(port);
    writer.write(static_cast<std::uint32_t>(evidence.max_concurrent_users));
    writer.write(evidence.verification_rounds);
    writer.write(evidence.first_seen.seconds());
    writer.write(evidence.last_seen.seconds());
  }
}

bool read_crawl(net::BinaryReader& reader, CrawlOutput& crawl) {
  crawler::CrawlStats& stats = crawl.stats;
  stats.get_nodes_sent = reader.read<std::uint64_t>();
  stats.get_nodes_responses = reader.read<std::uint64_t>();
  stats.pings_sent = reader.read<std::uint64_t>();
  stats.ping_responses = reader.read<std::uint64_t>();
  stats.endpoints_discovered = reader.read<std::uint64_t>();
  stats.endpoints_skipped_restricted = reader.read<std::uint64_t>();
  stats.verification_rounds = reader.read<std::uint64_t>();
  stats.bootstrap_retries = reader.read<std::uint64_t>();
  stats.bootstrap_recoveries = reader.read<std::uint64_t>();
  stats.verification_retries = reader.read<std::uint64_t>();
  stats.verification_recoveries = reader.read<std::uint64_t>();
  crawl.distinct_node_ids = reader.read<std::uint64_t>();
  crawl.dht_peers = reader.read<std::uint64_t>();
  crawl.dht_addresses = reader.read<std::uint64_t>();
  crawl.transport_fault_request_drops = reader.read<std::uint64_t>();
  crawl.transport_fault_response_drops = reader.read<std::uint64_t>();

  const std::uint64_t evidence_count = reader.read_size(kMaxEvidenceEntries);
  for (std::uint64_t i = 0; i < evidence_count && reader.ok(); ++i) {
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    crawler::IpEvidence evidence;
    const std::uint64_t port_count = reader.read_size(kMaxPortsPerIp);
    for (std::uint64_t p = 0; p < port_count && reader.ok(); ++p) {
      evidence.ports.insert(reader.read<std::uint16_t>());
    }
    evidence.max_concurrent_users = reader.read<std::uint32_t>();
    evidence.verification_rounds = reader.read<std::uint32_t>();
    evidence.first_seen = net::SimTime(reader.read<std::int64_t>());
    evidence.last_seen = net::SimTime(reader.read<std::int64_t>());
    if (evidence.is_nated()) {
      crawl.nated.emplace_back(address, evidence.max_concurrent_users);
      crawl.nated_set.insert(address);
    }
    if (!crawl.evidence.emplace(address, std::move(evidence)).second) {
      reader.fail();  // duplicate address: not a product of write_crawl
    }
  }
  // The live Crawler::nated() returns (address, users) pairs sorted by
  // address; addresses are unique, so this sort reproduces its exact
  // ordering and cache-hit runs match cache-miss runs byte for byte.
  std::sort(crawl.nated.begin(), crawl.nated.end());
  return reader.ok();
}

void write_store(net::BinaryWriter& writer,
                 const blocklist::EcosystemResult& ecosystem) {
  writer.write(ecosystem.stats.events_seen);
  writer.write(ecosystem.stats.events_picked_up);
  writer.write(ecosystem.stats.snapshots_taken);
  writer.write(ecosystem.stats.snapshots_missed);
  writer.write(ecosystem.stats.feeds_quarantined);
  writer.write(ecosystem.stats.feeds_salvaged);
  writer.write(ecosystem.stats.entries_discarded);
  writer.write(ecosystem.stats.feed_lines_skipped);

  writer.write(static_cast<std::uint64_t>(ecosystem.stats.per_list.size()));
  for (const blocklist::FeedHealth& health : ecosystem.stats.per_list) {
    writer.write(health.list);
    writer.write(health.days_recorded);
    writer.write(health.days_missed);
    writer.write(health.days_quarantined);
    writer.write(health.days_salvaged);
    writer.write(health.lines_skipped);
    writer.write(health.entries_discarded);
  }

  // Observed-day records. The store iterates in ascending list order, which
  // is exactly the deterministic byte order this format always used.
  std::uint64_t observed_count = 0;
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId, const net::IntervalSet&) { ++observed_count; });
  writer.write(observed_count);
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId list, const net::IntervalSet& days) {
        writer.write(list);
        writer.write(static_cast<std::uint64_t>(days.interval_count()));
        for (const auto& interval : days.intervals()) {
          writer.write(interval.begin);
          writer.write(interval.end);
        }
      });

  // Listings stream straight out in the store's ascending (list, address)
  // iteration order — same bytes the old sort-then-write produced, without
  // materializing a reference table.
  writer.write(static_cast<std::uint64_t>(ecosystem.store.listing_count()));
  ecosystem.store.for_each_listing([&](blocklist::ListId list,
                                       net::Ipv4Address address,
                                       const net::IntervalSet& intervals) {
    writer.write(list);
    writer.write(address.value());
    writer.write(static_cast<std::uint64_t>(intervals.interval_count()));
    for (const auto& interval : intervals.intervals()) {
      writer.write(interval.begin);
      writer.write(interval.end);
    }
  });
}

bool read_store(net::BinaryReader& reader,
                blocklist::EcosystemResult& ecosystem) {
  ecosystem.stats.events_seen = reader.read<std::uint64_t>();
  ecosystem.stats.events_picked_up = reader.read<std::uint64_t>();
  ecosystem.stats.snapshots_taken = reader.read<std::uint64_t>();
  ecosystem.stats.snapshots_missed = reader.read<std::uint64_t>();
  ecosystem.stats.feeds_quarantined = reader.read<std::uint64_t>();
  ecosystem.stats.feeds_salvaged = reader.read<std::uint64_t>();
  ecosystem.stats.entries_discarded = reader.read<std::uint64_t>();
  ecosystem.stats.feed_lines_skipped = reader.read<std::uint64_t>();

  const std::uint64_t health_count = reader.read_size(kMaxLists);
  ecosystem.stats.per_list.reserve(health_count);
  for (std::uint64_t i = 0; i < health_count && reader.ok(); ++i) {
    blocklist::FeedHealth health;
    health.list = reader.read<blocklist::ListId>();
    health.days_recorded = reader.read<std::int64_t>();
    health.days_missed = reader.read<std::int64_t>();
    health.days_quarantined = reader.read<std::int64_t>();
    health.days_salvaged = reader.read<std::int64_t>();
    health.lines_skipped = reader.read<std::uint64_t>();
    health.entries_discarded = reader.read<std::uint64_t>();
    ecosystem.stats.per_list.push_back(health);
  }

  const std::uint64_t observed_count = reader.read_size(kMaxLists);
  for (std::uint64_t i = 0; i < observed_count && reader.ok(); ++i) {
    const auto list = reader.read<blocklist::ListId>();
    const std::uint64_t interval_count =
        reader.read_size(kMaxIntervalsPerListing);
    std::int64_t previous_end = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t k = 0; k < interval_count && reader.ok(); ++k) {
      const auto begin = reader.read<std::int64_t>();
      const auto end = reader.read<std::int64_t>();
      if (begin >= end || begin <= previous_end) {
        reader.fail();
        break;
      }
      previous_end = end;
      ecosystem.store.mark_observed_span(list, begin, end);
    }
  }

  const std::uint64_t listings = reader.read_size(kMaxListings);
  for (std::uint64_t i = 0; i < listings && reader.ok(); ++i) {
    const auto list = reader.read<blocklist::ListId>();
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    const std::uint64_t interval_count =
        reader.read_size(kMaxIntervalsPerListing);
    // write_store emits each listing's intervals sorted, disjoint and
    // coalesced; enforce that here so record_span's appends stay O(1) and
    // corrupted interval data fails instead of silently merging.
    std::int64_t previous_end = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t k = 0; k < interval_count && reader.ok(); ++k) {
      const auto begin = reader.read<std::int64_t>();
      const auto end = reader.read<std::int64_t>();
      if (begin >= end || begin <= previous_end) {
        reader.fail();
        break;
      }
      previous_end = end;
      ecosystem.store.record_span(list, address, begin, end);
    }
  }
  return reader.ok();
}

void write_faults(net::BinaryWriter& writer, const sim::FaultStats& injected) {
  writer.write(injected.burst_request_drops);
  writer.write(injected.burst_response_drops);
  writer.write(injected.bootstrap_blackholes);
  writer.write(injected.feed_snapshots_suppressed);
  writer.write(injected.feeds_corrupted);
  writer.write(injected.atlas_records_suppressed);
}

bool read_faults(net::BinaryReader& reader, sim::FaultStats& injected) {
  injected.burst_request_drops = reader.read<std::uint64_t>();
  injected.burst_response_drops = reader.read<std::uint64_t>();
  injected.bootstrap_blackholes = reader.read<std::uint64_t>();
  injected.feed_snapshots_suppressed = reader.read<std::uint64_t>();
  injected.feeds_corrupted = reader.read<std::uint64_t>();
  injected.atlas_records_suppressed = reader.read<std::uint64_t>();
  return reader.ok();
}

}  // namespace

CacheMetrics& cache_metrics() {
  static CacheMetrics m{
      net::metrics::counter("cache_hits_total",
                            "Scenario caches restored successfully"),
      net::metrics::counter("cache_misses_total",
                            "Cache probes that found no readable file"),
      net::metrics::counter("cache_rejects_total",
                            "Cache files present but rejected by validation "
                            "(magic/version/fingerprint/checksum/decode)"),
      net::metrics::counter("cache_saves_total", "Cache files written"),
      net::metrics::counter("cache_bytes_read_total",
                            "Payload bytes of restored cache files"),
      net::metrics::counter("cache_bytes_written_total",
                            "Payload bytes of saved cache files"),
  };
  return m;
}

bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem,
                         const sim::FaultStats& injected) {
  // Serialize the payload up front so the header can carry its size and
  // checksum, and so a failed serialization never touches the filesystem.
  std::ostringstream payload_stream;
  net::BinaryWriter payload_writer(payload_stream);
  write_crawl(payload_writer, crawl);
  write_store(payload_writer, ecosystem);
  write_faults(payload_writer, injected);
  if (!payload_writer.ok()) return false;
  const std::string payload = payload_stream.str();
  if (payload.size() > kMaxPayloadBytes) return false;

  // Assemble under a pid-unique temporary name, then rename() into place.
  // rename() replaces atomically, so a reader racing with this save sees
  // either the previous complete file or the new one — never a torn write.
  // Two concurrent savers of the same config write equivalent bytes and the
  // last rename wins (accept-last-rename; no lock needed).
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    net::BinaryWriter writer(os);
    writer.write(kMagic);
    writer.write(kVersion);
    writer.write(kCalibrationVersion);
    writer.write(config_fingerprint(config));
    writer.write(config.seed);
    writer.write(static_cast<std::uint64_t>(config.world.as_count));
    writer.write(static_cast<std::uint64_t>(payload.size()));
    writer.write(net::fnv1a_64(payload));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp_path, cleanup_ec);
    return false;
  }
  cache_metrics().saves.increment();
  cache_metrics().bytes_written.add(payload.size());
  return true;
}

std::optional<CachedCore> load_scenario_cache(const std::string& path,
                                              const ScenarioConfig& config) {
  CacheMetrics& metrics = cache_metrics();
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    metrics.misses.increment();
    return std::nullopt;
  }
  // Anything readable-but-invalid from here on is a *reject*: the file
  // exists but cannot be trusted (stale version, foreign config, torn or
  // corrupted payload) and the scenario re-simulates.
  const auto reject = [&metrics]() -> std::optional<CachedCore> {
    metrics.rejects.increment();
    return std::nullopt;
  };
  net::BinaryReader reader(is);
  if (reader.read<std::uint64_t>() != kMagic) return reject();
  if (reader.read<std::uint32_t>() != kVersion) return reject();
  if (reader.read<std::uint32_t>() != kCalibrationVersion) return reject();
  if (reader.read<std::uint64_t>() != config_fingerprint(config)) {
    return reject();
  }
  if (reader.read<std::uint64_t>() != config.seed) return reject();
  if (reader.read<std::uint64_t>() !=
      static_cast<std::uint64_t>(config.world.as_count)) {
    return reject();
  }
  const std::uint64_t payload_size = reader.read_size(kMaxPayloadBytes);
  const std::uint64_t expected_checksum = reader.read<std::uint64_t>();
  if (!reader.ok()) return reject();

  // Pull the whole payload and checksum it before decoding anything: a
  // truncated file (crashed writer on a non-atomic filesystem, partial
  // copy) or a bit flip is rejected here, in one bounded pass.
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_size) {
    return reject();
  }
  if (net::fnv1a_64(payload) != expected_checksum) return reject();

  std::istringstream payload_stream(std::move(payload));
  net::BinaryReader payload_reader(payload_stream);
  CachedCore core;
  if (!read_crawl(payload_reader, core.crawl)) return reject();
  if (!read_store(payload_reader, core.ecosystem)) return reject();
  if (!read_faults(payload_reader, core.injected)) return reject();
  metrics.hits.increment();
  metrics.bytes_read.add(payload_size);
  return core;
}

std::optional<std::string> preflight_cache_path(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(path, ec);
  if (!ec && fs::exists(status)) {
    if (fs::is_directory(status)) {
      return "cache path is a directory: " + path;
    }
    if (!fs::is_regular_file(status)) {
      return "cache path is not a regular file: " + path;
    }
    if (::access(path.c_str(), R_OK) != 0) {
      return "cache file is not readable: " + path;
    }
    return std::nullopt;
  }
  // Missing file: a later save must be able to create it.
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const fs::file_status parent_status = fs::status(parent, ec);
  if (ec || !fs::exists(parent_status)) {
    return "cache directory does not exist: " + parent.string();
  }
  if (!fs::is_directory(parent_status)) {
    return "cache directory is not a directory: " + parent.string();
  }
  if (::access(parent.c_str(), W_OK) != 0) {
    return "cache directory is not writable: " + parent.string();
  }
  return std::nullopt;
}

std::string default_cache_path(const ScenarioConfig& config) {
  char name[80];
  std::snprintf(name, sizeof(name), "reuse_scenario_%llu_%016llx.cache",
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(config_fingerprint(config)));
  const char* cache_dir = std::getenv("REUSE_CACHE_DIR");
  if (cache_dir != nullptr && *cache_dir != '\0') {
    return (std::filesystem::path(cache_dir) / name).string();
  }
  return name;
}

CachedScenario run_scenario_cached(ScenarioConfig config,
                                   const std::string& path) {
  config.finalize();
  const std::string cache_path =
      path.empty() ? default_cache_path(config) : path;

  StageTimer stage_times;
  auto cached = stage_times.time(
      "cache-load", [&] { return load_scenario_cache(cache_path, config); });
  if (cached) {
    // Recomputed stages share the scenario's threading policy.
    std::unique_ptr<net::ThreadPool> pool = make_scenario_pool(config.jobs);
    inet::World world = stage_times.time(
        "world", [&] { return inet::World(config.world); });
    auto catalogue = blocklist::build_catalogue(config.seed ^ 0xca7aULL);
    // The fleet is recomputed on every load, so atlas faults are re-injected
    // fresh; the deterministic fleet makes the fresh suppression count equal
    // the one cached, and overwriting keeps the ledger consistent even if a
    // fleet knob changed (fleet is outside the cache fingerprint).
    sim::FaultInjector fleet_injector(config.faults);
    atlas::AtlasFleet fleet = stage_times.time("fleet", [&] {
      sim::StageGuard guard(&fleet_injector, sim::FaultStage::kFleet);
      return atlas::AtlasFleet(world, config.fleet, &fleet_injector,
                               pool.get());
    });
    auto pipeline = stage_times.time("pipeline", [&] {
      return dynadetect::run_pipeline(fleet.compressed_log(), config.pipeline,
                                      pool.get());
    });
    auto census = stage_times.time("census", [&] {
      return config.run_census
                 ? census::run_census(world, config.census, {}, pool.get())
                 : census::CensusResult{};
    });
    // The crawl and ecosystem were restored, not re-run, so their stage
    // publishers never fired; publish from the cached products so the run
    // manifest carries the numbers this run's products actually embody.
    publish_crawl_metrics(cached->crawl);
    blocklist::publish_feed_metrics(cached->ecosystem.stats);
    sim::FaultStats injected = cached->injected;
    injected.atlas_records_suppressed =
        fleet_injector.stats().atlas_records_suppressed;
    DegradationReport degradation = build_degradation_report(
        injected, cached->crawl.stats,
        cached->crawl.transport_fault_request_drops,
        cached->crawl.transport_fault_response_drops, cached->ecosystem.stats,
        fleet.records_suppressed(), pipeline);
    CachedScenario result{std::move(config),
                          std::move(world),
                          std::move(catalogue),
                          std::move(cached->ecosystem),
                          std::move(cached->crawl),
                          std::move(fleet),
                          std::move(pipeline),
                          std::move(census),
                          std::move(degradation),
                          /*cache_hit=*/true};
    result.stage_times = std::move(stage_times);
    return result;
  }

  Scenario scenario = run_scenario(config);
  save_scenario_cache(cache_path, scenario.config, scenario.crawl,
                      scenario.ecosystem, scenario.injector->stats());
  CachedScenario result{std::move(scenario.config),
                        std::move(scenario.world),
                        std::move(scenario.catalogue),
                        std::move(scenario.ecosystem),
                        std::move(scenario.crawl),
                        std::move(scenario.fleet),
                        std::move(scenario.pipeline),
                        std::move(scenario.census),
                        std::move(scenario.degradation),
                        /*cache_hit=*/false};
  result.stage_times = std::move(scenario.stage_times);
  // Fold in the (missed) cache probe so hit and miss timings are comparable.
  result.stage_times.record("cache-load", stage_times.millis("cache-load"));
  return result;
}

}  // namespace reuse::analysis
