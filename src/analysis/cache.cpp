#include "analysis/cache.h"

#include <algorithm>
#include <fstream>

#include "blocklist/catalogue.h"
#include "netbase/serialize.h"

namespace reuse::analysis {
namespace {

constexpr std::uint64_t kMagic = 0x52455553454341ULL;  // "REUSECA"
constexpr std::uint32_t kVersion = 3;

void write_crawl(net::BinaryWriter& writer, const CrawlOutput& crawl) {
  const crawler::CrawlStats& stats = crawl.stats;
  writer.write(stats.get_nodes_sent);
  writer.write(stats.get_nodes_responses);
  writer.write(stats.pings_sent);
  writer.write(stats.ping_responses);
  writer.write(stats.endpoints_discovered);
  writer.write(stats.endpoints_skipped_restricted);
  writer.write(stats.verification_rounds);
  writer.write(static_cast<std::uint64_t>(crawl.distinct_node_ids));
  writer.write(static_cast<std::uint64_t>(crawl.dht_peers));
  writer.write(static_cast<std::uint64_t>(crawl.dht_addresses));

  writer.write(static_cast<std::uint64_t>(crawl.evidence.size()));
  for (const auto& [address, evidence] : crawl.evidence) {
    writer.write(address.value());
    writer.write(static_cast<std::uint32_t>(evidence.ports.size()));
    for (const std::uint16_t port : evidence.ports) writer.write(port);
    writer.write(static_cast<std::uint32_t>(evidence.max_concurrent_users));
    writer.write(evidence.verification_rounds);
    writer.write(evidence.first_seen.seconds());
    writer.write(evidence.last_seen.seconds());
  }
}

bool read_crawl(net::BinaryReader& reader, CrawlOutput& crawl) {
  crawler::CrawlStats& stats = crawl.stats;
  stats.get_nodes_sent = reader.read<std::uint64_t>();
  stats.get_nodes_responses = reader.read<std::uint64_t>();
  stats.pings_sent = reader.read<std::uint64_t>();
  stats.ping_responses = reader.read<std::uint64_t>();
  stats.endpoints_discovered = reader.read<std::uint64_t>();
  stats.endpoints_skipped_restricted = reader.read<std::uint64_t>();
  stats.verification_rounds = reader.read<std::uint64_t>();
  crawl.distinct_node_ids = reader.read<std::uint64_t>();
  crawl.dht_peers = reader.read<std::uint64_t>();
  crawl.dht_addresses = reader.read<std::uint64_t>();

  const std::uint64_t evidence_count = reader.read_size(1ULL << 32);
  for (std::uint64_t i = 0; i < evidence_count && reader.ok(); ++i) {
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    crawler::IpEvidence evidence;
    const auto port_count = reader.read<std::uint32_t>();
    for (std::uint32_t p = 0; p < port_count && reader.ok(); ++p) {
      evidence.ports.insert(reader.read<std::uint16_t>());
    }
    evidence.max_concurrent_users = reader.read<std::uint32_t>();
    evidence.verification_rounds = reader.read<std::uint32_t>();
    evidence.first_seen = net::SimTime(reader.read<std::int64_t>());
    evidence.last_seen = net::SimTime(reader.read<std::int64_t>());
    if (evidence.is_nated()) {
      crawl.nated.emplace_back(address, evidence.max_concurrent_users);
      crawl.nated_set.insert(address);
    }
    crawl.evidence.emplace(address, std::move(evidence));
  }
  std::sort(crawl.nated.begin(), crawl.nated.end());
  return reader.ok();
}

void write_store(net::BinaryWriter& writer,
                 const blocklist::EcosystemResult& ecosystem) {
  writer.write(ecosystem.stats.events_seen);
  writer.write(ecosystem.stats.events_picked_up);
  writer.write(ecosystem.stats.snapshots_taken);
  std::uint64_t listings = 0;
  ecosystem.store.for_each_listing(
      [&](blocklist::ListId, net::Ipv4Address, const net::IntervalSet&) {
        ++listings;
      });
  writer.write(listings);
  ecosystem.store.for_each_listing([&](blocklist::ListId list,
                                       net::Ipv4Address address,
                                       const net::IntervalSet& intervals) {
    writer.write(list);
    writer.write(address.value());
    writer.write(static_cast<std::uint32_t>(intervals.interval_count()));
    for (const auto& interval : intervals.intervals()) {
      writer.write(interval.begin);
      writer.write(interval.end);
    }
  });
}

bool read_store(net::BinaryReader& reader,
                blocklist::EcosystemResult& ecosystem) {
  ecosystem.stats.events_seen = reader.read<std::uint64_t>();
  ecosystem.stats.events_picked_up = reader.read<std::uint64_t>();
  ecosystem.stats.snapshots_taken = reader.read<std::uint64_t>();
  const std::uint64_t listings = reader.read_size(1ULL << 33);
  for (std::uint64_t i = 0; i < listings && reader.ok(); ++i) {
    const auto list = reader.read<blocklist::ListId>();
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    const auto interval_count = reader.read<std::uint32_t>();
    for (std::uint32_t k = 0; k < interval_count && reader.ok(); ++k) {
      const auto begin = reader.read<std::int64_t>();
      const auto end = reader.read<std::int64_t>();
      for (std::int64_t day = begin; day < end; ++day) {
        ecosystem.store.record(list, address, day);
      }
    }
  }
  return reader.ok();
}

}  // namespace

bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  net::BinaryWriter writer(os);
  writer.write(kMagic);
  writer.write(kVersion);
  writer.write(kCalibrationVersion);
  writer.write(config.seed);
  writer.write(static_cast<std::uint64_t>(config.world.as_count));
  writer.write(static_cast<std::int64_t>(config.crawl_days));
  write_crawl(writer, crawl);
  write_store(writer, ecosystem);
  return writer.ok();
}

std::optional<CachedCore> load_scenario_cache(const std::string& path,
                                              const ScenarioConfig& config) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  net::BinaryReader reader(is);
  if (reader.read<std::uint64_t>() != kMagic) return std::nullopt;
  if (reader.read<std::uint32_t>() != kVersion) return std::nullopt;
  if (reader.read<std::uint32_t>() != kCalibrationVersion) return std::nullopt;
  if (reader.read<std::uint64_t>() != config.seed) return std::nullopt;
  if (reader.read<std::uint64_t>() != config.world.as_count) return std::nullopt;
  if (reader.read<std::int64_t>() != config.crawl_days) return std::nullopt;
  CachedCore core;
  if (!read_crawl(reader, core.crawl)) return std::nullopt;
  if (!read_store(reader, core.ecosystem)) return std::nullopt;
  return core;
}

std::string default_cache_path(const ScenarioConfig& config) {
  return "reuse_scenario_" + std::to_string(config.seed) + "_" +
         std::to_string(config.world.as_count) + ".cache";
}

CachedScenario run_scenario_cached(ScenarioConfig config,
                                   const std::string& path) {
  config.finalize();
  const std::string cache_path =
      path.empty() ? default_cache_path(config) : path;

  if (auto cached = load_scenario_cache(cache_path, config)) {
    inet::World world(config.world);
    auto catalogue = blocklist::build_catalogue(config.seed ^ 0xca7aULL);
    atlas::AtlasFleet fleet(world, config.fleet);
    auto pipeline = dynadetect::run_pipeline(fleet.log(), config.pipeline);
    auto census = config.run_census ? census::run_census(world, config.census)
                                    : census::CensusResult{};
    return CachedScenario{std::move(config),
                          std::move(world),
                          std::move(catalogue),
                          std::move(cached->ecosystem),
                          std::move(cached->crawl),
                          std::move(fleet),
                          std::move(pipeline),
                          std::move(census),
                          /*cache_hit=*/true};
  }

  Scenario scenario = run_scenario(config);
  save_scenario_cache(cache_path, scenario.config, scenario.crawl,
                      scenario.ecosystem);
  return CachedScenario{std::move(scenario.config),
                        std::move(scenario.world),
                        std::move(scenario.catalogue),
                        std::move(scenario.ecosystem),
                        std::move(scenario.crawl),
                        std::move(scenario.fleet),
                        std::move(scenario.pipeline),
                        std::move(scenario.census),
                        /*cache_hit=*/false};
}

}  // namespace reuse::analysis
