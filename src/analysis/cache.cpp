#include "analysis/cache.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <tuple>

#include "blocklist/catalogue.h"
#include "netbase/serialize.h"

namespace reuse::analysis {
namespace {

constexpr std::uint64_t kMagic = 0x52455553454341ULL;  // "REUSECA"
// v6: the payload gained the incremental-resume sections — per-feed carry
// cursors (RNG state, live map, pickup counter) and the fleet products
// keyed by a fleet-config fingerprint. v5 files (and any other version)
// are rejected cleanly by the version check below and re-simulated; they
// are never partially decoded.
constexpr std::uint32_t kVersion = 6;

// Decoder bounds: a corrupt length prefix must fail the load immediately,
// not drive a multi-billion-iteration read loop. All generously above
// anything a real scenario produces.
constexpr std::uint64_t kMaxEvidenceEntries = 1ULL << 32;
constexpr std::uint64_t kMaxPortsPerIp = 65536;
constexpr std::uint64_t kMaxListings = 1ULL << 33;
constexpr std::uint64_t kMaxIntervalsPerListing = 1ULL << 22;
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 34;
constexpr std::uint64_t kMaxLists = 1ULL << 20;
constexpr std::uint64_t kMaxLivePerFeed = 1ULL << 30;
constexpr std::uint64_t kMaxProbes = 1ULL << 24;
constexpr std::uint64_t kMaxRunsPerProbe = 1ULL << 26;

void write_crawl(net::BinaryWriter& writer, const CrawlOutput& crawl) {
  const crawler::CrawlStats& stats = crawl.stats;
  writer.write(stats.get_nodes_sent);
  writer.write(stats.get_nodes_responses);
  writer.write(stats.pings_sent);
  writer.write(stats.ping_responses);
  writer.write(stats.endpoints_discovered);
  writer.write(stats.endpoints_skipped_restricted);
  writer.write(stats.verification_rounds);
  writer.write(stats.bootstrap_retries);
  writer.write(stats.bootstrap_recoveries);
  writer.write(stats.verification_retries);
  writer.write(stats.verification_recoveries);
  writer.write(static_cast<std::uint64_t>(crawl.distinct_node_ids));
  writer.write(static_cast<std::uint64_t>(crawl.dht_peers));
  writer.write(static_cast<std::uint64_t>(crawl.dht_addresses));
  writer.write(crawl.transport_fault_request_drops);
  writer.write(crawl.transport_fault_response_drops);

  // Addresses and per-address ports are written sorted so the same crawl
  // always serializes to the same bytes (the in-memory containers are
  // unordered); deterministic bytes make save idempotent and testable.
  std::vector<net::Ipv4Address> addresses;
  addresses.reserve(crawl.evidence.size());
  for (const auto& [address, evidence] : crawl.evidence) {
    addresses.push_back(address);
  }
  std::sort(addresses.begin(), addresses.end());

  writer.write(static_cast<std::uint64_t>(addresses.size()));
  for (const net::Ipv4Address address : addresses) {
    const crawler::IpEvidence& evidence = crawl.evidence.at(address);
    writer.write(address.value());
    std::vector<std::uint16_t> ports(evidence.ports.begin(),
                                     evidence.ports.end());
    std::sort(ports.begin(), ports.end());
    writer.write(static_cast<std::uint64_t>(ports.size()));
    for (const std::uint16_t port : ports) writer.write(port);
    writer.write(static_cast<std::uint32_t>(evidence.max_concurrent_users));
    writer.write(evidence.verification_rounds);
    writer.write(evidence.first_seen.seconds());
    writer.write(evidence.last_seen.seconds());
  }
}

bool read_crawl(net::BinaryReader& reader, CrawlOutput& crawl) {
  crawler::CrawlStats& stats = crawl.stats;
  stats.get_nodes_sent = reader.read<std::uint64_t>();
  stats.get_nodes_responses = reader.read<std::uint64_t>();
  stats.pings_sent = reader.read<std::uint64_t>();
  stats.ping_responses = reader.read<std::uint64_t>();
  stats.endpoints_discovered = reader.read<std::uint64_t>();
  stats.endpoints_skipped_restricted = reader.read<std::uint64_t>();
  stats.verification_rounds = reader.read<std::uint64_t>();
  stats.bootstrap_retries = reader.read<std::uint64_t>();
  stats.bootstrap_recoveries = reader.read<std::uint64_t>();
  stats.verification_retries = reader.read<std::uint64_t>();
  stats.verification_recoveries = reader.read<std::uint64_t>();
  crawl.distinct_node_ids = reader.read<std::uint64_t>();
  crawl.dht_peers = reader.read<std::uint64_t>();
  crawl.dht_addresses = reader.read<std::uint64_t>();
  crawl.transport_fault_request_drops = reader.read<std::uint64_t>();
  crawl.transport_fault_response_drops = reader.read<std::uint64_t>();

  const std::uint64_t evidence_count = reader.read_size(kMaxEvidenceEntries);
  for (std::uint64_t i = 0; i < evidence_count && reader.ok(); ++i) {
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    crawler::IpEvidence evidence;
    const std::uint64_t port_count = reader.read_size(kMaxPortsPerIp);
    for (std::uint64_t p = 0; p < port_count && reader.ok(); ++p) {
      evidence.ports.insert(reader.read<std::uint16_t>());
    }
    evidence.max_concurrent_users = reader.read<std::uint32_t>();
    evidence.verification_rounds = reader.read<std::uint32_t>();
    evidence.first_seen = net::SimTime(reader.read<std::int64_t>());
    evidence.last_seen = net::SimTime(reader.read<std::int64_t>());
    if (evidence.is_nated()) {
      crawl.nated.emplace_back(address, evidence.max_concurrent_users);
      crawl.nated_set.insert(address);
    }
    if (!crawl.evidence.emplace(address, std::move(evidence)).second) {
      reader.fail();  // duplicate address: not a product of write_crawl
    }
  }
  // The live Crawler::nated() returns (address, users) pairs sorted by
  // address; addresses are unique, so this sort reproduces its exact
  // ordering and cache-hit runs match cache-miss runs byte for byte.
  std::sort(crawl.nated.begin(), crawl.nated.end());
  return reader.ok();
}

void write_store(net::BinaryWriter& writer,
                 const blocklist::EcosystemResult& ecosystem) {
  writer.write(ecosystem.stats.events_seen);
  writer.write(ecosystem.stats.events_picked_up);
  writer.write(ecosystem.stats.snapshots_taken);
  writer.write(ecosystem.stats.snapshots_missed);
  writer.write(ecosystem.stats.feeds_quarantined);
  writer.write(ecosystem.stats.feeds_salvaged);
  writer.write(ecosystem.stats.entries_discarded);
  writer.write(ecosystem.stats.feed_lines_skipped);

  writer.write(static_cast<std::uint64_t>(ecosystem.stats.per_list.size()));
  for (const blocklist::FeedHealth& health : ecosystem.stats.per_list) {
    writer.write(health.list);
    writer.write(health.days_recorded);
    writer.write(health.days_missed);
    writer.write(health.days_quarantined);
    writer.write(health.days_salvaged);
    writer.write(health.lines_skipped);
    writer.write(health.entries_discarded);
  }

  // Observed-day records. The store iterates in ascending list order, which
  // is exactly the deterministic byte order this format always used.
  std::uint64_t observed_count = 0;
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId, const net::IntervalSet&) { ++observed_count; });
  writer.write(observed_count);
  ecosystem.store.for_each_observed(
      [&](blocklist::ListId list, const net::IntervalSet& days) {
        writer.write(list);
        writer.write(static_cast<std::uint64_t>(days.interval_count()));
        for (const auto& interval : days.intervals()) {
          writer.write(interval.begin);
          writer.write(interval.end);
        }
      });

  // Listings stream straight out in the store's ascending (list, address)
  // iteration order — same bytes the old sort-then-write produced, without
  // materializing a reference table.
  writer.write(static_cast<std::uint64_t>(ecosystem.store.listing_count()));
  ecosystem.store.for_each_listing([&](blocklist::ListId list,
                                       net::Ipv4Address address,
                                       const net::IntervalSet& intervals) {
    writer.write(list);
    writer.write(address.value());
    writer.write(static_cast<std::uint64_t>(intervals.interval_count()));
    for (const auto& interval : intervals.intervals()) {
      writer.write(interval.begin);
      writer.write(interval.end);
    }
  });
}

bool read_store(net::BinaryReader& reader,
                blocklist::EcosystemResult& ecosystem) {
  ecosystem.stats.events_seen = reader.read<std::uint64_t>();
  ecosystem.stats.events_picked_up = reader.read<std::uint64_t>();
  ecosystem.stats.snapshots_taken = reader.read<std::uint64_t>();
  ecosystem.stats.snapshots_missed = reader.read<std::uint64_t>();
  ecosystem.stats.feeds_quarantined = reader.read<std::uint64_t>();
  ecosystem.stats.feeds_salvaged = reader.read<std::uint64_t>();
  ecosystem.stats.entries_discarded = reader.read<std::uint64_t>();
  ecosystem.stats.feed_lines_skipped = reader.read<std::uint64_t>();

  const std::uint64_t health_count = reader.read_size(kMaxLists);
  ecosystem.stats.per_list.reserve(health_count);
  for (std::uint64_t i = 0; i < health_count && reader.ok(); ++i) {
    blocklist::FeedHealth health;
    health.list = reader.read<blocklist::ListId>();
    health.days_recorded = reader.read<std::int64_t>();
    health.days_missed = reader.read<std::int64_t>();
    health.days_quarantined = reader.read<std::int64_t>();
    health.days_salvaged = reader.read<std::int64_t>();
    health.lines_skipped = reader.read<std::uint64_t>();
    health.entries_discarded = reader.read<std::uint64_t>();
    ecosystem.stats.per_list.push_back(health);
  }

  const std::uint64_t observed_count = reader.read_size(kMaxLists);
  for (std::uint64_t i = 0; i < observed_count && reader.ok(); ++i) {
    const auto list = reader.read<blocklist::ListId>();
    const std::uint64_t interval_count =
        reader.read_size(kMaxIntervalsPerListing);
    std::int64_t previous_end = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t k = 0; k < interval_count && reader.ok(); ++k) {
      const auto begin = reader.read<std::int64_t>();
      const auto end = reader.read<std::int64_t>();
      if (begin >= end || begin <= previous_end) {
        reader.fail();
        break;
      }
      previous_end = end;
      ecosystem.store.mark_observed_span(list, begin, end);
    }
  }

  const std::uint64_t listings = reader.read_size(kMaxListings);
  for (std::uint64_t i = 0; i < listings && reader.ok(); ++i) {
    const auto list = reader.read<blocklist::ListId>();
    const net::Ipv4Address address(reader.read<std::uint32_t>());
    const std::uint64_t interval_count =
        reader.read_size(kMaxIntervalsPerListing);
    // write_store emits each listing's intervals sorted, disjoint and
    // coalesced; enforce that here so record_span's appends stay O(1) and
    // corrupted interval data fails instead of silently merging.
    std::int64_t previous_end = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t k = 0; k < interval_count && reader.ok(); ++k) {
      const auto begin = reader.read<std::int64_t>();
      const auto end = reader.read<std::int64_t>();
      if (begin >= end || begin <= previous_end) {
        reader.fail();
        break;
      }
      previous_end = end;
      ecosystem.store.record_span(list, address, begin, end);
    }
  }
  return reader.ok();
}

void write_faults(net::BinaryWriter& writer, const sim::FaultStats& injected) {
  writer.write(injected.burst_request_drops);
  writer.write(injected.burst_response_drops);
  writer.write(injected.bootstrap_blackholes);
  writer.write(injected.feed_snapshots_suppressed);
  writer.write(injected.feeds_corrupted);
  writer.write(injected.atlas_records_suppressed);
}

bool read_faults(net::BinaryReader& reader, sim::FaultStats& injected) {
  injected.burst_request_drops = reader.read<std::uint64_t>();
  injected.burst_response_drops = reader.read<std::uint64_t>();
  injected.bootstrap_blackholes = reader.read<std::uint64_t>();
  injected.feed_snapshots_suppressed = reader.read<std::uint64_t>();
  injected.feeds_corrupted = reader.read<std::uint64_t>();
  injected.atlas_records_suppressed = reader.read<std::uint64_t>();
  return reader.ok();
}

// v6 carry section: a presence flag, then one cursor per feed. The live
// maps are already address-sorted (FeedCarry's contract), so the section —
// like the rest of the payload — is byte-identical for identical products.
void write_carry(net::BinaryWriter& writer,
                 const blocklist::EcosystemCarry* carry) {
  writer.write(static_cast<std::uint8_t>(carry != nullptr ? 1 : 0));
  if (carry == nullptr) return;
  writer.write(static_cast<std::uint64_t>(carry->feeds.size()));
  for (const blocklist::FeedCarry& feed : carry->feeds) {
    for (const std::uint64_t word : feed.rng_state) writer.write(word);
    writer.write(static_cast<std::uint64_t>(feed.live.size()));
    for (const auto& [address, expiry] : feed.live) {
      writer.write(address.value());
      writer.write(expiry);
    }
    writer.write(feed.events_picked_up);
  }
}

bool read_carry(net::BinaryReader& reader, CachedCore& core) {
  const std::uint8_t present = reader.read<std::uint8_t>();
  if (present == 0) return reader.ok();
  if (present != 1) {
    reader.fail();
    return false;
  }
  core.has_carry = true;
  const std::uint64_t feed_count = reader.read_size(kMaxLists);
  core.carry.feeds.reserve(feed_count);
  for (std::uint64_t i = 0; i < feed_count && reader.ok(); ++i) {
    blocklist::FeedCarry feed;
    for (std::uint64_t& word : feed.rng_state) {
      word = reader.read<std::uint64_t>();
    }
    const std::uint64_t live_count = reader.read_size(kMaxLivePerFeed);
    feed.live.reserve(live_count);
    std::uint32_t previous = 0;
    for (std::uint64_t k = 0; k < live_count && reader.ok(); ++k) {
      const std::uint32_t address = reader.read<std::uint32_t>();
      if (k > 0 && address <= previous) {
        reader.fail();  // not the sorted, duplicate-free render write_carry emits
        break;
      }
      previous = address;
      feed.live.emplace_back(net::Ipv4Address(address),
                             reader.read<std::int64_t>());
    }
    feed.events_picked_up = reader.read<std::uint64_t>();
    core.carry.feeds.push_back(std::move(feed));
  }
  return reader.ok();
}

// v6 fleet section: a presence flag, the fleet-config fingerprint, then the
// compressed log (probe-major, its native order), the truths, and the three
// counters.
void write_fleet(net::BinaryWriter& writer, const atlas::AtlasFleet* fleet,
                 std::uint64_t fingerprint) {
  writer.write(static_cast<std::uint8_t>(fleet != nullptr ? 1 : 0));
  if (fleet == nullptr) return;
  writer.write(fingerprint);
  const atlas::CompressedLog& log = fleet->compressed_log();
  writer.write(log.stride_seconds());
  writer.write(static_cast<std::uint64_t>(log.probe_count()));
  for (std::size_t p = 0; p < log.probe_count(); ++p) {
    writer.write(static_cast<std::uint32_t>(log.probe_id_at(p)));
    const auto [first, last] = log.runs_of(p);
    writer.write(static_cast<std::uint64_t>(last - first));
    for (std::size_t r = first; r < last; ++r) {
      const atlas::LogRun run = log.run_at(r);
      writer.write(run.first_seconds);
      writer.write(run.last_seconds);
      writer.write(run.address.value());
      writer.write(static_cast<std::uint32_t>(run.asn));
    }
  }
  writer.write(static_cast<std::uint64_t>(fleet->truths().size()));
  for (const atlas::ProbeTruth& truth : fleet->truths()) {
    writer.write(static_cast<std::uint32_t>(truth.probe_id));
    writer.write(static_cast<std::uint64_t>(truth.host));
    writer.write(static_cast<std::uint64_t>(truth.second_host));
    writer.write(static_cast<std::uint8_t>(truth.on_dynamic_pool));
    writer.write(static_cast<std::uint8_t>(truth.on_fast_pool));
    writer.write(static_cast<std::uint8_t>(truth.relocated));
  }
  writer.write(fleet->records_suppressed());
  writer.write(fleet->allocations());
  writer.write(fleet->gap_bridged_days());
}

bool read_fleet(net::BinaryReader& reader, CachedCore& core) {
  const std::uint8_t present = reader.read<std::uint8_t>();
  if (present == 0) return reader.ok();
  if (present != 1) {
    reader.fail();
    return false;
  }
  core.has_fleet = true;
  core.fleet.fingerprint = reader.read<std::uint64_t>();
  const std::int64_t stride = reader.read<std::int64_t>();
  if (stride <= 0) {
    reader.fail();
    return false;
  }
  core.fleet.log = atlas::CompressedLog(stride);
  const std::uint64_t probe_count = reader.read_size(kMaxProbes);
  std::vector<atlas::LogRun> runs;
  std::uint32_t previous_id = 0;
  for (std::uint64_t p = 0; p < probe_count && reader.ok(); ++p) {
    const std::uint32_t id = reader.read<std::uint32_t>();
    if (id <= previous_id) {
      reader.fail();  // append_probe requires strictly ascending ids
      break;
    }
    previous_id = id;
    const std::uint64_t run_count = reader.read_size(kMaxRunsPerProbe);
    runs.clear();
    runs.reserve(run_count);
    std::int64_t previous_first = std::numeric_limits<std::int64_t>::min();
    for (std::uint64_t r = 0; r < run_count && reader.ok(); ++r) {
      atlas::LogRun run;
      run.first_seconds = reader.read<std::int64_t>();
      run.last_seconds = reader.read<std::int64_t>();
      run.address = net::Ipv4Address(reader.read<std::uint32_t>());
      run.asn = reader.read<std::uint32_t>();
      if (run.last_seconds < run.first_seconds ||
          run.first_seconds < previous_first) {
        reader.fail();
        break;
      }
      previous_first = run.first_seconds;
      runs.push_back(run);
    }
    if (!reader.ok()) break;
    core.fleet.log.append_probe(static_cast<atlas::ProbeId>(id), runs);
  }
  const std::uint64_t truth_count = reader.read_size(kMaxProbes);
  core.fleet.truths.reserve(truth_count);
  for (std::uint64_t i = 0; i < truth_count && reader.ok(); ++i) {
    atlas::ProbeTruth truth;
    truth.probe_id = static_cast<atlas::ProbeId>(reader.read<std::uint32_t>());
    truth.host = static_cast<inet::UserId>(reader.read<std::uint64_t>());
    truth.second_host =
        static_cast<inet::UserId>(reader.read<std::uint64_t>());
    truth.on_dynamic_pool = reader.read<std::uint8_t>() != 0;
    truth.on_fast_pool = reader.read<std::uint8_t>() != 0;
    truth.relocated = reader.read<std::uint8_t>() != 0;
    core.fleet.truths.push_back(truth);
  }
  core.fleet.records_suppressed = reader.read<std::uint64_t>();
  core.fleet.allocations = reader.read<std::uint64_t>();
  core.fleet.gap_bridged_days = reader.read<std::uint64_t>();
  return reader.ok();
}

/// The latest-ending collection period's end, in seconds — the ingestion
/// bound of the ecosystem stage and the resume point of an evolved run.
std::int64_t span_end_seconds(const ScenarioConfig& config) {
  std::int64_t end = 0;
  for (const net::TimeWindow& period : config.ecosystem.periods) {
    end = std::max(end, period.end.seconds());
  }
  return end;
}

/// The generation-window end the config resolves to (see
/// ScenarioConfig::horizon_days).
std::int64_t resolved_horizon_seconds(const ScenarioConfig& config) {
  return std::max(span_end_seconds(config),
                  static_cast<std::int64_t>(config.horizon_days) * 86400);
}

}  // namespace

std::uint64_t fleet_config_fingerprint(const atlas::FleetConfig& fleet) {
  std::ostringstream buffer;
  net::BinaryWriter writer(buffer);
  writer.write(fleet.seed);
  writer.write(static_cast<std::uint64_t>(fleet.probe_count));
  writer.write(fleet.window.begin.seconds());
  writer.write(fleet.window.end.seconds());
  writer.write(fleet.relocate_fraction);
  writer.write(fleet.keepalive.count());
  return net::fnv1a_64(buffer.str());
}

CacheMetrics& cache_metrics() {
  static CacheMetrics m{
      net::metrics::counter("cache_hits_total",
                            "Scenario caches restored successfully"),
      net::metrics::counter("cache_misses_total",
                            "Cache probes that found no readable file"),
      net::metrics::counter("cache_rejects_total",
                            "Cache files present but rejected by validation "
                            "(magic/version/fingerprint/checksum/decode)"),
      net::metrics::counter("cache_saves_total", "Cache files written"),
      net::metrics::counter("cache_bytes_read_total",
                            "Payload bytes of restored cache files"),
      net::metrics::counter("cache_bytes_written_total",
                            "Payload bytes of saved cache files"),
  };
  return m;
}

bool save_scenario_cache(const std::string& path, const ScenarioConfig& config,
                         const CrawlOutput& crawl,
                         const blocklist::EcosystemResult& ecosystem,
                         const sim::FaultStats& injected,
                         const blocklist::EcosystemCarry* carry,
                         const atlas::AtlasFleet* fleet) {
  // Serialize the payload up front so the header can carry its size and
  // checksum, and so a failed serialization never touches the filesystem.
  std::ostringstream payload_stream;
  net::BinaryWriter payload_writer(payload_stream);
  write_crawl(payload_writer, crawl);
  write_store(payload_writer, ecosystem);
  write_faults(payload_writer, injected);
  write_carry(payload_writer, carry);
  write_fleet(payload_writer, fleet, fleet_config_fingerprint(config.fleet));
  if (!payload_writer.ok()) return false;
  const std::string payload = payload_stream.str();
  if (payload.size() > kMaxPayloadBytes) return false;

  // Assemble under a pid-unique temporary name, then rename() into place.
  // rename() replaces atomically, so a reader racing with this save sees
  // either the previous complete file or the new one — never a torn write.
  // Two concurrent savers of the same config write equivalent bytes and the
  // last rename wins (accept-last-rename; no lock needed).
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    net::BinaryWriter writer(os);
    writer.write(kMagic);
    writer.write(kVersion);
    writer.write(kCalibrationVersion);
    writer.write(config_fingerprint(config));
    writer.write(config.seed);
    writer.write(static_cast<std::uint64_t>(config.world.as_count));
    writer.write(static_cast<std::uint64_t>(payload.size()));
    writer.write(net::fnv1a_64(payload));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp_path, cleanup_ec);
    return false;
  }
  cache_metrics().saves.increment();
  cache_metrics().bytes_written.add(payload.size());
  return true;
}

std::optional<CachedCore> load_scenario_cache(const std::string& path,
                                              const ScenarioConfig& config) {
  CacheMetrics& metrics = cache_metrics();
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    metrics.misses.increment();
    return std::nullopt;
  }
  // Anything readable-but-invalid from here on is a *reject*: the file
  // exists but cannot be trusted (stale version, foreign config, torn or
  // corrupted payload) and the scenario re-simulates.
  const auto reject = [&metrics]() -> std::optional<CachedCore> {
    metrics.rejects.increment();
    return std::nullopt;
  };
  net::BinaryReader reader(is);
  if (reader.read<std::uint64_t>() != kMagic) return reject();
  if (reader.read<std::uint32_t>() != kVersion) return reject();
  if (reader.read<std::uint32_t>() != kCalibrationVersion) return reject();
  if (reader.read<std::uint64_t>() != config_fingerprint(config)) {
    return reject();
  }
  if (reader.read<std::uint64_t>() != config.seed) return reject();
  if (reader.read<std::uint64_t>() !=
      static_cast<std::uint64_t>(config.world.as_count)) {
    return reject();
  }
  const std::uint64_t payload_size = reader.read_size(kMaxPayloadBytes);
  const std::uint64_t expected_checksum = reader.read<std::uint64_t>();
  if (!reader.ok()) return reject();

  // Pull the whole payload and checksum it before decoding anything: a
  // truncated file (crashed writer on a non-atomic filesystem, partial
  // copy) or a bit flip is rejected here, in one bounded pass.
  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_size) {
    return reject();
  }
  if (net::fnv1a_64(payload) != expected_checksum) return reject();

  std::istringstream payload_stream(std::move(payload));
  net::BinaryReader payload_reader(payload_stream);
  CachedCore core;
  if (!read_crawl(payload_reader, core.crawl)) return reject();
  if (!read_store(payload_reader, core.ecosystem)) return reject();
  if (!read_faults(payload_reader, core.injected)) return reject();
  if (!read_carry(payload_reader, core)) return reject();
  if (!read_fleet(payload_reader, core)) return reject();
  metrics.hits.increment();
  metrics.bytes_read.add(payload_size);
  return core;
}

std::optional<std::string> preflight_cache_path(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(path, ec);
  if (!ec && fs::exists(status)) {
    if (fs::is_directory(status)) {
      return "cache path is a directory: " + path;
    }
    if (!fs::is_regular_file(status)) {
      return "cache path is not a regular file: " + path;
    }
    if (::access(path.c_str(), R_OK) != 0) {
      return "cache file is not readable: " + path;
    }
    return std::nullopt;
  }
  // Missing file: a later save must be able to create it.
  fs::path parent = fs::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const fs::file_status parent_status = fs::status(parent, ec);
  if (ec || !fs::exists(parent_status)) {
    return "cache directory does not exist: " + parent.string();
  }
  if (!fs::is_directory(parent_status)) {
    return "cache directory is not a directory: " + parent.string();
  }
  if (::access(parent.c_str(), W_OK) != 0) {
    return "cache directory is not writable: " + parent.string();
  }
  return std::nullopt;
}

std::string default_cache_path(const ScenarioConfig& config) {
  char name[80];
  std::snprintf(name, sizeof(name), "reuse_scenario_%llu_%016llx.cache",
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(config_fingerprint(config)));
  const char* cache_dir = std::getenv("REUSE_CACHE_DIR");
  if (cache_dir != nullptr && *cache_dir != '\0') {
    return (std::filesystem::path(cache_dir) / name).string();
  }
  return name;
}

CachedScenario run_scenario_cached(ScenarioConfig config,
                                   const std::string& path) {
  config.finalize();
  const std::string cache_path =
      path.empty() ? default_cache_path(config) : path;

  StageTimer stage_times;
  auto cached = stage_times.time(
      "cache-load", [&] { return load_scenario_cache(cache_path, config); });
  if (cached) {
    // Recomputed stages share the scenario's threading policy.
    std::unique_ptr<net::ThreadPool> pool = make_scenario_pool(config.jobs);
    inet::World world = stage_times.time(
        "world", [&] { return inet::World(config.world); });
    auto catalogue = blocklist::build_catalogue(config.seed ^ 0xca7aULL);
    // The fleet restores straight from the cache's v6 section when its
    // fingerprint matches this config's fleet knobs (fleet is outside the
    // cache fingerprint, so the section carries its own key). On a mismatch
    // — or a carry-less file — it re-simulates with fresh atlas fault
    // injection, exactly the payload-v5 behaviour.
    sim::FaultInjector fleet_injector(config.faults);
    const bool fleet_restored =
        cached->has_fleet &&
        cached->fleet.fingerprint == fleet_config_fingerprint(config.fleet);
    atlas::AtlasFleet fleet = stage_times.time("fleet", [&] {
      if (fleet_restored) {
        return atlas::AtlasFleet::restore(
            std::move(cached->fleet.log), std::move(cached->fleet.truths),
            cached->fleet.records_suppressed, cached->fleet.allocations,
            cached->fleet.gap_bridged_days);
      }
      sim::StageGuard guard(&fleet_injector, sim::FaultStage::kFleet);
      return atlas::AtlasFleet(world, config.fleet, &fleet_injector,
                               pool.get());
    });
    auto pipeline = stage_times.time("pipeline", [&] {
      return dynadetect::run_pipeline(fleet.compressed_log(), config.pipeline,
                                      pool.get());
    });
    auto census = stage_times.time("census", [&] {
      return config.run_census
                 ? census::run_census(world, config.census, {}, pool.get())
                 : census::CensusResult{};
    });
    // The crawl and ecosystem were restored, not re-run, so their stage
    // publishers never fired; publish from the cached products so the run
    // manifest carries the numbers this run's products actually embody.
    publish_crawl_metrics(cached->crawl);
    blocklist::publish_feed_metrics(cached->ecosystem.stats);
    sim::FaultStats injected = cached->injected;
    if (!fleet_restored) {
      // The fleet was re-simulated (the deterministic fleet makes the fresh
      // suppression count equal the cached one when knobs are unchanged);
      // overwriting keeps the ledger consistent even if a fleet knob changed.
      injected.atlas_records_suppressed =
          fleet_injector.stats().atlas_records_suppressed;
    }
    DegradationReport degradation = build_degradation_report(
        injected, cached->crawl.stats,
        cached->crawl.transport_fault_request_drops,
        cached->crawl.transport_fault_response_drops, cached->ecosystem.stats,
        fleet.records_suppressed(), pipeline);
    CachedScenario result{std::move(config),
                          std::move(world),
                          std::move(catalogue),
                          std::move(cached->ecosystem),
                          std::move(cached->crawl),
                          std::move(fleet),
                          std::move(pipeline),
                          std::move(census),
                          std::move(degradation),
                          /*cache_hit=*/true};
    result.stage_times = std::move(stage_times);
    return result;
  }

  Scenario scenario = run_scenario(config);
  save_scenario_cache(cache_path, scenario.config, scenario.crawl,
                      scenario.ecosystem, scenario.injector->stats(),
                      scenario.ecosystem_carry.get(), &scenario.fleet);
  CachedScenario result{std::move(scenario.config),
                        std::move(scenario.world),
                        std::move(scenario.catalogue),
                        std::move(scenario.ecosystem),
                        std::move(scenario.crawl),
                        std::move(scenario.fleet),
                        std::move(scenario.pipeline),
                        std::move(scenario.census),
                        std::move(scenario.degradation),
                        /*cache_hit=*/false};
  result.stage_times = std::move(scenario.stage_times);
  // Fold in the (missed) cache probe so hit and miss timings are comparable.
  result.stage_times.record("cache-load", stage_times.millis("cache-load"));
  return result;
}

ScenarioConfig extend_scenario_days(ScenarioConfig config, int extra_days) {
  config.finalize();
  if (extra_days <= 0 || config.ecosystem.periods.empty()) return config;
  auto last = std::max_element(
      config.ecosystem.periods.begin(), config.ecosystem.periods.end(),
      [](const net::TimeWindow& a, const net::TimeWindow& b) {
        return a.end < b.end;
      });
  last->end = net::SimTime(last->end.seconds() +
                           static_cast<std::int64_t>(extra_days) * 86400);
  return config;
}

EvolvedScenario evolve_scenario_cached(ScenarioConfig base_config,
                                       int extra_days,
                                       const std::string& base_path,
                                       const std::string& extended_path) {
  base_config.finalize();
  ScenarioConfig extended = extend_scenario_days(base_config, extra_days);
  const std::string ext_path =
      extended_path.empty() ? default_cache_path(extended) : extended_path;
  auto fresh = [&] {
    return EvolvedScenario{run_scenario_cached(extended, ext_path),
                           EvolvePath::kFreshRun};
  };
  if (extra_days <= 0) return fresh();
  // Actor episode placement depends on the abuse-generation window's END,
  // so base and extended streams only share a prefix when both runs resolve
  // to the SAME horizon — i.e. base_config.horizon_days already covers the
  // extension. Otherwise the base events are not a prefix of the extended
  // stream and resuming would diverge; fall back to a full run.
  if (resolved_horizon_seconds(base_config) !=
      resolved_horizon_seconds(extended)) {
    return fresh();
  }

  StageTimer stage_times;
  const std::string resolved_base_path =
      base_path.empty() ? default_cache_path(base_config) : base_path;
  auto base = stage_times.time("cache-load", [&] {
    return load_scenario_cache(resolved_base_path, base_config);
  });
  if (!base || !base->has_carry) return fresh();

  std::unique_ptr<net::ThreadPool> pool = make_scenario_pool(extended.jobs);
  sim::FaultInjector injector(extended.faults);
  inet::World world = stage_times.time(
      "world", [&] { return inet::World(extended.world); });
  auto catalogue = blocklist::build_catalogue(extended.seed ^ 0xca7aULL);

  // Ecosystem tail: restore the per-feed cursors and stream ONLY the
  // [base span end, extended span end) slice of the same abuse stream.
  // finish() then yields a store of new-era recordings and stats whose
  // per-feed counters continue the base run's.
  blocklist::EcosystemCarry new_carry;
  blocklist::EcosystemResult tail;
  bool resumed = false;
  stage_times.time("ecosystem", [&] {
    sim::StageGuard guard(&injector, sim::FaultStage::kEcosystem);
    blocklist::EcosystemSimulator simulator(catalogue, extended.ecosystem,
                                            &injector, pool.get());
    if (!simulator.resume_from(base->carry, base->ecosystem.stats,
                               base->ecosystem.stats.snapshots_taken)) {
      return false;
    }
    const inet::AbuseGenConfig abuse = scenario_abuse_config(world, extended);
    inet::stream_abuse_range(world, abuse, /*chunk_days=*/32,
                             span_end_seconds(base_config),
                             span_end_seconds(extended),
                             [&](std::span<const inet::AbuseEvent> chunk) {
                               simulator.ingest(chunk);
                             });
    tail = simulator.finish(&new_carry);
    resumed = true;
    return true;
  });
  if (!resumed) return fresh();

  // Fold the tail recordings into the base store. The stores' pending/run
  // machinery coalesces runs that touch across the era boundary, and every
  // consumer iterates the store canonically, so the fold is byte-equivalent
  // to having recorded the whole run in one piece. events_seen is the one
  // stats counter the tail run cannot continue (it counts ingested events,
  // and the tail only ingested the extension), so it is summed here.
  const net::PrefixSet base_slash24s =
      base->ecosystem.store.blocklisted_slash24s();
  blocklist::EcosystemResult ecosystem;
  ecosystem.store = std::move(base->ecosystem.store);
  ecosystem.stats = tail.stats;
  ecosystem.stats.events_seen += base->ecosystem.stats.events_seen;
  tail.store.for_each_listing([&](blocklist::ListId list,
                                  net::Ipv4Address address,
                                  const net::IntervalSet& days) {
    for (const auto& interval : days.intervals()) {
      ecosystem.store.record_span(list, address, interval.begin, interval.end);
    }
  });
  tail.store.for_each_observed(
      [&](blocklist::ListId list, const net::IntervalSet& days) {
        for (const auto& interval : days.intervals()) {
          ecosystem.store.mark_observed_span(list, interval.begin,
                                             interval.end);
        }
      });

  // The crawl's only ecosystem input is the blocklisted /24 set (the
  // crawler restriction). When the extension did not change it — or the
  // restriction is off — the cached crawl is still exactly what a fresh
  // extended run would produce; otherwise re-run the crawl stage.
  bool crawl_reused = true;
  if (extended.restrict_crawler_to_blocklisted) {
    std::vector<net::Ipv4Prefix> before = base_slash24s.to_vector();
    std::vector<net::Ipv4Prefix> after =
        ecosystem.store.blocklisted_slash24s().to_vector();
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    crawl_reused = before == after;
  }
  CrawlOutput crawl;
  if (crawl_reused) {
    crawl = std::move(base->crawl);
    publish_crawl_metrics(crawl);
  } else {
    crawl = stage_times.time("crawl", [&] {
      sim::StageGuard guard(&injector, sim::FaultStage::kCrawl);
      return run_scenario_crawl(world, ecosystem.store, extended, &injector,
                                pool.get(), &stage_times);
    });
  }

  const bool fleet_restored =
      base->has_fleet &&
      base->fleet.fingerprint == fleet_config_fingerprint(extended.fleet);
  atlas::AtlasFleet fleet = stage_times.time("fleet", [&] {
    if (fleet_restored) {
      return atlas::AtlasFleet::restore(
          std::move(base->fleet.log), std::move(base->fleet.truths),
          base->fleet.records_suppressed, base->fleet.allocations,
          base->fleet.gap_bridged_days);
    }
    sim::StageGuard guard(&injector, sim::FaultStage::kFleet);
    return atlas::AtlasFleet(world, extended.fleet, &injector, pool.get());
  });
  auto pipeline = stage_times.time("pipeline", [&] {
    return dynadetect::run_pipeline(fleet.compressed_log(), extended.pipeline,
                                    pool.get());
  });
  auto census = stage_times.time("census", [&] {
    return extended.run_census
               ? census::run_census(world, extended.census, {}, pool.get())
               : census::CensusResult{};
  });

  // Compose the fault ledger a fresh extended run would have produced:
  // this run's injector saw the ecosystem tail (plus the crawl/fleet if
  // re-run); the base ledger contributes the stages that were reused. A
  // re-simulated crawl or fleet replays its FULL fault window fresh, so
  // the base share is added only for reused stages.
  sim::FaultStats injected = injector.stats();
  injected.feed_snapshots_suppressed += base->injected.feed_snapshots_suppressed;
  injected.feeds_corrupted += base->injected.feeds_corrupted;
  if (crawl_reused) {
    injected.burst_request_drops += base->injected.burst_request_drops;
    injected.burst_response_drops += base->injected.burst_response_drops;
    injected.bootstrap_blackholes += base->injected.bootstrap_blackholes;
  }
  if (fleet_restored) {
    injected.atlas_records_suppressed += base->injected.atlas_records_suppressed;
  }
  DegradationReport degradation = build_degradation_report(
      injected, crawl.stats, crawl.transport_fault_request_drops,
      crawl.transport_fault_response_drops, ecosystem.stats,
      fleet.records_suppressed(), pipeline);

  save_scenario_cache(ext_path, extended, crawl, ecosystem, injected,
                      &new_carry, &fleet);
  CachedScenario result{std::move(extended),
                        std::move(world),
                        std::move(catalogue),
                        std::move(ecosystem),
                        std::move(crawl),
                        std::move(fleet),
                        std::move(pipeline),
                        std::move(census),
                        std::move(degradation),
                        /*cache_hit=*/true};
  result.stage_times = std::move(stage_times);
  return EvolvedScenario{std::move(result), EvolvePath::kResumed};
}

}  // namespace reuse::analysis
