// Per-subsystem degradation accounting for fault-injected scenario runs.
//
// The FaultInjector keeps a ledger of everything it broke; each hardened
// consumer keeps its own ledger of what it noticed and how it coped. A
// DegradationReport places the two side by side and checks the conservation
// laws that tie them together — any mismatch means a fault was injected that
// no consumer accounted for (or double-counted), which is exactly the class
// of silent data loss the chaos suite exists to catch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blocklist/ecosystem.h"
#include "crawler/crawler.h"
#include "dynadetect/pipeline.h"
#include "simnet/faults.h"

namespace reuse::analysis {

struct DegradationReport {
  /// Injector-side ledger: faults actually applied.
  sim::FaultStats injected;

  // Consumer-side ledgers, one block per subsystem.
  std::uint64_t transport_request_drops = 0;   ///< datagrams eaten by faults
  std::uint64_t transport_response_drops = 0;
  std::uint64_t bootstrap_retries = 0;
  std::uint64_t bootstrap_recoveries = 0;
  std::uint64_t verification_retries = 0;
  std::uint64_t verification_recoveries = 0;
  std::uint64_t feed_snapshots_missed = 0;
  std::uint64_t feeds_quarantined = 0;
  std::uint64_t feeds_salvaged = 0;
  std::uint64_t feed_entries_discarded = 0;
  std::uint64_t feed_lines_skipped = 0;
  std::uint64_t atlas_records_suppressed = 0;
  std::uint64_t change_gaps_capped = 0;
  std::uint64_t probes_gap_affected = 0;

  /// True when any fault landed. Routine-coping counters (bootstrap and
  /// verification retries, gap caps) do NOT count: they also fire under
  /// natural datagram loss and churn, and a fault-free run must never read
  /// as degraded.
  [[nodiscard]] bool degraded() const;

  /// Conservation laws between the injector and consumer ledgers. Empty
  /// means every injected fault is accounted for exactly:
  ///   transport request drops == burst request drops + bootstrap blackholes
  ///   transport response drops == burst response drops
  ///   feed snapshots missed    == feed snapshots suppressed
  ///   quarantined + salvaged   == feeds corrupted
  ///   atlas records (consumer) == atlas records (injector)
  [[nodiscard]] std::vector<std::string> reconciliation_failures() const;
  [[nodiscard]] bool reconciles() const {
    return reconciliation_failures().empty();
  }

  /// Human-readable table, one row per counter pair.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const DegradationReport&,
                         const DegradationReport&) = default;
};

/// Assembles the report from each subsystem's stats. `transport_request_drops`
/// and `transport_response_drops` come from TransportStats (the transport
/// object itself dies with the event queue, so the counters travel as plain
/// integers); `atlas_suppressed` is AtlasFleet::records_suppressed().
[[nodiscard]] DegradationReport build_degradation_report(
    const sim::FaultStats& injected, const crawler::CrawlStats& crawl,
    std::uint64_t transport_request_drops,
    std::uint64_t transport_response_drops,
    const blocklist::EcosystemStats& ecosystem, std::uint64_t atlas_suppressed,
    const dynadetect::PipelineResult& pipeline);

}  // namespace reuse::analysis
