// Run manifest: one JSON document that explains a run.
//
// CI (and anyone debugging a drifted figure) gets a single artifact tying
// together *what* ran — calibration version, config fingerprint, seed,
// jobs, fault plan — with *what happened*: per-stage wall-clock and the
// full metrics snapshot across all instrumented subsystems (crawler,
// feeds, atlas, pipeline, cache, faults, pool). Written by the CLIs'
// --metrics-out flag; schema documented in DESIGN.md §9 and smoke-checked
// by the CI jq gate.
#pragma once

#include <optional>
#include <string>

#include "analysis/scenario.h"
#include "analysis/stage_timer.h"

namespace reuse::analysis {

/// Everything the manifest describes. `config` and `stage_times` are
/// borrowed for the duration of the call; either may be nullptr for tools
/// that run no scenario (their fields render as null).
struct RunManifestInfo {
  std::string tool;                         ///< e.g. "reuse_study"
  const ScenarioConfig* config = nullptr;   ///< finalized scenario config
  const StageTimer* stage_times = nullptr;  ///< per-stage wall clock
  std::optional<bool> cache_hit;            ///< set iff a cache was consulted
};

/// Renders the manifest as one JSON object (schema_version 1):
///   {"schema_version", "tool", "calibration_version",
///    "config_fingerprint" (16-hex string | null), "seed" | null,
///    "jobs" | null, "cache": {"consulted", "hit"} | null,
///    "fault_plan": {"seed", "episodes", "by_kind"} | null,
///    "stages": StageTimer JSON | null, "metrics": registry snapshot}
/// Touches the cross-cutting families' registration hooks first (cache_,
/// faults_, pool_), so a run that never consulted the cache or injected a
/// fault still reports them at zero. The scenario stages (crawler_, feeds_,
/// atlas_, pipeline_) publish their families when they run, so any manifest
/// from a scenario-running tool covers all seven instrumented subsystems.
[[nodiscard]] std::string run_manifest_json(const RunManifestInfo& info);

/// Writes run_manifest_json(info) to `path` (plus a trailing newline).
/// Returns a human-readable error on failure, nullopt on success.
std::optional<std::string> write_run_manifest(const std::string& path,
                                              const RunManifestInfo& info);

}  // namespace reuse::analysis
