// Run manifest: one JSON document that explains a run.
//
// CI (and anyone debugging a drifted figure) gets a single artifact tying
// together *what* ran — calibration version, config fingerprint, seed,
// jobs, fault plan — with *what happened*: per-stage wall-clock and the
// full metrics snapshot across all instrumented subsystems (crawler,
// feeds, atlas, pipeline, cache, faults, pool). Written by the CLIs'
// --metrics-out flag; schema documented in DESIGN.md §9 and smoke-checked
// by the CI jq gate.
#pragma once

#include <optional>
#include <string>

#include "analysis/scenario.h"
#include "analysis/stage_timer.h"
#include "netbase/flags.h"

namespace reuse::analysis {

/// Everything the manifest describes. `config` and `stage_times` are
/// borrowed for the duration of the call; either may be nullptr for tools
/// that run no scenario (their fields render as null).
struct RunManifestInfo {
  std::string tool;                         ///< e.g. "reuse_study"
  const ScenarioConfig* config = nullptr;   ///< finalized scenario config
  const StageTimer* stage_times = nullptr;  ///< per-stage wall clock
  std::optional<bool> cache_hit;            ///< set iff a cache was consulted
  /// Payload fingerprint (16 hex digits) of the compiled serving snapshot a
  /// run produced, when it produced one (reuse_lookupd). CI cross-checks
  /// this against the fingerprint BENCH_lookup.json reports.
  std::optional<std::string> snapshot_fingerprint;
  /// Scenario preset applied to the base config (analysis/presets.h), when
  /// one was: reuse_study --preset, or the preset of a sweep cell.
  std::optional<std::string> preset;
  /// The sweep cell this run executed ("preset/axis=value,..."), for runs
  /// launched by reuse_sweep; ties a per-cell manifest back to its row in
  /// sweep_report.json.
  std::optional<std::string> sweep_cell_id;
};

/// Renders the manifest as one JSON object (schema_version 1):
///   {"schema_version", "tool", "calibration_version",
///    "config_fingerprint" (16-hex string | null), "seed" | null,
///    "jobs" | null, "cache": {"consulted", "hit"} | null,
///    "fault_plan": {"seed", "episodes", "by_kind"} | null,
///    "snapshot_fingerprint" (16-hex string | null),
///    "preset" | null, "sweep_cell_id" | null,
///    "stages": StageTimer JSON | null, "metrics": registry snapshot}
/// Touches the cross-cutting families' registration hooks first (cache_,
/// faults_, pool_), so a run that never consulted the cache or injected a
/// fault still reports them at zero. The scenario stages (crawler_, feeds_,
/// atlas_, pipeline_) publish their families when they run, so any manifest
/// from a scenario-running tool covers all seven instrumented subsystems.
[[nodiscard]] std::string run_manifest_json(const RunManifestInfo& info);

/// Writes the manifest to `path` (plus a trailing newline). With
/// MetricsFormat::kJson (the default) the file is run_manifest_json(info);
/// with kPrometheus it is the metrics registry in Prometheus text
/// exposition, prefixed by comment lines carrying the run identity (tool,
/// fingerprints) so scrapes stay attributable. Returns a human-readable
/// error on failure, nullopt on success.
std::optional<std::string> write_run_manifest(
    const std::string& path, const RunManifestInfo& info,
    net::MetricsFormat format = net::MetricsFormat::kJson);

}  // namespace reuse::analysis
