// Paper-vs-measured report formatting shared by the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "netbase/table.h"

namespace reuse::analysis {

/// Accumulates "metric | paper | measured | note" rows and renders them in a
/// uniform layout, so every bench binary's output (and EXPERIMENTS.md) reads
/// the same way.
class PaperComparison {
 public:
  explicit PaperComparison(std::string title);

  PaperComparison& row(std::string metric, std::string paper,
                       std::string measured, std::string note = "");

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  net::AsciiTable table_;
};

}  // namespace reuse::analysis
