// Network Address Translation device model.
//
// A NAT multiplexes several internal hosts onto one public address by
// allocating distinct external ports — this is precisely the address-sharing
// the crawler detects. Home NATs front a handful of users; carrier-grade
// NATs front hundreds. The model tracks live mappings plus recently expired
// ones so the DHT can contain stale (IP, port) entries that no longer answer.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/rng.h"

namespace reuse::sim {

/// Opaque identifier for an internal host behind a NAT.
using InternalHostId = std::uint64_t;

class NatDevice {
 public:
  /// `first_port` is where external port allocation starts; real CPE devices
  /// typically hand out high ephemeral ports.
  NatDevice(net::Ipv4Address public_address, std::uint16_t first_port = 1024)
      : public_address_(public_address), next_port_(first_port) {}

  [[nodiscard]] net::Ipv4Address public_address() const {
    return public_address_;
  }

  /// Creates a mapping for `host`, returning the external endpoint. A host
  /// may hold several mappings over its lifetime (one per rebind); only the
  /// most recent is live.
  net::Endpoint bind(InternalHostId host) {
    // Retire any previous mapping the host held.
    if (const auto it = host_to_port_.find(host); it != host_to_port_.end()) {
      port_to_host_.erase(it->second);
      host_to_port_.erase(it);
    }
    const std::uint16_t port = allocate_port();
    host_to_port_[host] = port;
    port_to_host_[port] = host;
    return net::Endpoint{public_address_, port};
  }

  /// Drops the host's live mapping (host went offline / NAT timed it out).
  void release(InternalHostId host) {
    const auto it = host_to_port_.find(host);
    if (it == host_to_port_.end()) return;
    port_to_host_.erase(it->second);
    host_to_port_.erase(it);
  }

  /// The internal host currently owning `port`, if any.
  [[nodiscard]] std::optional<InternalHostId> host_at(std::uint16_t port) const {
    const auto it = port_to_host_.find(port);
    if (it == port_to_host_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::optional<net::Endpoint> endpoint_of(
      InternalHostId host) const {
    const auto it = host_to_port_.find(host);
    if (it == host_to_port_.end()) return std::nullopt;
    return net::Endpoint{public_address_, it->second};
  }

  /// Number of hosts with a live mapping right now — the ground truth for
  /// "users behind this address".
  [[nodiscard]] std::size_t active_hosts() const { return host_to_port_.size(); }

 private:
  std::uint16_t allocate_port() {
    // Linear scan from next_port_, skipping ports still in use; wraps within
    // the ephemeral range. The port space (64K) far exceeds any simulated
    // NAT's fan-out, so this terminates quickly.
    for (;;) {
      const std::uint16_t candidate = next_port_;
      next_port_ = next_port_ == 65535 ? std::uint16_t{1024}
                                       : static_cast<std::uint16_t>(next_port_ + 1);
      if (!port_to_host_.contains(candidate)) return candidate;
    }
  }

  net::Ipv4Address public_address_;
  std::uint16_t next_port_;
  std::unordered_map<InternalHostId, std::uint16_t> host_to_port_;
  std::unordered_map<std::uint16_t, InternalHostId> port_to_host_;
};

}  // namespace reuse::sim
