// Discrete-event scheduler driving every time-based simulation (DHT churn,
// crawler cooldowns, Atlas lease renewals, blocklist snapshots).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netbase/sim_time.h"

namespace reuse::sim {

/// A minimal discrete-event loop. Events fire in time order; ties fire in
/// scheduling order (a monotonically increasing sequence number breaks them),
/// which keeps runs deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] net::SimTime now() const { return now_; }

  void schedule_at(net::SimTime when, Action action);
  void schedule_after(net::Duration delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Pops and runs the next event; returns false when the queue is empty.
  bool run_next();

  /// Runs every event scheduled strictly before `deadline`, then advances the
  /// clock to `deadline`.
  void run_until(net::SimTime deadline);

  /// Drains the queue completely (use only for workloads that terminate).
  void run_all();

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    net::SimTime when;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  net::SimTime now_ = net::SimTime::epoch();
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace reuse::sim
