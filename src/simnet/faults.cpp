#include "simnet/faults.h"

#include <algorithm>

#include "netbase/metrics.h"

namespace reuse::sim {
namespace {

/// Stateless hash of (seed, salt, a, b) to a double in [0, 1). Feed-level
/// fault decisions go through this so they are independent of call order.
double hash01(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
              std::uint64_t b) {
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  (void)net::splitmix64(state);
  state ^= a * 0xbf58476d1ce4e5b9ULL;
  (void)net::splitmix64(state);
  state ^= b * 0x94d049bb133111ebULL;
  const std::uint64_t mixed = net::splitmix64(state);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

/// Bytes injected by the binary-garbage corruption mode. No '\n' (line
/// counts must not grow) and no '/' (a garbled address must not turn into a
/// parseable CIDR line).
// The leading NUL means the length must be explicit — strlen-style
// construction would stop at byte 0 and leave the alphabet empty.
constexpr char kGarbageBytes[] =
    "\x00\x01\x02\xff\xfe\x7f\t \r#;abcxyzABC!@$%^&*()[]{}<>?,|~`\"'";
constexpr std::string_view kGarbageAlphabet(kGarbageBytes,
                                            sizeof(kGarbageBytes) - 1);

// Per-fault-kind injection counters, mirroring the FaultStats ledger so a
// run manifest carries the same reconciliation-grade numbers. Incremented
// only when a fault actually fires (rare), right next to the ledger RMW.
struct FaultMetrics {
  net::metrics::Counter& burst_request_drops;
  net::metrics::Counter& burst_response_drops;
  net::metrics::Counter& bootstrap_blackholes;
  net::metrics::Counter& feed_snapshots_suppressed;
  net::metrics::Counter& feeds_corrupted;
  net::metrics::Counter& atlas_records_suppressed;
};

FaultMetrics& fault_metrics() {
  static FaultMetrics m{
      net::metrics::counter("faults_burst_request_drops_total",
                            "Requests dropped by burst-loss episodes"),
      net::metrics::counter("faults_burst_response_drops_total",
                            "Responses dropped by burst-loss episodes"),
      net::metrics::counter("faults_bootstrap_blackholes_total",
                            "Requests blackholed by bootstrap outages"),
      net::metrics::counter("faults_feed_snapshots_suppressed_total",
                            "Daily feed snapshots suppressed by feed outages"),
      net::metrics::counter("faults_feeds_corrupted_total",
                            "Daily feed snapshots corrupted in flight"),
      net::metrics::counter("faults_atlas_records_suppressed_total",
                            "Atlas connection records swallowed by gaps"),
  };
  return m;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBurstLoss:
      return "burst-loss";
    case FaultKind::kBootstrapOutage:
      return "bootstrap-outage";
    case FaultKind::kFeedOutage:
      return "feed-outage";
    case FaultKind::kFeedCorruption:
      return "feed-corruption";
    case FaultKind::kAtlasGap:
      return "atlas-gap";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), burst_rng_(plan_.seed ^ 0xfa017ULL) {
  // Register the faults_ metric family up front so a fault-free run still
  // exports it (at zero) in its manifest.
  (void)fault_metrics();
  for (const FaultEpisode& episode : plan_.episodes) {
    by_kind_[static_cast<std::size_t>(episode.kind)].push_back(episode);
  }
  for (auto& episodes : by_kind_) {
    std::sort(episodes.begin(), episodes.end(),
              [](const FaultEpisode& a, const FaultEpisode& b) {
                return a.window.begin < b.window.begin;
              });
  }
}

const FaultEpisode* FaultInjector::covering(FaultKind kind,
                                            net::SimTime t) const {
  for (const FaultEpisode& episode : by_kind_[static_cast<std::size_t>(kind)]) {
    if (episode.window.contains(t)) return &episode;
    if (episode.window.begin > t) break;  // sorted: nothing later covers t
  }
  return nullptr;
}

const FaultEpisode* FaultInjector::feed_episode(FaultKind kind,
                                                std::size_t list_index,
                                                std::int64_t day) const {
  const net::SimTime midnight(day * 86400);
  for (const FaultEpisode& episode : by_kind_[static_cast<std::size_t>(kind)]) {
    if (!episode.window.contains(midnight)) continue;
    if (hash01(plan_.seed, episode.salt,
               static_cast<std::uint64_t>(kind) + 1, list_index) <
        episode.severity) {
      return &episode;
    }
  }
  return nullptr;
}

bool FaultInjector::drop_request(const net::Endpoint& to, net::SimTime now) {
  if (!active()) return false;
  // Stateful burst_rng_ draw: single-threaded by the stage contract.
  assert_stage(FaultStage::kCrawl);
  if (bootstrap_set_ && to == bootstrap_ &&
      covering(FaultKind::kBootstrapOutage, now) != nullptr) {
    ledger_.bootstrap_blackholes.fetch_add(1, std::memory_order_relaxed);
    fault_metrics().bootstrap_blackholes.increment();
    return true;
  }
  if (const FaultEpisode* burst = covering(FaultKind::kBurstLoss, now);
      burst != nullptr && burst_rng_.bernoulli(burst->severity)) {
    ledger_.burst_request_drops.fetch_add(1, std::memory_order_relaxed);
    fault_metrics().burst_request_drops.increment();
    return true;
  }
  return false;
}

bool FaultInjector::drop_response(net::SimTime now) {
  if (!active()) return false;
  assert_stage(FaultStage::kCrawl);
  if (const FaultEpisode* burst = covering(FaultKind::kBurstLoss, now);
      burst != nullptr && burst_rng_.bernoulli(burst->severity)) {
    ledger_.burst_response_drops.fetch_add(1, std::memory_order_relaxed);
    fault_metrics().burst_response_drops.increment();
    return true;
  }
  return false;
}

bool FaultInjector::feed_snapshot_missing(std::size_t list_index,
                                          std::int64_t day) {
  if (!active()) return false;
  assert_stage(FaultStage::kEcosystem);
  if (feed_episode(FaultKind::kFeedOutage, list_index, day) == nullptr) {
    return false;
  }
  ledger_.feed_snapshots_suppressed.fetch_add(1, std::memory_order_relaxed);
  fault_metrics().feed_snapshots_suppressed.increment();
  return true;
}

bool FaultInjector::feed_corrupted(std::size_t list_index, std::int64_t day) {
  if (!active()) return false;
  assert_stage(FaultStage::kEcosystem);
  if (feed_episode(FaultKind::kFeedCorruption, list_index, day) == nullptr) {
    return false;
  }
  ledger_.feeds_corrupted.fetch_add(1, std::memory_order_relaxed);
  fault_metrics().feeds_corrupted.increment();
  return true;
}

std::string FaultInjector::corrupt_feed_text(std::string text,
                                             std::size_t list_index,
                                             std::int64_t day) const {
  if (text.empty()) return text;
  std::uint64_t state = plan_.seed ^
                        (static_cast<std::uint64_t>(day) *
                         0x9e3779b97f4a7c15ULL) ^
                        (list_index + 0xc0bb1edULL);
  net::Rng rng(net::splitmix64(state));
  switch (rng.uniform(3)) {
    case 0: {
      // Truncated download: the tail of the feed never arrived.
      text.resize(1 + rng.uniform(text.size()));
      break;
    }
    case 1: {
      // A run of binary garbage overwrote part of the feed.
      const std::size_t begin = rng.uniform(text.size());
      const std::size_t length =
          std::min(text.size() - begin, 1 + rng.uniform(text.size() / 2 + 1));
      for (std::size_t i = begin; i < begin + length; ++i) {
        text[i] = kGarbageAlphabet[rng.uniform(kGarbageAlphabet.size())];
      }
      break;
    }
    default: {
      // Line endings mangled to bare '\r' over a region: lines merge into
      // unparseable runs (a CRLF-only feed seen through a broken proxy).
      const std::size_t begin = rng.uniform(text.size());
      for (std::size_t i = begin; i < text.size(); ++i) {
        if (text[i] == '\n') text[i] = '\r';
      }
      break;
    }
  }
  return text;
}

bool FaultInjector::atlas_record_suppressed(net::SimTime t) {
  if (!active()) return false;
  assert_stage(FaultStage::kFleet);
  if (covering(FaultKind::kAtlasGap, t) == nullptr) return false;
  ledger_.atlas_records_suppressed.fetch_add(1, std::memory_order_relaxed);
  fault_metrics().atlas_records_suppressed.increment();
  return true;
}

}  // namespace reuse::sim
