#include "simnet/event_queue.h"

#include <stdexcept>
#include <utility>

namespace reuse::sim {

void EventQueue::schedule_at(net::SimTime when, Action action) {
  if (when < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  queue_.push(Entry{when, next_sequence_++, std::move(action)});
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the action is moved out via const_cast,
  // which is safe because the entry is popped before the action runs.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.when;
  ++executed_;
  entry.action();
  return true;
}

void EventQueue::run_until(net::SimTime deadline) {
  while (!queue_.empty() && queue_.top().when < deadline) run_next();
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace reuse::sim
