// Deterministic fault injection for the measurement pipeline.
//
// The paper's infrastructure survived real, *correlated* failures — a 48.6%
// UDP response rate compensated by hourly re-pings, and a blocklist
// collection split into two periods (39 + 44 days) by an outage — yet i.i.d.
// datagram loss in Transport is the only failure the simulation modelled.
// A FaultPlan is a seeded set of time-windowed episodes injected at the
// substrate layer (Transport datagrams, blocklist feed snapshots, Atlas
// connection records); the consumers above are expected to degrade
// gracefully, and the chaos suite reconciles the injector-side counters
// here against each consumer's retry/recovery/discard accounting.
//
// Determinism contract: every decision is a pure function of (plan, call
// site). Burst-loss draws come from the injector's private generator (never
// a subsystem's), and per-(list, day) feed decisions are stateless hashes,
// so call order cannot perturb them. An empty plan makes every hook a
// constant `false` with zero generator draws — the fault-free baseline is
// byte-identical to a run without any injector attached.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/rng.h"
#include "netbase/sim_time.h"

namespace reuse::sim {

enum class FaultKind : std::uint8_t {
  /// Correlated packet loss: datagrams in the window drop with `severity`.
  kBurstLoss = 0,
  /// The crawler's bootstrap node is unreachable for the whole window.
  kBootstrapOutage = 1,
  /// Daily feed snapshots are missing for a `severity` fraction of lists.
  kFeedOutage = 2,
  /// Daily feed text is corrupted/truncated for a `severity` fraction of
  /// lists; consumers salvage what parses or quarantine the day.
  kFeedCorruption = 3,
  /// Atlas controller gap: connection-log records in the window are lost.
  kAtlasGap = 4,
};
inline constexpr int kFaultKindCount = 5;

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultEpisode {
  FaultKind kind = FaultKind::kBurstLoss;
  /// Simulation-time window the episode covers (half-open). Feed episodes
  /// affect snapshot days whose midnight falls inside the window.
  net::TimeWindow window;
  /// kBurstLoss: per-datagram drop probability. kFeedOutage/kFeedCorruption:
  /// fraction of lists affected. Total for the endpoint/record kinds.
  double severity = 1.0;
  /// Distinguishes deterministic sub-streams of same-kind episodes.
  std::uint64_t salt = 0;

  friend bool operator==(const FaultEpisode&, const FaultEpisode&) = default;
};

/// A seeded schedule of fault episodes. Value type: hashable into the
/// scenario-config fingerprint and comparable in tests.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEpisode> episodes;

  [[nodiscard]] bool empty() const { return episodes.empty(); }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Injector-side accounting: every fault actually injected, by kind. The
/// chaos suite reconciles these exactly against consumer-side counters.
struct FaultStats {
  std::uint64_t burst_request_drops = 0;
  std::uint64_t burst_response_drops = 0;
  std::uint64_t bootstrap_blackholes = 0;
  std::uint64_t feed_snapshots_suppressed = 0;
  std::uint64_t feeds_corrupted = 0;
  std::uint64_t atlas_records_suppressed = 0;

  [[nodiscard]] std::uint64_t total() const {
    return burst_request_drops + burst_response_drops + bootstrap_blackholes +
           feed_snapshots_suppressed + feeds_corrupted +
           atlas_records_suppressed;
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

/// The pipeline stage that currently owns the injector. Hooks are grouped
/// by stage (transport hooks fire only during the crawl, feed hooks only
/// during the ecosystem, atlas hooks only during the fleet); with the
/// parallel scenario runner the feed and atlas hooks are called from worker
/// threads, so debug builds assert that every ledger mutation comes from the
/// hook family of the stage declared active — a hook firing out of stage is
/// exactly the cross-thread hazard that would silently skew reconciliation.
enum class FaultStage : std::uint8_t {
  kAny = 0,  ///< no stage declared (standalone use, unit tests)
  kEcosystem,
  kCrawl,
  kFleet,
};

/// Evaluates a FaultPlan at each injection site and keeps the injected-fault
/// ledger. One injector is shared by every subsystem of a scenario run so
/// the ledger spans the whole pipeline. A default-constructed injector is
/// inert (empty plan).
///
/// Thread safety: the ledger counters are atomic, so the per-(list, day)
/// feed hooks and the atlas hook may be called concurrently from the
/// parallel ecosystem/fleet stages — increments are order-independent sums,
/// so the final ledger is deterministic for any --jobs value. The transport
/// hooks draw from a private *stateful* generator and must stay
/// single-threaded; the stage assertions enforce that in debug builds.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] bool active() const { return !plan_.empty(); }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Snapshot of the ledger (by value: the live counters are atomic).
  [[nodiscard]] FaultStats stats() const {
    FaultStats out;
    out.burst_request_drops = ledger_.burst_request_drops.load();
    out.burst_response_drops = ledger_.burst_response_drops.load();
    out.bootstrap_blackholes = ledger_.bootstrap_blackholes.load();
    out.feed_snapshots_suppressed = ledger_.feed_snapshots_suppressed.load();
    out.feeds_corrupted = ledger_.feeds_corrupted.load();
    out.atlas_records_suppressed = ledger_.atlas_records_suppressed.load();
    return out;
  }

  /// Folds another injector's ledger snapshot into this one. The sharded
  /// crawl gives each shard a private injector (the burst generator is
  /// stateful and single-threaded); absorbing the shard ledgers afterwards
  /// keeps the scenario-wide injector's stats() spanning the whole run, so
  /// degradation reconciliation and the cache's injected-fault record see
  /// one ledger as before.
  void absorb(const FaultStats& other) {
    ledger_.burst_request_drops.fetch_add(other.burst_request_drops,
                                          std::memory_order_relaxed);
    ledger_.burst_response_drops.fetch_add(other.burst_response_drops,
                                           std::memory_order_relaxed);
    ledger_.bootstrap_blackholes.fetch_add(other.bootstrap_blackholes,
                                           std::memory_order_relaxed);
    ledger_.feed_snapshots_suppressed.fetch_add(
        other.feed_snapshots_suppressed, std::memory_order_relaxed);
    ledger_.feeds_corrupted.fetch_add(other.feeds_corrupted,
                                      std::memory_order_relaxed);
    ledger_.atlas_records_suppressed.fetch_add(other.atlas_records_suppressed,
                                               std::memory_order_relaxed);
  }

  /// Declares the stage whose hooks may mutate the ledger until the next
  /// call (kAny disables the check). Debug builds assert on out-of-stage
  /// mutations; release builds compile the check away.
  void begin_stage(FaultStage stage) { stage_ = stage; }
  [[nodiscard]] FaultStage current_stage() const { return stage_; }

  /// Marks the crawler's front door so bootstrap outages know whom to
  /// blackhole; without it kBootstrapOutage episodes are inert.
  void designate_bootstrap(const net::Endpoint& endpoint) {
    bootstrap_ = endpoint;
    bootstrap_set_ = true;
  }

  // --- Transport hooks ----------------------------------------------------
  /// True when the outbound datagram to `to` at `now` is consumed by a
  /// bootstrap outage or a loss burst. Counts what it drops.
  [[nodiscard]] bool drop_request(const net::Endpoint& to, net::SimTime now);
  /// True when a response datagram at `now` is consumed by a loss burst.
  [[nodiscard]] bool drop_response(net::SimTime now);

  // --- Blocklist-feed hooks (stateless per (list, day)) -------------------
  [[nodiscard]] bool feed_snapshot_missing(std::size_t list_index,
                                           std::int64_t day);
  [[nodiscard]] bool feed_corrupted(std::size_t list_index, std::int64_t day);
  /// Deterministically garbles feed text for (list, day): truncation, binary
  /// byte runs, or newline mangling. Never inserts '\n' and never grows the
  /// text, so the line count — and hence the parsed entry count — cannot
  /// increase. Pure: same inputs, same garbling.
  [[nodiscard]] std::string corrupt_feed_text(std::string text,
                                              std::size_t list_index,
                                              std::int64_t day) const;

  // --- Atlas hooks --------------------------------------------------------
  /// True when a connection-log record at `t` falls in a controller gap.
  [[nodiscard]] bool atlas_record_suppressed(net::SimTime t);

 private:
  /// Atomic mirror of FaultStats: hooks on parallel stages increment
  /// concurrently; stats() snapshots into the plain value type.
  struct AtomicLedger {
    std::atomic<std::uint64_t> burst_request_drops{0};
    std::atomic<std::uint64_t> burst_response_drops{0};
    std::atomic<std::uint64_t> bootstrap_blackholes{0};
    std::atomic<std::uint64_t> feed_snapshots_suppressed{0};
    std::atomic<std::uint64_t> feeds_corrupted{0};
    std::atomic<std::uint64_t> atlas_records_suppressed{0};
  };

  [[nodiscard]] const FaultEpisode* covering(FaultKind kind,
                                             net::SimTime t) const;
  /// The episode of `kind` covering day `day` whose list-selection hash
  /// puts `list_index` inside its severity fraction; nullptr otherwise.
  [[nodiscard]] const FaultEpisode* feed_episode(FaultKind kind,
                                                 std::size_t list_index,
                                                 std::int64_t day) const;

  void assert_stage([[maybe_unused]] FaultStage expected) const {
    assert(stage_ == FaultStage::kAny || stage_ == expected);
  }

  FaultPlan plan_;
  std::vector<FaultEpisode> by_kind_[kFaultKindCount];
  bool bootstrap_set_ = false;
  net::Endpoint bootstrap_{};
  net::Rng burst_rng_{0};  ///< private stream: burst draws only (crawl stage)
  FaultStage stage_ = FaultStage::kAny;
  AtomicLedger ledger_;
};

/// RAII stage-ownership marker: declares `stage` active on construction and
/// restores the previous stage on destruction. A null injector is a no-op.
class StageGuard {
 public:
  StageGuard(FaultInjector* injector, FaultStage stage)
      : injector_(injector),
        previous_(injector != nullptr ? injector->current_stage()
                                      : FaultStage::kAny) {
    if (injector_ != nullptr) injector_->begin_stage(stage);
  }
  ~StageGuard() {
    if (injector_ != nullptr) injector_->begin_stage(previous_);
  }
  StageGuard(const StageGuard&) = delete;
  StageGuard& operator=(const StageGuard&) = delete;

 private:
  FaultInjector* injector_;
  FaultStage previous_;
};

}  // namespace reuse::sim
