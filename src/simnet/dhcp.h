// Dynamic address pool (DHCP-style) model.
//
// Dynamic addressing — the second reuse mechanism the paper studies — hands
// the same public address to different subscribers over time. The pool tracks
// which addresses are free, leases them out, and deliberately *reuses*
// returned addresses (ISP pools are small relative to their churn), which is
// what puts an innocent subscriber behind a previously blocklisted address.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "netbase/ipv4.h"
#include "netbase/rng.h"

namespace reuse::sim {

using SubscriberId = std::uint64_t;

/// Allocation order inside the pool. Real ISPs differ; the choice affects how
/// quickly a tainted address lands on a new user.
enum class PoolPolicy {
  kRandom,         ///< uniform over free addresses
  kLeastRecently,  ///< FIFO: the address free the longest goes out first
  kMostRecently,   ///< LIFO: the most recently freed address goes out first
};

class AddressPool {
 public:
  AddressPool(std::vector<net::Ipv4Prefix> prefixes, PoolPolicy policy,
              net::Rng rng)
      : policy_(policy), rng_(std::move(rng)) {
    for (const auto& prefix : prefixes) {
      for (std::uint64_t i = 0; i < prefix.size(); ++i) {
        free_.push_back(prefix.address_at(i));
      }
    }
    if (free_.empty()) {
      throw std::invalid_argument("AddressPool: empty prefix set");
    }
  }

  /// Leases an address to `subscriber`. If the subscriber already holds one,
  /// it is returned to the pool first (a renewal that lands on a new
  /// address, which is the churn the Atlas pipeline observes).
  [[nodiscard]] std::optional<net::Ipv4Address> lease(SubscriberId subscriber) {
    release(subscriber);
    if (free_.empty()) return std::nullopt;
    const net::Ipv4Address address = take();
    leases_[subscriber] = address;
    holders_[address] = subscriber;
    return address;
  }

  void release(SubscriberId subscriber) {
    const auto it = leases_.find(subscriber);
    if (it == leases_.end()) return;
    holders_.erase(it->second);
    free_.push_back(it->second);
    leases_.erase(it);
  }

  [[nodiscard]] std::optional<net::Ipv4Address> address_of(
      SubscriberId subscriber) const {
    const auto it = leases_.find(subscriber);
    if (it == leases_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::optional<SubscriberId> holder_of(
      net::Ipv4Address address) const {
    const auto it = holders_.find(address);
    if (it == holders_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  [[nodiscard]] std::size_t leased_count() const { return leases_.size(); }
  [[nodiscard]] std::size_t size() const {
    return free_.size() + leases_.size();
  }

 private:
  net::Ipv4Address take() {
    if (policy_ == PoolPolicy::kLeastRecently) {
      const net::Ipv4Address address = free_.front();
      free_.pop_front();
      return address;
    }
    if (policy_ == PoolPolicy::kRandom) {
      // Swap-with-back keeps removal O(1); free-list order is irrelevant
      // under the random policy.
      std::swap(free_[rng_.uniform(free_.size())], free_.back());
    }
    const net::Ipv4Address address = free_.back();
    free_.pop_back();
    return address;
  }

  PoolPolicy policy_;
  net::Rng rng_;
  std::deque<net::Ipv4Address> free_;
  std::unordered_map<SubscriberId, net::Ipv4Address> leases_;
  std::unordered_map<net::Ipv4Address, SubscriberId> holders_;
};

}  // namespace reuse::sim
