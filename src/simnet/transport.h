// Lossy request/response datagram transport.
//
// The BitTorrent crawler speaks a UDP protocol; the paper reports a 48.6%
// end-to-end response rate and compensates with hourly re-pings. This
// transport models exactly the effects the crawler must survive: dropped
// requests, dropped responses, propagation delay, and endpoints that have
// gone away (stale routing-table entries).
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>

#include "netbase/ipv4.h"
#include "netbase/rng.h"
#include "netbase/sim_time.h"
#include "simnet/event_queue.h"
#include "simnet/faults.h"

namespace reuse::sim {

struct TransportConfig {
  /// Probability an outbound datagram is lost before reaching the target.
  double request_loss = 0.10;
  /// Probability the response datagram is lost on the way back.
  double response_loss = 0.10;
  /// One-way delay bounds (uniform); round trip is the sum of two draws.
  net::Duration min_delay = net::Duration::seconds(0);
  net::Duration max_delay = net::Duration::seconds(1);
};

struct TransportStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_delivered = 0;
  std::uint64_t requests_lost = 0;
  std::uint64_t requests_unroutable = 0;  ///< no live endpoint (stale entry)
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_delivered = 0;
  std::uint64_t responses_lost = 0;
  /// Datagrams consumed by an attached FaultInjector (loss bursts and
  /// bootstrap outages), separate from the i.i.d. loss above so the chaos
  /// suite can reconcile them exactly against the injector's ledger.
  std::uint64_t requests_lost_fault = 0;
  std::uint64_t responses_lost_fault = 0;

  [[nodiscard]] double response_rate() const {
    return requests_sent == 0
               ? 0.0
               : static_cast<double>(responses_delivered) /
                     static_cast<double>(requests_sent);
  }
};

/// Routes request datagrams of type `Payload` to registered endpoint
/// handlers and delivers optional responses back to the sender, both subject
/// to loss and delay. Endpoints may bind and unbind at any time, which is how
/// peer churn produces stale entries.
template <typename Payload, typename Response>
class Transport {
 public:
  /// A handler consumes a request and returns a response (or nothing, when
  /// the simulated application chooses not to answer).
  using Handler =
      std::function<std::optional<Response>(const net::Endpoint& from,
                                            const Payload& request)>;
  using ResponseCallback =
      std::function<void(const net::Endpoint& from, const Response&)>;

  Transport(EventQueue& events, net::Rng rng, TransportConfig config = {})
      : events_(events), rng_(std::move(rng)), config_(config) {}

  /// Binds `endpoint` to `handler`; rebinding replaces the previous handler
  /// (the old one simply stops existing, as when a NAT mapping is recycled).
  void bind(const net::Endpoint& endpoint, Handler handler) {
    handlers_[endpoint] = std::move(handler);
  }

  void unbind(const net::Endpoint& endpoint) { handlers_.erase(endpoint); }

  /// Attaches a fault injector consulted on every datagram. The injector is
  /// not owned and must outlive the transport; nullptr detaches. With no
  /// injector (or an empty plan) behaviour is bit-identical to before.
  void attach_faults(FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] bool is_bound(const net::Endpoint& endpoint) const {
    return handlers_.contains(endpoint);
  }

  /// Fires a request from `from` to `to`. If the target answers and neither
  /// direction drops the datagram, `on_response` runs after the round-trip
  /// delay. Silence is indistinguishable from loss, exactly as over UDP.
  void send_request(const net::Endpoint& from, const net::Endpoint& to,
                    Payload payload, ResponseCallback on_response) {
    ++stats_.requests_sent;
    if (faults_ != nullptr && faults_->drop_request(to, events_.now())) {
      ++stats_.requests_lost_fault;
      return;
    }
    if (rng_.bernoulli(config_.request_loss)) {
      ++stats_.requests_lost;
      return;
    }
    const net::Duration outbound = draw_delay();
    events_.schedule_after(
        outbound, [this, from, to, payload = std::move(payload),
                   on_response = std::move(on_response)]() mutable {
          deliver(from, to, std::move(payload), std::move(on_response));
        });
  }

  [[nodiscard]] const TransportStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t bound_endpoints() const { return handlers_.size(); }

 private:
  void deliver(const net::Endpoint& from, const net::Endpoint& to,
               Payload payload, ResponseCallback on_response) {
    const auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      ++stats_.requests_unroutable;
      return;
    }
    ++stats_.requests_delivered;
    std::optional<Response> response = it->second(from, payload);
    if (!response) return;
    ++stats_.responses_sent;
    if (faults_ != nullptr && faults_->drop_response(events_.now())) {
      ++stats_.responses_lost_fault;
      return;
    }
    if (rng_.bernoulli(config_.response_loss)) {
      ++stats_.responses_lost;
      return;
    }
    const net::Duration inbound = draw_delay();
    events_.schedule_after(
        inbound, [this, to, response = std::move(*response),
                  on_response = std::move(on_response)]() {
          ++stats_.responses_delivered;
          on_response(to, response);
        });
  }

  net::Duration draw_delay() {
    const std::int64_t lo = config_.min_delay.count();
    const std::int64_t hi = config_.max_delay.count();
    if (hi <= lo) return net::Duration(lo);
    return net::Duration(rng_.uniform_int(lo, hi));
  }

  EventQueue& events_;
  net::Rng rng_;
  TransportConfig config_;
  FaultInjector* faults_ = nullptr;  ///< not owned
  std::unordered_map<net::Endpoint, Handler> handlers_;
  TransportStats stats_;
};

}  // namespace reuse::sim
