// Abuse-event generation.
//
// Blocklists in this reproduction are fed from an explicit event stream:
// malicious servers and infected end hosts emit category-tagged events over
// the measurement window. Crucially, an infected *dynamic* subscriber emits
// from whatever address it holds at the moment — so its taint smears across
// the pool, which is exactly the mechanism behind unjust blocking of the
// next leaseholder.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "internet/types.h"
#include "internet/world.h"
#include "netbase/sim_time.h"

namespace reuse::inet {

struct AbuseGenConfig {
  net::TimeWindow window;
  /// Per-actor Poisson rates, events/day (defaults come from WorldConfig).
  double user_events_per_day = 0.8;
  double server_events_per_day = 3.0;
  /// Abuse is episodic, not eternal: an infected host emits only during an
  /// activity episode (until the infection is cleaned), and malicious
  /// servers run campaigns until taken down. Episode lengths are
  /// exponential with these means; each actor gets one episode whose start
  /// is uniform over [window.begin - episode, window.end). This is what
  /// lets reused addresses fall off blocklists quickly while entrenched
  /// servers persist (Figure 7).
  double user_active_mean_days = 18.0;
  double server_active_mean_days = 45.0;
  std::uint64_t seed = 99;
};

/// Generates the complete abuse stream for the window, sorted by
/// (time, source, actor, category) — a total order, so the output is a
/// single well-defined sequence.
[[nodiscard]] std::vector<AbuseEvent> generate_abuse(const World& world,
                                                     const AbuseGenConfig& config);

/// Receives consecutive, disjoint, internally sorted slices of the stream.
using AbuseChunkSink = std::function<void(std::span<const AbuseEvent>)>;

/// Streams exactly the events generate_abuse returns, in `chunk_days`
/// slices of the window, without ever materializing the whole stream: peak
/// memory is the busiest single slice. Each slice replays every actor's RNG
/// substream from its fork point and keeps only the events that land inside
/// the slice, so CPU grows with slices x actors while memory stays flat in
/// the window length — the trade the world-scale runs want (see DESIGN.md).
/// Because the sort key is a total order, concatenating the slices
/// reproduces generate_abuse byte for byte.
void stream_abuse(const World& world, const AbuseGenConfig& config,
                  std::int64_t chunk_days, const AbuseChunkSink& sink);

/// stream_abuse restricted to events with time in [keep_begin_s, keep_end_s).
/// Every actor still replays its full-window substream, so the events inside
/// the keep range are byte-identical to the corresponding slice of
/// stream_abuse over the whole window — streaming [b, m) and then [m, e)
/// concatenates into exactly the [b, e) stream. This is the primitive the
/// incremental pipeline uses: the base run keeps [window.begin, N) and a
/// resume keeps [N, N+K) against the same generation window.
void stream_abuse_range(const World& world, const AbuseGenConfig& config,
                        std::int64_t chunk_days, std::int64_t keep_begin_s,
                        std::int64_t keep_end_s, const AbuseChunkSink& sink);

}  // namespace reuse::inet
