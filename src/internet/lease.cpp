#include "internet/lease.h"

#include <algorithm>
#include <unordered_set>

namespace reuse::inet {

net::Ipv4Address draw_pool_address(const DynamicPoolInfo& pool, net::Rng& rng) {
  // Every pool prefix is a /24, so a uniform draw over (prefix, offset) is a
  // uniform draw over the pool.
  const auto& prefix = pool.prefixes[rng.uniform(pool.prefixes.size())];
  return prefix.address_at(rng.uniform(256));
}

LeaseTimeline::LeaseTimeline(const DynamicPoolInfo& pool,
                             std::uint64_t user_seed, net::TimeWindow window,
                             double mean_lease_override) {
  const double mean_lease_seconds =
      mean_lease_override > 0.0 ? mean_lease_override : pool.mean_lease_seconds;
  net::Rng rng(user_seed ^ 0x1ea5e11fe11fULL);
  // The subscriber's home segment: most grants come from one /24.
  const net::Ipv4Prefix home =
      pool.prefixes[user_seed % pool.prefixes.size()];
  auto draw = [&]() {
    if (rng.bernoulli(kHomeSegmentAffinity)) {
      return home.address_at(rng.uniform(256));
    }
    return draw_pool_address(pool, rng);
  };
  net::SimTime t = window.begin;
  net::Ipv4Address current = draw();
  while (t < window.end) {
    const auto lease = net::Duration(std::max<std::int64_t>(
        60, static_cast<std::int64_t>(rng.exponential(mean_lease_seconds))));
    net::SimTime end = t + lease;
    if (end > window.end) end = window.end;
    segments_.push_back(LeaseSegment{t, end, current});
    t = end;
    // Reassignment: resample until the address differs (pools do not hand the
    // same address straight back; with >= 256 addresses one retry loop is
    // effectively instant).
    net::Ipv4Address next = draw();
    while (next == current && pool.prefixes.size() * 256 > 1) {
      next = draw();
    }
    current = next;
  }
}

std::optional<net::Ipv4Address> LeaseTimeline::address_at(net::SimTime t) const {
  const auto it = std::partition_point(
      segments_.begin(), segments_.end(),
      [t](const LeaseSegment& segment) { return segment.end <= t; });
  if (it == segments_.end() || t < it->begin) return std::nullopt;
  return it->address;
}

std::vector<net::Ipv4Address> LeaseTimeline::distinct_addresses() const {
  std::vector<net::Ipv4Address> out;
  std::unordered_set<net::Ipv4Address> seen;
  for (const LeaseSegment& segment : segments_) {
    if (seen.insert(segment.address).second) out.push_back(segment.address);
  }
  return out;
}

std::optional<net::Duration> LeaseTimeline::mean_change_interval() const {
  if (segments_.size() < 2) return std::nullopt;
  // Changes happen at segment boundaries; the mean interval between changes
  // is the covered span divided by the number of changes.
  const net::Duration span = segments_.back().end - segments_.front().begin;
  return net::Duration(span.count() /
                       static_cast<std::int64_t>(segments_.size() - 1));
}

}  // namespace reuse::inet
