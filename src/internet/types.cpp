#include "internet/types.h"

namespace reuse::inet {

std::string_view to_string(PrefixRole role) {
  switch (role) {
    case PrefixRole::kUnused: return "unused";
    case PrefixRole::kServerHosting: return "server-hosting";
    case PrefixRole::kStaticResidential: return "static-residential";
    case PrefixRole::kHomeNatResidential: return "home-nat";
    case PrefixRole::kCgnPool: return "cgn-pool";
    case PrefixRole::kDynamicPool: return "dynamic-pool";
  }
  return "?";
}

std::string_view to_string(AbuseCategory category) {
  switch (category) {
    case AbuseCategory::kSpam: return "spam";
    case AbuseCategory::kDdos: return "ddos";
    case AbuseCategory::kBruteforce: return "bruteforce";
    case AbuseCategory::kMalware: return "malware";
    case AbuseCategory::kScan: return "scan";
  }
  return "?";
}

}  // namespace reuse::inet
