// Generator knobs for the synthetic Internet.
//
// Defaults are tuned so that, at bench scale, the world reproduces the
// *relative* quantities of the paper's measurement (Section 4): the share of
// ASes hosting blocklisted space, the BitTorrent/RIPE coverage fractions,
// NAT fan-out tails reaching ~78 users, and dynamic pools whose fastest
// subscribers rotate addresses daily.
#pragma once

#include <cstddef>
#include <cstdint>

namespace reuse::inet {

struct WorldConfig {
  std::uint64_t seed = 1;

  /// Number of autonomous systems. The paper sees blocklisted addresses in
  /// ~26K ASes; bench scale uses ~1/20 of that, tests much less.
  std::size_t as_count = 300;

  /// Per-AS /24 prefix counts are Pareto-distributed (few giant carriers,
  /// many small networks).
  double prefix_pareto_alpha = 1.25;
  std::size_t min_prefixes_per_as = 1;
  std::size_t max_prefixes_per_as = 1500;

  // --- Prefix role mix -----------------------------------------------------
  /// Baseline role weights for ASes that deploy neither CGN nor dynamic
  /// pools; ASes that do shift weight into those roles.
  double weight_unused = 0.18;
  double weight_server = 0.17;
  double weight_static_residential = 0.35;
  double weight_home_nat = 0.30;

  /// Fraction of ASes deploying carrier-grade NAT on part of their space.
  double cgn_as_fraction = 0.08;
  /// Share of a CGN AS's prefixes converted to CGN public pools.
  double cgn_prefix_share = 0.15;

  /// Fraction of ASes running dynamic pools (mostly consumer ISPs).
  double dynamic_as_fraction = 0.38;
  /// Share of a dynamic AS's prefixes assigned to pools.
  double dynamic_prefix_share = 0.30;
  /// Pools per dynamic AS are split into this many separate pools at most.
  std::size_t max_pools_per_as = 4;

  // --- Population ----------------------------------------------------------
  /// Fraction of static-residential addresses actually occupied by a user.
  double static_occupancy = 0.55;
  /// Fraction of home-NAT addresses with an active household behind them.
  double home_nat_occupancy = 0.6;
  /// Household size behind a home NAT: 1 + geometric(p); most homes have one
  /// or two active devices.
  double home_nat_extra_member_p = 0.38;
  /// Subscribers per CGN public address: heavy-tailed (Pareto), so a few
  /// addresses front dozens of users — the paper's max is 78.
  double cgn_users_min = 2.0;
  double cgn_users_alpha = 1.7;
  std::size_t cgn_users_cap = 260;
  /// Dynamic-pool subscriber load: fraction of pool size that is subscribed
  /// (must stay < 1 so leases can rotate).
  double dynamic_subscription_ratio = 0.45;

  // --- Lease churn ---------------------------------------------------------
  /// Mean lease length (seconds) is drawn per pool from a log-uniform range;
  /// pools at the low end rotate daily (the ones the paper's pipeline keeps),
  /// pools at the high end look static over the study.
  double min_mean_lease_seconds = 6.0 * 3600;        // 6 hours
  double max_mean_lease_seconds = 300.0 * 86400;     // ~10 months

  // --- BitTorrent adoption -------------------------------------------------
  /// Per-AS adoption is drawn uniformly from this range; BitTorrent is
  /// popular in some regions/ISPs and filtered in others (adoption 0 with
  /// probability `bt_blocked_as_fraction`).
  double bt_adoption_min = 0.05;
  double bt_adoption_max = 0.45;
  double bt_blocked_as_fraction = 0.2;

  // --- Infection / abuse ---------------------------------------------------
  /// Probability a non-P2P user is infected.
  double infection_rate_base = 0.013;
  /// Probability a BitTorrent user is infected (DeKoven et al.: P2P hosts
  /// are disproportionately compromised).
  double infection_rate_p2p = 0.10;
  /// Fraction of server-hosting addresses that are malicious (C2, malware
  /// distribution, snowshoe spam) — these give blocklists their non-reused
  /// majority.
  double malicious_server_fraction = 0.05;
  /// ASes that filter outbound ICMP (census blind spots).
  double icmp_filtered_as_fraction = 0.25;

  // --- Abuse event rates (per actor, per day, while the actor's activity
  // episode is running — abuse is bursty, not continuous) ------------------
  double abuse_events_per_day_user = 3.0;
  double abuse_events_per_day_server = 4.0;

  // --- Adversarial churn ---------------------------------------------------
  /// Listing-evasion via rapid re-allocation: infected *dynamic* subscribers
  /// rotate addresses this many times faster than honest subscribers of the
  /// same pool (their lease mean is divided by the factor). Once a feed
  /// lists the address the abuse has already moved on, so the listing goes
  /// stale quickly while the taint smears across more of the pool — the
  /// adversarial regime the sweep's `adversarial_evasion` preset measures.
  /// 1.0 (the default) is byte-identical to a world without the knob. The
  /// simulator has no feedback loop from feed state into lease draws (that
  /// would break abuse-stream slicing and the incremental cache), so the
  /// evasion response is modelled in expectation: the adversary churns fast
  /// for the whole infection episode instead of churning only after each
  /// listing event.
  double evasion_lease_factor = 1.0;
};

/// A smaller world for unit tests: fast to build, still exercises every role.
[[nodiscard]] inline WorldConfig test_world_config(std::uint64_t seed = 7) {
  WorldConfig config;
  config.seed = seed;
  config.as_count = 40;
  config.max_prefixes_per_as = 60;
  return config;
}

/// The scale used by the bench/ experiment binaries (~1/20 of the paper's
/// observed footprint; see DESIGN.md on scaling).
[[nodiscard]] inline WorldConfig bench_world_config(std::uint64_t seed = 42) {
  WorldConfig config;
  config.seed = seed;
  config.as_count = 1200;
  config.max_prefixes_per_as = 1500;
  return config;
}

/// Memory-bench scale: enough ASes that the generated prefix population
/// crosses one million addresses (prefix_count() * 256). The Pareto draw is
/// heavy-tailed, so the per-AS yield converges slowly (~10 /24s per AS at
/// seed 42); 450 ASes clear 1M with margin. Used by world_scale_scenario_config /
/// bench_worldscale, where the point is the memory footprint of the hot
/// per-address state, not paper fidelity.
[[nodiscard]] inline WorldConfig world_scale_world_config(
    std::uint64_t seed = 42) {
  WorldConfig config;
  config.seed = seed;
  config.as_count = 450;
  config.max_prefixes_per_as = 1500;
  return config;
}

}  // namespace reuse::inet
