// Entity types of the synthetic Internet.
//
// The generator hands every /24 prefix a role; roles determine how addresses
// map to users and therefore which reuse mechanism (if any) applies. These
// are the ground-truth facts the detection techniques are validated against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netbase/ipv4.h"

namespace reuse::inet {

using UserId = std::uint64_t;
using Asn = std::uint32_t;

/// How a /24 block is used by its AS.
enum class PrefixRole : std::uint8_t {
  kUnused,            ///< dark space: never answers, never listed
  kServerHosting,     ///< statically addressed servers (some malicious)
  kStaticResidential, ///< one subscriber per address, stable allocation
  kHomeNatResidential,///< one home NAT per address, 1..n members
  kCgnPool,           ///< carrier-grade NAT public side: heavy sharing
  kDynamicPool,       ///< ISP dynamic pool: addresses rotate across users
};

[[nodiscard]] std::string_view to_string(PrefixRole role);

/// Malicious traffic categories; blocklists subscribe to subsets of these.
enum class AbuseCategory : std::uint8_t {
  kSpam,
  kDdos,
  kBruteforce,
  kMalware,
  kScan,
};
inline constexpr int kAbuseCategoryCount = 5;

[[nodiscard]] std::string_view to_string(AbuseCategory category);

/// How a user reaches the public Internet.
enum class AttachmentKind : std::uint8_t {
  kStatic,      ///< owns a fixed public address
  kHomeNat,     ///< shares a fixed public address with a small household
  kCgn,         ///< shares a carrier NAT address with many subscribers
  kDynamic,     ///< leases from a rotating pool (one user per address at a time)
};

/// A subscriber / end host.
struct User {
  UserId id = 0;
  Asn asn = 0;
  AttachmentKind attachment = AttachmentKind::kStatic;
  /// For kStatic: the user's own address. For kHomeNat/kCgn: the shared
  /// public address. For kDynamic: unset (address comes from the pool).
  net::Ipv4Address fixed_address;
  /// For kDynamic: which of the AS's pools the user leases from.
  std::uint32_t pool_index = 0;
  /// Per-user stream salt so lazily simulated timelines are reproducible.
  std::uint64_t seed = 0;

  bool uses_bittorrent = false;
  bool infected = false;
  /// Bitmask over AbuseCategory for infected users.
  std::uint8_t abuse_mask = 0;

  [[nodiscard]] bool emits(AbuseCategory category) const {
    return (abuse_mask >> static_cast<unsigned>(category)) & 1u;
  }
};

/// A group of users sharing one public address right now (home NAT or CGN).
struct NatGroup {
  net::Ipv4Address public_address;
  Asn asn = 0;
  bool carrier_grade = false;
  std::vector<UserId> members;
};

/// A dynamic address pool operated by one AS.
struct DynamicPoolInfo {
  Asn asn = 0;
  std::uint32_t index = 0;              ///< pool index within the AS
  std::vector<net::Ipv4Prefix> prefixes;
  std::vector<UserId> subscribers;
  /// Mean time between address changes for subscribers of this pool, in
  /// seconds. The paper's pipeline keys on whether this is under a day.
  double mean_lease_seconds = 0.0;
};

/// An autonomous system.
struct AsInfo {
  Asn asn = 0;
  std::string name;
  std::vector<net::Ipv4Prefix> prefixes;        ///< all /24s, in address order
  std::vector<PrefixRole> roles;                ///< parallel to `prefixes`
  std::vector<std::uint32_t> pool_indices;      ///< indices into World pools
  bool filters_icmp = false;   ///< drops ICMP at the border (hurts the census)
  double bt_adoption = 0.0;    ///< BitTorrent popularity among subscribers
};

/// One malicious action observed by blocklist feeds.
struct AbuseEvent {
  std::int64_t time_seconds = 0;
  net::Ipv4Address source;
  AbuseCategory category = AbuseCategory::kSpam;
  Asn asn = 0;
  UserId actor = 0;  ///< 0 when the actor is a standalone malicious server
};

}  // namespace reuse::inet
