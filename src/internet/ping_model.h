// Deterministic ICMP responsiveness model for the census baseline.
//
// Cai et al.'s technique pings sampled addresses on a schedule and infers
// dynamics from response patterns. The paper calls out that approach's
// failure modes — middleboxes answering on behalf of hosts, ASes filtering
// ICMP — and this model reproduces them so the Figure 6 comparison shows the
// same strengths and weaknesses. Responses are a pure function of (seed,
// address, time), so any probing schedule observes a consistent world.
#pragma once

#include <cstdint>

#include "internet/world.h"
#include "netbase/ipv4.h"
#include "netbase/sim_time.h"

namespace reuse::inet {

class PingModel {
 public:
  PingModel(const World& world, std::uint64_t seed)
      : world_(world), seed_(seed) {}

  /// Would an ICMP echo to `address` at time `t` get a reply?
  [[nodiscard]] bool responds(net::Ipv4Address address, net::SimTime t) const;

 private:
  /// Uniform [0,1) hash of (seed, address, salt) — the per-address parameter
  /// source.
  [[nodiscard]] double unit_hash(net::Ipv4Address address,
                                 std::uint64_t salt) const;

  const World& world_;
  std::uint64_t seed_;
};

}  // namespace reuse::inet
