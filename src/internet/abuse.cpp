#include "internet/abuse.h"

#include <algorithm>

#include "internet/lease.h"
#include "netbase/rng.h"

namespace reuse::inet {
namespace {

// Picks one category uniformly among the set bits of `mask`.
AbuseCategory pick_category(net::Rng& rng, std::uint8_t mask) {
  int set_bits[kAbuseCategoryCount];
  int count = 0;
  for (int c = 0; c < kAbuseCategoryCount; ++c) {
    if ((mask >> c) & 1) set_bits[count++] = c;
  }
  if (count == 0) return AbuseCategory::kSpam;
  return static_cast<AbuseCategory>(
      set_bits[rng.uniform(static_cast<std::uint64_t>(count))]);
}

}  // namespace

std::vector<AbuseEvent> generate_abuse(const World& world,
                                       const AbuseGenConfig& config) {
  std::vector<AbuseEvent> events;
  net::Rng rng(config.seed);

  const std::int64_t begin_s = config.window.begin.seconds();
  const std::int64_t span_s = config.window.length().count();

  // Draws an actor's activity episode intersected with the window; returns
  // nullopt when the episode ended before the window began.
  struct Episode {
    std::int64_t begin;
    std::int64_t end;
  };
  auto draw_episode = [&](net::Rng& r, double mean_days) -> std::optional<Episode> {
    const auto length = static_cast<std::int64_t>(
        std::max(3600.0, r.exponential(mean_days * 86400.0)));
    const std::int64_t start =
        begin_s - length +
        static_cast<std::int64_t>(
            r.uniform(static_cast<std::uint64_t>(span_s + length)));
    const std::int64_t lo = std::max(start, begin_s);
    const std::int64_t hi = std::min(start + length, begin_s + span_s);
    if (lo >= hi) return std::nullopt;
    return Episode{lo, hi};
  };
  auto draw_time_in = [&](net::Rng& r, const Episode& episode) {
    return episode.begin +
           static_cast<std::int64_t>(r.uniform(
               static_cast<std::uint64_t>(episode.end - episode.begin)));
  };

  // Malicious servers: fixed source address, active for one campaign.
  for (const MaliciousServer& server : world.malicious_servers()) {
    net::Rng server_rng = rng.fork(server.address.value());
    const auto episode =
        draw_episode(server_rng, config.server_active_mean_days);
    if (!episode) continue;
    const double active_days =
        static_cast<double>(episode->end - episode->begin) / 86400.0;
    const std::uint64_t n =
        server_rng.poisson(config.server_events_per_day * active_days);
    for (std::uint64_t i = 0; i < n; ++i) {
      events.push_back(AbuseEvent{draw_time_in(server_rng, *episode),
                                  server.address,
                                  pick_category(server_rng, server.abuse_mask),
                                  server.asn, 0});
    }
  }

  // Infected users: source address depends on the attachment; activity is
  // bounded by the infection episode (until cleanup).
  for (const UserId id : world.infected_users()) {
    const User& user = world.user(id);
    net::Rng user_rng = rng.fork(user.seed);
    const auto episode = draw_episode(user_rng, config.user_active_mean_days);
    if (!episode) continue;
    const double active_days =
        static_cast<double>(episode->end - episode->begin) / 86400.0;
    const std::uint64_t n =
        user_rng.poisson(config.user_events_per_day * active_days);
    if (n == 0) continue;
    if (user.attachment == AttachmentKind::kDynamic) {
      const LeaseTimeline timeline(world.pool(user.pool_index), user.seed,
                                   config.window);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t when = draw_time_in(user_rng, *episode);
        const auto address = timeline.address_at(net::SimTime(when));
        if (!address) continue;
        events.push_back(AbuseEvent{when, *address,
                                    pick_category(user_rng, user.abuse_mask),
                                    user.asn, id});
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        events.push_back(AbuseEvent{draw_time_in(user_rng, *episode),
                                    user.fixed_address,
                                    pick_category(user_rng, user.abuse_mask),
                                    user.asn, id});
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const AbuseEvent& a, const AbuseEvent& b) {
              if (a.time_seconds != b.time_seconds) {
                return a.time_seconds < b.time_seconds;
              }
              return a.source < b.source;
            });
  return events;
}

}  // namespace reuse::inet
