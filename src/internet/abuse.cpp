#include "internet/abuse.h"

#include <algorithm>

#include "internet/lease.h"
#include "netbase/rng.h"

namespace reuse::inet {
namespace {

// Picks one category uniformly among the set bits of `mask`.
AbuseCategory pick_category(net::Rng& rng, std::uint8_t mask) {
  int set_bits[kAbuseCategoryCount];
  int count = 0;
  for (int c = 0; c < kAbuseCategoryCount; ++c) {
    if ((mask >> c) & 1) set_bits[count++] = c;
  }
  if (count == 0) return AbuseCategory::kSpam;
  return static_cast<AbuseCategory>(
      set_bits[rng.uniform(static_cast<std::uint64_t>(count))]);
}

/// (time, source, actor, category): a total order over distinct events, so
/// sorting is insensitive to the generation order AND a time-partition of
/// the stream concatenates back into exactly the full sorted stream —
/// the property stream_abuse's slicing relies on.
bool event_before(const AbuseEvent& a, const AbuseEvent& b) {
  if (a.time_seconds != b.time_seconds) return a.time_seconds < b.time_seconds;
  if (a.source != b.source) return a.source < b.source;
  if (a.actor != b.actor) return a.actor < b.actor;
  return static_cast<int>(a.category) < static_cast<int>(b.category);
}

/// Generation core shared by generate_abuse and stream_abuse: replays every
/// actor's forked RNG substream over the FULL window (episode placement,
/// event times, categories, and lease timelines never depend on the keep
/// range), pushing only events with time in [keep_begin, keep_end). The
/// draws per actor are identical for every keep range, which is what makes
/// slicing exact.
void generate_into(const World& world, const AbuseGenConfig& config,
                   std::int64_t keep_begin, std::int64_t keep_end,
                   std::vector<AbuseEvent>& events) {
  net::Rng rng(config.seed);

  const std::int64_t begin_s = config.window.begin.seconds();
  const std::int64_t span_s = config.window.length().count();
  const auto keep = [&](const AbuseEvent& event) {
    if (event.time_seconds >= keep_begin && event.time_seconds < keep_end) {
      events.push_back(event);
    }
  };

  // Draws an actor's activity episode intersected with the window; returns
  // nullopt when the episode ended before the window began.
  struct Episode {
    std::int64_t begin;
    std::int64_t end;
  };
  auto draw_episode = [&](net::Rng& r, double mean_days) -> std::optional<Episode> {
    const auto length = static_cast<std::int64_t>(
        std::max(3600.0, r.exponential(mean_days * 86400.0)));
    const std::int64_t start =
        begin_s - length +
        static_cast<std::int64_t>(
            r.uniform(static_cast<std::uint64_t>(span_s + length)));
    const std::int64_t lo = std::max(start, begin_s);
    const std::int64_t hi = std::min(start + length, begin_s + span_s);
    if (lo >= hi) return std::nullopt;
    return Episode{lo, hi};
  };
  auto draw_time_in = [&](net::Rng& r, const Episode& episode) {
    return episode.begin +
           static_cast<std::int64_t>(r.uniform(
               static_cast<std::uint64_t>(episode.end - episode.begin)));
  };

  // Malicious servers: fixed source address, active for one campaign.
  for (const MaliciousServer& server : world.malicious_servers()) {
    net::Rng server_rng = rng.fork(server.address.value());
    const auto episode =
        draw_episode(server_rng, config.server_active_mean_days);
    if (!episode) continue;
    const double active_days =
        static_cast<double>(episode->end - episode->begin) / 86400.0;
    const std::uint64_t n =
        server_rng.poisson(config.server_events_per_day * active_days);
    for (std::uint64_t i = 0; i < n; ++i) {
      keep(AbuseEvent{draw_time_in(server_rng, *episode), server.address,
                      pick_category(server_rng, server.abuse_mask), server.asn,
                      0});
    }
  }

  // Infected users: source address depends on the attachment; activity is
  // bounded by the infection episode (until cleanup).
  for (const UserId id : world.infected_users()) {
    const User& user = world.user(id);
    net::Rng user_rng = rng.fork(user.seed);
    const auto episode = draw_episode(user_rng, config.user_active_mean_days);
    if (!episode) continue;
    const double active_days =
        static_cast<double>(episode->end - episode->begin) / 86400.0;
    const std::uint64_t n =
        user_rng.poisson(config.user_events_per_day * active_days);
    if (n == 0) continue;
    if (user.attachment == AttachmentKind::kDynamic) {
      // Adversarial churn: an evading infected subscriber rotates addresses
      // `evasion_lease_factor` times faster than the pool's honest tenants.
      // Factor 1.0 passes no override, so the draws (and the stream) are
      // byte-identical to a world predating the knob.
      const DynamicPoolInfo& pool = world.pool(user.pool_index);
      const double evasion = world.config().evasion_lease_factor;
      const double override_mean =
          evasion > 1.0 ? pool.mean_lease_seconds / evasion : 0.0;
      const LeaseTimeline timeline(pool, user.seed, config.window,
                                   override_mean);
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t when = draw_time_in(user_rng, *episode);
        const auto address = timeline.address_at(net::SimTime(when));
        if (!address) continue;
        keep(AbuseEvent{when, *address,
                        pick_category(user_rng, user.abuse_mask), user.asn,
                        id});
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        keep(AbuseEvent{draw_time_in(user_rng, *episode), user.fixed_address,
                        pick_category(user_rng, user.abuse_mask), user.asn,
                        id});
      }
    }
  }
}

}  // namespace

std::vector<AbuseEvent> generate_abuse(const World& world,
                                       const AbuseGenConfig& config) {
  std::vector<AbuseEvent> events;
  generate_into(world, config, config.window.begin.seconds(),
                config.window.end.seconds(), events);
  std::sort(events.begin(), events.end(), event_before);
  return events;
}

void stream_abuse(const World& world, const AbuseGenConfig& config,
                  std::int64_t chunk_days, const AbuseChunkSink& sink) {
  stream_abuse_range(world, config, chunk_days,
                     config.window.begin.seconds(),
                     config.window.end.seconds(), sink);
}

void stream_abuse_range(const World& world, const AbuseGenConfig& config,
                        std::int64_t chunk_days, std::int64_t keep_begin_s,
                        std::int64_t keep_end_s, const AbuseChunkSink& sink) {
  const std::int64_t begin =
      std::max(keep_begin_s, config.window.begin.seconds());
  const std::int64_t end = std::min(keep_end_s, config.window.end.seconds());
  const std::int64_t chunk_seconds = chunk_days * 86400;
  std::vector<AbuseEvent> chunk;
  for (std::int64_t at = begin; at < end; at += chunk_seconds) {
    // clear() keeps the capacity, so the whole stream allocates the busiest
    // slice once and reuses it.
    chunk.clear();
    generate_into(world, config, at, std::min(end, at + chunk_seconds),
                  chunk);
    std::sort(chunk.begin(), chunk.end(), event_before);
    sink(chunk);
  }
}

}  // namespace reuse::inet
