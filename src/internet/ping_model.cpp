#include "internet/ping_model.h"

#include <cmath>

#include "netbase/rng.h"

namespace reuse::inet {
namespace {

// Stateless mixing of several 64-bit values into one (splitmix finalizer
// chain) — gives an independent uniform draw per (address, salt, slot).
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t state = a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                        (c * 0xc2b2ae3d27d4eb4fULL);
  return net::splitmix64(state);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

double PingModel::unit_hash(net::Ipv4Address address, std::uint64_t salt) const {
  return to_unit(mix(seed_, address.value(), salt));
}

bool PingModel::responds(net::Ipv4Address address, net::SimTime t) const {
  const PrefixRecord* record = world_.prefix_record(address);
  if (record == nullptr || record->role == PrefixRole::kUnused) return false;
  const AsInfo* as_info = world_.find_as(record->asn);
  if (as_info != nullptr && as_info->filters_icmp) return false;

  switch (record->role) {
    case PrefixRole::kServerHosting: {
      // A server exists at this offset with probability density/256; servers
      // answer nearly always.
      const bool exists = unit_hash(address, 1) <
                          static_cast<double>(record->density) / 256.0;
      return exists && unit_hash(address, 2 + static_cast<std::uint64_t>(
                                                  t.seconds() / 3600)) < 0.98;
    }
    case PrefixRole::kStaticResidential: {
      if (!world_.is_static_occupied(address)) return false;
      // 30% of residential hosts are always-on; the rest follow a diurnal
      // duty cycle with a per-host online fraction.
      if (unit_hash(address, 3) < 0.30) return true;
      const double online_fraction = 0.2 + 0.5 * unit_hash(address, 4);
      const double phase = unit_hash(address, 5);
      const double day_position = std::fmod(
          static_cast<double>(t.seconds()) / 86400.0 + phase, 1.0);
      return day_position < online_fraction;
    }
    case PrefixRole::kHomeNatResidential: {
      // The CPE answers pings on behalf of the household — a middlebox reply,
      // one of the census's documented confusions.
      if (!world_.nat_group_fanout(address)) return false;
      return unit_hash(address, 6 + static_cast<std::uint64_t>(
                                        t.seconds() / 3600)) < 0.95;
    }
    case PrefixRole::kCgnPool:
      // The carrier NAT itself replies: looks like a rock-stable host even
      // though dozens of users churn behind it.
      return unit_hash(address, 7 + static_cast<std::uint64_t>(
                                        t.seconds() / 3600)) < 0.99;
    case PrefixRole::kDynamicPool: {
      // The address answers only while leased to an online subscriber. The
      // occupied/idle pattern flips on the pool's lease timescale, which is
      // what gives dynamic blocks their high volatility signature.
      const DynamicPoolInfo& pool = world_.pool(record->pool_index);
      const auto slot = static_cast<std::uint64_t>(
          static_cast<double>(t.seconds()) /
          std::max(60.0, pool.mean_lease_seconds));
      const double occupied =
          world_.config().dynamic_subscription_ratio;
      if (to_unit(mix(seed_ ^ 0xd1eaf, address.value(), slot)) >= occupied) {
        return false;
      }
      // Leaseholder online?
      return to_unit(mix(seed_ ^ 0x0111eULL, address.value(), slot * 31 + 7)) <
             0.7;
    }
    case PrefixRole::kUnused:
      return false;
  }
  return false;
}

}  // namespace reuse::inet
