// Per-subscriber dynamic-address lease timelines.
//
// Only a handful of entities ever need their full address history (Atlas
// probes, infected dynamic users), so timelines are simulated lazily and
// deterministically from (pool, user seed) instead of tracking every
// subscriber of every pool — see DESIGN.md on scaling.
#pragma once

#include <optional>
#include <vector>

#include "internet/types.h"
#include "netbase/ipv4.h"
#include "netbase/rng.h"
#include "netbase/sim_time.h"

namespace reuse::inet {

/// One stretch during which the subscriber held a single address.
struct LeaseSegment {
  net::SimTime begin;
  net::SimTime end;  ///< exclusive
  net::Ipv4Address address;
};

/// A subscriber's piecewise-constant address history over a window.
class LeaseTimeline {
 public:
  /// Simulates the history: segment lengths are exponential around the
  /// pool's mean lease, each expiry reassigns a fresh address from the pool
  /// (never the one just released — pools hand addresses back out to other
  /// subscribers first). `mean_lease_override` (seconds) replaces the
  /// pool's mean when > 0 — the adversarial-evasion path hands infected
  /// subscribers a tightened mean; 0 keeps the pool's and draws the exact
  /// same RNG sequence as before the parameter existed.
  LeaseTimeline(const DynamicPoolInfo& pool, std::uint64_t user_seed,
                net::TimeWindow window, double mean_lease_override = 0.0);

  [[nodiscard]] const std::vector<LeaseSegment>& segments() const {
    return segments_;
  }

  /// The address held at `t`, or nullopt outside the simulated window.
  [[nodiscard]] std::optional<net::Ipv4Address> address_at(net::SimTime t) const;

  /// Distinct addresses held over the window, in first-use order.
  [[nodiscard]] std::vector<net::Ipv4Address> distinct_addresses() const;

  /// Number of address *changes* (segments - 1 when non-empty).
  [[nodiscard]] std::size_t change_count() const {
    return segments_.empty() ? 0 : segments_.size() - 1;
  }

  /// Mean time between consecutive address changes; nullopt with < 2
  /// segments. This is the quantity the paper thresholds at one day.
  [[nodiscard]] std::optional<net::Duration> mean_change_interval() const;

 private:
  std::vector<LeaseSegment> segments_;
};

/// Draws one address uniformly from the pool's prefixes.
[[nodiscard]] net::Ipv4Address draw_pool_address(const DynamicPoolInfo& pool,
                                                 net::Rng& rng);

/// Share of lease grants served from the subscriber's home segment (one /24
/// of the pool, fixed per subscriber). DHCP servers strongly prefer the
/// local segment, which is why a churning Atlas probe sees on the order of
/// a hundred distinct addresses (the paper: 78 per qualifying probe), not
/// the whole pool.
inline constexpr double kHomeSegmentAffinity = 0.75;

}  // namespace reuse::inet
