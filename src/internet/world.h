// The synthetic Internet.
//
// World materialises a population of autonomous systems, /24 prefixes with
// roles, subscribers, NAT groups, dynamic pools, and malicious actors from a
// WorldConfig + seed. It is the common substrate under the DHT, the Atlas
// fleet, the blocklist feeds and the ICMP census, and it answers the
// ground-truth queries the validation suite checks the detectors against.
//
// Generation is population-first: each AS draws a subscriber count and an
// attachment mix, then exactly as many /24s as those subscribers need are
// allocated, plus server/unused space. This keeps the world's size directly
// controlled by the config instead of emerging from per-address coin flips.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "internet/config.h"
#include "internet/types.h"
#include "netbase/address_table.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"
#include "netbase/rng.h"

namespace reuse::inet {

/// A statically addressed malicious server (C2, malware host, snowshoe
/// spammer). These produce the bulk of blocklist mass and are *not* reused
/// addresses — the study quantifies the reused minority around them.
struct MaliciousServer {
  net::Ipv4Address address;
  Asn asn = 0;
  std::uint8_t abuse_mask = 0;
};

/// Per-/24 record stored in the lookup trie.
struct PrefixRecord {
  Asn asn = 0;
  PrefixRole role = PrefixRole::kUnused;
  std::uint32_t pool_index = 0;  ///< valid when role == kDynamicPool
  /// How many of the 256 addresses are assigned/occupied; the ICMP census
  /// model uses this to decide which addresses exist at all.
  std::uint16_t density = 0;
};

class World {
 public:
  explicit World(const WorldConfig& config);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  World(World&&) = default;
  World& operator=(World&&) = default;

  [[nodiscard]] const WorldConfig& config() const { return config_; }

  // --- Topology ------------------------------------------------------------
  [[nodiscard]] const std::vector<AsInfo>& ases() const { return ases_; }
  [[nodiscard]] const AsInfo* find_as(Asn asn) const;
  [[nodiscard]] std::size_t prefix_count() const { return prefix_count_; }

  /// The /24 record covering `address`, or nullptr for unassigned space.
  [[nodiscard]] const PrefixRecord* prefix_record(net::Ipv4Address address) const;
  [[nodiscard]] Asn asn_of(net::Ipv4Address address) const;
  [[nodiscard]] PrefixRole role_of(net::Ipv4Address address) const;

  // --- Population ----------------------------------------------------------
  [[nodiscard]] const std::vector<User>& users() const { return users_; }
  [[nodiscard]] const User& user(UserId id) const { return users_[id - 1]; }
  [[nodiscard]] const std::vector<NatGroup>& nat_groups() const {
    return nat_groups_;
  }
  [[nodiscard]] const std::vector<DynamicPoolInfo>& pools() const {
    return pools_;
  }
  [[nodiscard]] const DynamicPoolInfo& pool(std::uint32_t index) const {
    return pools_[index];
  }
  [[nodiscard]] const std::vector<MaliciousServer>& malicious_servers() const {
    return malicious_servers_;
  }

  /// Ids of users that run BitTorrent (the DHT network's population).
  [[nodiscard]] const std::vector<UserId>& bittorrent_users() const {
    return bittorrent_users_;
  }
  /// Ids of infected users (abuse sources besides malicious servers).
  [[nodiscard]] const std::vector<UserId>& infected_users() const {
    return infected_users_;
  }

  // --- Ground truth --------------------------------------------------------
  /// Number of users *concurrently* sharing `address` (0 for unoccupied or
  /// unassigned space; 1 for a dedicated address; >= 2 behind a shared NAT).
  [[nodiscard]] std::size_t users_behind(net::Ipv4Address address) const;

  /// True iff the address is shared by >= 2 concurrent users.
  [[nodiscard]] bool is_shared_address(net::Ipv4Address address) const {
    return users_behind(address) >= 2;
  }

  /// True iff exactly one dedicated static subscriber occupies the address.
  [[nodiscard]] bool is_static_occupied(net::Ipv4Address address) const {
    return static_table_.contains(address);
  }

  /// The dedicated static subscriber at `address`, or nullopt.
  [[nodiscard]] std::optional<UserId> static_occupant(
      net::Ipv4Address address) const {
    const std::uint32_t index = static_table_.index_of(address);
    if (index == net::AddressTable::kNotFound) return std::nullopt;
    return static_owners_[index];
  }

  /// NAT fan-out at `address` (home NAT or CGN), or nullopt when the address
  /// is not a NAT public address.
  [[nodiscard]] std::optional<std::uint32_t> nat_group_fanout(
      net::Ipv4Address address) const {
    const std::uint32_t index = nat_table_.index_of(address);
    if (index == net::AddressTable::kNotFound) return std::nullopt;
    return nat_fanouts_[index];
  }

  /// The frozen per-address ground-truth tables (occupancy gauges, tests).
  [[nodiscard]] const net::AddressTable& nat_address_table() const {
    return nat_table_;
  }
  [[nodiscard]] const net::AddressTable& static_address_table() const {
    return static_table_;
  }

  /// All /24s belonging to any dynamic pool (reused over time).
  [[nodiscard]] const net::PrefixSet& dynamic_prefixes() const {
    return dynamic_prefixes_;
  }
  /// Dynamic /24s whose pool rotates with mean lease <= 1 day — the
  /// population the paper's pipeline is designed to find.
  [[nodiscard]] const net::PrefixSet& fast_dynamic_prefixes() const {
    return fast_dynamic_prefixes_;
  }

  [[nodiscard]] std::size_t user_count() const { return users_.size(); }

 private:
  void build(net::Rng& rng);
  void build_as(net::Rng& rng, std::size_t as_index, Asn asn, bool hosting_heavy);
  /// Sorts the build-time (address, value) accumulators into the immutable
  /// AddressTable + flat value columns. Called once at the end of build().
  void freeze_tables();
  net::Ipv4Prefix allocate_slash24();
  UserId add_user(User user);

  WorldConfig config_;
  std::vector<AsInfo> ases_;
  std::vector<User> users_;
  std::vector<NatGroup> nat_groups_;
  std::vector<DynamicPoolInfo> pools_;
  std::vector<MaliciousServer> malicious_servers_;
  std::vector<UserId> bittorrent_users_;
  std::vector<UserId> infected_users_;

  net::PrefixTrie<PrefixRecord> prefix_table_;
  std::size_t prefix_count_ = 0;
  /// Concurrent-sharing fan-out for NAT public addresses: SoA ground truth,
  /// nat_fanouts_[nat_table_.index_of(a)]. Each public address is allocated
  /// exactly once during build, so the accumulators below are duplicate-free.
  net::AddressTable nat_table_;
  std::vector<std::uint32_t> nat_fanouts_;
  /// Addresses occupied by exactly one dedicated (static) user.
  net::AddressTable static_table_;
  std::vector<UserId> static_owners_;
  /// Build-time accumulators, frozen and released by freeze_tables().
  std::vector<std::pair<std::uint32_t, std::uint32_t>> nat_accumulator_;
  std::vector<std::pair<std::uint32_t, UserId>> static_accumulator_;
  net::PrefixSet dynamic_prefixes_;
  net::PrefixSet fast_dynamic_prefixes_;

  std::uint32_t next_slash24_ = 1 << 16;  ///< starts at 1.0.0.0
};

}  // namespace reuse::inet
