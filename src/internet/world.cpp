#include "internet/world.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netbase/metrics.h"

namespace reuse::inet {
namespace {

constexpr double kSecondsPerDay = 86400.0;

// Draws an abuse-category bitmask: one mandatory category plus a second with
// moderate probability. `weights` indexes AbuseCategory.
std::uint8_t draw_abuse_mask(net::Rng& rng, std::span<const double> weights) {
  std::uint8_t mask = 0;
  mask |= static_cast<std::uint8_t>(1u << rng.weighted_index(weights));
  if (rng.bernoulli(0.35)) {
    mask |= static_cast<std::uint8_t>(1u << rng.weighted_index(weights));
  }
  return mask;
}

constexpr double kUserAbuseWeights[kAbuseCategoryCount] = {
    0.50, 0.09, 0.20, 0.02, 0.19};  // spam, ddos, bruteforce, malware, scan
// Malware *hosting* is a server phenomenon; infected end hosts mostly spam,
// scan and brute-force, which keeps malware-focused lists clear of NATed
// residential addresses (as the paper's per-list counts show).
constexpr double kServerAbuseWeights[kAbuseCategoryCount] = {
    0.30, 0.10, 0.15, 0.30, 0.15};

}  // namespace

World::World(const WorldConfig& config) : config_(config) {
  net::Rng rng(config_.seed);
  build(rng);
}

void World::build(net::Rng& rng) {
  ases_.reserve(config_.as_count);
  for (std::size_t i = 0; i < config_.as_count; ++i) {
    // ASNs are synthetic but unique; index 0 is the flagship eyeball carrier
    // (the paper's AS4134 analogue: most blocklisted addresses, both large
    // hosting presence and a huge subscriber base).
    const Asn asn = i == 0 ? 4134 : static_cast<Asn>(101 + i * 37);
    const bool hosting_heavy =
        i != 0 && rng.bernoulli(0.15);  // data-centre / bulletproof hosting
    build_as(rng, i, asn, hosting_heavy);
  }
  freeze_tables();
}

void World::freeze_tables() {
  std::sort(nat_accumulator_.begin(), nat_accumulator_.end());
  std::vector<std::uint32_t> nat_addresses;
  nat_addresses.reserve(nat_accumulator_.size());
  nat_fanouts_.reserve(nat_accumulator_.size());
  for (const auto& [address, fanout] : nat_accumulator_) {
    nat_addresses.push_back(address);
    nat_fanouts_.push_back(fanout);
  }
  nat_table_ = net::AddressTable::from_sorted_unique(std::move(nat_addresses));

  std::sort(static_accumulator_.begin(), static_accumulator_.end());
  std::vector<std::uint32_t> static_addresses;
  static_addresses.reserve(static_accumulator_.size());
  static_owners_.reserve(static_accumulator_.size());
  for (const auto& [address, owner] : static_accumulator_) {
    static_addresses.push_back(address);
    static_owners_.push_back(owner);
  }
  static_table_ =
      net::AddressTable::from_sorted_unique(std::move(static_addresses));

  nat_accumulator_ = {};
  static_accumulator_ = {};

  // Deterministic occupancy gauges (same values for every jobs setting, so
  // they are safe to publish at build time, unlike the RSS gauges which are
  // sampled only at manifest time).
  net::metrics::gauge("world_nat_table_entries",
                      "public addresses in the NAT fan-out table")
      .set(static_cast<std::int64_t>(nat_table_.size()));
  net::metrics::gauge("world_static_table_entries",
                      "occupied static-residential addresses in the owner "
                      "table")
      .set(static_cast<std::int64_t>(static_table_.size()));
  net::metrics::gauge("world_address_table_bytes",
                      "memory held by the world's address tables and their "
                      "parallel value columns")
      .set(static_cast<std::int64_t>(
          nat_table_.memory_bytes() + static_table_.memory_bytes() +
          nat_fanouts_.capacity() * sizeof(std::uint32_t) +
          static_owners_.capacity() * sizeof(UserId)));
}

void World::build_as(net::Rng& rng, std::size_t as_index, Asn asn,
                     bool hosting_heavy) {
  AsInfo info;
  info.asn = asn;
  info.name = as_index == 0 ? "SynthTel Backbone (AS4134 analogue)"
                            : (hosting_heavy ? "HostingAS" : "AS") +
                                  std::to_string(asn);
  info.filters_icmp = rng.bernoulli(config_.icmp_filtered_as_fraction);
  info.bt_adoption =
      rng.bernoulli(config_.bt_blocked_as_fraction)
          ? 0.0
          : rng.uniform_real(config_.bt_adoption_min, config_.bt_adoption_max);

  // --- Subscriber population ----------------------------------------------
  std::size_t subscribers;
  if (as_index == 0) {
    subscribers = 30000;  // flagship carrier
  } else if (hosting_heavy) {
    subscribers = static_cast<std::size_t>(rng.uniform_int(10, 120));
  } else {
    subscribers = static_cast<std::size_t>(
        std::min(30000.0, rng.pareto(40.0, 1.05)));
  }

  const bool has_cgn = as_index == 0 || rng.bernoulli(config_.cgn_as_fraction);
  const bool has_dyn =
      as_index == 0 || rng.bernoulli(config_.dynamic_as_fraction);

  double f_cgn = has_cgn && !hosting_heavy ? rng.uniform_real(0.05, 0.22) : 0.0;
  double f_dyn = has_dyn && !hosting_heavy ? rng.uniform_real(0.2, 0.6) : 0.0;
  if (f_cgn + f_dyn > 0.85) {  // keep some directly addressed users
    const double scale = 0.85 / (f_cgn + f_dyn);
    f_cgn *= scale;
    f_dyn *= scale;
  }
  const double rest = 1.0 - f_cgn - f_dyn;
  const double f_homenat = rest * rng.uniform_real(0.4, 0.75);

  auto n_cgn = static_cast<std::size_t>(subscribers * f_cgn);
  if (n_cgn == 1) n_cgn = 0;  // a carrier NAT with one subscriber is not one
  const auto n_dyn = static_cast<std::size_t>(subscribers * f_dyn);
  const auto n_home = static_cast<std::size_t>(subscribers * f_homenat);
  const std::size_t n_static = subscribers - n_cgn - n_dyn - n_home;

  auto make_user = [&](AttachmentKind kind) {
    User user;
    user.asn = asn;
    user.attachment = kind;
    user.seed = rng();
    user.uses_bittorrent = rng.bernoulli(info.bt_adoption);
    const double infection_rate = user.uses_bittorrent
                                      ? config_.infection_rate_p2p
                                      : config_.infection_rate_base;
    user.infected = rng.bernoulli(infection_rate);
    if (user.infected) user.abuse_mask = draw_abuse_mask(rng, kUserAbuseWeights);
    return user;
  };

  // --- Static residential ---------------------------------------------------
  {
    const auto per_prefix = static_cast<std::size_t>(
        std::max(1.0, std::round(256.0 * config_.static_occupancy)));
    std::size_t remaining = n_static;
    while (remaining > 0) {
      const net::Ipv4Prefix prefix = allocate_slash24();
      info.prefixes.push_back(prefix);
      info.roles.push_back(PrefixRole::kStaticResidential);
      const std::size_t here = std::min(remaining, per_prefix);
      prefix_table_.insert(
          prefix, PrefixRecord{asn, PrefixRole::kStaticResidential, 0,
                               static_cast<std::uint16_t>(here)});
      for (const std::size_t offset : rng.sample_indices(256, here)) {
        User user = make_user(AttachmentKind::kStatic);
        user.fixed_address = prefix.address_at(offset);
        const UserId id = add_user(std::move(user));
        static_accumulator_.emplace_back(prefix.address_at(offset).value(), id);
      }
      remaining -= here;
    }
  }

  // --- Home NAT residential -------------------------------------------------
  {
    const auto addrs_per_prefix = static_cast<std::size_t>(
        std::max(1.0, std::round(256.0 * config_.home_nat_occupancy)));
    std::size_t remaining = n_home;
    std::vector<std::size_t> offsets;
    std::size_t used_in_prefix = addrs_per_prefix;  // force allocation first
    net::Ipv4Prefix prefix;
    while (remaining > 0) {
      if (used_in_prefix >= addrs_per_prefix) {
        prefix = allocate_slash24();
        info.prefixes.push_back(prefix);
        info.roles.push_back(PrefixRole::kHomeNatResidential);
        prefix_table_.insert(
            prefix, PrefixRecord{asn, PrefixRole::kHomeNatResidential, 0,
                                 static_cast<std::uint16_t>(addrs_per_prefix)});
        offsets = rng.sample_indices(256, addrs_per_prefix);
        used_in_prefix = 0;
      }
      // Household size: 1 + geometric, truncated; most homes have one or two
      // concurrently active devices.
      std::size_t household =
          1 + std::min<std::size_t>(
                  rng.geometric(1.0 - config_.home_nat_extra_member_p), 7);
      household = std::min(household, remaining);
      NatGroup group;
      group.public_address = prefix.address_at(offsets[used_in_prefix]);
      group.asn = asn;
      group.carrier_grade = false;
      bool first_uses_bt = false;
      for (std::size_t m = 0; m < household; ++m) {
        User user = make_user(AttachmentKind::kHomeNat);
        // BitTorrent usage clusters within households: once one member runs
        // a client the others are far likelier to as well (shared media
        // habits). This is what makes two-user home NATs detectable at all.
        if (m == 0) {
          first_uses_bt = user.uses_bittorrent;
        } else if (first_uses_bt && !user.uses_bittorrent) {
          user.uses_bittorrent =
              rng.bernoulli(std::min(0.75, info.bt_adoption * 3.0));
        }
        user.fixed_address = group.public_address;
        group.members.push_back(add_user(std::move(user)));
      }
      nat_accumulator_.emplace_back(
          group.public_address.value(),
          static_cast<std::uint32_t>(group.members.size()));
      nat_groups_.push_back(std::move(group));
      ++used_in_prefix;
      remaining -= household;
    }
  }

  // --- Carrier-grade NAT ------------------------------------------------------
  {
    std::size_t remaining = n_cgn;
    std::size_t used_in_prefix = 256;
    net::Ipv4Prefix prefix;
    while (remaining > 0) {
      if (used_in_prefix >= 256) {
        prefix = allocate_slash24();
        info.prefixes.push_back(prefix);
        info.roles.push_back(PrefixRole::kCgnPool);
        prefix_table_.insert(
            prefix, PrefixRecord{asn, PrefixRole::kCgnPool, 0, 256});
        used_in_prefix = 0;
      }
      // Fan-out behind one CGN public address: Pareto tail so a small share
      // of addresses front dozens of subscribers (paper max: 78).
      auto fanout = static_cast<std::size_t>(
          std::round(rng.pareto(config_.cgn_users_min, config_.cgn_users_alpha)));
      fanout = std::clamp<std::size_t>(fanout, 2, config_.cgn_users_cap);
      fanout = std::min(fanout, remaining);
      // Never leave a lone subscriber for the next round: a carrier group
      // has at least two members by definition.
      if (remaining - fanout == 1) ++fanout;
      NatGroup group;
      group.public_address = prefix.address_at(used_in_prefix);
      group.asn = asn;
      group.carrier_grade = true;
      for (std::size_t m = 0; m < fanout; ++m) {
        User user = make_user(AttachmentKind::kCgn);
        user.fixed_address = group.public_address;
        group.members.push_back(add_user(std::move(user)));
      }
      nat_accumulator_.emplace_back(
          group.public_address.value(),
          static_cast<std::uint32_t>(group.members.size()));
      nat_groups_.push_back(std::move(group));
      ++used_in_prefix;
      remaining -= fanout;
    }
  }

  // --- Dynamic pools ----------------------------------------------------------
  if (n_dyn > 0) {
    // Pool count grows with the deployment: a large ISP runs several regional
    // pools (which, with the stratified lease draw below, always span the
    // fast-to-slow spectrum); a small one runs a single pool.
    const std::size_t pool_count = std::clamp<std::size_t>(
        n_dyn / 256 + rng.uniform(2), 1, config_.max_pools_per_as);
    std::size_t assigned = 0;
    for (std::size_t p = 0; p < pool_count; ++p) {
      const std::size_t share = p + 1 == pool_count
                                    ? n_dyn - assigned
                                    : n_dyn / pool_count;
      assigned += share;
      if (share == 0) continue;
      DynamicPoolInfo pool;
      pool.asn = asn;
      pool.index = static_cast<std::uint32_t>(pools_.size());
      // Mean lease is log-uniform across pools: some rotate every few hours,
      // others effectively never during the study. Sampling is stratified
      // over an AS's pools so a multi-pool ISP spans the whole range (and
      // small worlds don't randomly lose all their fast pools).
      const double stratum =
          (static_cast<double>(p) + rng.uniform_real()) /
          static_cast<double>(pool_count);
      pool.mean_lease_seconds =
          std::exp(std::log(config_.min_mean_lease_seconds) +
                   stratum * (std::log(config_.max_mean_lease_seconds) -
                              std::log(config_.min_mean_lease_seconds)));
      const auto pool_addresses = static_cast<std::size_t>(std::ceil(
          static_cast<double>(share) / config_.dynamic_subscription_ratio));
      const std::size_t prefixes_needed =
          (pool_addresses + 255) / 256;
      for (std::size_t q = 0; q < prefixes_needed; ++q) {
        const net::Ipv4Prefix prefix = allocate_slash24();
        info.prefixes.push_back(prefix);
        info.roles.push_back(PrefixRole::kDynamicPool);
        info.pool_indices.push_back(pool.index);
        prefix_table_.insert(
            prefix,
            PrefixRecord{asn, PrefixRole::kDynamicPool, pool.index,
                         static_cast<std::uint16_t>(
                             256.0 * config_.dynamic_subscription_ratio)});
        pool.prefixes.push_back(prefix);
        dynamic_prefixes_.insert(prefix);
        if (pool.mean_lease_seconds <= kSecondsPerDay) {
          fast_dynamic_prefixes_.insert(prefix);
        }
      }
      for (std::size_t m = 0; m < share; ++m) {
        User user = make_user(AttachmentKind::kDynamic);
        user.pool_index = pool.index;
        pool.subscribers.push_back(add_user(std::move(user)));
      }
      pools_.push_back(std::move(pool));
    }
  }

  // --- Server hosting space -----------------------------------------------
  {
    std::size_t server_prefixes;
    double malicious_fraction;
    if (as_index == 0) {
      server_prefixes = 420;
      malicious_fraction = 0.12;
    } else if (hosting_heavy) {
      server_prefixes = std::clamp<std::size_t>(
          static_cast<std::size_t>(rng.pareto(5.0, 0.9)), 5, 280);
      malicious_fraction = rng.uniform_real(0.03, 0.15);
    } else {
      server_prefixes = rng.uniform(4);  // 0..3
      malicious_fraction = config_.malicious_server_fraction;
    }
    for (std::size_t s = 0; s < server_prefixes; ++s) {
      const net::Ipv4Prefix prefix = allocate_slash24();
      info.prefixes.push_back(prefix);
      info.roles.push_back(PrefixRole::kServerHosting);
      const auto servers_here =
          static_cast<std::size_t>(rng.uniform_int(60, 250));
      prefix_table_.insert(
          prefix, PrefixRecord{asn, PrefixRole::kServerHosting, 0,
                               static_cast<std::uint16_t>(servers_here)});
      for (const std::size_t offset : rng.sample_indices(256, servers_here)) {
        if (rng.bernoulli(malicious_fraction)) {
          malicious_servers_.push_back(
              MaliciousServer{prefix.address_at(offset), asn,
                              draw_abuse_mask(rng, kServerAbuseWeights)});
        }
        // Benign servers carry no state beyond ping responsiveness, which the
        // census models from the prefix role.
      }
    }
  }

  // --- Unused space ---------------------------------------------------------
  {
    const std::size_t unused = rng.uniform(5);
    for (std::size_t u = 0; u < unused; ++u) {
      const net::Ipv4Prefix prefix = allocate_slash24();
      info.prefixes.push_back(prefix);
      info.roles.push_back(PrefixRole::kUnused);
      prefix_table_.insert(prefix,
                           PrefixRecord{asn, PrefixRole::kUnused, 0, 0});
    }
  }

  ases_.push_back(std::move(info));
}

net::Ipv4Prefix World::allocate_slash24() {
  if (next_slash24_ >= (224u << 16)) {  // stop before multicast space
    throw std::runtime_error("World: ran out of IPv4 /24s; shrink the config");
  }
  const net::Ipv4Prefix prefix(net::Ipv4Address(next_slash24_ << 8), 24);
  ++next_slash24_;
  ++prefix_count_;
  return prefix;
}

UserId World::add_user(User user) {
  user.id = static_cast<UserId>(users_.size() + 1);
  const UserId id = user.id;
  if (user.uses_bittorrent) bittorrent_users_.push_back(id);
  if (user.infected) infected_users_.push_back(id);
  users_.push_back(std::move(user));
  return id;
}

const AsInfo* World::find_as(Asn asn) const {
  for (const AsInfo& info : ases_) {
    if (info.asn == asn) return &info;
  }
  return nullptr;
}

const PrefixRecord* World::prefix_record(net::Ipv4Address address) const {
  return prefix_table_.lookup_ptr(address);
}

Asn World::asn_of(net::Ipv4Address address) const {
  const PrefixRecord* record = prefix_record(address);
  return record == nullptr ? 0 : record->asn;
}

PrefixRole World::role_of(net::Ipv4Address address) const {
  const PrefixRecord* record = prefix_record(address);
  return record == nullptr ? PrefixRole::kUnused : record->role;
}

std::size_t World::users_behind(net::Ipv4Address address) const {
  if (const std::optional<std::uint32_t> fanout = nat_group_fanout(address)) {
    return *fanout;
  }
  if (is_static_occupied(address)) return 1;
  switch (role_of(address)) {
    case PrefixRole::kDynamicPool:
      return 1;  // one leaseholder at a time
    case PrefixRole::kServerHosting:
      return 1;  // operator, not an end user; still a single party
    default:
      return 0;
  }
}

}  // namespace reuse::inet
