#include "crawler/sharded.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>
#include <utility>

#include "simnet/event_queue.h"

namespace reuse::crawler {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_millis(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Everything one shard simulation produced, copied out before its event
/// queue and overlay replica die. One slot per shard, written only by the
/// worker that ran the shard and read only after the batch completes — the
/// index-addressed-slot pattern the thread pool's determinism contract
/// relies on.
struct ShardHarvest {
  CrawlStats stats;
  std::unordered_map<net::Ipv4Address, IpEvidence> evidence;
  std::unordered_set<dht::NodeId> node_ids;
  std::size_t dht_peers = 0;
  std::size_t dht_addresses = 0;
  std::uint64_t transport_fault_request_drops = 0;
  std::uint64_t transport_fault_response_drops = 0;
  sim::FaultStats fault_stats;
  double build_millis = 0.0;
  double events_millis = 0.0;
};

ShardHarvest run_shard(const inet::World& world,
                       const ShardedCrawlConfig& config, std::size_t shard) {
  ShardHarvest harvest;
  const auto build_start = Clock::now();

  // One self-contained simulation: queue, overlay replica, faults, crawler.
  // The replica seed is NOT salted — every shard rebuilds the same overlay,
  // modelling one network crawled from K vantage points.
  sim::EventQueue events;
  dht::DhtNetwork network(world, events, config.dht);

  // The burst generator is stateful, so a shared injector would serialize
  // the shards (and make drop decisions depend on shard scheduling). Each
  // shard owns one, over the same episodes, with an independent burst
  // stream; the ledgers are summed at merge time.
  std::optional<sim::FaultInjector> injector;
  if (!config.faults.empty()) {
    sim::FaultPlan plan = config.faults;
    plan.seed ^= 0x9e3779b97f4a7c15ULL * (shard + 1);
    injector.emplace(std::move(plan));
    injector->begin_stage(sim::FaultStage::kCrawl);
    injector->designate_bootstrap(network.bootstrap_endpoint());
    network.transport().attach_faults(&*injector);
  }
  network.schedule_churn(config.window);

  CrawlerConfig crawl_config = config.base;
  crawl_config.partition_count = config.shard_count;
  crawl_config.partition_index = shard;
  // The vantage.h salt: distinct crawler RNG streams per shard.
  crawl_config.seed = config.base.seed ^ (0x9e3779b9ULL * (shard + 1));
  Crawler crawler(network.transport(), events, network.bootstrap_endpoint(),
                  crawl_config);
  crawler.start(config.window);
  harvest.build_millis = elapsed_millis(build_start);

  const auto events_start = Clock::now();
  events.run_until(config.window.end + net::Duration::minutes(10));
  harvest.events_millis = elapsed_millis(events_start);

  harvest.stats = crawler.stats();
  harvest.evidence = crawler.discovered();
  harvest.node_ids = crawler.node_ids();
  harvest.dht_peers = network.peer_count();
  harvest.dht_addresses = network.distinct_addresses();
  harvest.transport_fault_request_drops =
      network.transport().stats().requests_lost_fault;
  harvest.transport_fault_response_drops =
      network.transport().stats().responses_lost_fault;
  if (injector.has_value()) harvest.fault_stats = injector->stats();
  return harvest;
}

void add_stats(CrawlStats& into, const CrawlStats& from) {
  into.get_nodes_sent += from.get_nodes_sent;
  into.get_nodes_responses += from.get_nodes_responses;
  into.pings_sent += from.pings_sent;
  into.ping_responses += from.ping_responses;
  into.endpoints_discovered += from.endpoints_discovered;
  into.endpoints_skipped_restricted += from.endpoints_skipped_restricted;
  into.verification_rounds += from.verification_rounds;
  into.bootstrap_retries += from.bootstrap_retries;
  into.bootstrap_recoveries += from.bootstrap_recoveries;
  into.verification_retries += from.verification_retries;
  into.verification_recoveries += from.verification_recoveries;
}

void add_faults(sim::FaultStats& into, const sim::FaultStats& from) {
  into.burst_request_drops += from.burst_request_drops;
  into.burst_response_drops += from.burst_response_drops;
  into.bootstrap_blackholes += from.bootstrap_blackholes;
  into.feed_snapshots_suppressed += from.feed_snapshots_suppressed;
  into.feeds_corrupted += from.feeds_corrupted;
  into.atlas_records_suppressed += from.atlas_records_suppressed;
}

}  // namespace

ShardedCrawlResult run_sharded_crawl(const inet::World& world,
                                     const ShardedCrawlConfig& config,
                                     net::ThreadPool* pool) {
  const std::size_t shard_count = std::max<std::size_t>(1, config.shard_count);
  ShardedCrawlConfig effective = config;
  effective.shard_count = shard_count;

  // Index-addressed slots; grain 1 because each shard is minutes of work
  // relative to the claim cost, and balance matters more than claim count.
  const auto shards_start = Clock::now();
  std::vector<ShardHarvest> harvests(shard_count);
  net::for_each_index(
      pool, shard_count,
      [&](std::size_t shard) {
        harvests[shard] = run_shard(world, effective, shard);
      },
      /*grain=*/1);
  const double shards_millis = elapsed_millis(shards_start);

  // Harvest in shard-index order; the order only matters for the node_id
  // union's bucket history, but "always index order" is what makes the
  // merged products trivially jobs-independent.
  const auto merge_start = Clock::now();
  ShardedCrawlResult result;
  result.dht_peers = harvests.front().dht_peers;
  result.dht_addresses = harvests.front().dht_addresses;
  std::unordered_set<dht::NodeId> node_ids;
  for (ShardHarvest& harvest : harvests) {
    add_stats(result.stats, harvest.stats);
    add_faults(result.fault_stats, harvest.fault_stats);
    result.transport_fault_request_drops +=
        harvest.transport_fault_request_drops;
    result.transport_fault_response_drops +=
        harvest.transport_fault_response_drops;
    result.build_millis += harvest.build_millis;
    result.events_millis += harvest.events_millis;
    // Partitions are disjoint, so no address appears in two shards and the
    // insert below never collides.
    if (result.evidence.empty()) {
      result.evidence = std::move(harvest.evidence);
    } else {
      result.evidence.insert(
          std::make_move_iterator(harvest.evidence.begin()),
          std::make_move_iterator(harvest.evidence.end()));
    }
    node_ids.insert(harvest.node_ids.begin(), harvest.node_ids.end());
  }
  result.distinct_node_ids = node_ids.size();

  result.nated.reserve(result.evidence.size() / 8);
  for (const auto& [address, evidence] : result.evidence) {
    if (evidence.is_nated()) {
      result.nated.emplace_back(address, evidence.max_concurrent_users);
    }
  }
  std::sort(result.nated.begin(), result.nated.end());
  result.shards_millis = shards_millis;
  result.merge_millis = elapsed_millis(merge_start);
  return result;
}

}  // namespace reuse::crawler
