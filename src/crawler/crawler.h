// The paper's BitTorrent NAT-detection crawler (Section 3.1).
//
// Protocol: starting from the bootstrap node, issue get_nodes in discovery
// order; every reply contributes (IP, port, node_id, version). When an IP
// accumulates two or more ports, verify it by sending bt_ping to *all* known
// ports and counting concurrent responses: >= 2 replies with distinct
// node_ids AND distinct ports mean multiple live BitTorrent clients share
// the address — a NATed (reused) address. A single live reply means the
// extra ports were stale (the client rebound), so the IP is NOT flagged.
//
// Operational constraints reproduced from the paper: after contacting all
// discovered ports of an IP the crawler leaves that IP alone for 20 minutes;
// multi-port IPs are re-pinged every hour (UDP loss compensation and users
// online at different times); outbound traffic is rate-limited; and the
// probed space can be restricted to blocklisted /24s.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/messages.h"
#include "dht/network.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"
#include "netbase/rng.h"
#include "netbase/sim_time.h"
#include "simnet/event_queue.h"

namespace reuse::crawler {

struct CrawlerConfig {
  /// Do not re-contact an IP within this span of finishing a burst to it.
  net::Duration ip_cooldown = net::Duration::minutes(20);
  /// Re-verify every multi-port IP this often.
  net::Duration reping_interval = net::Duration::hours(1);
  /// How long a verification round waits to collect ping replies.
  net::Duration verification_window = net::Duration::seconds(90);
  /// Outbound rate limit, messages per second.
  std::size_t messages_per_second = 400;
  /// get_nodes queries issued per endpoint (distinct random targets reveal
  /// different corners of the peer's routing table).
  std::size_t get_nodes_per_endpoint = 3;
  /// When true, only addresses inside `restrict_to` are contacted.
  bool restricted = false;
  net::PrefixSet restrict_to;
  /// Multi-vantage partitioning: this crawler only contacts addresses whose
  /// hash falls in its partition (see crawler/vantage.h). 1/0 = everything.
  std::size_t partition_count = 1;
  std::size_t partition_index = 0;
  /// Bootstrap watchdog: while no get_nodes response has ever arrived, the
  /// bootstrap is re-queued with exponential backoff (initial delay doubled
  /// each attempt, plus up to 25% jitter) at most this many times. Outages
  /// of the front door otherwise starve the whole crawl.
  std::size_t bootstrap_max_retries = 6;
  net::Duration bootstrap_retry_initial = net::Duration::seconds(30);
  /// A verification round that ends with zero ping replies (the IP was
  /// previously responsive — silence suggests an outage, not absence) is
  /// re-queued at most this many times per address; the hourly re-ping
  /// covers the long tail.
  std::size_t verification_retry_limit = 2;
  std::uint64_t seed = 3;
};

struct CrawlStats {
  std::uint64_t get_nodes_sent = 0;
  std::uint64_t get_nodes_responses = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t ping_responses = 0;
  std::uint64_t endpoints_discovered = 0;
  std::uint64_t endpoints_skipped_restricted = 0;
  std::uint64_t verification_rounds = 0;
  // Degradation accounting (all zero on a healthy crawl):
  std::uint64_t bootstrap_retries = 0;     ///< watchdog re-queues of bootstrap
  std::uint64_t bootstrap_recoveries = 0;  ///< first response after a retry
  std::uint64_t verification_retries = 0;  ///< zero-reply rounds re-queued
  std::uint64_t verification_recoveries = 0;  ///< retried IPs that replied

  [[nodiscard]] double ping_response_rate() const {
    return pings_sent == 0 ? 0.0
                           : static_cast<double>(ping_responses) /
                                 static_cast<double>(pings_sent);
  }
};

/// Everything the crawler learned about one IP address.
struct IpEvidence {
  std::unordered_set<std::uint16_t> ports;          ///< every port ever seen
  std::size_t max_concurrent_users = 0;             ///< best verified lower bound
  std::uint32_t verification_rounds = 0;
  net::SimTime first_seen;
  net::SimTime last_seen;

  /// The paper's NAT criterion: at least two concurrent responders with
  /// distinct node_ids on distinct ports.
  [[nodiscard]] bool is_nated() const { return max_concurrent_users >= 2; }
};

class Crawler {
 public:
  Crawler(dht::DhtNetwork::DhtTransport& transport, sim::EventQueue& events,
          net::Endpoint bootstrap, CrawlerConfig config);

  Crawler(const Crawler&) = delete;
  Crawler& operator=(const Crawler&) = delete;

  /// Schedules the crawl over `window` onto the event queue. The caller then
  /// drives the queue (events.run_until(window.end) or run_all()).
  void start(net::TimeWindow window);

  [[nodiscard]] const CrawlStats& stats() const { return stats_; }

  /// All IPs observed, with their evidence.
  [[nodiscard]] const std::unordered_map<net::Ipv4Address, IpEvidence>&
  discovered() const {
    return evidence_;
  }

  /// Addresses satisfying the NAT criterion, with the verified lower bound
  /// on concurrent users.
  [[nodiscard]] std::vector<std::pair<net::Ipv4Address, std::size_t>> nated()
      const;

  /// Distinct node_ids observed across all replies.
  [[nodiscard]] std::size_t distinct_node_ids() const {
    return node_ids_seen_.size();
  }

  /// The node_ids themselves. The sharded crawl (crawler/sharded.h) needs
  /// the set, not the count: its shards crawl identical overlay replicas,
  /// so per-shard counts overlap and only a union is meaningful.
  [[nodiscard]] const std::unordered_set<dht::NodeId>& node_ids() const {
    return node_ids_seen_;
  }

 private:
  struct PendingGetNodes {
    net::Endpoint endpoint;
    std::size_t remaining_queries;
  };

  /// One bt_ping verification round for an IP: replies collected until the
  /// round closes, then evaluated.
  struct VerificationRound {
    std::unordered_set<std::uint16_t> responding_ports;
    std::unordered_set<dht::NodeId> responding_ids;
  };

  void dispatch_tick();
  void bootstrap_watchdog(net::Duration delay);
  void send_get_nodes(const net::Endpoint& endpoint);
  void on_get_nodes_response(const net::Endpoint& from,
                             const dht::DhtResponse& response);
  void learn_endpoint(const net::Endpoint& endpoint);
  void begin_verification(net::Ipv4Address address);
  void close_verification(net::Ipv4Address address);
  void schedule_reping();
  [[nodiscard]] bool allowed(net::Ipv4Address address) const;
  [[nodiscard]] bool cooled_down(net::Ipv4Address address) const;
  void touch(net::Ipv4Address address);

  dht::DhtNetwork::DhtTransport& transport_;
  sim::EventQueue& events_;
  net::Endpoint bootstrap_;
  CrawlerConfig config_;
  net::Rng rng_;
  /// Backoff jitter comes from its own stream so retries never perturb the
  /// main generator (fault-free runs stay byte-identical).
  net::Rng retry_rng_;
  net::TimeWindow window_{};
  bool running_ = false;
  std::size_t bootstrap_attempts_ = 0;
  bool bootstrap_recovered_ = false;

  std::deque<PendingGetNodes> get_nodes_queue_;
  std::deque<net::Ipv4Address> verify_queue_;
  std::unordered_set<net::Endpoint> seen_endpoints_;
  std::unordered_map<net::Ipv4Address, IpEvidence> evidence_;
  std::unordered_map<net::Ipv4Address, net::SimTime> next_contact_ok_;
  std::unordered_map<net::Ipv4Address, VerificationRound> open_rounds_;
  std::unordered_set<net::Ipv4Address> queued_for_verify_;
  /// Zero-reply re-queues spent per address; reset on a replying round.
  std::unordered_map<net::Ipv4Address, std::uint32_t> verify_retries_;
  std::unordered_set<dht::NodeId> node_ids_seen_;
  CrawlStats stats_;
};

}  // namespace reuse::crawler
