// Multi-vantage crawling (§3.1's suggested improvement).
//
// The paper rate-limits its single crawler to spare its network and notes
// that "we could reduce this burden and have a faster coverage by having the
// crawler at multiple vantage points in different networks". This module
// implements that: K crawlers, each responsible for a hash-partition of the
// IPv4 space (so no address is probed twice and the per-vantage traffic is
// ~1/K), with merged results. The ablation bench measures the coverage/time
// trade-off the paper predicts.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crawler/crawler.h"

namespace reuse::crawler {

struct VantageConfig {
  /// Per-vantage crawler configuration (partition fields are filled in).
  CrawlerConfig base;
  std::size_t vantage_count = 1;
};

/// Aggregated view over all vantages.
struct MergedResults {
  CrawlStats stats;  ///< component-wise sums
  std::unordered_map<net::Ipv4Address, IpEvidence> evidence;
  std::vector<std::pair<net::Ipv4Address, std::size_t>> nated;
  std::size_t distinct_node_ids = 0;  ///< upper bound (per-vantage sums)
};

class MultiVantageCrawler {
 public:
  /// All vantages share one transport (the simulated Internet) and one
  /// event queue; each enters the DHT through the same bootstrap node but
  /// only contacts its own partition.
  MultiVantageCrawler(dht::DhtNetwork::DhtTransport& transport,
                      sim::EventQueue& events, net::Endpoint bootstrap,
                      const VantageConfig& config);

  void start(net::TimeWindow window);

  [[nodiscard]] std::size_t vantage_count() const { return crawlers_.size(); }
  [[nodiscard]] const Crawler& vantage(std::size_t index) const {
    return *crawlers_[index];
  }

  /// Merges evidence across vantages. Partitions are disjoint, so the union
  /// is conflict-free.
  [[nodiscard]] MergedResults merged() const;

 private:
  std::vector<std::unique_ptr<Crawler>> crawlers_;
};

}  // namespace reuse::crawler
