// Sharded crawl execution: the parallel form of the §3.1 crawler.
//
// A DHT crawl is a discrete-event simulation — one event queue, one clock —
// so it cannot be split across threads without breaking determinism. The
// sharded crawl sidesteps that by partitioning the *crawler*, not the
// queue: K independent simulations are built, each with its own event
// queue, its own replica of the DHT overlay (identical by construction:
// same world, same DhtNetworkConfig seed), and a crawler restricted to the
// hash-partition i of K of the IPv4 space (the multi-vantage partitioning
// from crawler/vantage.h). Each shard keeps many bt_ping probes in flight
// inside its own queue exactly as the single crawler does; shards never
// communicate, so they run on pool workers concurrently.
//
// Determinism contract: the shard count is configuration (part of the
// scenario fingerprint), not a function of --jobs. Every jobs value runs
// the *same* K shard simulations — serially on one thread or spread over
// the pool — and the harvest merges per-shard results in shard-index
// order into structures keyed by address (partitions are disjoint, so the
// union is conflict-free). Results are therefore byte-identical for every
// jobs value, including under fault injection: each shard owns a private
// FaultInjector (the burst generator is stateful and single-threaded by
// contract), and the per-shard ledgers are summed into the merged result
// for exact reconciliation against consumer-side counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crawler/crawler.h"
#include "dht/network.h"
#include "internet/world.h"
#include "netbase/thread_pool.h"
#include "simnet/faults.h"

namespace reuse::crawler {

struct ShardedCrawlConfig {
  /// Per-shard crawler configuration. The partition fields and the seed are
  /// overwritten per shard (partition i of shard_count, seed salted by the
  /// shard index as in crawler/vantage.h); everything else applies as-is.
  CrawlerConfig base;
  /// Replica overlay configuration. Every shard uses it verbatim — same
  /// seed — so all replicas evolve identically and shard 0's network-side
  /// numbers (peer/address counts) describe them all.
  dht::DhtNetworkConfig dht;
  /// Crawl window; each shard's queue runs to window.end plus drain slack.
  net::TimeWindow window;
  /// Number of independent shard simulations. Configuration, not a thread
  /// count: every jobs value runs exactly this many shards, so the merged
  /// products are identical whether they ran serially or in parallel.
  std::size_t shard_count = 8;
  /// Fault schedule. Each shard constructs a private injector over these
  /// episodes with the plan seed salted by shard index (independent burst
  /// streams); an empty plan injects nothing.
  sim::FaultPlan faults;
};

/// Index-ordered merge of the per-shard harvests.
struct ShardedCrawlResult {
  CrawlStats stats;  ///< component-wise sums over shards
  /// Disjoint union: shard i only contacts partition-i addresses.
  std::unordered_map<net::Ipv4Address, IpEvidence> evidence;
  /// NATed roster recomputed from the merged evidence, sorted by address
  /// (canonical order independent of shard scheduling).
  std::vector<std::pair<net::Ipv4Address, std::size_t>> nated;
  /// Union of the per-shard node_id sets (replicas host the same peers, so
  /// per-shard counts overlap and must not be summed).
  std::size_t distinct_node_ids = 0;
  std::size_t dht_peers = 0;      ///< shard 0's replica
  std::size_t dht_addresses = 0;  ///< shard 0's replica
  std::uint64_t transport_fault_request_drops = 0;   ///< summed over shards
  std::uint64_t transport_fault_response_drops = 0;  ///< summed over shards
  /// Summed per-shard injector ledgers; reconciles exactly against the
  /// consumer-side counters in `stats` (see analysis/degradation.h).
  sim::FaultStats fault_stats;
  // Sub-stage attribution. build/events are CPU-milliseconds summed across
  // shards: under a pool those scopes overlap in wall-clock, so they
  // describe where the work went, never elapsed time (at jobs=8 their sum
  // exceeds the stage's wall by design). shards/merge are caller-side
  // wall-clock and partition the stage: shards_millis + merge_millis is
  // (within measurement noise) the whole run_sharded_crawl call.
  double shards_millis = 0.0;  ///< wall: the parallel per-shard region
  double build_millis = 0.0;   ///< CPU: replica construction + churn
  double events_millis = 0.0;  ///< CPU: event-queue execution (the crawl)
  double merge_millis = 0.0;   ///< wall: index-ordered harvest merging
};

/// Runs the K shard simulations — on `pool` when given, else serially —
/// and merges their harvests in shard-index order. Byte-identical products
/// for every pool size (see the determinism contract above).
[[nodiscard]] ShardedCrawlResult run_sharded_crawl(
    const inet::World& world, const ShardedCrawlConfig& config,
    net::ThreadPool* pool);

}  // namespace reuse::crawler
