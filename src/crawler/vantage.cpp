#include "crawler/vantage.h"

#include <algorithm>

namespace reuse::crawler {

MultiVantageCrawler::MultiVantageCrawler(
    dht::DhtNetwork::DhtTransport& transport, sim::EventQueue& events,
    net::Endpoint bootstrap, const VantageConfig& config) {
  crawlers_.reserve(config.vantage_count);
  for (std::size_t i = 0; i < config.vantage_count; ++i) {
    CrawlerConfig crawler_config = config.base;
    crawler_config.partition_count = config.vantage_count;
    crawler_config.partition_index = i;
    // Independent seeds, so vantages do not probe in lockstep.
    crawler_config.seed = config.base.seed ^ (0x9e3779b9ULL * (i + 1));
    crawlers_.push_back(std::make_unique<Crawler>(
        transport, events, bootstrap, std::move(crawler_config)));
  }
}

void MultiVantageCrawler::start(net::TimeWindow window) {
  for (const auto& crawler : crawlers_) crawler->start(window);
}

MergedResults MultiVantageCrawler::merged() const {
  MergedResults merged;
  for (const auto& crawler : crawlers_) {
    const CrawlStats& stats = crawler->stats();
    merged.stats.get_nodes_sent += stats.get_nodes_sent;
    merged.stats.get_nodes_responses += stats.get_nodes_responses;
    merged.stats.pings_sent += stats.pings_sent;
    merged.stats.ping_responses += stats.ping_responses;
    merged.stats.endpoints_discovered += stats.endpoints_discovered;
    merged.stats.endpoints_skipped_restricted +=
        stats.endpoints_skipped_restricted;
    merged.stats.verification_rounds += stats.verification_rounds;
    merged.distinct_node_ids += crawler->distinct_node_ids();
    for (const auto& [address, evidence] : crawler->discovered()) {
      // Partitions are disjoint; insert never conflicts.
      merged.evidence.emplace(address, evidence);
    }
    for (const auto& entry : crawler->nated()) {
      merged.nated.push_back(entry);
    }
  }
  std::sort(merged.nated.begin(), merged.nated.end());
  return merged;
}

}  // namespace reuse::crawler
