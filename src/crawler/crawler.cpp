#include "crawler/crawler.h"

#include <algorithm>
#include <array>

namespace reuse::crawler {

Crawler::Crawler(dht::DhtNetwork::DhtTransport& transport,
                 sim::EventQueue& events, net::Endpoint bootstrap,
                 CrawlerConfig config)
    : transport_(transport),
      events_(events),
      bootstrap_(bootstrap),
      config_(std::move(config)),
      rng_(config_.seed),
      retry_rng_(config_.seed ^ 0x8e774aULL) {}

void Crawler::start(net::TimeWindow window) {
  window_ = window;
  events_.schedule_at(window.begin, [this] {
    running_ = true;
    // Seed discovery from the bootstrap node (always allowed, regardless of
    // restriction — it is the crawler's front door).
    get_nodes_queue_.push_back(
        PendingGetNodes{bootstrap_, config_.get_nodes_per_endpoint});
    seen_endpoints_.insert(bootstrap_);
    dispatch_tick();
    schedule_reping();
    events_.schedule_after(config_.bootstrap_retry_initial, [this] {
      bootstrap_watchdog(config_.bootstrap_retry_initial);
    });
  });
  events_.schedule_at(window.end, [this] { running_ = false; });
}

void Crawler::bootstrap_watchdog(net::Duration delay) {
  if (!running_) return;
  // Any get_nodes response ever means discovery is (or was) alive; the
  // watchdog retires and the hourly re-seed takes over from here.
  if (stats_.get_nodes_responses > 0) return;
  if (bootstrap_attempts_ >= config_.bootstrap_max_retries) return;
  ++bootstrap_attempts_;
  ++stats_.bootstrap_retries;
  // The front door overrides its own cooldown: a dark bootstrap would
  // otherwise keep the retry parked for 20 minutes per attempt.
  next_contact_ok_.erase(bootstrap_.address);
  get_nodes_queue_.push_front(
      PendingGetNodes{bootstrap_, config_.get_nodes_per_endpoint});
  const std::int64_t base = delay.count() * 2;
  const net::Duration next(
      base + static_cast<std::int64_t>(retry_rng_.uniform(
                 static_cast<std::uint64_t>(base / 4 + 1))));
  events_.schedule_after(next, [this, next] { bootstrap_watchdog(next); });
}

bool Crawler::allowed(net::Ipv4Address address) const {
  if (address == bootstrap_.address) return true;
  if (config_.partition_count > 1 &&
      std::hash<net::Ipv4Address>{}(address) % config_.partition_count !=
          config_.partition_index) {
    return false;
  }
  if (!config_.restricted) return true;
  return config_.restrict_to.contains_address(address);
}

bool Crawler::cooled_down(net::Ipv4Address address) const {
  const auto it = next_contact_ok_.find(address);
  return it == next_contact_ok_.end() || events_.now() >= it->second;
}

void Crawler::touch(net::Ipv4Address address) {
  next_contact_ok_[address] = events_.now() + config_.ip_cooldown;
}

void Crawler::dispatch_tick() {
  if (!running_) return;
  std::size_t budget = config_.messages_per_second;

  // Verification first: pings are the crawler's purpose; discovery fills the
  // remaining budget.
  std::size_t requeued = 0;
  while (budget > 0 && requeued < verify_queue_.size()) {
    const net::Ipv4Address address = verify_queue_.front();
    verify_queue_.pop_front();
    if (!cooled_down(address)) {
      // Not contactable yet: rotate to the back and remember we cycled.
      verify_queue_.push_back(address);
      ++requeued;
      continue;
    }
    queued_for_verify_.erase(address);
    const std::size_t ports = evidence_[address].ports.size();
    if (ports > budget) {  // cannot burst this IP within the budget; retry
      verify_queue_.push_front(address);
      queued_for_verify_.insert(address);
      break;
    }
    begin_verification(address);
    budget -= ports;
  }

  while (budget > 0 && !get_nodes_queue_.empty()) {
    PendingGetNodes pending = get_nodes_queue_.front();
    get_nodes_queue_.pop_front();
    if (!cooled_down(pending.endpoint.address)) {
      get_nodes_queue_.push_back(pending);
      // Guard against spinning on an all-cooling queue: stop after one pass.
      if (--budget == 0) break;
      if (get_nodes_queue_.front().endpoint == pending.endpoint) break;
      continue;
    }
    send_get_nodes(pending.endpoint);
    touch(pending.endpoint.address);
    --budget;
    if (--pending.remaining_queries > 0) {
      get_nodes_queue_.push_back(pending);
    }
  }

  events_.schedule_after(net::Duration::seconds(1), [this] { dispatch_tick(); });
}

void Crawler::send_get_nodes(const net::Endpoint& endpoint) {
  ++stats_.get_nodes_sent;
  // Random target per query: different corners of the peer's routing table.
  std::array<std::uint32_t, 5> words{};
  for (auto& w : words) w = static_cast<std::uint32_t>(rng_());
  transport_.send_request(
      net::Endpoint{}, endpoint, dht::GetNodesRequest{dht::NodeId(words)},
      [this](const net::Endpoint& from, const dht::DhtResponse& response) {
        on_get_nodes_response(from, response);
      });
}

void Crawler::on_get_nodes_response(const net::Endpoint& from,
                                    const dht::DhtResponse& response) {
  if (stats_.get_nodes_responses == 0 && stats_.bootstrap_retries > 0 &&
      !bootstrap_recovered_) {
    bootstrap_recovered_ = true;
    ++stats_.bootstrap_recoveries;
  }
  ++stats_.get_nodes_responses;
  node_ids_seen_.insert(response.responder_id);
  learn_endpoint(from);
  for (const dht::NodeContact& contact : response.neighbors) {
    if (!allowed(contact.endpoint.address)) {
      ++stats_.endpoints_skipped_restricted;
      continue;
    }
    if (seen_endpoints_.insert(contact.endpoint).second) {
      ++stats_.endpoints_discovered;
      get_nodes_queue_.push_back(
          PendingGetNodes{contact.endpoint, config_.get_nodes_per_endpoint});
      learn_endpoint(contact.endpoint);
    }
  }
}

void Crawler::learn_endpoint(const net::Endpoint& endpoint) {
  // The bootstrap node is infrastructure, not a measured BitTorrent user.
  if (endpoint.address == bootstrap_.address) return;
  if (!allowed(endpoint.address)) return;
  IpEvidence& evidence = evidence_[endpoint.address];
  if (evidence.ports.empty()) evidence.first_seen = events_.now();
  evidence.last_seen = events_.now();
  evidence.ports.insert(endpoint.port);
  // Two ports on one IP: either a NAT or a stale entry — verification will
  // tell them apart.
  if (evidence.ports.size() >= 2 &&
      !queued_for_verify_.contains(endpoint.address) &&
      !open_rounds_.contains(endpoint.address)) {
    verify_queue_.push_back(endpoint.address);
    queued_for_verify_.insert(endpoint.address);
  }
}

void Crawler::begin_verification(net::Ipv4Address address) {
  IpEvidence& evidence = evidence_[address];
  open_rounds_.emplace(address, VerificationRound{});
  ++stats_.verification_rounds;
  ++evidence.verification_rounds;
  for (const std::uint16_t port : evidence.ports) {
    ++stats_.pings_sent;
    transport_.send_request(
        net::Endpoint{}, net::Endpoint{address, port}, dht::BtPingRequest{},
        [this, address](const net::Endpoint& from,
                        const dht::DhtResponse& response) {
          ++stats_.ping_responses;
          node_ids_seen_.insert(response.responder_id);
          const auto it = open_rounds_.find(address);
          if (it == open_rounds_.end()) return;  // reply after round closed
          it->second.responding_ports.insert(from.port);
          it->second.responding_ids.insert(response.responder_id);
        });
  }
  touch(address);
  events_.schedule_after(config_.verification_window,
                         [this, address] { close_verification(address); });
}

void Crawler::close_verification(net::Ipv4Address address) {
  const auto it = open_rounds_.find(address);
  if (it == open_rounds_.end()) return;
  // Concurrent users are counted conservatively: a user answers on one port
  // with one node_id, so the lower bound is the smaller of the two distinct
  // counts (two replies sharing a node_id are one client double-mapped; two
  // replies sharing a port cannot happen within a round).
  const std::size_t concurrent = std::min(it->second.responding_ports.size(),
                                          it->second.responding_ids.size());
  const bool got_replies = !it->second.responding_ports.empty();
  IpEvidence& evidence = evidence_[address];
  evidence.max_concurrent_users =
      std::max(evidence.max_concurrent_users, concurrent);
  open_rounds_.erase(it);

  if (got_replies) {
    if (const auto retried = verify_retries_.find(address);
        retried != verify_retries_.end()) {
      ++stats_.verification_recoveries;
      verify_retries_.erase(retried);
    }
    return;
  }
  // Every known port went silent at once on an address that answered
  // before — an outage pattern, not proof the clients left. Re-queue the
  // round (bounded); the cooldown spaces the retry out naturally.
  if (!running_) return;
  std::uint32_t& retries = verify_retries_[address];
  if (retries >= config_.verification_retry_limit) return;
  ++retries;
  ++stats_.verification_retries;
  if (!queued_for_verify_.contains(address) &&
      !open_rounds_.contains(address)) {
    verify_queue_.push_back(address);
    queued_for_verify_.insert(address);
  }
}

void Crawler::schedule_reping() {
  if (!running_) return;
  events_.schedule_after(config_.reping_interval, [this] {
    if (!running_) return;
    for (const auto& [address, evidence] : evidence_) {
      if (evidence.ports.size() >= 2 && !queued_for_verify_.contains(address) &&
          !open_rounds_.contains(address)) {
        verify_queue_.push_back(address);
        queued_for_verify_.insert(address);
      }
    }
    // Discovery ran dry (every endpoint queried, or the bootstrap replies
    // were all lost): re-seed from the bootstrap, as a continuously running
    // crawler would.
    if (get_nodes_queue_.empty()) {
      get_nodes_queue_.push_back(
          PendingGetNodes{bootstrap_, config_.get_nodes_per_endpoint});
    }
    schedule_reping();
  });
}

std::vector<std::pair<net::Ipv4Address, std::size_t>> Crawler::nated() const {
  std::vector<std::pair<net::Ipv4Address, std::size_t>> out;
  for (const auto& [address, evidence] : evidence_) {
    if (evidence.is_nated()) {
      out.emplace_back(address, evidence.max_concurrent_users);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace reuse::crawler
