#include "sweep/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include "analysis/cache.h"
#include "analysis/greylist.h"
#include "analysis/impact.h"
#include "analysis/manifest.h"
#include "netbase/metrics.h"
#include "netbase/serialize.h"
#include "netbase/stats.h"
#include "netbase/thread_pool.h"
#include "sweep/cache_budget.h"

namespace reuse::sweep {
namespace {

/// One row of the axis table: how a named axis validates and lands on the
/// scenario config. The `days` axis is special-cased in expand_cells (it
/// rewrites the collection periods and the horizon, not a single knob) but
/// still validates through its table row.
struct AxisSpec {
  const char* name;
  const char* domain;  ///< human-readable constraint for error messages
  bool integer;
  double min;
  double max;
  void (*apply)(analysis::ScenarioConfig& config, double value);
};

constexpr double kNoMax = 1e18;

const AxisSpec kAxisTable[] = {
    {"days", "integer >= 1", true, 1, kNoMax,
     // Applied structurally in expand_cells (periods + horizon).
     [](analysis::ScenarioConfig&, double) {}},
    {"seed", "integer >= 0", true, 0, kNoMax,
     [](analysis::ScenarioConfig& c, double v) {
       c.seed = static_cast<std::uint64_t>(v);
     }},
    {"ases", "integer >= 1", true, 1, kNoMax,
     [](analysis::ScenarioConfig& c, double v) {
       c.world.as_count = static_cast<std::size_t>(v);
     }},
    {"probes", "integer >= 1", true, 1, kNoMax,
     [](analysis::ScenarioConfig& c, double v) {
       c.fleet.probe_count = static_cast<std::size_t>(v);
     }},
    {"crawl_days", "integer >= 1", true, 1, kNoMax,
     [](analysis::ScenarioConfig& c, double v) {
       c.crawl_days = static_cast<int>(v);
     }},
    {"cgn_share", "fraction in [0, 1]", false, 0.0, 1.0,
     [](analysis::ScenarioConfig& c, double v) {
       c.world.cgn_as_fraction = v;
     }},
    {"dyn_share", "fraction in [0, 1]", false, 0.0, 1.0,
     [](analysis::ScenarioConfig& c, double v) {
       c.world.dynamic_as_fraction = v;
     }},
    {"evasion", "factor >= 1", false, 1.0, kNoMax,
     [](analysis::ScenarioConfig& c, double v) {
       c.world.evasion_lease_factor = v;
     }},
};

const AxisSpec* find_axis(const std::string& name) {
  for (const AxisSpec& spec : kAxisTable) {
    if (name == spec.name) return &spec;
  }
  return nullptr;
}

/// The sweep's cache file for `config`, inside the sweep's cache dir —
/// same naming scheme as analysis::default_cache_path, but the directory
/// is the sweep's own (so --cache-budget-mb never evicts a foreign
/// bench's cache).
std::string cell_cache_path(const std::string& dir,
                            const analysis::ScenarioConfig& config) {
  char name[80];
  std::snprintf(name, sizeof(name), "reuse_scenario_%llu_%016llx.cache",
                static_cast<unsigned long long>(config.seed),
                static_cast<unsigned long long>(
                    analysis::config_fingerprint(config)));
  return (std::filesystem::path(dir) / name).string();
}

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::string format3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* path_name(CellPath path) {
  switch (path) {
    case CellPath::kFresh: return "fresh";
    case CellPath::kCacheHit: return "cache_hit";
    case CellPath::kResumed: return "resumed";
  }
  return "fresh";
}

/// Joined axis spelling for ids and the report: "days=60,cgn_share=0.2".
std::string joined_axes(
    const std::vector<std::pair<std::string, std::string>>& axis_values) {
  std::string out;
  for (const auto& [name, value] : axis_values) {
    if (!out.empty()) out += ',';
    out += name + "=" + value;
  }
  return out;
}

/// Filesystem-safe spelling of a cell id for per-cell manifest files.
std::string sanitize_for_filename(const std::string& id) {
  std::string out = id;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!keep) c = '_';
  }
  return out;
}

/// Runs one cell's scenario (fresh, cache hit, or resumed from `prev`) and
/// fills the deterministic metrics. Throws on any stage failure — the
/// caller owns fault isolation.
void run_cell(const SweepConfig& sweep, const SweepCell& cell,
              const SweepCell* prev, CellResult& result) {
  const std::string path = cell_cache_path(sweep.cache_dir, cell.config);
  analysis::EvolvePath evolve_path = analysis::EvolvePath::kFreshRun;
  bool evolved_run = false;
  const analysis::CachedScenario s = [&] {
    if (prev != nullptr) {
      // Later cell of a chain: a warm sweep finds the cell's own cache;
      // a cold one resumes the chain's previous cell forward.
      if (analysis::load_scenario_cache(path, cell.config)) {
        return analysis::run_scenario_cached(cell.config, path);
      }
      const std::string prev_path =
          cell_cache_path(sweep.cache_dir, prev->config);
      evolved_run = true;
      analysis::EvolvedScenario evolved = analysis::evolve_scenario_cached(
          prev->config, cell.days - prev->days, prev_path, path);
      evolve_path = evolved.path;
      return std::move(evolved.scenario);
    }
    return analysis::run_scenario_cached(cell.config, path);
  }();

  if (evolved_run) {
    result.path = evolve_path == analysis::EvolvePath::kResumed
                      ? CellPath::kResumed
                      : CellPath::kFresh;
  } else {
    result.path = s.cache_hit ? CellPath::kCacheHit : CellPath::kFresh;
  }

  // Headline Section 5 joins — serial: the sweep parallelizes across
  // chains, so per-cell stages stay single-threaded.
  const analysis::ReuseImpact impact = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.pipeline.dynamic_prefixes, nullptr);
  const auto reused = analysis::build_reused_address_list(
      s.ecosystem.store, s.crawl.nated_set, s.pipeline.dynamic_prefixes);
  const analysis::ListingDurations durations =
      analysis::compute_listing_durations(s.ecosystem.store, s.crawl.nated_set,
                                          s.pipeline.dynamic_prefixes);
  result.blocklisted_addresses = s.ecosystem.store.address_count();
  result.reused_addresses = reused.size();
  result.nated_blocklisted = impact.nated_blocklisted_addresses;
  result.dynamic_blocklisted = impact.dynamic_blocklisted_addresses;
  result.total_listings = impact.total_listings;
  result.nat_users_lower_bound =
      analysis::users_behind_blocklisted_nats(s.ecosystem.store, s.crawl.nated)
          .total();
  if (!durations.all_days.empty()) {
    const net::EmpiricalCdf cdf(durations.all_days);
    result.listing_days_p50 = cdf.quantile(0.5);
    result.listing_days_p90 = cdf.quantile(0.9);
  }

  if (!sweep.manifest_dir.empty()) {
    analysis::RunManifestInfo manifest;
    manifest.tool = "reuse_sweep";
    manifest.config = &s.config;
    manifest.stage_times = &s.stage_times;
    manifest.cache_hit = s.cache_hit;
    manifest.preset = cell.preset;
    manifest.sweep_cell_id = cell.id;
    const std::string file =
        (std::filesystem::path(sweep.manifest_dir) /
         ("manifest_" + sanitize_for_filename(cell.id) + ".json"))
            .string();
    if (const auto error = analysis::write_run_manifest(file, manifest)) {
      throw std::runtime_error("manifest write failed: " + *error);
    }
  }
}

/// FNV-1a over every deterministic cell field, in expansion order. Wall
/// times and cache attribution are deliberately excluded: cold and warm
/// sweeps of the same matrix must agree.
std::uint64_t fingerprint_report(const std::vector<CellResult>& cells) {
  std::ostringstream buffer;
  net::BinaryWriter w(buffer);
  w.write(static_cast<std::uint64_t>(cells.size()));
  for (const CellResult& cell : cells) {
    w.write(cell.id);
    w.write(cell.preset);
    w.write_sequence(cell.axis_values, [](net::BinaryWriter& writer,
                                          const auto& pair) {
      writer.write(pair.first);
      writer.write(pair.second);
    });
    w.write(cell.config_fingerprint);
    w.write(static_cast<std::uint8_t>(cell.failed));
    w.write(cell.blocklisted_addresses);
    w.write(cell.reused_addresses);
    w.write(cell.nated_blocklisted);
    w.write(cell.dynamic_blocklisted);
    w.write(cell.total_listings);
    w.write(cell.nat_users_lower_bound);
    w.write(cell.listing_days_p50);
    w.write(cell.listing_days_p90);
  }
  return net::fnv1a_64(buffer.str());
}

}  // namespace

std::string axis_names() {
  std::string out;
  for (const AxisSpec& spec : kAxisTable) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

std::optional<SweepAxis> parse_axis(const std::string& text,
                                    std::string* error) {
  const auto set_error = [&](const std::string& message) {
    if (error != nullptr) *error = message;
  };
  const auto equals = text.find('=');
  if (equals == std::string::npos || equals == 0) {
    set_error("axis must be <name>=<v1>[,<v2>...], got \"" + text + "\"");
    return std::nullopt;
  }
  SweepAxis axis;
  axis.name = text.substr(0, equals);
  const AxisSpec* spec = find_axis(axis.name);
  if (spec == nullptr) {
    set_error("unknown axis \"" + axis.name + "\" (valid: " + axis_names() +
              ")");
    return std::nullopt;
  }
  std::string values = text.substr(equals + 1);
  std::istringstream stream(values);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    double number = 0.0;
    std::size_t consumed = 0;
    try {
      number = std::stod(item, &consumed);
    } catch (...) {
      consumed = 0;
    }
    if (consumed != item.size()) {
      set_error("axis " + axis.name + ": \"" + item + "\" is not a number");
      return std::nullopt;
    }
    if (spec->integer && number != static_cast<double>(static_cast<std::int64_t>(number))) {
      set_error("axis " + axis.name + ": \"" + item + "\" must be an integer");
      return std::nullopt;
    }
    if (number < spec->min || number > spec->max) {
      set_error("axis " + axis.name + ": " + item + " outside its domain (" +
                spec->domain + ")");
      return std::nullopt;
    }
    if (std::find(axis.numbers.begin(), axis.numbers.end(), number) !=
        axis.numbers.end()) {
      set_error("axis " + axis.name + ": duplicate value " + item);
      return std::nullopt;
    }
    axis.raw_values.push_back(item);
    axis.numbers.push_back(number);
  }
  if (axis.raw_values.empty()) {
    set_error("axis " + axis.name + " has no values");
    return std::nullopt;
  }
  return axis;
}

std::vector<SweepCell> expand_cells(const SweepConfig& config) {
  std::vector<SweepCell> cells;
  if (config.presets.empty()) return cells;

  // Row-major odometer over the axes (last axis fastest), preset-major.
  std::size_t combos = 1;
  for (const SweepAxis& axis : config.axes) combos *= axis.raw_values.size();

  for (const analysis::ScenarioPreset* preset : config.presets) {
    for (std::size_t combo = 0; combo < combos; ++combo) {
      SweepCell cell;
      cell.preset = preset->name;
      cell.config = config.base;
      preset->apply(cell.config);

      // Decode the odometer into one value index per axis.
      std::size_t remainder = combo;
      std::vector<std::size_t> pick(config.axes.size(), 0);
      for (std::size_t i = config.axes.size(); i-- > 0;) {
        pick[i] = remainder % config.axes[i].raw_values.size();
        remainder /= config.axes[i].raw_values.size();
      }

      std::string chain_axes;  // non-days axis spellings, for the chain key
      for (std::size_t i = 0; i < config.axes.size(); ++i) {
        const SweepAxis& axis = config.axes[i];
        const double value = axis.numbers[pick[i]];
        cell.axis_values.emplace_back(axis.name, axis.raw_values[pick[i]]);
        if (axis.name == "days") {
          cell.days = static_cast<int>(value);
          continue;
        }
        find_axis(axis.name)->apply(cell.config, value);
        chain_axes += "," + axis.name + "=" + axis.raw_values[pick[i]];
      }

      if (cell.days > 0) {
        cell.config.ecosystem.periods = {net::TimeWindow{
            net::SimTime(0),
            net::SimTime(static_cast<std::int64_t>(cell.days) * 86400)}};
      }
      cell.id = cell.preset;
      const std::string axes = joined_axes(cell.axis_values);
      if (!axes.empty()) cell.id += "/" + axes;
      cell.chain_key = cell.preset + chain_axes;
      // Scenario stages stay serial inside a cell; the sweep parallelizes
      // across chains (and `jobs` is outside the fingerprint anyway).
      cell.config.jobs = 1;
      cells.push_back(std::move(cell));
    }
  }

  // Chains: cells differing only in `days` share every other knob, so a
  // longer cell's products can be resumed from a shorter one's cache. For
  // resume-equals-fresh every cell of the chain must resolve to the SAME
  // abuse horizon — the chain's maximum days — declared up front.
  std::map<std::string, int> chain_max_days;
  for (const SweepCell& cell : cells) {
    auto [it, inserted] = chain_max_days.emplace(cell.chain_key, cell.days);
    if (!inserted) it->second = std::max(it->second, cell.days);
  }
  for (SweepCell& cell : cells) {
    if (cell.days > 0) cell.config.horizon_days = chain_max_days[cell.chain_key];
    cell.config.finalize();
  }
  return cells;
}

SweepReport run_sweep(const SweepConfig& config) {
  SweepReport report;
  std::vector<SweepCell> cells = expand_cells(config);
  report.cells.resize(cells.size());

  std::error_code ec;
  std::filesystem::create_directories(config.cache_dir, ec);
  if (!config.manifest_dir.empty()) {
    std::filesystem::create_directories(config.manifest_dir, ec);
  }

  // Chains in deterministic order (std::map keys), members in expansion
  // order; within a chain `days` ascends with the expansion order because
  // axis values were given ascending or not — so sort members by days,
  // ties by expansion index, to make resume direction explicit.
  std::map<std::string, std::vector<std::size_t>> chain_members;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    chain_members[cells[i].chain_key].push_back(i);
  }
  std::vector<std::vector<std::size_t>> chains;
  chains.reserve(chain_members.size());
  for (auto& [key, members] : chain_members) {
    std::sort(members.begin(), members.end(),
              [&](std::size_t a, std::size_t b) {
                if (cells[a].days != cells[b].days)
                  return cells[a].days < cells[b].days;
                return a < b;
              });
    chains.push_back(std::move(members));
  }

  const std::unique_ptr<net::ThreadPool> pool =
      analysis::make_scenario_pool(config.jobs);
  net::for_each_index(
      pool.get(), chains.size(),
      [&](std::size_t chain_index) {
        const std::vector<std::size_t>& chain = chains[chain_index];
        const SweepCell* prev_ok = nullptr;  // last successful cell
        for (const std::size_t cell_index : chain) {
          const SweepCell& cell = cells[cell_index];
          CellResult& result = report.cells[cell_index];
          result.id = cell.id;
          result.preset = cell.preset;
          result.axis_values = cell.axis_values;
          result.config_fingerprint =
              analysis::config_fingerprint(cell.config);
          const auto start = std::chrono::steady_clock::now();
          try {
            if (static_cast<int>(cell_index) == config.inject_fail_cell) {
              throw std::runtime_error("injected cell failure (--inject-fail)");
            }
            run_cell(config, cell, prev_ok, result);
            prev_ok = &cell;
          } catch (const std::exception& e) {
            // Fault isolation: the cell reports its error and the chain
            // carries on — the next cell resumes from the last GOOD cell
            // (or runs fresh when the chain head failed).
            result.failed = true;
            result.error = e.what();
          }
          result.wall_millis =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count();
        }
      },
      /*grain=*/1);

  for (const CellResult& cell : report.cells) {
    if (cell.failed) {
      ++report.cells_failed;
      continue;
    }
    switch (cell.path) {
      case CellPath::kFresh: ++report.fresh; break;
      case CellPath::kCacheHit: ++report.cache_hits; break;
      case CellPath::kResumed: ++report.resumed; break;
    }
  }
  report.report_fingerprint = fingerprint_report(report.cells);

  // Cache housekeeping: account the directory, and evict beyond the budget
  // (oldest first) while protecting this sweep's own cells.
  std::vector<std::string> active;
  active.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    active.push_back(cell_cache_path(config.cache_dir, cell.config));
  }
  const CacheBudgetReport budget = enforce_cache_budget(
      config.cache_dir, config.cache_budget_bytes, active);
  report.cache_dir_bytes = budget.dir_bytes_after;
  report.cache_bytes_evicted = budget.bytes_evicted;
  report.cache_files_evicted = budget.files_evicted;

  auto& registry = net::metrics::Registry::global();
  registry.counter("sweep_cells_total", "sweep cells executed")
      .add(report.cells.size());
  registry.counter("sweep_cells_failed", "sweep cells that threw").add(report.cells_failed);
  registry.counter("sweep_cells_cache_hits", "cells restored from their own cache")
      .add(report.cache_hits);
  registry.counter("sweep_cells_resumed", "cells evolved from a shorter cached base")
      .add(report.resumed);
  registry.gauge("sweep_cache_dir_bytes", "cache dir size after the sweep")
      .set(report.cache_dir_bytes);
  registry.counter("sweep_cache_bytes_evicted", "bytes evicted by --cache-budget-mb")
      .add(static_cast<std::uint64_t>(report.cache_bytes_evicted));
  registry.counter("sweep_cache_files_evicted", "files evicted by --cache-budget-mb")
      .add(report.cache_files_evicted);
  return report;
}

std::string render_report_markdown(const SweepReport& report) {
  std::ostringstream out;
  out << "# Sweep report\n\n";
  out << "cells: " << report.cells.size() << ", failed: " << report.cells_failed
      << "\n\n";
  out << "| cell | fingerprint | blocklisted | reused | reused vs baseline | "
         "NATed | dynamic | NAT users | p50 days | p90 days | status |\n";
  out << "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---|\n";
  const CellResult* baseline =
      report.cells.empty() || report.cells.front().failed
          ? nullptr
          : &report.cells.front();
  for (const CellResult& cell : report.cells) {
    out << "| " << cell.id << " | `" << hex16(cell.config_fingerprint)
        << "` | ";
    if (cell.failed) {
      out << "— | — | — | — | — | — | — | — | failed: "
          << cell.error << " |\n";
      continue;
    }
    out << cell.blocklisted_addresses << " | " << cell.reused_addresses
        << " | ";
    if (baseline != nullptr && baseline->reused_addresses > 0) {
      out << format3(static_cast<double>(cell.reused_addresses) /
                     static_cast<double>(baseline->reused_addresses));
    } else {
      out << "—";
    }
    out << " | " << cell.nated_blocklisted << " | " << cell.dynamic_blocklisted
        << " | " << cell.nat_users_lower_bound << " | "
        << format3(cell.listing_days_p50) << " | "
        << format3(cell.listing_days_p90) << " | ok |\n";
  }
  return out.str();
}

std::string render_report_json(const SweepReport& report) {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n";
  out << "  \"report_fingerprint\": \"" << hex16(report.report_fingerprint)
      << "\",\n";
  out << "  \"cells_total\": " << report.cells.size() << ",\n";
  out << "  \"cells_failed\": " << report.cells_failed << ",\n";
  out << "  \"cells_fresh\": " << report.fresh << ",\n";
  out << "  \"cells_cache_hit\": " << report.cache_hits << ",\n";
  out << "  \"cells_resumed\": " << report.resumed << ",\n";
  out << "  \"cache_dir_bytes\": " << report.cache_dir_bytes << ",\n";
  out << "  \"cache_bytes_evicted\": " << report.cache_bytes_evicted << ",\n";
  out << "  \"cache_files_evicted\": " << report.cache_files_evicted << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellResult& cell = report.cells[i];
    out << "    {\"id\": \"" << json_escape(cell.id) << "\", \"preset\": \""
        << json_escape(cell.preset) << "\", \"axes\": {";
    for (std::size_t a = 0; a < cell.axis_values.size(); ++a) {
      out << (a == 0 ? "" : ", ") << "\""
          << json_escape(cell.axis_values[a].first) << "\": \""
          << json_escape(cell.axis_values[a].second) << "\"";
    }
    out << "}, \"config_fingerprint\": \"" << hex16(cell.config_fingerprint)
        << "\", \"failed\": " << (cell.failed ? "true" : "false");
    if (cell.failed) {
      out << ", \"error\": \"" << json_escape(cell.error) << "\"";
    } else {
      out << ", \"blocklisted_addresses\": " << cell.blocklisted_addresses
          << ", \"reused_addresses\": " << cell.reused_addresses
          << ", \"nated_blocklisted\": " << cell.nated_blocklisted
          << ", \"dynamic_blocklisted\": " << cell.dynamic_blocklisted
          << ", \"total_listings\": " << cell.total_listings
          << ", \"nat_users_lower_bound\": " << cell.nat_users_lower_bound
          << ", \"listing_days_p50\": " << format3(cell.listing_days_p50)
          << ", \"listing_days_p90\": " << format3(cell.listing_days_p90);
    }
    out << ", \"path\": \"" << path_name(cell.path)
        << "\", \"wall_millis\": " << cell.wall_millis << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace reuse::sweep
