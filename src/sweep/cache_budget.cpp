#include "sweep/cache_budget.h"

#include <algorithm>
#include <filesystem>
#include <unordered_set>

namespace reuse::sweep {

namespace fs = std::filesystem;

CacheBudgetReport enforce_cache_budget(
    const std::string& dir, std::int64_t budget_bytes,
    const std::vector<std::string>& active_paths) {
  CacheBudgetReport report;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return report;

  // Normalize the active set to absolute lexical paths so relative and
  // absolute spellings of the same file compare equal.
  std::unordered_set<std::string> active;
  active.reserve(active_paths.size());
  for (const std::string& path : active_paths) {
    active.insert(fs::absolute(path, ec).lexically_normal().string());
  }

  struct Entry {
    fs::path path;
    std::int64_t bytes = 0;
    fs::file_time_type mtime;
    bool is_active = false;
  };
  std::vector<Entry> entries;
  for (const fs::directory_entry& item : fs::directory_iterator(dir, ec)) {
    if (!item.is_regular_file(ec)) continue;
    if (item.path().extension() != ".cache") continue;
    Entry entry;
    entry.path = item.path();
    entry.bytes = static_cast<std::int64_t>(item.file_size(ec));
    entry.mtime = item.last_write_time(ec);
    entry.is_active = active.count(
                          fs::absolute(entry.path, ec).lexically_normal()
                              .string()) > 0;
    report.dir_bytes_before += entry.bytes;
    ++report.files_scanned;
    if (entry.is_active) ++report.files_protected;
    entries.push_back(std::move(entry));
  }
  report.dir_bytes_after = report.dir_bytes_before;
  if (budget_bytes <= 0) return report;
  report.enforced = true;

  // Oldest first; equal mtimes (coarse filesystems) break by path so the
  // eviction order — and every test asserting on it — is deterministic.
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path.string() < b.path.string();
  });
  for (const Entry& entry : entries) {
    if (report.dir_bytes_after <= budget_bytes) break;
    if (entry.is_active) continue;
    if (!fs::remove(entry.path, ec) || ec) continue;
    report.dir_bytes_after -= entry.bytes;
    report.bytes_evicted += entry.bytes;
    ++report.files_evicted;
  }
  return report;
}

}  // namespace reuse::sweep
