// Cache-directory housekeeping: byte accounting and LRU eviction.
//
// Sweeps multiply cache files (one per cell), so the cache dir needs a
// budget: scan the `*.cache` files, report the byte total, and — when a
// budget is set — evict oldest-modification-time first until the directory
// fits, never touching the files the running sweep itself produced or will
// read (the active set). Eviction order is deterministic: mtime ascending,
// ties broken by path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace reuse::sweep {

struct CacheBudgetReport {
  std::int64_t dir_bytes_before = 0;  ///< `*.cache` bytes found by the scan
  std::int64_t dir_bytes_after = 0;   ///< bytes remaining after eviction
  std::size_t files_scanned = 0;
  std::size_t files_evicted = 0;
  std::int64_t bytes_evicted = 0;
  /// Active-set files present in the directory (never eviction candidates).
  std::size_t files_protected = 0;
  /// False when budget_bytes <= 0 (accounting-only scan, nothing evicted).
  bool enforced = false;
};

/// Scans `dir` (non-recursive) for `*.cache` files and, when
/// `budget_bytes > 0`, deletes the oldest non-active files until the total
/// is within budget. `active_paths` are the running sweep's own cell
/// caches — they are never evicted even when the active set alone exceeds
/// the budget (the sweep must stay resumable). A missing directory yields
/// an all-zero report.
[[nodiscard]] CacheBudgetReport enforce_cache_budget(
    const std::string& dir, std::int64_t budget_bytes,
    const std::vector<std::string>& active_paths);

}  // namespace reuse::sweep
