// Comparative scenario sweeps: presets × parameter axes, cached cells.
//
// A sweep expands a base scenario configuration across named presets
// (analysis/presets.h) and numeric parameter axes (`days=60,120`,
// `cgn_share=0.2,0.5`) into a deterministic list of cells, runs every cell
// through the scenario cache — resuming cached shorter-horizon bases when
// only the `days` axis differs — and joins the per-cell headline impact
// metrics into one comparative report. Cells are fault-isolated: one
// failing cell marks itself failed and the sweep carries on. The cell list
// order, every cell's config fingerprint, and the whole deterministic
// report are byte-identical for every `--jobs` value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/presets.h"
#include "analysis/scenario.h"

namespace reuse::sweep {

/// One parameter axis: a knob name from the axis table plus the values the
/// sweep crosses it over. Raw spellings are kept for cell ids and the
/// report; `numbers` is the parsed form the appliers consume.
struct SweepAxis {
  std::string name;
  std::vector<std::string> raw_values;
  std::vector<double> numbers;
};

/// Parses `days=60,120` against the axis table (days, seed, ases, probes,
/// crawl_days, cgn_share, dyn_share, evasion). Returns nullopt and fills
/// `error` on an unknown axis name, empty/duplicate values, or a value
/// outside the axis's domain.
[[nodiscard]] std::optional<SweepAxis> parse_axis(const std::string& text,
                                                  std::string* error);

/// Comma-separated names the axis table accepts, for error messages.
[[nodiscard]] std::string axis_names();

struct SweepConfig {
  /// Base scenario every cell derives from (finalized internally).
  analysis::ScenarioConfig base;
  /// Presets to cross, in report order; the FIRST is the baseline cell
  /// every ratio in the report is computed against.
  std::vector<const analysis::ScenarioPreset*> presets;
  /// Axes, crossed row-major in the given order (last axis fastest).
  std::vector<SweepAxis> axes;
  /// Directory holding the per-cell cache files (created if missing).
  std::string cache_dir = ".";
  /// Concurrent chains (0 = hardware threads). Cells WITHIN a chain run
  /// serially — later days resume earlier ones — and each cell runs its
  /// scenario stages serially, so `jobs` bounds total concurrency.
  int jobs = 1;
  /// Write a per-cell run manifest (manifest.h JSON with preset +
  /// sweep_cell_id) under `manifest_dir` when non-empty.
  std::string manifest_dir;
  /// Cache-budget enforcement after the sweep: 0 = unlimited.
  std::int64_t cache_budget_bytes = 0;
  /// Test hook: the cell at this expansion index throws mid-run (-1 = off).
  int inject_fail_cell = -1;
};

/// One (preset, axis-values) assignment in expansion order.
struct SweepCell {
  std::string id;  ///< "preset/axis1=v1,axis2=v2" (axes in config order)
  std::string preset;
  std::vector<std::pair<std::string, std::string>> axis_values;
  analysis::ScenarioConfig config;  ///< finalized; jobs forced to 1
  /// Cells sharing (preset, every non-days axis value) form a chain keyed
  /// by this string; within a chain, days ascend and later cells resume
  /// earlier ones from the cache.
  std::string chain_key;
  int days = 0;  ///< days-axis value (0 = no days axis: base periods)
};

/// Deterministic expansion: preset-major (registry order as configured),
/// then axes row-major. Every cell's config carries `horizon_days` =
/// its chain's maximum days, so chain resumes are byte-identical to fresh
/// runs (see DESIGN § incremental pipeline).
[[nodiscard]] std::vector<SweepCell> expand_cells(const SweepConfig& config);

/// How a finished cell obtained its products.
enum class CellPath {
  kFresh,     ///< full simulation (cache written for next time)
  kCacheHit,  ///< own cache file restored
  kResumed,   ///< evolved from an earlier cell of the chain
};

/// One cell's outcome: identity, headline Section 5 metrics, and cache
/// attribution. Every field except `wall_millis` is deterministic.
struct CellResult {
  std::string id;
  std::string preset;
  std::vector<std::pair<std::string, std::string>> axis_values;
  std::uint64_t config_fingerprint = 0;
  bool failed = false;
  std::string error;

  // Headline metrics (zero when failed).
  std::uint64_t blocklisted_addresses = 0;
  std::uint64_t reused_addresses = 0;  ///< unjustly blocked (NATed ∪ dynamic)
  std::uint64_t nated_blocklisted = 0;
  std::uint64_t dynamic_blocklisted = 0;
  std::uint64_t total_listings = 0;
  std::uint64_t nat_users_lower_bound = 0;  ///< Fig 8 concurrent-user sum
  double listing_days_p50 = 0.0;
  double listing_days_p90 = 0.0;

  CellPath path = CellPath::kFresh;
  std::int64_t wall_millis = 0;  ///< NOT part of the report fingerprint
};

struct SweepReport {
  std::vector<CellResult> cells;  ///< expansion order
  std::size_t cells_failed = 0;
  std::size_t cache_hits = 0;
  std::size_t resumed = 0;
  std::size_t fresh = 0;
  /// FNV-1a over the deterministic cell fields only (ids, fingerprints,
  /// metrics) — identical across --jobs and across cold/warm runs.
  std::uint64_t report_fingerprint = 0;
  /// Cache-dir byte accounting (filled when budget enforcement ran).
  std::int64_t cache_dir_bytes = 0;
  std::int64_t cache_bytes_evicted = 0;
  std::size_t cache_files_evicted = 0;
};

/// Runs every cell. Chains execute concurrently on a `config.jobs` pool;
/// results land in expansion order regardless of completion order. Never
/// throws for a failing cell.
[[nodiscard]] SweepReport run_sweep(const SweepConfig& config);

/// The deterministic comparative table (GitHub markdown): one row per cell
/// with its headline metrics and the reused-addresses ratio against the
/// baseline cell (cells[0]). Byte-identical across --jobs; CI diffs it.
[[nodiscard]] std::string render_report_markdown(const SweepReport& report);

/// The full report as JSON: everything in SweepReport including wall times
/// and cache accounting, plus `report_fingerprint` as 16 hex digits.
[[nodiscard]] std::string render_report_json(const SweepReport& report);

}  // namespace reuse::sweep
