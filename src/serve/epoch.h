// Epoch-based read-side reclamation for the serving hot path.
//
// The previous LookupEngine pinned snapshots under a tiny spinlock: correct,
// but every reader bounced the *same* cache line through the exclusive state
// (lock word + shared_ptr control block), which serializes readers and — if
// publishes arrive in a storm — lets the lock line ping-pong into a
// progress-starving pattern. Epoch reclamation removes the shared write
// entirely: each reader thread owns a cache-line-padded slot and announces
// "I am reading at epoch E" by writing *its own slot only*. Readers never
// write memory any other reader touches; the only shared state they load
// (the global epoch and the live-snapshot pointer) stays in the shared
// cache state because nobody writes it on the read path.
//
// Protocol (quiescent-state variant, writers wait, readers never do):
//   * The global epoch is even and only grows (by 2 per synchronize()).
//   * enter(): load global epoch E, store E+1 (odd = active) into the
//     caller's slot, then re-load the global epoch; if it moved, restart.
//     The re-check closes the race where a writer bumps and scans between
//     our load and our slot store.
//   * exit(): store 0 (quiescent) into the slot.
//   * synchronize(): bump the global epoch to E' and spin until every slot
//     is quiescent or announces an epoch >= E'. Any reader that entered
//     before the bump is waited for; any reader that enters after it can
//     only observe pointers published before the bump's writer swapped
//     them. Once synchronize() returns, memory retired before the call has
//     no readers and can be freed.
//
// Memory-model discipline: every operation above is a seq_cst load, store,
// or RMW on a std::atomic — deliberately *no* standalone fences, because
// ThreadSanitizer does not model atomic_thread_fence and would report false
// races. Like the pin-lock it replaces, the protocol is owned and small so
// the TSan suite proves it rather than suppressing it.
//
// Slots are claimed per (thread, process) on first use and recycled when
// the thread exits; the slot directory grows in cache-aligned blocks and is
// never freed, so a reader's slot pointer stays valid for the process
// lifetime. The domain is a process-wide singleton (like the metrics
// registry): engines share it, which also sidesteps every
// domain-outlives-reader lifetime question.
//
// Deadlock rule: never call synchronize() while holding a ReadGuard on the
// same thread — the writer would wait for its own slot forever. The engine
// keeps the two paths (query vs. publish) strictly separate.
#pragma once

#include <cstdint>

namespace reuse::serve {

class EpochDomain {
 public:
  /// The process-wide domain. Never destroyed (deliberately leaked), so
  /// thread-exit slot recycling can always reach it.
  static EpochDomain& instance();

  /// Marks the calling thread as reading at the current epoch. Re-entrant:
  /// nested enters on one thread are counted and only the outermost pair
  /// touches the slot.
  void enter();
  /// Ends the calling thread's read-side critical section.
  void exit();

  /// Writer-side barrier: returns only when every read-side critical
  /// section that began before the call has finished. After it returns,
  /// objects unpublished before the call are unreachable from any reader.
  /// Serialized internally; callers need no extra writer lock for the
  /// barrier itself. Must not be called under a ReadGuard.
  void synchronize();

  /// Current global epoch (even, monotonic). Introspection for tests.
  [[nodiscard]] std::uint64_t epoch() const;
  /// Slots currently claimed by live threads. Introspection for tests.
  [[nodiscard]] int active_slots() const;

  /// Opaque here; defined in epoch.cpp. Public so the thread-local
  /// registration record (file-local there) can hold a Slot pointer.
  struct Slot;
  struct SlotBlock;

 private:
  EpochDomain();
  ~EpochDomain() = delete;  // singleton is immortal by design

  [[nodiscard]] Slot* claim_slot();

  struct Impl;
  Impl* impl_;
};

/// RAII read-side critical section against the process-wide domain.
/// Construction is wait-free in practice (the enter retry loop only spins
/// when a synchronize() lands in the two-instruction announce window).
class ReadGuard {
 public:
  ReadGuard() { EpochDomain::instance().enter(); }
  ~ReadGuard() { EpochDomain::instance().exit(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
};

}  // namespace reuse::serve
