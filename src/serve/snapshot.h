// Compiled blocklist snapshot: the immutable artifact `lookupd` serves.
//
// The paper's actionable output (§6) is a published reused-address list
// that operators consult at enforcement time. The offline pipeline produces
// that list as text; this module compiles the same knowledge — per-address
// listing state, NAT/dynamic reuse flags, and /24 dynamic-pool context —
// into a flat, checksummed binary artifact built for query serving:
//
//   * No pointers. Four sorted arrays (bucket keys, bucket offsets,
//     addresses, verdict words) plus a sorted dynamic-/24 array; the whole
//     payload is position-independent and mmap-friendly.
//   * Two-level lookup. A query binary-searches the occupied-/24 bucket
//     array (addr >> 8), then the at-most-256 entries of that bucket —
//     both branch-predictable lower_bound loops over contiguous memory.
//   * Verdicts are one 32-bit word: listed/NATed/dynamic flags in the low
//     byte and a membership bitmap of the top-`kMaxTopLists` lists (by
//     distinct-address count) in the high bits, so one load answers both
//     "block or greylist?" and "which major feeds said so?".
//   * Deterministic bytes. Entries are the sorted union of blocklisted and
//     NATed addresses; per-entry verdict computation is index-addressed, so
//     building with a thread pool is byte-identical to building serially.
//     The same inputs always serialize to the same artifact (and the same
//     fingerprint), which CI cross-checks against the run manifest.
//
// On-disk framing follows the scenario cache discipline (DESIGN.md §6/§10):
// magic + versions + counts + payload size + FNV-1a payload checksum, then
// the payload; loads are bounded, and truncation or bit-flips reject rather
// than crash.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "blocklist/store.h"
#include "blocklist/types.h"
#include "netbase/ipv4.h"
#include "netbase/prefix_trie.h"

namespace reuse::net {
class ThreadPool;
}

namespace reuse::serve {

/// On-disk magics of the two serve artifacts. Exposed (with file_magic)
/// so LookupServer::reload can sniff which loader a file belongs to
/// without attempting both.
inline constexpr std::uint64_t kCompiledSnapshotMagic =
    0x524555534c4bULL;  // "REUSLK"
inline constexpr std::uint64_t kSnapshotDeltaMagic =
    0x52455553444cULL;  // "REUSDL"

/// First 8 bytes of `path` as a little-endian word; 0 when the file is
/// missing, unreadable, or shorter than a magic.
[[nodiscard]] std::uint64_t file_magic(const std::string& path);

/// Verdict bit assignments inside a compiled snapshot's 32-bit word.
inline constexpr std::uint32_t kVerdictListed = 1u << 0;
inline constexpr std::uint32_t kVerdictNated = 1u << 1;
inline constexpr std::uint32_t kVerdictDynamic = 1u << 2;
/// Bits [kTopListShift, 32) form the top-list membership bitmap.
inline constexpr int kTopListShift = 8;
inline constexpr int kMaxTopLists = 32 - kTopListShift;

/// One query answer. A plain word wrapper: cheap to copy, nothing to free,
/// safe to hand across threads.
struct Verdict {
  std::uint32_t bits = 0;

  [[nodiscard]] constexpr bool listed() const {
    return (bits & kVerdictListed) != 0;
  }
  [[nodiscard]] constexpr bool nated() const {
    return (bits & kVerdictNated) != 0;
  }
  /// The covering /24 of the queried address overlaps a detected dynamic
  /// pool. Carried for *every* query, listed or not — churn context is the
  /// reason to greylist rather than hard-block (paper §6).
  [[nodiscard]] constexpr bool dynamic() const {
    return (bits & kVerdictDynamic) != 0;
  }
  [[nodiscard]] constexpr bool reused() const { return nated() || dynamic(); }
  /// The paper's enforcement advice: greylist listed-but-reused addresses.
  [[nodiscard]] constexpr bool greylist() const { return listed() && reused(); }
  /// Membership bitmap over CompiledSnapshot::top_lists() (bit k = list k).
  [[nodiscard]] constexpr std::uint32_t list_bitmap() const {
    return bits >> kTopListShift;
  }

  friend constexpr bool operator==(Verdict, Verdict) = default;
};

/// The immutable compiled artifact. Built by SnapshotBuilder or loaded from
/// disk; never mutated afterwards, so any number of threads may query one
/// instance concurrently without synchronization.
class CompiledSnapshot {
 public:
  /// O(log buckets + log 256) point query; allocation-free.
  [[nodiscard]] Verdict verdict(net::Ipv4Address address) const;

  /// Answers queries[i] into out[i]. Precondition: out.size() >= queries
  /// .size(). Allocation-free; the batch shares bucket-search state warmup.
  void verdict_batch(std::span<const net::Ipv4Address> queries,
                     std::span<Verdict> out) const;

  /// Distinct addresses carrying a non-trivial verdict word (the sorted
  /// union of blocklisted and NATed addresses).
  [[nodiscard]] std::size_t entry_count() const { return addresses_.size(); }
  /// Occupied /24 buckets.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  /// /24 blocks overlapping a detected dynamic pool.
  [[nodiscard]] std::size_t dynamic24_count() const {
    return dynamic24_.size();
  }
  /// List ids behind Verdict::list_bitmap(), ordered bit 0 upward (largest
  /// list first; ties break toward the smaller id).
  [[nodiscard]] const std::vector<blocklist::ListId>& top_lists() const {
    return top_lists_;
  }
  /// Fingerprint of the producing scenario (caller-supplied at build time;
  /// 0 when built outside a scenario).
  [[nodiscard]] std::uint64_t source_fingerprint() const {
    return source_fingerprint_;
  }
  /// FNV-1a of the serialized payload: two snapshots answer identically iff
  /// their fingerprints match. This is the value the run manifest and
  /// BENCH_lookup.json both record and CI cross-checks.
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  /// fingerprint() as 16 hex digits, the JSON rendering.
  [[nodiscard]] std::string fingerprint_hex() const;

  /// Serializes the artifact to `path` atomically (tmp file + rename);
  /// false on I/O failure, in which case no partial file is left behind.
  [[nodiscard]] bool save(const std::string& path) const;

  /// Loads and validates an artifact: magic, format version, bounded
  /// payload size, FNV-1a payload checksum, and structural invariants
  /// (sorted arrays, monotonic bucket offsets, entries filed under the
  /// right /24). Truncated, oversized, or bit-flipped files return
  /// nullopt — never a partially initialized snapshot.
  [[nodiscard]] static std::optional<CompiledSnapshot> load(
      const std::string& path);

  /// Same validation, but every rejection writes a *distinct* diagnostic
  /// into `*error` (zero-length file vs unreadable path vs mid-write
  /// truncation vs checksum mismatch vs structural violation...), so an
  /// operator staring at a failed reload knows which failure mode hit
  /// without strace. `error` may be null.
  [[nodiscard]] static std::optional<CompiledSnapshot> load(
      const std::string& path, std::string* error);

  /// All entry addresses whose verdict satisfies `mask` (every bit of
  /// `mask` set). Used by the workload generator to sample listed/reused
  /// query targets; not a hot path.
  [[nodiscard]] std::vector<net::Ipv4Address> entries_matching(
      std::uint32_t mask) const;

 private:
  friend class SnapshotBuilder;
  friend class SnapshotDelta;

  [[nodiscard]] std::string payload_bytes() const;
  void seal();  ///< recomputes fingerprint_ from the payload

  std::vector<std::uint32_t> buckets_;         ///< sorted /24 keys (addr>>8)
  std::vector<std::uint32_t> bucket_offsets_;  ///< size buckets+1, into arrays
  std::vector<std::uint32_t> addresses_;       ///< sorted entry addresses
  std::vector<std::uint32_t> verdicts_;        ///< parallel verdict words
  std::vector<std::uint32_t> dynamic24_;       ///< sorted dynamic /24 keys
  std::vector<blocklist::ListId> top_lists_;
  std::uint64_t source_fingerprint_ = 0;
  std::uint64_t fingerprint_ = 0;
};

/// Delta between two compiled snapshots: the artifact an incremental
/// pipeline ships to a running `lookupd` instead of a full snapshot.
///
/// A delta is keyed by the BASE snapshot's payload fingerprint and records
/// only what changed: entry removals, entry upserts (new address or changed
/// verdict word), dynamic-/24 removals/additions, and the (small) top-list
/// table as a whole. apply() refuses a base whose fingerprint does not
/// match, rebuilds the target arrays by a linear merge, and then verifies
/// the rebuilt payload hashes to the recorded TARGET fingerprint — so a
/// delta can never silently produce a snapshot other than the one diff()
/// saw, no matter what happened to the file in between.
///
/// On-disk framing follows the snapshot discipline (own magic, version,
/// bounded counts, FNV-1a payload checksum); CompiledSnapshot::load and
/// SnapshotDelta::load each reject the other's files on magic alone, which
/// is what lets LookupServer::reload sniff the file kind.
class SnapshotDelta {
 public:
  /// Fingerprint of the snapshot this delta applies on top of.
  [[nodiscard]] std::uint64_t base_fingerprint() const {
    return base_fingerprint_;
  }
  /// Fingerprint the applied result must hash to.
  [[nodiscard]] std::uint64_t target_fingerprint() const {
    return target_fingerprint_;
  }
  [[nodiscard]] std::size_t removed_count() const { return removed_.size(); }
  [[nodiscard]] std::size_t upsert_count() const { return upserts_.size(); }
  [[nodiscard]] std::size_t dynamic24_removed_count() const {
    return dynamic24_removed_.size();
  }
  [[nodiscard]] std::size_t dynamic24_added_count() const {
    return dynamic24_added_.size();
  }
  /// True when the delta carries no changes (base == target byte-wise).
  [[nodiscard]] bool empty() const {
    return removed_.empty() && upserts_.empty() &&
           dynamic24_removed_.empty() && dynamic24_added_.empty() &&
           !top_lists_changed_;
  }

  /// Applies the delta to `base`, producing the target snapshot. Returns
  /// nullopt (with a distinct diagnostic in `*error`, which may be null)
  /// when `base`'s fingerprint does not match base_fingerprint(), or when
  /// the rebuilt payload does not hash to target_fingerprint().
  [[nodiscard]] std::optional<CompiledSnapshot> apply(
      const CompiledSnapshot& base, std::string* error = nullptr) const;

  /// Serializes atomically (tmp file + rename), like CompiledSnapshot.
  [[nodiscard]] bool save(const std::string& path) const;

  /// Loads and validates a delta artifact: magic, version, bounded counts,
  /// payload checksum, sorted-array invariants. Rejections carry distinct
  /// diagnostics; a compiled-snapshot file is rejected on magic.
  [[nodiscard]] static std::optional<SnapshotDelta> load(
      const std::string& path, std::string* error = nullptr);

 private:
  friend class SnapshotBuilder;

  [[nodiscard]] std::string payload_bytes() const;

  std::uint64_t base_fingerprint_ = 0;
  std::uint64_t target_fingerprint_ = 0;
  std::uint64_t target_source_fingerprint_ = 0;
  std::vector<std::uint32_t> removed_;  ///< sorted addresses leaving the set
  /// (address, verdict) for new or re-worded entries, address-sorted.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> upserts_;
  std::vector<std::uint32_t> dynamic24_removed_;  ///< sorted /24 keys
  std::vector<std::uint32_t> dynamic24_added_;    ///< sorted /24 keys
  /// Replacement top-list table, shipped whole (<= kMaxTopLists entries).
  std::vector<blocklist::ListId> top_lists_;
  bool top_lists_changed_ = false;
};

/// Compiles the offline pipeline's products into a CompiledSnapshot.
///
/// Inputs mirror analysis::build_reused_address_list: the presence store,
/// the crawler's NATed set, and the dynamic-prefix set from the Atlas
/// pipeline; `catalogue` (optional) ranks the top lists for the bitmap.
/// Dynamic prefixes are projected to covering /24s — the paper's pool
/// granularity — so a prefix shorter than /24 contributes every /24 it
/// covers and a longer one its covering block.
class SnapshotBuilder {
 public:
  SnapshotBuilder& with_store(const blocklist::SnapshotStore& store) {
    store_ = &store;
    return *this;
  }
  SnapshotBuilder& with_nated(
      const std::unordered_set<net::Ipv4Address>& nated) {
    nated_ = &nated;
    return *this;
  }
  SnapshotBuilder& with_dynamic(const net::PrefixSet& dynamic) {
    dynamic_ = &dynamic;
    return *this;
  }
  SnapshotBuilder& with_catalogue(
      const std::vector<blocklist::BlocklistInfo>& catalogue) {
    catalogue_ = &catalogue;
    return *this;
  }
  SnapshotBuilder& with_source_fingerprint(std::uint64_t fingerprint) {
    source_fingerprint_ = fingerprint;
    return *this;
  }

  /// Builds the artifact. `pool` parallelizes the per-entry verdict pass
  /// (nullptr = serial); every entry writes only its own index-addressed
  /// slot, so the resulting bytes are identical for any pool size.
  [[nodiscard]] CompiledSnapshot build(net::ThreadPool* pool = nullptr) const;

  /// Structural diff of two compiled snapshots, keyed by `base`'s
  /// fingerprint and sealed with `next`'s: apply(base) == next, bytes and
  /// all. Both snapshots are left untouched; diff(x, x) is empty().
  [[nodiscard]] static SnapshotDelta diff(const CompiledSnapshot& base,
                                          const CompiledSnapshot& next);

 private:
  const blocklist::SnapshotStore* store_ = nullptr;
  const std::unordered_set<net::Ipv4Address>* nated_ = nullptr;
  const net::PrefixSet* dynamic_ = nullptr;
  const std::vector<blocklist::BlocklistInfo>* catalogue_ = nullptr;
  std::uint64_t source_fingerprint_ = 0;
};

}  // namespace reuse::serve
