// Client-side machinery for the lookupd serving front end: a blocking
// protocol client, a seeded open-loop load generator, and the ChaosClient
// fault plan.
//
// The chaos plan extends the deterministic fault-machinery idiom of
// simnet/faults.h to the serving boundary: every client's behavior is a
// pure function of (seed, client index) via net::substream, every injected
// fault is tallied in a client-side ledger at the moment it is sent, and
// the suite reconciles that ledger *exactly* against the server's
// ServerStats — torn writes against rejected_torn, garbage against
// rejected_garbage, oversized declarations against rejected_oversized,
// stalls against clients_evicted, and valid frames against served + shed.
// A server that silently drops or double-counts anything cannot pass.
//
// Determinism contract: which addresses a client queries, and which fault
// each chaos client injects, are pure functions of the seed. Latencies and
// the served/shed *split* under overload are wall-clock-dependent and are
// reported, not asserted on; the ledger laws above hold regardless of
// scheduling.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/rng.h"
#include "serve/frame.h"
#include "serve/snapshot.h"

namespace reuse::serve {

class LookupServer;

/// Substream salts for the client-side streams (distinct from the engine
/// workload harness's salt so the two never correlate).
inline constexpr std::uint64_t kLoadSalt = 0x6c6f61646e6730ULL;
inline constexpr std::uint64_t kChaosSalt = 0x6368616f73706cULL;

/// Blocking protocol client over a connected fd (as returned by
/// LookupServer::connect_client). Owns and closes the fd.
class LookupClient {
 public:
  explicit LookupClient(int fd) : fd_(fd) {}
  ~LookupClient();

  LookupClient(const LookupClient&) = delete;
  LookupClient& operator=(const LookupClient&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Encodes and writes one request frame. False on transport failure.
  bool send_batch(std::uint64_t request_id,
                  std::span<const std::uint32_t> addresses);
  /// Writes raw bytes verbatim — the chaos clients' fault injector.
  bool send_bytes(std::string_view bytes);

  /// Blocks until one complete response decodes. nullopt on EOF or a
  /// protocol error from the server (which would be a server bug).
  [[nodiscard]] std::optional<ResponseFrame> read_response();

  /// Half-close: signals end-of-requests while leaving the read side open
  /// for draining responses (the graceful client shutdown).
  void shutdown_write();
  /// Closes the fd outright — the torn-write client's abrupt exit.
  void close_now();
  [[nodiscard]] bool saw_eof() const { return eof_; }

 private:
  int fd_ = -1;
  ResponseDecoder decoder_;
  bool eof_ = false;
};

/// Listed/reused address pools sampled from a snapshot, shared by the load
/// generator and the chaos clients (same mix discipline as the engine-level
/// workload harness).
struct SamplePools {
  std::vector<std::uint32_t> listed;
  std::vector<std::uint32_t> reused;
};
[[nodiscard]] SamplePools sample_pools(const CompiledSnapshot& snapshot);

/// Fills `out` with a seeded listed/reused/random address mix. Pure
/// function of the rng stream state — the shared primitive that makes
/// client batches deterministic per (seed, client, batch).
void fill_batch(net::Rng& rng, const SamplePools& pools,
                double listed_fraction, double reused_fraction,
                std::span<std::uint32_t> out);

struct LoadConfig {
  std::uint64_t seed = 1;
  int clients = 4;
  std::uint64_t batches_per_client = 256;
  std::size_t batch_size = 64;
  double listed_fraction = 0.4;
  double reused_fraction = 0.3;
  /// Offered load across all clients, batches paced open-loop; 0 = each
  /// client sends as fast as its in-flight window allows.
  double target_qps = 0.0;
  /// Open-loop window: responses are drained once this many requests are
  /// un-answered. 1 degenerates to closed-loop (deterministic tallies).
  std::size_t max_in_flight = 32;
};

struct LoadReport {
  std::uint64_t submitted = 0;  ///< request frames written
  std::uint64_t ok = 0;         ///< responses with status kOk
  std::uint64_t shed = 0;       ///< responses with status kShed
  /// Verdict-bit tallies over kOk responses; deterministic given
  /// (seed, snapshot) when nothing is shed (closed-loop configs).
  std::uint64_t listed_words = 0;
  std::uint64_t reused_words = 0;
  double wall_seconds = 0.0;
  double throughput_qps = 0.0;  ///< answered frames per wall second
  // Request-to-response latency percentiles (wall-clock; reported only).
  std::uint64_t p50_nanos = 0;
  std::uint64_t p99_nanos = 0;
  std::uint64_t p999_nanos = 0;
  std::uint64_t max_nanos = 0;
};

/// Runs `clients` concurrent open-loop client threads against `server`,
/// each connected via connect_client(). Blocks until every client has
/// drained its responses. Invariant on return (well-behaved clients only):
/// ok + shed == submitted.
[[nodiscard]] LoadReport run_load(LookupServer& server,
                                  const CompiledSnapshot& sample_source,
                                  const LoadConfig& config);

/// One chaos client's scripted misbehavior. kWellBehaved is part of the
/// plan on purpose: faults are injected *among* normal traffic, not
/// instead of it.
enum class ChaosBehavior : std::uint8_t {
  kWellBehaved = 0,  ///< closed-loop valid batches only
  kTorn = 1,         ///< valid batches, then half a frame and abrupt close
  kGarbage = 2,      ///< valid batches, then a frame with a wrong magic
  kOversized = 3,    ///< valid batches, then an over-cap length declaration
  kFlood = 4,        ///< burst of valid frames with no reads until the end
  kStall = 5,        ///< half a frame, then silence until evicted
};
inline constexpr int kChaosBehaviorCount = 6;
[[nodiscard]] std::string_view to_string(ChaosBehavior behavior);

/// The seeded plan: clients 0..5 cycle through all six behaviors (coverage
/// is guaranteed, not probabilistic), later clients draw uniformly from
/// their substream. Pure function of (seed, client_index).
[[nodiscard]] ChaosBehavior chaos_behavior_for(std::uint64_t seed,
                                               int client_index);

struct ChaosConfig {
  std::uint64_t seed = 1;
  int clients = 12;
  /// Valid batches each client sends before (and, for kFlood, as) its
  /// scripted fault.
  std::uint64_t batches_per_client = 32;
  std::size_t batch_size = 16;
  double listed_fraction = 0.4;
  double reused_fraction = 0.3;
};

/// Client-side injection ledger, summed across all chaos clients. Each
/// counter is incremented at the moment the bytes hit the transport, so it
/// is the ground truth the server's ledger must reproduce.
struct ChaosLedger {
  std::uint64_t valid_sent = 0;
  std::uint64_t torn_sent = 0;
  std::uint64_t garbage_sent = 0;
  std::uint64_t oversized_sent = 0;
  std::uint64_t stalls = 0;
  std::uint64_t ok_received = 0;
  std::uint64_t shed_received = 0;
};

/// Runs the chaos plan: `clients` threads, each executing
/// chaos_behavior_for(seed, index). Blocks until every client is done
/// (stall clients block until the server evicts them, so the server's
/// stall_timeout_ms bounds the runtime). Reconciliation laws on return:
///   server rejected_torn      == ledger torn_sent
///   server rejected_garbage   == ledger garbage_sent
///   server rejected_oversized == ledger oversized_sent
///   server clients_evicted    == ledger stalls   (absent slow readers)
///   server served + shed      == ledger valid_sent
///   ledger ok + shed received == ledger valid_sent
[[nodiscard]] ChaosLedger run_chaos_clients(
    LookupServer& server, const CompiledSnapshot& sample_source,
    const ChaosConfig& config);

}  // namespace reuse::serve
