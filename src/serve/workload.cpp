#include "serve/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "netbase/rng.h"

namespace reuse::serve {
namespace {

/// Stream salt for workload batches; distinct from every simulator salt so
/// the harness can never collide with a scenario substream.
constexpr std::uint64_t kWorkloadSalt = 0x6c6f6f6b7570ULL;  // "lookup"

/// Sorted union of two sorted address pools.
std::vector<net::Ipv4Address> merge_pools(std::vector<net::Ipv4Address> a,
                                          const std::vector<net::Ipv4Address>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

}  // namespace

WorkloadReport run_workload(LookupEngine& engine,
                            const CompiledSnapshot& sample_source,
                            const WorkloadConfig& config) {
  WorkloadReport report;
  const std::size_t batch_size = std::max<std::size_t>(config.batch_size, 1);
  const std::uint64_t batches =
      (config.query_count + batch_size - 1) / batch_size;
  if (batches == 0) return report;
  const int threads = std::max(config.threads, 1);

  // Sample pools. Listed entries answer the "operator checks a hit" side
  // of the mix; reused (NATed or dynamic) entries the greylist side.
  const std::vector<net::Ipv4Address> listed_pool =
      sample_source.entries_matching(kVerdictListed);
  const std::vector<net::Ipv4Address> reused_pool =
      merge_pools(sample_source.entries_matching(kVerdictNated),
                  sample_source.entries_matching(kVerdictDynamic));

  struct ThreadTally {
    std::uint64_t listed = 0;
    std::uint64_t reused = 0;
    std::vector<std::uint64_t> batch_nanos;
  };
  std::vector<ThreadTally> tallies(static_cast<std::size_t>(threads));
  std::atomic<std::uint64_t> completed{0};
  std::atomic<bool> swap_done{false};
  ServeMetrics& metrics = serve_metrics();

  // Open-loop pacing: with a target rate each thread owns 1/threads of the
  // offered load and schedules its k-th batch at k * batch / rate.
  const double per_thread_qps = config.target_qps / threads;

  auto worker = [&](int thread_index) {
    ThreadTally& tally = tallies[static_cast<std::size_t>(thread_index)];
    tally.batch_nanos.reserve(
        static_cast<std::size_t>(batches / threads + 1));
    std::vector<net::Ipv4Address> queries(batch_size);
    std::vector<Verdict> verdicts(batch_size);
    const auto thread_start = std::chrono::steady_clock::now();
    std::uint64_t issued = 0;
    for (std::uint64_t batch = static_cast<std::uint64_t>(thread_index);
         batch < batches; batch += static_cast<std::uint64_t>(threads)) {
      if (per_thread_qps > 0.0) {
        const double due_seconds =
            static_cast<double>(issued * batch_size) / per_thread_qps;
        std::this_thread::sleep_until(
            thread_start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(due_seconds)));
      }
      ++issued;
      // The batch's content depends only on (seed, batch index): the query
      // stream is identical no matter how batches land on threads.
      net::Rng rng = net::substream(config.seed, kWorkloadSalt, batch);
      for (std::size_t i = 0; i < batch_size; ++i) {
        const double mix = rng.uniform_real();
        if (mix < config.listed_fraction && !listed_pool.empty()) {
          queries[i] = listed_pool[rng.uniform(listed_pool.size())];
        } else if (mix < config.listed_fraction + config.reused_fraction &&
                   !reused_pool.empty()) {
          queries[i] = reused_pool[rng.uniform(reused_pool.size())];
        } else {
          queries[i] = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
        }
      }
      const auto start = std::chrono::steady_clock::now();
      engine.verdict_batch(queries, verdicts);
      const auto nanos = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
      tally.batch_nanos.push_back(nanos);
      metrics.batch_micros.observe(static_cast<std::int64_t>(nanos / 1000));
      for (std::size_t i = 0; i < batch_size; ++i) {
        tally.listed += verdicts[i].listed() ? 1 : 0;
        tally.reused += verdicts[i].reused() ? 1 : 0;
      }
      const std::uint64_t done = completed.fetch_add(1) + 1;
      // Mid-run reload: exactly one thread swaps once half the batches are
      // in, while the others keep querying — the never-stall-readers claim
      // exercised for real (and under TSan in the equivalence test).
      if (config.swap_to != nullptr && done >= batches / 2 &&
          !swap_done.exchange(true)) {
        engine.publish(config.swap_to);
      }
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (std::thread& thread : pool) thread.join();
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<std::uint64_t> nanos;
  for (ThreadTally& tally : tallies) {
    report.listed_hits += tally.listed;
    report.reused_hits += tally.reused;
    nanos.insert(nanos.end(), tally.batch_nanos.begin(),
                 tally.batch_nanos.end());
  }
  std::sort(nanos.begin(), nanos.end());
  report.batches = batches;
  report.queries = batches * batch_size;
  report.swapped = swap_done.load();
  if (!nanos.empty()) {
    report.p50_nanos = nanos[nanos.size() * 50 / 100];
    report.p99_nanos = nanos[std::min(nanos.size() - 1, nanos.size() * 99 / 100)];
    report.max_nanos = nanos.back();
  }
  if (report.wall_seconds > 0.0) {
    report.throughput_qps =
        static_cast<double>(report.queries) / report.wall_seconds;
  }
  return report;
}

}  // namespace reuse::serve
