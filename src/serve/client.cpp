#include "serve/client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "serve/server.h"

namespace reuse::serve {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::string u32_bytes(std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof bytes);
  return {bytes, sizeof bytes};
}

[[nodiscard]] std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                                       double p) {
  if (sorted.empty()) return 0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

LookupClient::~LookupClient() { close_now(); }

void LookupClient::close_now() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void LookupClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool LookupClient::send_bytes(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed this session (poisoned stream,
    // eviction) must surface as EPIPE, never as a fatal SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool LookupClient::send_batch(std::uint64_t request_id,
                              std::span<const std::uint32_t> addresses) {
  return send_bytes(encode_request(request_id, addresses));
}

std::optional<ResponseFrame> LookupClient::read_response() {
  for (;;) {
    if (auto response = decoder_.next()) return response;
    if (decoder_.error() != FrameError::kNone) return std::nullopt;
    if (eof_) return std::nullopt;
    char buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof buf);
    if (n > 0) {
      decoder_.feed({buf, static_cast<std::size_t>(n)});
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    eof_ = true;  // orderly EOF or transport error: no more responses
  }
}

SamplePools sample_pools(const CompiledSnapshot& snapshot) {
  SamplePools pools;
  for (const net::Ipv4Address address :
       snapshot.entries_matching(kVerdictListed)) {
    pools.listed.push_back(address.value());
  }
  for (const net::Ipv4Address address :
       snapshot.entries_matching(kVerdictNated)) {
    pools.reused.push_back(address.value());
  }
  return pools;
}

void fill_batch(net::Rng& rng, const SamplePools& pools,
                double listed_fraction, double reused_fraction,
                std::span<std::uint32_t> out) {
  for (std::uint32_t& slot : out) {
    const double mix = rng.uniform_real();
    if (mix < listed_fraction && !pools.listed.empty()) {
      slot = pools.listed[rng.uniform(pools.listed.size())];
    } else if (mix < listed_fraction + reused_fraction &&
               !pools.reused.empty()) {
      slot = pools.reused[rng.uniform(pools.reused.size())];
    } else {
      slot = static_cast<std::uint32_t>(rng.uniform(1ULL << 32));
    }
  }
}

LoadReport run_load(LookupServer& server,
                    const CompiledSnapshot& sample_source,
                    const LoadConfig& config) {
  const SamplePools pools = sample_pools(sample_source);
  const int clients = std::max(config.clients, 1);
  const std::size_t window = std::max<std::size_t>(config.max_in_flight, 1);

  std::mutex merge_mutex;
  LoadReport report;
  std::vector<std::uint64_t> latencies;

  const auto started = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LookupClient client(server.connect_client());
      if (!client.valid()) return;
      net::Rng rng = net::substream(config.seed, kLoadSalt,
                                    static_cast<std::uint64_t>(c));
      std::vector<std::uint32_t> batch(std::max<std::size_t>(
          config.batch_size, 1));
      std::vector<Clock::time_point> sent_at(config.batches_per_client);

      std::uint64_t submitted = 0, ok = 0, shed = 0;
      std::uint64_t listed_words = 0, reused_words = 0;
      std::vector<std::uint64_t> local_latencies;
      local_latencies.reserve(config.batches_per_client);
      std::size_t in_flight = 0;

      const auto absorb = [&](const ResponseFrame& response) {
        if (in_flight > 0) --in_flight;
        const auto now = Clock::now();
        if (response.request_id < sent_at.size()) {
          local_latencies.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now - sent_at[response.request_id])
                  .count()));
        }
        if (response.status == ResponseStatus::kShed) {
          ++shed;
          return;
        }
        ++ok;
        for (const std::uint32_t word : response.verdicts) {
          const Verdict verdict{word};
          listed_words += verdict.listed() ? 1 : 0;
          reused_words += verdict.reused() ? 1 : 0;
        }
      };

      // Open-loop pacing: each client owns 1/clients of target_qps, one
      // batch of queries per request frame.
      const double per_client_qps =
          config.target_qps > 0.0
              ? config.target_qps / static_cast<double>(clients)
              : 0.0;
      const auto interval =
          per_client_qps > 0.0
              ? std::chrono::nanoseconds(static_cast<std::uint64_t>(
                    1e9 * static_cast<double>(batch.size()) / per_client_qps))
              : std::chrono::nanoseconds(0);

      for (std::uint64_t b = 0; b < config.batches_per_client; ++b) {
        if (interval.count() > 0) {
          std::this_thread::sleep_until(started + interval * b);
        }
        while (in_flight >= window) {
          const auto response = client.read_response();
          if (!response) break;
          absorb(*response);
        }
        fill_batch(rng, pools, config.listed_fraction,
                   config.reused_fraction, batch);
        sent_at[b] = Clock::now();
        if (!client.send_batch(b, batch)) break;
        ++submitted;
        ++in_flight;
      }
      client.shutdown_write();
      while (auto response = client.read_response()) absorb(*response);

      const std::lock_guard<std::mutex> lock(merge_mutex);
      report.submitted += submitted;
      report.ok += ok;
      report.shed += shed;
      report.listed_words += listed_words;
      report.reused_words += reused_words;
      latencies.insert(latencies.end(), local_latencies.begin(),
                       local_latencies.end());
    });
  }
  for (std::thread& thread : threads) thread.join();

  report.wall_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                            Clock::now() - started)
                            .count();
  std::sort(latencies.begin(), latencies.end());
  report.p50_nanos = percentile(latencies, 0.50);
  report.p99_nanos = percentile(latencies, 0.99);
  report.p999_nanos = percentile(latencies, 0.999);
  report.max_nanos = latencies.empty() ? 0 : latencies.back();
  if (report.wall_seconds > 0.0) {
    report.throughput_qps =
        static_cast<double>(report.ok + report.shed) / report.wall_seconds;
  }
  return report;
}

std::string_view to_string(ChaosBehavior behavior) {
  switch (behavior) {
    case ChaosBehavior::kWellBehaved:
      return "well-behaved";
    case ChaosBehavior::kTorn:
      return "torn-write";
    case ChaosBehavior::kGarbage:
      return "garbage-magic";
    case ChaosBehavior::kOversized:
      return "oversized-length";
    case ChaosBehavior::kFlood:
      return "flood";
    case ChaosBehavior::kStall:
      return "stall";
  }
  return "unknown";
}

ChaosBehavior chaos_behavior_for(std::uint64_t seed, int client_index) {
  // First six clients cycle through every behavior so coverage is a
  // property of the plan, not of luck; the tail is seed-drawn.
  if (client_index < kChaosBehaviorCount) {
    return static_cast<ChaosBehavior>(client_index);
  }
  net::Rng rng = net::substream(seed, kChaosSalt,
                                static_cast<std::uint64_t>(client_index));
  return static_cast<ChaosBehavior>(
      rng.uniform(static_cast<std::uint64_t>(kChaosBehaviorCount)));
}

ChaosLedger run_chaos_clients(LookupServer& server,
                              const CompiledSnapshot& sample_source,
                              const ChaosConfig& config) {
  const SamplePools pools = sample_pools(sample_source);
  const int clients = std::max(config.clients, 1);

  std::mutex merge_mutex;
  ChaosLedger total;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const ChaosBehavior behavior = chaos_behavior_for(config.seed, c);
      LookupClient client(server.connect_client());
      if (!client.valid()) return;
      net::Rng rng = net::substream(config.seed, kChaosSalt + 1,
                                    static_cast<std::uint64_t>(c));
      std::vector<std::uint32_t> batch(std::max<std::size_t>(
          config.batch_size, 1));
      ChaosLedger ledger;

      const auto request_id = [c](std::uint64_t b) {
        return (static_cast<std::uint64_t>(c) << 20) | b;
      };
      const auto absorb = [&](const ResponseFrame& response) {
        if (response.status == ResponseStatus::kShed) {
          ++ledger.shed_received;
        } else {
          ++ledger.ok_received;
        }
      };
      // Closed-loop valid traffic: one frame in flight, answered before the
      // next — so when a scripted fault fires, no valid frame is pending
      // and the ledger laws are exact, not eventual.
      const auto closed_loop_batches = [&](std::uint64_t count) {
        for (std::uint64_t b = 0; b < count; ++b) {
          fill_batch(rng, pools, config.listed_fraction,
                     config.reused_fraction, batch);
          if (!client.send_batch(request_id(b), batch)) return;
          ++ledger.valid_sent;
          const auto response = client.read_response();
          if (!response) return;
          absorb(*response);
        }
      };
      const auto drain_to_eof = [&] {
        while (auto response = client.read_response()) absorb(*response);
      };

      switch (behavior) {
        case ChaosBehavior::kWellBehaved: {
          closed_loop_batches(config.batches_per_client);
          client.shutdown_write();
          drain_to_eof();
          break;
        }
        case ChaosBehavior::kTorn: {
          closed_loop_batches(config.batches_per_client);
          fill_batch(rng, pools, config.listed_fraction,
                     config.reused_fraction, batch);
          const std::string frame = encode_request(request_id(1u << 19), batch);
          if (client.send_bytes(
                  std::string_view(frame).substr(0, frame.size() / 2))) {
            ++ledger.torn_sent;
          }
          client.close_now();  // abrupt exit: the server sees EOF mid-frame
          break;
        }
        case ChaosBehavior::kGarbage: {
          closed_loop_batches(config.batches_per_client);
          // A length-sane frame whose magic word is wrong: poisons the
          // decoder as kBadMagic, never parses further.
          std::string frame = u32_bytes(
              static_cast<std::uint32_t>(kFrameHeaderBytes));
          frame += u32_bytes(0xdeadbeefu);
          frame.append(kFrameHeaderBytes - 4, '\0');
          if (client.send_bytes(frame)) ++ledger.garbage_sent;
          drain_to_eof();  // the server closes the poisoned session
          break;
        }
        case ChaosBehavior::kOversized: {
          closed_loop_batches(config.batches_per_client);
          // Four bytes are enough: the declared length alone trips the cap
          // before any payload is read or allocated.
          if (client.send_bytes(u32_bytes(
                  static_cast<std::uint32_t>(kMaxFrameBytes + 1)))) {
            ++ledger.oversized_sent;
          }
          drain_to_eof();
          break;
        }
        case ChaosBehavior::kFlood: {
          // Open-loop burst: every frame written before any response is
          // read, the shape that exercises queue-full SHED responses.
          // Volume stays far below socket buffers so the burst cannot
          // deadlock against the unread responses.
          std::uint64_t sent = 0;
          for (std::uint64_t b = 0; b < config.batches_per_client; ++b) {
            fill_batch(rng, pools, config.listed_fraction,
                       config.reused_fraction, batch);
            if (!client.send_batch(request_id(b), batch)) break;
            ++ledger.valid_sent;
            ++sent;
          }
          client.shutdown_write();
          drain_to_eof();
          (void)sent;
          break;
        }
        case ChaosBehavior::kStall: {
          closed_loop_batches(config.batches_per_client / 2);
          fill_batch(rng, pools, config.listed_fraction,
                     config.reused_fraction, batch);
          const std::string frame = encode_request(request_id(1u << 19), batch);
          if (client.send_bytes(
                  std::string_view(frame).substr(0, frame.size() / 2))) {
            ++ledger.stalls;
          }
          // Silence: hold the half-open frame until the server's stall
          // eviction closes the session (observed here as EOF).
          drain_to_eof();
          break;
        }
      }

      const std::lock_guard<std::mutex> lock(merge_mutex);
      total.valid_sent += ledger.valid_sent;
      total.torn_sent += ledger.torn_sent;
      total.garbage_sent += ledger.garbage_sent;
      total.oversized_sent += ledger.oversized_sent;
      total.stalls += ledger.stalls;
      total.ok_received += ledger.ok_received;
      total.shed_received += ledger.shed_received;
    });
  }
  for (std::thread& thread : threads) thread.join();
  return total;
}

}  // namespace reuse::serve
