// Hostile-client-proof concurrent serving front end for LookupEngine.
//
// The offline pipeline produces verdicts; operationally they are consumed
// by many concurrent clients that misbehave in every way a network lets
// them: torn writes, garbage bytes, floods, half-open stalls, and plain
// slowness. This server is built so that none of those can take the
// service down or silently lose a request:
//
//   * Sharded worker loops. Client sessions are assigned round-robin to W
//     poll-based worker threads; a worker owns its sessions exclusively
//     (no cross-worker locks on session state). All workers share one
//     LookupEngine, whose epoch-based read side scales with cores.
//   * Bounded queues + explicit backpressure. Each session has a bounded
//     pending-request queue. When it is full, further decoded frames are
//     answered immediately with a SHED response — an explicit, accountable
//     backpressure signal, never a silent drop.
//   * Deadlines. A queued request older than deadline_ms is answered SHED
//     rather than served stale.
//   * Strict validation. A frame that fails validation (frame.h) poisons
//     its session: the rejection is counted by kind and the connection is
//     closed — once framing is wrong, nothing later in the stream can be
//     trusted. Torn streams (EOF mid-frame) count as torn.
//   * Slow-client eviction. A session stuck mid-frame longer than
//     stall_timeout_ms (slow-loris), or one that stops reading until its
//     outbound buffer exceeds max_outbound_bytes, is evicted; any queued
//     requests it had are counted as shed (evicted), keeping the ledger
//     law intact: served + shed + rejected == submitted, always.
//   * Hot reload with last-good fallback. reload() compiles-in a new
//     snapshot under full load via LookupEngine::publish; a file that
//     fails validation/checksum leaves the previous snapshot serving and
//     only bumps reload_failures.
//   * Graceful drain. drain() stops reading, serves and flushes whatever
//     was already accepted, then closes every session and joins workers.
//
// Transport is a socketpair per client (connect_client returns the client
// end), so tests and the in-process load generator need no network stack;
// the protocol itself is stream-agnostic.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frame.h"
#include "serve/lookup.h"

namespace reuse::serve {

struct ServerConfig {
  /// Worker threads (session shards). Clamped to >= 1.
  int workers = 1;
  /// Pending request frames a session may queue before SHED responses.
  std::size_t max_queue = 64;
  /// Outbound bytes buffered for a non-reading client before eviction.
  std::size_t max_outbound_bytes = 1 << 20;
  /// Queued requests older than this are shed instead of served; <= 0
  /// disables deadline shedding.
  int deadline_ms = 1000;
  /// Sessions stuck mid-frame longer than this are evicted (slow-loris);
  /// <= 0 disables stall eviction.
  int stall_timeout_ms = 1000;
};

/// Server-side ledger. Every counter is an order-independent sum, so the
/// totals are deterministic across worker counts for a deterministic
/// workload; the chaos suite reconciles them exactly against client-side
/// injection ledgers. Law: served + shed_total() + rejected_total() equals
/// submitted_valid + rejected_total() (i.e. every accepted frame is served
/// or shed; every invalid frame is rejected; nothing vanishes).
struct ServerStats {
  std::uint64_t submitted_valid = 0;  ///< well-formed frames decoded
  std::uint64_t served = 0;           ///< answered with OK verdicts
  std::uint64_t shed_overload = 0;    ///< SHED: queue full on arrival
  std::uint64_t shed_deadline = 0;    ///< SHED: rotted past deadline_ms
  std::uint64_t shed_evicted = 0;     ///< queued on a session when evicted
  std::uint64_t rejected_torn = 0;      ///< EOF mid-frame
  std::uint64_t rejected_garbage = 0;   ///< bad magic/length/count
  std::uint64_t rejected_oversized = 0;  ///< declared length over the cap
  std::uint64_t clients_evicted = 0;  ///< stalled or non-reading sessions
  std::uint64_t served_listed = 0;  ///< listed bits across served verdicts
  std::uint64_t served_reused = 0;  ///< reuse bits across served verdicts

  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_overload + shed_deadline + shed_evicted;
  }
  [[nodiscard]] std::uint64_t rejected_total() const {
    return rejected_torn + rejected_garbage + rejected_oversized;
  }
  /// Everything that arrived: accepted frames plus detected rejects.
  [[nodiscard]] std::uint64_t submitted_total() const {
    return submitted_valid + rejected_total();
  }
  /// The no-silent-drops law; drain() guarantees it once clients are done.
  [[nodiscard]] bool reconciles() const {
    return served + shed_total() + rejected_total() == submitted_total();
  }
};

class LookupServer {
 public:
  /// The engine must outlive the server. Publishing to the engine from
  /// outside (e.g. a publish storm) is safe at any time.
  LookupServer(LookupEngine& engine, ServerConfig config);
  /// Drains (graceful) if the caller has not already.
  ~LookupServer();

  LookupServer(const LookupServer&) = delete;
  LookupServer& operator=(const LookupServer&) = delete;

  /// Creates a socketpair session, hands the server end to a worker shard
  /// (round-robin), and returns the connected client end. The caller owns
  /// the returned fd and must close() it. Returns -1 after drain() or on
  /// socketpair failure.
  [[nodiscard]] int connect_client();

  /// Loads `path` and publishes it to the engine under full load. On any
  /// validation failure the last-good snapshot keeps serving and only the
  /// failure counter moves. Thread-safe.
  bool reload(const std::string& path, std::string* error = nullptr);
  [[nodiscard]] std::uint64_t reloads() const {
    return reloads_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reload_failures() const {
    return reload_failures_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the ledger (counters are atomics; the value is exact once
  /// clients have quiesced or after drain()).
  [[nodiscard]] ServerStats stats() const;

  /// Graceful shutdown: stop reading, answer/flush everything accepted,
  /// close sessions, join workers. Idempotent. Clients observe EOF after
  /// their last response.
  void drain();

 private:
  struct Session;
  struct Worker;

  void worker_loop(Worker& worker);
  void read_session(Session& session);
  void handle_frame(Session& session, RequestFrame frame);
  void process_queue(Session& session, std::vector<net::Ipv4Address>& scratch,
                     std::vector<Verdict>& verdicts);
  void flush_output(Session& session);
  void close_session(Session& session);
  void wake(Worker& worker);

  LookupEngine& engine_;
  const ServerConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::uint64_t> next_shard_{0};
  std::atomic<bool> draining_{false};
  bool drained_ = false;
  std::mutex drain_mutex_;

  std::mutex reload_mutex_;
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> reload_failures_{0};

  // Ledger (see ServerStats). Relaxed atomics: order-independent sums.
  std::atomic<std::uint64_t> submitted_valid_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_overload_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_evicted_{0};
  std::atomic<std::uint64_t> rejected_torn_{0};
  std::atomic<std::uint64_t> rejected_garbage_{0};
  std::atomic<std::uint64_t> rejected_oversized_{0};
  std::atomic<std::uint64_t> clients_evicted_{0};
  std::atomic<std::uint64_t> served_listed_{0};
  std::atomic<std::uint64_t> served_reused_{0};
};

/// Registry handles for the lookupd_ metric family (serving front end).
struct LookupdMetrics {
  net::metrics::Counter& submitted;  ///< valid frames decoded
  net::metrics::Counter& served;
  net::metrics::Counter& shed;
  net::metrics::Counter& rejected;
  net::metrics::Counter& evicted;
  net::metrics::Counter& reloads;
  net::metrics::Counter& reload_failures;
};
LookupdMetrics& lookupd_metrics();

}  // namespace reuse::serve
