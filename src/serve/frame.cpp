#include "serve/frame.h"

#include <cstring>

namespace reuse::serve {
namespace {

void put_u32(std::string& out, std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof bytes);
  out.append(bytes, sizeof bytes);
}

void put_u64(std::string& out, std::uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof bytes);
  out.append(bytes, sizeof bytes);
}

[[nodiscard]] std::uint32_t get_u32(const char* at) {
  std::uint32_t value;
  std::memcpy(&value, at, sizeof value);
  return value;
}

[[nodiscard]] std::uint64_t get_u64(const char* at) {
  std::uint64_t value;
  std::memcpy(&value, at, sizeof value);
  return value;
}

}  // namespace

std::string_view to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone:
      return "none";
    case FrameError::kOversized:
      return "oversized frame";
    case FrameError::kBadMagic:
      return "bad magic";
    case FrameError::kBadLength:
      return "bad frame length";
    case FrameError::kBadCount:
      return "bad batch count";
  }
  return "unknown";
}

std::string encode_request(std::uint64_t request_id,
                           std::span<const std::uint32_t> addresses) {
  std::string out;
  out.reserve(4 + kFrameHeaderBytes + 4 * addresses.size());
  put_u32(out,
          static_cast<std::uint32_t>(kFrameHeaderBytes + 4 * addresses.size()));
  put_u32(out, kRequestMagic);
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(addresses.size()) & 0xffffu);
  for (const std::uint32_t address : addresses) put_u32(out, address);
  return out;
}

std::string encode_response(std::uint64_t request_id, ResponseStatus status,
                            std::span<const std::uint32_t> verdicts) {
  std::string out;
  out.reserve(4 + kFrameHeaderBytes + 4 * verdicts.size());
  put_u32(out,
          static_cast<std::uint32_t>(kFrameHeaderBytes + 4 * verdicts.size()));
  put_u32(out, kResponseMagic);
  put_u64(out, request_id);
  put_u32(out, static_cast<std::uint32_t>(status));
  for (const std::uint32_t verdict : verdicts) put_u32(out, verdict);
  return out;
}

namespace detail {

void FrameBuffer::feed(std::string_view bytes) {
  if (error_ != FrameError::kNone) return;  // poisoned streams eat nothing
  // Compact before growing: keeps the buffer bounded by one frame plus one
  // read's worth of bytes regardless of how long the session lives.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > kMaxFrameBytes) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

std::optional<std::string_view> FrameBuffer::next_frame() {
  if (error_ != FrameError::kNone) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::nullopt;
  const std::uint32_t frame_len = get_u32(buffer_.data() + consumed_);
  // Bounds first, before trusting frame_len for anything: an attacker's
  // length word must never size an allocation or an index.
  if (frame_len > kMaxFrameBytes) {
    error_ = FrameError::kOversized;
    return std::nullopt;
  }
  if (frame_len < kFrameHeaderBytes) {
    error_ = FrameError::kBadLength;
    return std::nullopt;
  }
  if (available < 4 + static_cast<std::size_t>(frame_len)) {
    return std::nullopt;  // incomplete; wait for more transport bytes
  }
  const std::string_view frame(buffer_.data() + consumed_ + 4, frame_len);
  consumed_ += 4 + static_cast<std::size_t>(frame_len);
  return frame;
}

}  // namespace detail

std::optional<RequestFrame> RequestDecoder::next() {
  const auto frame = buffer_.next_frame();
  if (!frame) return std::nullopt;
  if (get_u32(frame->data()) != kRequestMagic) {
    buffer_.poison(FrameError::kBadMagic);
    return std::nullopt;
  }
  const std::uint32_t count_word = get_u32(frame->data() + 12);
  const std::uint32_t count = count_word & 0xffffu;
  if ((count_word >> 16) != 0 || count == 0 || count > kMaxFrameAddresses) {
    buffer_.poison(FrameError::kBadCount);
    return std::nullopt;
  }
  if (frame->size() != kFrameHeaderBytes + 4 * count) {
    buffer_.poison(FrameError::kBadLength);
    return std::nullopt;
  }
  RequestFrame request;
  request.request_id = get_u64(frame->data() + 4);
  request.addresses.resize(count);
  std::memcpy(request.addresses.data(), frame->data() + kFrameHeaderBytes,
              4 * count);
  return request;
}

std::optional<ResponseFrame> ResponseDecoder::next() {
  const auto frame = buffer_.next_frame();
  if (!frame) return std::nullopt;
  if (get_u32(frame->data()) != kResponseMagic) {
    buffer_.poison(FrameError::kBadMagic);
    return std::nullopt;
  }
  const std::uint32_t status_word = get_u32(frame->data() + 12);
  if (status_word > static_cast<std::uint32_t>(ResponseStatus::kReject)) {
    buffer_.poison(FrameError::kBadCount);
    return std::nullopt;
  }
  const std::size_t payload = frame->size() - kFrameHeaderBytes;
  if (payload % 4 != 0) {
    buffer_.poison(FrameError::kBadLength);
    return std::nullopt;
  }
  ResponseFrame response;
  response.request_id = get_u64(frame->data() + 4);
  response.status = static_cast<ResponseStatus>(status_word);
  response.verdicts.resize(payload / 4);
  if (payload != 0) {
    std::memcpy(response.verdicts.data(), frame->data() + kFrameHeaderBytes,
                payload);
  }
  return response;
}

}  // namespace reuse::serve
