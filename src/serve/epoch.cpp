#include "serve/epoch.h"

#include <atomic>
#include <cassert>
#include <mutex>
#include <new>
#include <thread>

namespace reuse::serve {

/// One reader thread's announcement word. 0 = quiescent; an odd value E+1
/// means "reading at epoch E". Padded to its own cache line so a reader's
/// announce store never invalidates another reader's line.
struct alignas(64) EpochDomain::Slot {
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<bool> claimed{false};
};

/// Slots are allocated in blocks chained into a lock-free append-only list;
/// blocks are never freed, so Slot pointers are stable for the process
/// lifetime (a thread caches its slot in thread_local storage).
struct EpochDomain::SlotBlock {
  static constexpr int kSlots = 64;
  Slot slots[kSlots];
  std::atomic<SlotBlock*> next{nullptr};
};

struct EpochDomain::Impl {
  alignas(64) std::atomic<std::uint64_t> global_epoch{2};
  /// Serializes writers: concurrent synchronize() calls queue here, which
  /// keeps the epoch bump + scan pairing simple to reason about.
  std::mutex writer_mutex;
  SlotBlock head;
};

namespace {

/// Per-thread registration for the (singleton) domain: the claimed slot,
/// plus the re-entrancy depth. The destructor runs at thread exit and
/// returns the slot to the free pool.
struct TlsRecord {
  EpochDomain::Slot* slot = nullptr;
  int depth = 0;
  ~TlsRecord();
};

thread_local TlsRecord tls_record;

}  // namespace

TlsRecord::~TlsRecord() {
  if (slot == nullptr) return;
  // The thread is exiting, so it cannot be inside a read section; release
  // order pairs with the acquire CAS of the next claimant.
  slot->epoch.store(0, std::memory_order_release);
  slot->claimed.store(false, std::memory_order_release);
}

EpochDomain::EpochDomain() : impl_(new Impl) {}

EpochDomain& EpochDomain::instance() {
  // Leaked singleton: must outlive every thread_local TlsRecord destructor,
  // and static destruction order cannot guarantee that.
  static EpochDomain* domain = new EpochDomain();
  return *domain;
}

EpochDomain::Slot* EpochDomain::claim_slot() {
  for (SlotBlock* block = &impl_->head;;) {
    for (Slot& slot : block->slots) {
      if (slot.claimed.load(std::memory_order_relaxed)) continue;
      bool expected = false;
      if (slot.claimed.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
        return &slot;
      }
    }
    SlotBlock* next = block->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      auto* fresh = new SlotBlock();
      SlotBlock* expected = nullptr;
      if (block->next.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel)) {
        next = fresh;
      } else {
        delete fresh;  // lost the append race; use the winner's block
        next = block->next.load(std::memory_order_acquire);
      }
    }
    block = next;
  }
}

void EpochDomain::enter() {
  if (++tls_record.depth > 1) return;  // nested: outer announce still holds
  Slot* slot = tls_record.slot;
  if (slot == nullptr) {
    slot = claim_slot();
    tls_record.slot = slot;
  }
  for (;;) {
    const std::uint64_t e = impl_->global_epoch.load(std::memory_order_seq_cst);
    slot->epoch.store(e + 1, std::memory_order_seq_cst);
    if (impl_->global_epoch.load(std::memory_order_seq_cst) == e) return;
    // A synchronize() bumped the epoch inside our announce window; re-announce
    // at the new epoch so the writer's scan cannot miss us. Each retry
    // requires another writer bump, so this cannot livelock.
  }
}

void EpochDomain::exit() {
  assert(tls_record.depth > 0);
  if (--tls_record.depth > 0) return;
  tls_record.slot->epoch.store(0, std::memory_order_seq_cst);
}

void EpochDomain::synchronize() {
  const std::lock_guard<std::mutex> lock(impl_->writer_mutex);
  const std::uint64_t next_epoch =
      impl_->global_epoch.fetch_add(2, std::memory_order_seq_cst) + 2;
  for (SlotBlock* block = &impl_->head; block != nullptr;
       block = block->next.load(std::memory_order_acquire)) {
    for (Slot& slot : block->slots) {
      for (int spins = 0;; ++spins) {
        const std::uint64_t announced =
            slot.epoch.load(std::memory_order_seq_cst);
        if (announced == 0 || announced >= next_epoch) break;
        // A reader from before the bump is still inside its section; its
        // sections are bounded (one lookup batch), so this terminates.
        if (spins > 64) {
          std::this_thread::yield();
        }
      }
    }
  }
}

std::uint64_t EpochDomain::epoch() const {
  return impl_->global_epoch.load(std::memory_order_seq_cst);
}

int EpochDomain::active_slots() const {
  int claimed = 0;
  for (SlotBlock* block = &impl_->head; block != nullptr;
       block = block->next.load(std::memory_order_acquire)) {
    for (Slot& slot : block->slots) {
      if (slot.claimed.load(std::memory_order_relaxed)) ++claimed;
    }
  }
  return claimed;
}

}  // namespace reuse::serve
