#include "serve/lookup.h"

#include <utility>

namespace reuse::serve {
namespace {

/// Scoped hold of the engine's pin lock. test-and-set(acquire) to lock,
/// store(release) to unlock; the inner relaxed-load spin keeps the
/// contended path off the cache line's exclusive state. The release
/// unlock is what makes the protocol TSan-provable (see lookup.h).
class PinGuard {
 public:
  explicit PinGuard(std::atomic<bool>& lock) : lock_(lock) {
    while (lock_.exchange(true, std::memory_order_acquire)) {
      while (lock_.load(std::memory_order_relaxed)) {
      }
    }
  }
  ~PinGuard() { lock_.store(false, std::memory_order_release); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  std::atomic<bool>& lock_;
};

}  // namespace

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics{
      net::metrics::counter("serve_queries_total",
                            "single-address verdicts served"),
      net::metrics::counter("serve_batches_total", "verdict_batch calls"),
      net::metrics::counter("serve_batch_queries_total",
                            "addresses answered through batches"),
      net::metrics::counter("serve_listed_total",
                            "verdicts carrying the listed bit"),
      net::metrics::counter("serve_reused_total",
                            "verdicts carrying a reuse bit (NATed/dynamic)"),
      net::metrics::counter("serve_snapshot_swaps_total",
                            "snapshots published to the engine"),
      net::metrics::gauge("serve_snapshot_entries",
                          "entry count of the live snapshot"),
      net::metrics::histogram(
          "serve_batch_micros",
          "wall-clock per replayed workload batch (scheduling-dependent, "
          "excluded from the determinism contract like pool_)",
          {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
           20000, 50000, 100000}),
  };
  return metrics;
}

std::shared_ptr<const CompiledSnapshot> LookupEngine::snapshot() const {
  PinGuard guard(pin_lock_);
  return snapshot_;
}

void LookupEngine::publish(std::shared_ptr<const CompiledSnapshot> snapshot) {
  ServeMetrics& metrics = serve_metrics();
  if (snapshot != nullptr) {
    metrics.entries.set(static_cast<std::int64_t>(snapshot->entry_count()));
  } else {
    metrics.entries.set(0);
  }
  std::shared_ptr<const CompiledSnapshot> superseded;
  {
    PinGuard guard(pin_lock_);
    superseded = std::exchange(snapshot_, std::move(snapshot));
  }
  // `superseded` drops here, outside the critical section: if this was the
  // last reference, the whole artifact deallocates without ever extending
  // the pin window.
  metrics.swaps.increment();
}

Verdict LookupEngine::verdict(net::Ipv4Address address) const {
  ServeMetrics& metrics = serve_metrics();
  metrics.queries.increment();
  const std::shared_ptr<const CompiledSnapshot> pinned = snapshot();
  if (pinned == nullptr) return Verdict{};
  const Verdict v = pinned->verdict(address);
  if (v.listed()) metrics.listed.increment();
  if (v.reused()) metrics.reused.increment();
  return v;
}

void LookupEngine::verdict_batch(std::span<const net::Ipv4Address> queries,
                                 std::span<Verdict> out) const {
  ServeMetrics& metrics = serve_metrics();
  metrics.batches.increment();
  metrics.batch_queries.add(queries.size());
  const std::shared_ptr<const CompiledSnapshot> pinned = snapshot();
  if (pinned == nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i) out[i] = Verdict{};
    return;
  }
  pinned->verdict_batch(queries, out);
  std::uint64_t listed = 0;
  std::uint64_t reused = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    listed += out[i].listed() ? 1 : 0;
    reused += out[i].reused() ? 1 : 0;
  }
  if (listed != 0) metrics.listed.add(listed);
  if (reused != 0) metrics.reused.add(reused);
}

}  // namespace reuse::serve
