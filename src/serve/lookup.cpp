#include "serve/lookup.h"

#include <stdexcept>
#include <utility>

#include "serve/epoch.h"

namespace reuse::serve {

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics{
      net::metrics::counter("serve_queries_total",
                            "single-address verdicts served"),
      net::metrics::counter("serve_batches_total", "verdict_batch calls"),
      net::metrics::counter("serve_batch_queries_total",
                            "addresses answered through batches"),
      net::metrics::counter("serve_listed_total",
                            "verdicts carrying the listed bit"),
      net::metrics::counter("serve_reused_total",
                            "verdicts carrying a reuse bit (NATed/dynamic)"),
      net::metrics::counter("serve_snapshot_swaps_total",
                            "snapshots published to the engine"),
      net::metrics::gauge("serve_snapshot_entries",
                          "entry count of the live snapshot"),
      net::metrics::histogram(
          "serve_batch_micros",
          "wall-clock per replayed workload batch (scheduling-dependent, "
          "excluded from the determinism contract like pool_)",
          {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
           20000, 50000, 100000}),
  };
  return metrics;
}

LookupEngine::~LookupEngine() {
  // Whoever still held a raw pointer from a read section must be gone
  // before owner_ (and with it the artifact) is destroyed.
  EpochDomain::instance().synchronize();
}

std::shared_ptr<const CompiledSnapshot> LookupEngine::snapshot() const {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return owner_;
}

void LookupEngine::publish(std::shared_ptr<const CompiledSnapshot> snapshot) {
  if (snapshot == nullptr) {
    throw std::invalid_argument(
        "LookupEngine::publish: null snapshot (publish an empty "
        "CompiledSnapshot to serve nothing)");
  }
  ServeMetrics& metrics = serve_metrics();
  metrics.entries.set(static_cast<std::int64_t>(snapshot->entry_count()));
  std::shared_ptr<const CompiledSnapshot> superseded;
  {
    const std::lock_guard<std::mutex> lock(publish_mutex_);
    live_.store(snapshot.get(), std::memory_order_seq_cst);
    superseded = std::exchange(owner_, std::move(snapshot));
    // Wait out every reader that could have loaded the superseded pointer.
    // Readers entering from here on can only see the new pointer, so after
    // this returns the old artifact has zero readers, forever.
    EpochDomain::instance().synchronize();
  }
  // `superseded` drops here, outside the critical section: if this was the
  // last reference, the whole artifact deallocates with no reader in sight.
  metrics.swaps.increment();
}

Verdict LookupEngine::verdict(net::Ipv4Address address) const {
  ServeMetrics& metrics = serve_metrics();
  metrics.queries.increment();
  const ReadGuard guard;
  const CompiledSnapshot* pinned = live_.load(std::memory_order_seq_cst);
  if (pinned == nullptr) return Verdict{};
  const Verdict v = pinned->verdict(address);
  if (v.listed()) metrics.listed.increment();
  if (v.reused()) metrics.reused.increment();
  return v;
}

void LookupEngine::verdict_batch(std::span<const net::Ipv4Address> queries,
                                 std::span<Verdict> out) const {
  ServeMetrics& metrics = serve_metrics();
  metrics.batches.increment();
  metrics.batch_queries.add(queries.size());
  std::uint64_t listed = 0;
  std::uint64_t reused = 0;
  {
    const ReadGuard guard;
    const CompiledSnapshot* pinned = live_.load(std::memory_order_seq_cst);
    if (pinned == nullptr) {
      for (std::size_t i = 0; i < queries.size(); ++i) out[i] = Verdict{};
      return;
    }
    pinned->verdict_batch(queries, out);
  }
  for (std::size_t i = 0; i < queries.size(); ++i) {
    listed += out[i].listed() ? 1 : 0;
    reused += out[i].reused() ? 1 : 0;
  }
  if (listed != 0) metrics.listed.add(listed);
  if (reused != 0) metrics.reused.add(reused);
}

}  // namespace reuse::serve
