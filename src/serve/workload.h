// Deterministic synthetic query workload for the lookup engine.
//
// The harness answers the performance question the offline pipeline never
// had to: what does the artifact serve at traffic rates? It replays a
// seeded mix of listed / reused / clean addresses in fixed-size batches
// across N query threads, optionally swapping the served snapshot mid-run,
// and reports throughput plus p50/p99/max batch latency.
//
// Determinism split: *which* addresses are queried is a pure function of
// (seed, thread index, batch index) via net::substream — the verdict
// tallies are byte-identical across runs and thread interleavings. The
// *latencies* are wall-clock and scheduling-dependent by nature; they are
// reported, not asserted on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/lookup.h"

namespace reuse::serve {

struct WorkloadConfig {
  std::uint64_t seed = 1;
  /// Total queries across all threads (rounded up to whole batches).
  std::uint64_t query_count = 1'000'000;
  std::size_t batch_size = 64;
  int threads = 1;
  /// Mix fractions; the remainder are uniform-random (mostly clean)
  /// addresses. Fractions of an empty sample pool fall through to random.
  double listed_fraction = 0.4;
  double reused_fraction = 0.3;
  /// Offered load in queries/second across all threads; 0 = unthrottled
  /// (each thread issues its next batch immediately). Throttled replay
  /// measures latency at a realistic arrival rate instead of closed-loop
  /// saturation.
  double target_qps = 0.0;
  /// When set, the harness publishes `swap_to` once half the batches have
  /// completed — the reload-under-traffic scenario. The swapped-in
  /// snapshot should answer identically (e.g. a reload of the same
  /// artifact) if the caller also checks verdict tallies.
  std::shared_ptr<const CompiledSnapshot> swap_to;
};

struct WorkloadReport {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t listed_hits = 0;  ///< deterministic given (seed, snapshot)
  std::uint64_t reused_hits = 0;
  bool swapped = false;
  double wall_seconds = 0.0;  ///< scheduling-dependent, like everything below
  double throughput_qps = 0.0;
  std::uint64_t p50_nanos = 0;
  std::uint64_t p99_nanos = 0;
  std::uint64_t max_nanos = 0;
};

/// Replays the workload against `engine`, sampling listed/reused targets
/// from `sample_source` (normally the snapshot the engine currently
/// serves). Blocks until every batch has completed; per-batch latencies
/// feed the serve_batch_micros histogram.
[[nodiscard]] WorkloadReport run_workload(
    LookupEngine& engine, const CompiledSnapshot& sample_source,
    const WorkloadConfig& config);

}  // namespace reuse::serve
