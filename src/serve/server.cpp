#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>

#include "serve/frame.h"

namespace reuse::serve {
namespace {

using Clock = std::chrono::steady_clock;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void bump(std::atomic<std::uint64_t>& counter, std::uint64_t n = 1) {
  counter.fetch_add(n, std::memory_order_relaxed);
}

}  // namespace

LookupdMetrics& lookupd_metrics() {
  static LookupdMetrics metrics{
      net::metrics::counter("lookupd_frames_submitted_total",
                            "well-formed request frames decoded"),
      net::metrics::counter("lookupd_frames_served_total",
                            "request frames answered with OK verdicts"),
      net::metrics::counter("lookupd_frames_shed_total",
                            "request frames answered SHED (overload, "
                            "deadline, or eviction)"),
      net::metrics::counter("lookupd_frames_rejected_total",
                            "invalid frames (torn/garbage/oversized)"),
      net::metrics::counter("lookupd_clients_evicted_total",
                            "sessions evicted for stalling or not reading"),
      net::metrics::counter("lookupd_reloads_total",
                            "snapshot hot reloads published under load"),
      net::metrics::counter("lookupd_reload_failures_total",
                            "reload attempts rejected; last-good kept"),
  };
  return metrics;
}

/// One accepted request waiting on a session's bounded queue.
struct PendingRequest {
  std::uint64_t request_id = 0;
  std::vector<std::uint32_t> addresses;
  Clock::time_point arrival;
};

/// One client connection, owned exclusively by its worker thread.
struct LookupServer::Session {
  int fd = -1;
  RequestDecoder decoder;
  std::deque<PendingRequest> queue;
  std::string out;
  std::size_t out_pos = 0;
  Clock::time_point last_byte = Clock::now();
  bool open = true;
  /// Clean EOF seen (client shutdown_write): finish the queue and flush
  /// before closing, so a half-closed client still gets every answer it
  /// is owed.
  bool read_closed = false;

  [[nodiscard]] bool has_output() const { return out_pos < out.size(); }
};

struct LookupServer::Worker {
  std::thread thread;
  int wake_read = -1;
  int wake_write = -1;
  std::mutex inbox_mutex;
  std::vector<int> inbox;  ///< fds of freshly connected sessions
  std::vector<std::unique_ptr<Session>> sessions;
};

LookupServer::LookupServer(LookupEngine& engine, ServerConfig config)
    : engine_(engine), config_(config) {
  const int workers = std::max(config_.workers, 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    auto worker = std::make_unique<Worker>();
    int pipe_fds[2] = {-1, -1};
    if (::pipe(pipe_fds) == 0) {
      set_nonblocking(pipe_fds[0]);
      set_nonblocking(pipe_fds[1]);
      worker->wake_read = pipe_fds[0];
      worker->wake_write = pipe_fds[1];
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { worker_loop(*raw); });
  }
}

LookupServer::~LookupServer() { drain(); }

void LookupServer::wake(Worker& worker) {
  if (worker.wake_write < 0) return;
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(worker.wake_write, &byte, 1);
}

int LookupServer::connect_client() {
  if (draining_.load(std::memory_order_acquire)) return -1;
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return -1;
  set_nonblocking(fds[0]);  // server end; the client end stays blocking
  Worker& shard = *workers_[next_shard_.fetch_add(
                               1, std::memory_order_relaxed) %
                           workers_.size()];
  {
    const std::lock_guard<std::mutex> lock(shard.inbox_mutex);
    shard.inbox.push_back(fds[0]);
  }
  wake(shard);
  return fds[1];
}

bool LookupServer::reload(const std::string& path, std::string* error) {
  const std::lock_guard<std::mutex> lock(reload_mutex_);
  // Fail closed to the last-good snapshot on any validation failure: the
  // engine keeps serving what it already has, and only the failure ledger
  // records the attempt.
  const auto fail = [&](std::string why) {
    bump(reload_failures_);
    lookupd_metrics().reload_failures.increment();
    if (error != nullptr) *error = std::move(why);
    return false;
  };

  // Sniff the artifact kind by magic: an incremental pipeline ships deltas
  // (serve/snapshot.h SnapshotDelta) keyed to the fingerprint of the
  // snapshot currently being served; everything else goes through the full
  // snapshot loader as before.
  if (file_magic(path) == kSnapshotDeltaMagic) {
    std::string why;
    auto delta = SnapshotDelta::load(path, &why);
    if (!delta) return fail(std::move(why));
    const std::shared_ptr<const CompiledSnapshot> base = engine_.snapshot();
    if (base == nullptr) {
      return fail("delta apply failed: no live snapshot to apply it to");
    }
    auto applied = delta->apply(*base, &why);
    if (!applied) return fail(std::move(why));
    engine_.publish(
        std::make_shared<const CompiledSnapshot>(*std::move(applied)));
    bump(reloads_);
    lookupd_metrics().reloads.increment();
    return true;
  }

  std::string why;
  auto loaded = CompiledSnapshot::load(path, &why);
  if (!loaded) return fail(std::move(why));
  engine_.publish(
      std::make_shared<const CompiledSnapshot>(*std::move(loaded)));
  bump(reloads_);
  lookupd_metrics().reloads.increment();
  return true;
}

ServerStats LookupServer::stats() const {
  ServerStats out;
  out.submitted_valid = submitted_valid_.load(std::memory_order_relaxed);
  out.served = served_.load(std::memory_order_relaxed);
  out.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  out.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  out.shed_evicted = shed_evicted_.load(std::memory_order_relaxed);
  out.rejected_torn = rejected_torn_.load(std::memory_order_relaxed);
  out.rejected_garbage = rejected_garbage_.load(std::memory_order_relaxed);
  out.rejected_oversized =
      rejected_oversized_.load(std::memory_order_relaxed);
  out.clients_evicted = clients_evicted_.load(std::memory_order_relaxed);
  out.served_listed = served_listed_.load(std::memory_order_relaxed);
  out.served_reused = served_reused_.load(std::memory_order_relaxed);
  return out;
}

void LookupServer::drain() {
  const std::lock_guard<std::mutex> lock(drain_mutex_);
  if (drained_) return;
  draining_.store(true, std::memory_order_release);
  for (auto& worker : workers_) wake(*worker);
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    if (worker->wake_read >= 0) ::close(worker->wake_read);
    if (worker->wake_write >= 0) ::close(worker->wake_write);
  }
  drained_ = true;
}

void LookupServer::close_session(Session& session) {
  if (!session.open) return;
  // Accepted-but-unserved requests must not vanish from the ledger: they
  // are shed by eviction/close, the third leg of the no-silent-drops law.
  if (!session.queue.empty()) {
    bump(shed_evicted_, session.queue.size());
    lookupd_metrics().shed.add(session.queue.size());
    session.queue.clear();
  }
  ::close(session.fd);
  session.fd = -1;
  session.open = false;
}

void LookupServer::handle_frame(Session& session, RequestFrame frame) {
  bump(submitted_valid_);
  lookupd_metrics().submitted.increment();
  if (session.queue.size() >= config_.max_queue) {
    // Explicit backpressure: the queue is bounded and the client is told
    // so, immediately, with a SHED response carrying its request id.
    bump(shed_overload_);
    lookupd_metrics().shed.increment();
    session.out += encode_response(frame.request_id, ResponseStatus::kShed,
                                   {});
    return;
  }
  PendingRequest pending;
  pending.request_id = frame.request_id;
  pending.addresses = std::move(frame.addresses);
  pending.arrival = Clock::now();
  session.queue.push_back(std::move(pending));
}

void LookupServer::read_session(Session& session) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(session.fd, buf, sizeof buf);
    if (n > 0) {
      session.last_byte = Clock::now();
      session.decoder.feed({buf, static_cast<std::size_t>(n)});
      while (auto frame = session.decoder.next()) {
        handle_frame(session, *std::move(frame));
      }
      switch (session.decoder.error()) {
        case FrameError::kNone:
          break;
        case FrameError::kOversized:
          bump(rejected_oversized_);
          lookupd_metrics().rejected.increment();
          close_session(session);
          return;
        default:
          // kBadMagic / kBadLength / kBadCount: the stream desynced; no
          // later byte can be trusted to start a frame.
          bump(rejected_garbage_);
          lookupd_metrics().rejected.increment();
          close_session(session);
          return;
      }
      continue;
    }
    if (n == 0) {  // orderly EOF
      if (session.decoder.mid_frame()) {
        // Torn write: the stream ended inside a frame. Nothing valid can
        // be pending on such a connection worth keeping it open for.
        bump(rejected_torn_);
        lookupd_metrics().rejected.increment();
        close_session(session);
      } else {
        // Clean half-close: serve what was accepted, then close.
        session.read_closed = true;
      }
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_session(session);  // transport error
    return;
  }
}

void LookupServer::process_queue(Session& session,
                                 std::vector<net::Ipv4Address>& scratch,
                                 std::vector<Verdict>& verdicts) {
  const auto deadline = std::chrono::milliseconds(
      config_.deadline_ms > 0 ? config_.deadline_ms : 0);
  while (!session.queue.empty()) {
    PendingRequest& pending = session.queue.front();
    if (config_.deadline_ms > 0 &&
        Clock::now() - pending.arrival > deadline) {
      bump(shed_deadline_);
      lookupd_metrics().shed.increment();
      session.out += encode_response(pending.request_id,
                                     ResponseStatus::kShed, {});
      session.queue.pop_front();
      continue;
    }
    scratch.clear();
    scratch.reserve(pending.addresses.size());
    for (const std::uint32_t value : pending.addresses) {
      scratch.emplace_back(value);
    }
    verdicts.resize(scratch.size());
    engine_.verdict_batch(scratch, verdicts);
    std::uint64_t listed = 0;
    std::uint64_t reused = 0;
    static_assert(sizeof(Verdict) == sizeof(std::uint32_t));
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      listed += verdicts[i].listed() ? 1 : 0;
      reused += verdicts[i].reused() ? 1 : 0;
    }
    session.out += encode_response(
        pending.request_id, ResponseStatus::kOk,
        {reinterpret_cast<const std::uint32_t*>(verdicts.data()),
         verdicts.size()});
    bump(served_);
    lookupd_metrics().served.increment();
    if (listed != 0) bump(served_listed_, listed);
    if (reused != 0) bump(served_reused_, reused);
    session.queue.pop_front();
  }
}

void LookupServer::flush_output(Session& session) {
  while (session.has_output()) {
    // MSG_NOSIGNAL: a hostile client that already closed its end must
    // produce EPIPE here, never a process-killing SIGPIPE.
    const ssize_t n =
        ::send(session.fd, session.out.data() + session.out_pos,
               session.out.size() - session.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      session.out_pos += static_cast<std::size_t>(n);
      session.last_byte = Clock::now();  // flush progress counts as liveness
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_session(session);  // peer closed or transport error
    return;
  }
  if (!session.has_output()) {
    session.out.clear();
    session.out_pos = 0;
  } else if (session.out.size() - session.out_pos >
             config_.max_outbound_bytes) {
    // The client stopped reading; buffering forever is how one slow client
    // takes down a shard. Evict.
    bump(clients_evicted_);
    lookupd_metrics().evicted.increment();
    close_session(session);
  }
}

void LookupServer::worker_loop(Worker& worker) {
  std::vector<pollfd> pfds;
  std::vector<net::Ipv4Address> scratch;
  std::vector<Verdict> verdicts;
  // Tick granularity for deadline/stall checks; fine-grained enough for
  // test timeouts, coarse enough to stay idle-cheap.
  const int tick_ms = 10;

  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(worker.inbox_mutex);
      for (const int fd : worker.inbox) {
        auto session = std::make_unique<Session>();
        session->fd = fd;
        session->last_byte = Clock::now();
        worker.sessions.push_back(std::move(session));
      }
      worker.inbox.clear();
    }
    const bool draining = draining_.load(std::memory_order_acquire);

    pfds.clear();
    pfds.push_back({worker.wake_read, POLLIN, 0});
    for (const auto& session : worker.sessions) {
      short events = 0;
      // While draining, accepted work is finished but nothing new is read.
      if (!draining && !session->read_closed) events |= POLLIN;
      if (session->has_output()) events |= POLLOUT;
      pfds.push_back({session->fd, events, 0});
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), tick_ms);
    if (worker.wake_read >= 0 && (pfds[0].revents & POLLIN) != 0) {
      char sink[64];
      while (::read(worker.wake_read, sink, sizeof sink) > 0) {
      }
    }

    std::size_t index = 1;
    for (const auto& session : worker.sessions) {
      const short revents = pfds[index++].revents;
      if (!session->open) continue;
      if (!draining && !session->read_closed &&
          (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_session(*session);
      }
    }
    for (const auto& session : worker.sessions) {
      if (!session->open) continue;
      process_queue(*session, scratch, verdicts);
      flush_output(*session);
      // Slow-loris: a frame started but not finished within the stall
      // budget means the client is holding a parser hostage on purpose
      // (or is broken); either way the session goes.
      if (session->open && config_.stall_timeout_ms > 0 &&
          session->decoder.mid_frame() &&
          Clock::now() - session->last_byte >
              std::chrono::milliseconds(config_.stall_timeout_ms)) {
        bump(clients_evicted_);
        lookupd_metrics().evicted.increment();
        close_session(*session);
      }
      // Half-closed and fully answered: nothing left to owe this client.
      if (session->open && session->read_closed && session->queue.empty() &&
          !session->has_output()) {
        close_session(*session);
      }
      // A drain must terminate even if a client holds its fd open without
      // ever reading its answers: stalled unflushable output is an
      // eviction, not a hang.
      if (session->open && draining && session->has_output() &&
          config_.stall_timeout_ms > 0 &&
          Clock::now() - session->last_byte >
              std::chrono::milliseconds(config_.stall_timeout_ms)) {
        bump(clients_evicted_);
        lookupd_metrics().evicted.increment();
        close_session(*session);
      }
    }
    std::erase_if(worker.sessions,
                  [](const std::unique_ptr<Session>& s) { return !s->open; });

    if (draining) {
      bool quiet = true;
      for (const auto& session : worker.sessions) {
        if (!session->queue.empty() || session->has_output()) {
          quiet = false;
          break;
        }
      }
      if (quiet) {
        for (const auto& session : worker.sessions) {
          close_session(*session);
        }
        worker.sessions.clear();
        return;
      }
    }
  }
}

}  // namespace reuse::serve
