// Wait-free-read query engine over atomically swappable compiled snapshots.
//
// Serving is read-mostly with rare whole-artifact replacement: a new day's
// snapshot arrives, readers must never stall, and the old artifact must
// stay valid for queries already in flight. Earlier versions pinned the
// snapshot shared_ptr under a tiny spinlock; that was correct but put every
// reader on one shared cache line (lock word + refcount), serializing the
// read side and exposing a livelock-shaped hazard under publish storms.
//
// The engine now uses epoch-based read-side reclamation (serve/epoch.h):
//   * Readers enter an epoch critical section (a store to their *own*
//     padded slot), load the raw live-snapshot pointer, and query the
//     immutable artifact. No shared cache line is written on the read
//     path; read throughput scales with cores.
//   * publish() stores the new raw pointer, then calls
//     EpochDomain::synchronize(), which waits until every reader that
//     could hold the old pointer has exited. Only then does the superseded
//     shared_ptr drop — so the artifact frees with provably zero readers,
//     and the engine never hands out a dangling pointer.
//   * Readers never wait for publishers; publishers wait (briefly — read
//     sections are one batch long) for readers. Concurrent publishers
//     serialize on a mutex, last write wins.
//
// The protocol is seq_cst atomics only — no standalone fences — so the
// TSan suite proves the swap safe rather than suppressing it (see
// epoch.h for the memory-model discussion).
//
// The hot path allocates nothing: verdicts are 32-bit words, batch output
// goes into caller-provided spans, and the serve_* metrics are cached
// registry handles doing relaxed atomic adds. Query *counters* are
// deterministic functions of the workload; the latency histogram
// (serve_batch_micros, fed by the workload harness) is wall-clock and —
// like the pool_ family — excluded from the determinism contract.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <span>

#include "netbase/metrics.h"
#include "serve/snapshot.h"

namespace reuse::serve {

/// Registry handles for the serve_ metric family, registered on first use
/// (same pattern as analysis::cache_metrics). Shared by the engine, the
/// workload harness, and the run-manifest writer.
struct ServeMetrics {
  net::metrics::Counter& queries;        ///< single-address verdicts served
  net::metrics::Counter& batches;        ///< verdict_batch calls
  net::metrics::Counter& batch_queries;  ///< addresses answered in batches
  net::metrics::Counter& listed;         ///< verdicts with the listed bit
  net::metrics::Counter& reused;         ///< verdicts with NATed or dynamic
  net::metrics::Counter& swaps;          ///< snapshots published
  net::metrics::Gauge& entries;          ///< entry count of the live snapshot
  net::metrics::Histogram& batch_micros;  ///< wall-clock per harness batch
};
ServeMetrics& serve_metrics();

class LookupEngine {
 public:
  /// An engine starts empty; queries against it answer all-clear verdicts.
  LookupEngine() = default;
  /// Waits for in-flight readers before the owned snapshot dies with the
  /// engine. Destroying an engine while queries are still being *issued*
  /// remains a caller bug, as with any object.
  ~LookupEngine();

  /// Atomically replaces the served snapshot. Safe to call concurrently
  /// with any number of in-flight queries (they finish against the
  /// snapshot they entered with) and with other publishers (last write
  /// wins). Returns only after the superseded artifact has zero readers.
  /// A null snapshot is rejected with std::invalid_argument: "serve
  /// nothing" is expressed by publishing an *empty* snapshot, never by
  /// letting nullptr reach the read path.
  void publish(std::shared_ptr<const CompiledSnapshot> snapshot);

  /// The currently served snapshot (nullptr before the first publish).
  /// Takes the publish mutex (cold path); the returned shared_ptr keeps
  /// the artifact alive independently of later publishes.
  [[nodiscard]] std::shared_ptr<const CompiledSnapshot> snapshot() const;

  /// Single-address query: one epoch enter/exit, one two-level lookup.
  [[nodiscard]] Verdict verdict(net::Ipv4Address address) const;

  /// Batched query: queries[i] answers into out[i]. One epoch section for
  /// the whole batch — the amortization that makes batching worthwhile.
  /// Precondition: out.size() >= queries.size().
  void verdict_batch(std::span<const net::Ipv4Address> queries,
                     std::span<Verdict> out) const;

 private:
  /// Raw pointer the read path loads inside its epoch section; always
  /// either nullptr or owner_.get().
  std::atomic<const CompiledSnapshot*> live_{nullptr};
  /// Serializes publishers and guards owner_.
  mutable std::mutex publish_mutex_;
  /// Owns the artifact live_ points into; swapped only under publish_mutex_
  /// and only released after an epoch synchronize.
  std::shared_ptr<const CompiledSnapshot> owner_;
};

}  // namespace reuse::serve
