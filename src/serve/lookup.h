// Wait-light query engine over atomically swappable compiled snapshots.
//
// Serving is read-mostly with rare whole-artifact replacement: a new day's
// snapshot arrives, readers must never stall, and the old artifact must
// stay valid for queries already in flight. Queries take a
// reference-counted pin on the current snapshot, run entirely against that
// immutable artifact, and drop the pin; publish() swaps the pointer and
// the superseded snapshot is freed when its last in-flight reader
// finishes — no reader ever waits for a reload, no publisher ever waits
// for a reader.
//
// The pin itself is a handful of instructions under a tiny spin "pin
// lock": lock, copy the shared_ptr (one atomic refcount increment),
// unlock. This is the same lock-bit protocol libstdc++'s
// std::atomic<std::shared_ptr> uses internally (which is likewise not
// lock-free), with one deliberate difference: our unlock is a *release*
// store, where libstdc++ 12's load path unlocks relaxed — formally a data
// race on its unsynchronized pointer member, and exactly what TSan flags.
// Owning the few lines of protocol makes the engine memory-model-clean, so
// the concurrent query-during-swap test runs under TSan with
// halt_on_error and proves the swap safe rather than suppressing it.
//
// The hot path allocates nothing: verdicts are 32-bit words, batch output
// goes into caller-provided spans, and the serve_* metrics are cached
// registry handles doing relaxed atomic adds. Query *counters* are
// deterministic functions of the workload; the latency histogram
// (serve_batch_micros, fed by the workload harness) is wall-clock and —
// like the pool_ family — excluded from the determinism contract.
#pragma once

#include <atomic>
#include <memory>
#include <span>

#include "netbase/metrics.h"
#include "serve/snapshot.h"

namespace reuse::serve {

/// Registry handles for the serve_ metric family, registered on first use
/// (same pattern as analysis::cache_metrics). Shared by the engine, the
/// workload harness, and the run-manifest writer.
struct ServeMetrics {
  net::metrics::Counter& queries;        ///< single-address verdicts served
  net::metrics::Counter& batches;        ///< verdict_batch calls
  net::metrics::Counter& batch_queries;  ///< addresses answered in batches
  net::metrics::Counter& listed;         ///< verdicts with the listed bit
  net::metrics::Counter& reused;         ///< verdicts with NATed or dynamic
  net::metrics::Counter& swaps;          ///< snapshots published
  net::metrics::Gauge& entries;          ///< entry count of the live snapshot
  net::metrics::Histogram& batch_micros;  ///< wall-clock per harness batch
};
ServeMetrics& serve_metrics();

class LookupEngine {
 public:
  /// An engine starts empty; queries against it answer all-clear verdicts.
  LookupEngine() = default;

  /// Atomically replaces the served snapshot. Safe to call concurrently
  /// with any number of in-flight queries (they finish against the
  /// snapshot they pinned) and with other publishers (last write wins).
  void publish(std::shared_ptr<const CompiledSnapshot> snapshot);

  /// The currently served snapshot (nullptr before the first publish).
  /// The returned pointer pins the artifact: it stays valid even if a
  /// publish() lands immediately after.
  [[nodiscard]] std::shared_ptr<const CompiledSnapshot> snapshot() const;

  /// Single-address query: one snapshot pin, one two-level lookup.
  [[nodiscard]] Verdict verdict(net::Ipv4Address address) const;

  /// Batched query: queries[i] answers into out[i]. One snapshot pin for
  /// the whole batch — the amortization that makes batching worthwhile.
  /// Precondition: out.size() >= queries.size().
  void verdict_batch(std::span<const net::Ipv4Address> queries,
                     std::span<Verdict> out) const;

 private:
  /// Spin pin-lock guarding `snapshot_`; held for a few instructions only
  /// (shared_ptr copy or exchange — never a query, never a deallocation).
  mutable std::atomic<bool> pin_lock_{false};
  std::shared_ptr<const CompiledSnapshot> snapshot_;
};

}  // namespace reuse::serve
