// Length-prefixed binary batch protocol between lookupd and its clients.
//
// The serving front end speaks a deliberately tiny framed protocol over a
// local byte stream (socketpair in tests and the in-process load generator;
// the framing is transport-agnostic). Every frame is:
//
//   u32 frame_len                      bytes that FOLLOW this word
//   u32 magic                          kRequestMagic / kResponseMagic
//   u64 request_id                     echoed verbatim in the response
//   request:  u16 count, u16 reserved  then count * u32 addresses
//   response: u8 status, u8[3] reserved  then count * u32 verdict words
//
// Integers are native-endian (the transport never leaves the machine, same
// as the snapshot artifact). frame_len makes torn writes detectable, caps
// allocation before a single payload byte is trusted, and lets a decoder
// hold partial frames across reads.
//
// Validation is strict and fail-closed: a frame that is oversized, carries
// the wrong magic, an impossible length, a zero or over-limit count, or
// nonzero reserved bits poisons the decoder — the server answers by
// counting the rejection and dropping the connection, because a stream that
// framed one frame wrong can never be trusted to frame the next one right.
// Decoders never throw and never allocate more than the declared (bounded)
// frame length, no matter the input bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace reuse::serve {

inline constexpr std::uint32_t kRequestMagic = 0x4b4c5152;   // "RQLK"
inline constexpr std::uint32_t kResponseMagic = 0x4b4c5352;  // "RSLK"
/// Addresses (or verdict words) per frame; one frame is one served batch.
inline constexpr std::size_t kMaxFrameAddresses = 1024;
/// Fixed bytes after frame_len: magic + request_id + count/status word.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 4;
/// Hard ceiling a decoder will buffer for one frame.
inline constexpr std::size_t kMaxFrameBytes =
    kFrameHeaderBytes + 4 * kMaxFrameAddresses;

/// Server's answer class for one request frame. Shedding is an explicit
/// verdict — an overloaded server *answers* kShed rather than silently
/// dropping, so clients can apply backpressure and ledgers reconcile.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,    ///< verdicts follow, one word per queried address
  kShed = 1,  ///< dropped by overload or deadline policy; retry later
  kReject = 2,  ///< malformed request (reserved for future per-frame use)
};

struct RequestFrame {
  std::uint64_t request_id = 0;
  std::vector<std::uint32_t> addresses;
};

struct ResponseFrame {
  std::uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  std::vector<std::uint32_t> verdicts;
};

/// Why a decoder refused its stream. Order matters only for to_string.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kOversized,  ///< declared frame_len exceeds kMaxFrameBytes
  kBadMagic,   ///< wrong protocol word where the magic belongs
  kBadLength,  ///< frame_len too small or inconsistent with its count
  kBadCount,   ///< zero / over-limit count or nonzero reserved bits
};
[[nodiscard]] std::string_view to_string(FrameError error);

[[nodiscard]] std::string encode_request(
    std::uint64_t request_id, std::span<const std::uint32_t> addresses);
[[nodiscard]] std::string encode_response(
    std::uint64_t request_id, ResponseStatus status,
    std::span<const std::uint32_t> verdicts);

namespace detail {

/// Shared incremental framing buffer: accumulates transport bytes, carves
/// complete frames, and latches the first protocol error (after which the
/// stream is dead and next_frame always fails).
class FrameBuffer {
 public:
  void feed(std::string_view bytes);
  /// A complete, length-sane frame body (starting at its magic word), or
  /// nullopt when more bytes are needed or the stream is poisoned.
  [[nodiscard]] std::optional<std::string_view> next_frame();
  [[nodiscard]] FrameError error() const { return error_; }
  void poison(FrameError error) { error_ = error; }
  /// Bytes of an incomplete frame (or undecoded garbage) still buffered —
  /// the tell for torn writes and slow-loris stalls.
  [[nodiscard]] std::size_t pending_bytes() const {
    return buffer_.size() - consumed_;
  }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  FrameError error_ = FrameError::kNone;
};

}  // namespace detail

/// Incremental request-frame decoder (server side of a session).
class RequestDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.feed(bytes); }
  /// The next validated request, or nullopt when more bytes are needed or
  /// the stream is poisoned (check error()).
  [[nodiscard]] std::optional<RequestFrame> next();
  [[nodiscard]] FrameError error() const { return buffer_.error(); }
  /// True when bytes of an unfinished frame are pending — at EOF this means
  /// a torn write; under a ticking clock, a stalled (slow-loris) client.
  [[nodiscard]] bool mid_frame() const { return buffer_.pending_bytes() > 0; }

 private:
  detail::FrameBuffer buffer_;
};

/// Incremental response-frame decoder (client side).
class ResponseDecoder {
 public:
  void feed(std::string_view bytes) { buffer_.feed(bytes); }
  [[nodiscard]] std::optional<ResponseFrame> next();
  [[nodiscard]] FrameError error() const { return buffer_.error(); }
  [[nodiscard]] bool mid_frame() const { return buffer_.pending_bytes() > 0; }

 private:
  detail::FrameBuffer buffer_;
};

}  // namespace reuse::serve
