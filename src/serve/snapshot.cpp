#include "serve/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <system_error>
#include <unordered_map>

#include "netbase/serialize.h"
#include "netbase/thread_pool.h"

namespace reuse::serve {
namespace {

constexpr std::uint64_t kMagic = kCompiledSnapshotMagic;
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kDeltaMagic = kSnapshotDeltaMagic;
constexpr std::uint32_t kDeltaFormatVersion = 1;

// Decoder bounds: a corrupt count must fail the load immediately, never
// drive a multi-billion-element read loop. IPv4 caps everything naturally.
constexpr std::uint64_t kMaxEntries = 1ULL << 32;
constexpr std::uint64_t kMaxBuckets = 1ULL << 24;
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 33;

void write_u32_array(net::BinaryWriter& writer,
                     const std::vector<std::uint32_t>& values) {
  writer.write(static_cast<std::uint64_t>(values.size()));
  for (const std::uint32_t v : values) writer.write(v);
}

[[nodiscard]] bool read_u32_array(net::BinaryReader& reader,
                                  std::uint64_t sanity_limit,
                                  std::vector<std::uint32_t>& out) {
  const std::uint64_t count = reader.read_size(sanity_limit);
  if (!reader.ok()) return false;
  out.resize(count);
  for (std::uint64_t i = 0; i < count && reader.ok(); ++i) {
    out[i] = reader.read<std::uint32_t>();
  }
  return reader.ok();
}

[[nodiscard]] bool strictly_increasing(const std::vector<std::uint32_t>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

/// Sorted-array membership: the /24-context probe on the query path.
[[nodiscard]] inline bool sorted_contains(const std::vector<std::uint32_t>& v,
                                          std::uint32_t key) {
  const auto it = std::lower_bound(v.begin(), v.end(), key);
  return it != v.end() && *it == key;
}

/// Rebuilds the /24 bucket index over a sorted entry array — shared by the
/// full build and the delta apply so both produce identical index bytes.
void build_bucket_index(const std::vector<std::uint32_t>& addresses,
                        std::vector<std::uint32_t>& buckets,
                        std::vector<std::uint32_t>& offsets) {
  buckets.clear();
  offsets.clear();
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    const std::uint32_t key = addresses[i] >> 8;
    if (buckets.empty() || buckets.back() != key) {
      buckets.push_back(key);
      offsets.push_back(static_cast<std::uint32_t>(i));
    }
  }
  offsets.push_back(static_cast<std::uint32_t>(addresses.size()));
  if (buckets.empty()) offsets.clear();
}

/// Atomic artifact publish shared by snapshot and delta save(): header +
/// payload assembled under a pid-unique temporary name, rename()d into
/// place. A reader racing with this sees either the previous complete file
/// or the new one.
[[nodiscard]] bool save_framed(const std::string& path, std::uint64_t magic,
                               std::uint32_t version,
                               std::uint64_t header_extra,
                               const std::string& payload) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    net::BinaryWriter writer(os);
    writer.write(magic);
    writer.write(version);
    writer.write(header_extra);
    writer.write(static_cast<std::uint64_t>(payload.size()));
    writer.write(net::fnv1a_64(payload));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp_path, cleanup_ec);
    return false;
  }
  return true;
}

[[nodiscard]] std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

std::uint64_t file_magic(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  net::BinaryReader reader(is);
  const std::uint64_t magic = reader.read<std::uint64_t>();
  return reader.ok() ? magic : 0;
}

Verdict CompiledSnapshot::verdict(net::Ipv4Address address) const {
  const std::uint32_t value = address.value();
  const std::uint32_t key = value >> 8;
  std::uint32_t bits = 0;
  // /24 churn context is answered for every query, listed or not.
  if (sorted_contains(dynamic24_, key)) bits |= kVerdictDynamic;
  const auto bucket = std::lower_bound(buckets_.begin(), buckets_.end(), key);
  if (bucket != buckets_.end() && *bucket == key) {
    const auto b = static_cast<std::size_t>(bucket - buckets_.begin());
    const auto lo = addresses_.begin() + bucket_offsets_[b];
    const auto hi = addresses_.begin() + bucket_offsets_[b + 1];
    const auto entry = std::lower_bound(lo, hi, value);
    if (entry != hi && *entry == value) {
      bits |= verdicts_[static_cast<std::size_t>(entry - addresses_.begin())];
    }
  }
  return Verdict{bits};
}

void CompiledSnapshot::verdict_batch(std::span<const net::Ipv4Address> queries,
                                     std::span<Verdict> out) const {
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = verdict(queries[i]);
  }
}

std::vector<net::Ipv4Address> CompiledSnapshot::entries_matching(
    std::uint32_t mask) const {
  std::vector<net::Ipv4Address> out;
  for (std::size_t i = 0; i < addresses_.size(); ++i) {
    if ((verdicts_[i] & mask) == mask) {
      out.emplace_back(addresses_[i]);
    }
  }
  return out;
}

std::string CompiledSnapshot::payload_bytes() const {
  std::ostringstream stream;
  net::BinaryWriter writer(stream);
  write_u32_array(writer, buckets_);
  write_u32_array(writer, bucket_offsets_);
  write_u32_array(writer, addresses_);
  write_u32_array(writer, verdicts_);
  write_u32_array(writer, dynamic24_);
  writer.write(static_cast<std::uint64_t>(top_lists_.size()));
  for (const blocklist::ListId list : top_lists_) writer.write(list);
  return stream.str();
}

void CompiledSnapshot::seal() {
  fingerprint_ = net::fnv1a_64(payload_bytes());
}

std::string CompiledSnapshot::fingerprint_hex() const {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint_));
  return buffer;
}

bool CompiledSnapshot::save(const std::string& path) const {
  const std::string payload = payload_bytes();
  if (payload.size() > kMaxPayloadBytes) return false;
  return save_framed(path, kMagic, kFormatVersion, source_fingerprint_,
                     payload);
}

std::optional<CompiledSnapshot> CompiledSnapshot::load(
    const std::string& path) {
  return load(path, nullptr);
}

std::optional<CompiledSnapshot> CompiledSnapshot::load(
    const std::string& path, std::string* error) {
  // Each rejection path carries its own message: "which failure mode hit"
  // is the whole point of the rejection matrix, and the tests pin the
  // messages apart so two modes can never collapse into one diagnostic.
  const auto fail = [&](const std::string& why) -> std::optional<CompiledSnapshot> {
    if (error != nullptr) *error = "snapshot load failed: " + why;
    return std::nullopt;
  };

  std::error_code ec;
  const std::filesystem::file_status status = std::filesystem::status(path, ec);
  if (ec || status.type() == std::filesystem::file_type::not_found) {
    return fail("path does not exist: " + path);
  }
  if (status.type() != std::filesystem::file_type::regular) {
    return fail("not a regular file: " + path);
  }
  const std::uintmax_t file_size = std::filesystem::file_size(path, ec);
  if (!ec && file_size == 0) {
    return fail("zero-length file (mid-write artifact?): " + path);
  }

  std::ifstream is(path, std::ios::binary);
  if (!is) return fail("cannot open for reading: " + path);
  net::BinaryReader reader(is);
  const std::uint64_t magic = reader.read<std::uint64_t>();
  if (!reader.ok()) {
    return fail("file shorter than the header (mid-write artifact?)");
  }
  if (magic != kMagic) return fail("bad magic: not a compiled snapshot");
  const std::uint32_t version = reader.read<std::uint32_t>();
  if (reader.ok() && version != kFormatVersion) {
    return fail("unsupported format version " + std::to_string(version));
  }
  const std::uint64_t source_fingerprint = reader.read<std::uint64_t>();
  const std::uint64_t payload_size = reader.read_size(kMaxPayloadBytes);
  const std::uint64_t checksum = reader.read<std::uint64_t>();
  if (!reader.ok()) {
    return fail("truncated header (mid-write artifact?)");
  }

  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_size) {
    return fail("truncated payload: declared " + std::to_string(payload_size) +
                " bytes, got " + std::to_string(is.gcount()));
  }
  if (is.peek() != std::char_traits<char>::eof()) {
    return fail("trailing bytes after payload: not a product of save()");
  }
  if (net::fnv1a_64(payload) != checksum) {
    return fail("payload checksum mismatch (bit flip or foreign writer)");
  }

  std::istringstream payload_stream(payload);
  net::BinaryReader body(payload_stream);
  CompiledSnapshot snapshot;
  snapshot.source_fingerprint_ = source_fingerprint;
  if (!read_u32_array(body, kMaxBuckets, snapshot.buckets_) ||
      !read_u32_array(body, kMaxBuckets + 1, snapshot.bucket_offsets_) ||
      !read_u32_array(body, kMaxEntries, snapshot.addresses_) ||
      !read_u32_array(body, kMaxEntries, snapshot.verdicts_) ||
      !read_u32_array(body, kMaxBuckets, snapshot.dynamic24_)) {
    return fail("payload arrays inconsistent with their counts");
  }
  const std::uint64_t top_count =
      body.read_size(static_cast<std::uint64_t>(kMaxTopLists));
  if (!body.ok()) return fail("top-list count out of range");
  snapshot.top_lists_.resize(top_count);
  for (std::uint64_t i = 0; i < top_count && body.ok(); ++i) {
    snapshot.top_lists_[i] = body.read<blocklist::ListId>();
  }
  if (!body.ok()) return fail("payload arrays inconsistent with their counts");
  if (payload_stream.peek() != std::char_traits<char>::eof()) {
    return fail("payload longer than its arrays");
  }

  // Structural invariants: the checksum catches random corruption, these
  // catch a well-formed file that could still index out of bounds.
  if (snapshot.verdicts_.size() != snapshot.addresses_.size()) {
    return fail("structural violation: verdict/address array size mismatch");
  }
  if (!strictly_increasing(snapshot.buckets_) ||
      !strictly_increasing(snapshot.addresses_) ||
      !strictly_increasing(snapshot.dynamic24_)) {
    return fail("structural violation: arrays not strictly increasing");
  }
  if (snapshot.buckets_.empty()) {
    // An empty index must describe an empty entry table.
    if (!snapshot.bucket_offsets_.empty() || !snapshot.addresses_.empty()) {
      return fail("structural violation: entries without a bucket index");
    }
  } else {
    if (snapshot.bucket_offsets_.size() != snapshot.buckets_.size() + 1 ||
        snapshot.bucket_offsets_.front() != 0 ||
        snapshot.bucket_offsets_.back() != snapshot.addresses_.size()) {
      return fail("structural violation: malformed bucket offsets");
    }
    for (std::size_t b = 0; b < snapshot.buckets_.size(); ++b) {
      if (snapshot.bucket_offsets_[b] >= snapshot.bucket_offsets_[b + 1]) {
        return fail("structural violation: empty or reversed bucket");
      }
      for (std::uint32_t i = snapshot.bucket_offsets_[b];
           i < snapshot.bucket_offsets_[b + 1]; ++i) {
        if ((snapshot.addresses_[i] >> 8) != snapshot.buckets_[b]) {
          return fail("structural violation: entry filed under the wrong /24");
        }
      }
    }
  }
  for (const std::uint32_t key : snapshot.dynamic24_) {
    if (key >= (1u << 24)) {
      return fail("structural violation: dynamic /24 key out of range");
    }
  }

  snapshot.seal();
  return snapshot;
}

CompiledSnapshot SnapshotBuilder::build(net::ThreadPool* pool) const {
  CompiledSnapshot snapshot;
  snapshot.source_fingerprint_ = source_fingerprint_;

  // Entries: sorted union of blocklisted and NATed addresses. The NATed set
  // is included even where unlisted, so a verdict answers "reused?" exactly
  // as the offline oracle (store + detector sets) would.
  std::vector<std::uint32_t> entries;
  if (store_ != nullptr) {
    for (const net::Ipv4Address address : store_->sorted_addresses()) {
      entries.push_back(address.value());
    }
  }
  if (nated_ != nullptr) {
    entries.reserve(entries.size() + nated_->size());
    for (const net::Ipv4Address address : *nated_) {
      entries.push_back(address.value());
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  snapshot.addresses_ = std::move(entries);

  // Dynamic pools projected to the paper's /24 granularity: a prefix
  // shorter than /24 contributes every /24 it covers, a longer one its
  // covering block.
  if (dynamic_ != nullptr) {
    for (const net::Ipv4Prefix& prefix : dynamic_->to_vector()) {
      const std::uint32_t first = prefix.first_address().value() >> 8;
      const std::uint32_t last = prefix.last_address().value() >> 8;
      for (std::uint32_t key = first; key <= last; ++key) {
        snapshot.dynamic24_.push_back(key);
      }
    }
    std::sort(snapshot.dynamic24_.begin(), snapshot.dynamic24_.end());
    snapshot.dynamic24_.erase(
        std::unique(snapshot.dynamic24_.begin(), snapshot.dynamic24_.end()),
        snapshot.dynamic24_.end());
  }

  // Top lists for the per-list bitmap: by distinct-address count, largest
  // first; ties break toward the smaller id so the ranking is total.
  std::unordered_map<blocklist::ListId, int> bit_of;
  if (store_ != nullptr) {
    std::vector<blocklist::ListId> ranked;
    if (catalogue_ != nullptr) {
      for (const blocklist::BlocklistInfo& info : *catalogue_) {
        ranked.push_back(info.id);
      }
    } else {
      ranked = store_->active_lists();
    }
    std::sort(ranked.begin(), ranked.end(),
              [&](blocklist::ListId a, blocklist::ListId b) {
                const std::size_t ca = store_->address_count_of(a);
                const std::size_t cb = store_->address_count_of(b);
                return ca != cb ? ca > cb : a < b;
              });
    if (ranked.size() > static_cast<std::size_t>(kMaxTopLists)) {
      ranked.resize(static_cast<std::size_t>(kMaxTopLists));
    }
    snapshot.top_lists_ = std::move(ranked);
    for (std::size_t bit = 0; bit < snapshot.top_lists_.size(); ++bit) {
      bit_of[snapshot.top_lists_[bit]] = static_cast<int>(bit);
    }
  }

  // Per-address membership bitmap over the top lists. Built once, serially:
  // OR-ing bits is commutative, so the store's unordered iteration order
  // cannot leak into the result.
  std::unordered_map<std::uint32_t, std::uint32_t> membership;
  if (store_ != nullptr && !bit_of.empty()) {
    membership.reserve(store_->address_count());
    store_->for_each_listing([&](blocklist::ListId list,
                                 net::Ipv4Address address,
                                 const net::IntervalSet&) {
      const auto it = bit_of.find(list);
      if (it == bit_of.end()) return;
      membership[address.value()] |=
          1u << (kTopListShift + it->second);
    });
  }

  // Verdict pass: each entry writes only its own slot, so running it on a
  // pool is byte-identical to running it serially.
  snapshot.verdicts_.assign(snapshot.addresses_.size(), 0);
  const auto& addresses = snapshot.addresses_;
  const auto& dynamic24 = snapshot.dynamic24_;
  // Snapshot the store's sorted address column up front: the workers then
  // share a read-only binary search instead of racing the store's lazy
  // fold/bitmap machinery.
  static const std::vector<net::Ipv4Address> kNoListed;
  const std::vector<net::Ipv4Address>& listed =
      store_ != nullptr ? store_->sorted_addresses() : kNoListed;
  net::for_each_index(
      pool, addresses.size(),
      [&](std::size_t i) {
        const std::uint32_t value = addresses[i];
        const net::Ipv4Address address(value);
        std::uint32_t bits = 0;
        if (std::binary_search(listed.begin(), listed.end(), address)) {
          bits |= kVerdictListed;
        }
        if (nated_ != nullptr && nated_->contains(address)) {
          bits |= kVerdictNated;
        }
        if (sorted_contains(dynamic24, value >> 8)) {
          bits |= kVerdictDynamic;
        }
        if (const auto it = membership.find(value); it != membership.end()) {
          bits |= it->second;
        }
        snapshot.verdicts_[i] = bits;
      },
      /*grain=*/1024);

  // /24 bucket index over the sorted entries.
  build_bucket_index(snapshot.addresses_, snapshot.buckets_,
                     snapshot.bucket_offsets_);

  snapshot.seal();
  return snapshot;
}

SnapshotDelta SnapshotBuilder::diff(const CompiledSnapshot& base,
                                    const CompiledSnapshot& next) {
  SnapshotDelta delta;
  delta.base_fingerprint_ = base.fingerprint_;
  delta.target_fingerprint_ = next.fingerprint_;
  delta.target_source_fingerprint_ = next.source_fingerprint_;

  // Two-pointer walk over the sorted entry arrays: an address only in base
  // is a removal, only in next an upsert, in both with a different verdict
  // word a re-worded upsert.
  std::size_t bi = 0;
  std::size_t ni = 0;
  while (bi < base.addresses_.size() || ni < next.addresses_.size()) {
    if (ni == next.addresses_.size() ||
        (bi < base.addresses_.size() &&
         base.addresses_[bi] < next.addresses_[ni])) {
      delta.removed_.push_back(base.addresses_[bi]);
      ++bi;
    } else if (bi == base.addresses_.size() ||
               next.addresses_[ni] < base.addresses_[bi]) {
      delta.upserts_.emplace_back(next.addresses_[ni], next.verdicts_[ni]);
      ++ni;
    } else {
      if (base.verdicts_[bi] != next.verdicts_[ni]) {
        delta.upserts_.emplace_back(next.addresses_[ni], next.verdicts_[ni]);
      }
      ++bi;
      ++ni;
    }
  }

  std::set_difference(base.dynamic24_.begin(), base.dynamic24_.end(),
                      next.dynamic24_.begin(), next.dynamic24_.end(),
                      std::back_inserter(delta.dynamic24_removed_));
  std::set_difference(next.dynamic24_.begin(), next.dynamic24_.end(),
                      base.dynamic24_.begin(), base.dynamic24_.end(),
                      std::back_inserter(delta.dynamic24_added_));

  delta.top_lists_changed_ = base.top_lists_ != next.top_lists_;
  if (delta.top_lists_changed_) delta.top_lists_ = next.top_lists_;
  return delta;
}

std::string SnapshotDelta::payload_bytes() const {
  std::ostringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(base_fingerprint_);
  writer.write(target_fingerprint_);
  writer.write(target_source_fingerprint_);
  write_u32_array(writer, removed_);
  writer.write(static_cast<std::uint64_t>(upserts_.size()));
  for (const auto& [address, verdict] : upserts_) {
    writer.write(address);
    writer.write(verdict);
  }
  write_u32_array(writer, dynamic24_removed_);
  write_u32_array(writer, dynamic24_added_);
  writer.write(static_cast<std::uint8_t>(top_lists_changed_ ? 1 : 0));
  writer.write(static_cast<std::uint64_t>(top_lists_.size()));
  for (const blocklist::ListId list : top_lists_) writer.write(list);
  return stream.str();
}

bool SnapshotDelta::save(const std::string& path) const {
  const std::string payload = payload_bytes();
  if (payload.size() > kMaxPayloadBytes) return false;
  return save_framed(path, kDeltaMagic, kDeltaFormatVersion,
                     /*header_extra=*/0, payload);
}

std::optional<SnapshotDelta> SnapshotDelta::load(const std::string& path,
                                                 std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<SnapshotDelta> {
    if (error != nullptr) *error = "delta load failed: " + why;
    return std::nullopt;
  };

  std::error_code ec;
  const std::filesystem::file_status status = std::filesystem::status(path, ec);
  if (ec || status.type() == std::filesystem::file_type::not_found) {
    return fail("path does not exist: " + path);
  }
  if (status.type() != std::filesystem::file_type::regular) {
    return fail("not a regular file: " + path);
  }

  std::ifstream is(path, std::ios::binary);
  if (!is) return fail("cannot open for reading: " + path);
  net::BinaryReader reader(is);
  const std::uint64_t magic = reader.read<std::uint64_t>();
  if (!reader.ok()) {
    return fail("file shorter than the header (mid-write artifact?)");
  }
  if (magic != kDeltaMagic) return fail("bad magic: not a snapshot delta");
  const std::uint32_t version = reader.read<std::uint32_t>();
  if (reader.ok() && version != kDeltaFormatVersion) {
    return fail("unsupported delta format version " + std::to_string(version));
  }
  (void)reader.read<std::uint64_t>();  // header_extra, reserved
  const std::uint64_t payload_size = reader.read_size(kMaxPayloadBytes);
  const std::uint64_t checksum = reader.read<std::uint64_t>();
  if (!reader.ok()) return fail("truncated header (mid-write artifact?)");

  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<std::uint64_t>(is.gcount()) != payload_size) {
    return fail("truncated payload: declared " + std::to_string(payload_size) +
                " bytes, got " + std::to_string(is.gcount()));
  }
  if (is.peek() != std::char_traits<char>::eof()) {
    return fail("trailing bytes after payload: not a product of save()");
  }
  if (net::fnv1a_64(payload) != checksum) {
    return fail("payload checksum mismatch (bit flip or foreign writer)");
  }

  std::istringstream payload_stream(payload);
  net::BinaryReader body(payload_stream);
  SnapshotDelta delta;
  delta.base_fingerprint_ = body.read<std::uint64_t>();
  delta.target_fingerprint_ = body.read<std::uint64_t>();
  delta.target_source_fingerprint_ = body.read<std::uint64_t>();
  if (!read_u32_array(body, kMaxEntries, delta.removed_)) {
    return fail("payload arrays inconsistent with their counts");
  }
  const std::uint64_t upsert_count = body.read_size(kMaxEntries);
  if (!body.ok()) return fail("upsert count out of range");
  delta.upserts_.resize(upsert_count);
  for (std::uint64_t i = 0; i < upsert_count && body.ok(); ++i) {
    delta.upserts_[i].first = body.read<std::uint32_t>();
    delta.upserts_[i].second = body.read<std::uint32_t>();
  }
  if (!body.ok() ||
      !read_u32_array(body, kMaxBuckets, delta.dynamic24_removed_) ||
      !read_u32_array(body, kMaxBuckets, delta.dynamic24_added_)) {
    return fail("payload arrays inconsistent with their counts");
  }
  delta.top_lists_changed_ = body.read<std::uint8_t>() != 0;
  const std::uint64_t top_count =
      body.read_size(static_cast<std::uint64_t>(kMaxTopLists));
  if (!body.ok()) return fail("top-list count out of range");
  delta.top_lists_.resize(top_count);
  for (std::uint64_t i = 0; i < top_count && body.ok(); ++i) {
    delta.top_lists_[i] = body.read<blocklist::ListId>();
  }
  if (!body.ok()) return fail("payload arrays inconsistent with their counts");
  if (payload_stream.peek() != std::char_traits<char>::eof()) {
    return fail("payload longer than its arrays");
  }

  if (!strictly_increasing(delta.removed_) ||
      !strictly_increasing(delta.dynamic24_removed_) ||
      !strictly_increasing(delta.dynamic24_added_)) {
    return fail("structural violation: arrays not strictly increasing");
  }
  for (std::size_t i = 1; i < delta.upserts_.size(); ++i) {
    if (delta.upserts_[i].first <= delta.upserts_[i - 1].first) {
      return fail("structural violation: upserts not strictly increasing");
    }
  }
  return delta;
}

std::optional<CompiledSnapshot> SnapshotDelta::apply(
    const CompiledSnapshot& base, std::string* error) const {
  const auto fail = [&](const std::string& why) -> std::optional<CompiledSnapshot> {
    if (error != nullptr) *error = "delta apply failed: " + why;
    return std::nullopt;
  };
  if (base.fingerprint_ != base_fingerprint_) {
    return fail("base fingerprint mismatch: delta keyed to " +
                hex16(base_fingerprint_) + ", live snapshot is " +
                hex16(base.fingerprint_));
  }

  CompiledSnapshot next;
  next.source_fingerprint_ = target_source_fingerprint_;

  // Linear three-way merge of the sorted base entries with the sorted
  // removal and upsert streams. An upsert for an address also in base wins
  // over the base word; a removal drops the base entry.
  next.addresses_.reserve(base.addresses_.size() + upserts_.size());
  next.verdicts_.reserve(base.addresses_.size() + upserts_.size());
  std::size_t ri = 0;
  std::size_t ui = 0;
  auto push_upserts_below = [&](std::uint32_t limit) {
    while (ui < upserts_.size() && upserts_[ui].first < limit) {
      next.addresses_.push_back(upserts_[ui].first);
      next.verdicts_.push_back(upserts_[ui].second);
      ++ui;
    }
  };
  for (std::size_t i = 0; i < base.addresses_.size(); ++i) {
    const std::uint32_t address = base.addresses_[i];
    push_upserts_below(address);
    while (ri < removed_.size() && removed_[ri] < address) ++ri;
    if (ri < removed_.size() && removed_[ri] == address) {
      ++ri;
      continue;
    }
    if (ui < upserts_.size() && upserts_[ui].first == address) {
      next.addresses_.push_back(address);
      next.verdicts_.push_back(upserts_[ui].second);
      ++ui;
      continue;
    }
    next.addresses_.push_back(address);
    next.verdicts_.push_back(base.verdicts_[i]);
  }
  push_upserts_below(std::numeric_limits<std::uint32_t>::max());
  // The final upsert may target address 0xffffffff itself.
  if (ui < upserts_.size()) {
    next.addresses_.push_back(upserts_[ui].first);
    next.verdicts_.push_back(upserts_[ui].second);
  }

  std::set_difference(base.dynamic24_.begin(), base.dynamic24_.end(),
                      dynamic24_removed_.begin(), dynamic24_removed_.end(),
                      std::back_inserter(next.dynamic24_));
  std::vector<std::uint32_t> merged;
  merged.reserve(next.dynamic24_.size() + dynamic24_added_.size());
  std::merge(next.dynamic24_.begin(), next.dynamic24_.end(),
             dynamic24_added_.begin(), dynamic24_added_.end(),
             std::back_inserter(merged));
  next.dynamic24_ = std::move(merged);

  next.top_lists_ = top_lists_changed_ ? top_lists_ : base.top_lists_;

  build_bucket_index(next.addresses_, next.buckets_, next.bucket_offsets_);
  next.seal();
  if (next.fingerprint_ != target_fingerprint_) {
    // The merge reproduced *something*, but not the snapshot diff() saw —
    // a stale/foreign delta must never be published.
    return fail("applied result fingerprint " + hex16(next.fingerprint_) +
                " does not match delta target " + hex16(target_fingerprint_));
  }
  return next;
}

}  // namespace reuse::serve
