// 160-bit BitTorrent DHT node identifiers.
//
// Per the paper (and BEP 5 practice), a client derives its node_id by
// hashing its (possibly private, pre-NAT) IP address together with a random
// number, and regenerates it on reboot. The crawler therefore must NOT key
// identity on node_id — it keys on (IP, port) and uses node_ids only to count
// distinct concurrent responders.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace reuse::dht {

class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::array<std::uint32_t, 5> words)
      : words_(words) {}

  /// Derives an id the way BitTorrent clients do: hash of the client's own
  /// (private) address and a random nonce drawn at client start.
  static NodeId derive(std::uint32_t private_address, std::uint64_t nonce);

  [[nodiscard]] constexpr const std::array<std::uint32_t, 5>& words() const {
    return words_;
  }

  /// XOR distance (Kademlia metric), comparable lexicographically.
  [[nodiscard]] constexpr std::array<std::uint32_t, 5> distance_to(
      const NodeId& other) const {
    std::array<std::uint32_t, 5> d{};
    for (std::size_t i = 0; i < 5; ++i) d[i] = words_[i] ^ other.words_[i];
    return d;
  }

  /// Index of the highest differing bit (0..159), or -1 for equal ids; the
  /// k-bucket index.
  [[nodiscard]] int bucket_index(const NodeId& other) const;

  [[nodiscard]] std::string to_hex() const;

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

 private:
  std::array<std::uint32_t, 5> words_{};
};

/// True iff `a` is XOR-closer to `target` than `b` is.
[[nodiscard]] constexpr bool closer_to(const NodeId& target, const NodeId& a,
                                       const NodeId& b) {
  return a.distance_to(target) < b.distance_to(target);
}

}  // namespace reuse::dht

template <>
struct std::hash<reuse::dht::NodeId> {
  std::size_t operator()(const reuse::dht::NodeId& id) const noexcept {
    std::uint64_t x = 0x9e3779b97f4a7c15ULL;
    for (const std::uint32_t w : id.words()) {
      x ^= w;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 29;
    }
    return static_cast<std::size_t>(x);
  }
};
