#include "dht/routing_table.h"

#include <algorithm>

namespace reuse::dht {

int RoutingTable::bucket_for(const NodeId& id) const {
  const int index = own_id_.bucket_index(id);
  return index < 0 ? 0 : index;
}

void RoutingTable::insert(const NodeContact& contact) {
  if (contact.id == own_id_) return;
  for (const NodeContact& existing : contacts_) {
    if (existing.id == contact.id) return;
  }
  auto& occupancy = bucket_sizes_[static_cast<std::size_t>(bucket_for(contact.id))];
  if (occupancy >= kBucketCapacity) return;
  ++occupancy;
  contacts_.push_back(contact);
}

void RoutingTable::update(const NodeContact& contact) {
  if (contact.id == own_id_) return;
  for (NodeContact& existing : contacts_) {
    if (existing.id == contact.id) {
      existing.endpoint = contact.endpoint;
      return;
    }
  }
  insert(contact);
}

std::vector<NodeContact> RoutingTable::closest(const NodeId& target,
                                               std::size_t count) const {
  std::vector<NodeContact> out = contacts_;
  const std::size_t keep = std::min(count, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(keep),
                    out.end(),
                    [&target](const NodeContact& a, const NodeContact& b) {
                      return closer_to(target, a.id, b.id);
                    });
  out.resize(keep);
  return out;
}

}  // namespace reuse::dht
