// A simulated BitTorrent DHT peer.
//
// Each peer belongs to one World user, holds a node_id derived from its
// private address + a per-boot nonce, answers get_nodes/bt_ping while its
// user is online, and churns: reboots regenerate the node_id (as the paper
// notes real clients do), often with a new port.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dht/messages.h"
#include "dht/node_id.h"
#include "dht/routing_table.h"
#include "internet/types.h"
#include "netbase/ipv4.h"
#include "netbase/sim_time.h"

namespace reuse::dht {

struct PeerBehavior {
  /// Fraction of peers that are effectively always online (seedboxes,
  /// long-running clients).
  double always_on_fraction = 0.55;
  /// Daily online duty cycle for the remaining peers, drawn uniformly.
  double duty_min = 0.3;
  double duty_max = 0.75;
};

class DhtPeer {
 public:
  DhtPeer(inet::UserId user, std::uint64_t seed, net::Endpoint endpoint,
          const PeerBehavior& behavior);

  [[nodiscard]] inet::UserId user() const { return user_; }
  [[nodiscard]] const NodeId& id() const { return id_; }
  [[nodiscard]] const net::Endpoint& endpoint() const { return endpoint_; }
  [[nodiscard]] const std::string& version() const { return version_; }
  [[nodiscard]] RoutingTable& table() { return table_; }
  [[nodiscard]] const RoutingTable& table() const { return table_; }

  /// Whether the user's machine (and client) is up at `t`. Deterministic in
  /// (seed, t): always-on peers are always up; others follow a daily window.
  [[nodiscard]] bool online(net::SimTime t) const;

  /// Protocol handler. Returns nothing while offline — over UDP, silence.
  [[nodiscard]] std::optional<DhtResponse> handle(const DhtRequest& request,
                                                  net::SimTime now) const;

  /// Reboot: regenerate node_id from a fresh nonce. The endpoint change (if
  /// any) is managed by the network, which owns NAT bindings.
  void reboot(std::uint64_t nonce);

  void set_endpoint(net::Endpoint endpoint) { endpoint_ = endpoint; }

  /// How many distinct node_ids this peer has used (1 + reboots).
  [[nodiscard]] std::uint64_t ids_used() const { return ids_used_; }

 private:
  inet::UserId user_;
  std::uint64_t seed_;
  std::uint32_t private_address_;
  net::Endpoint endpoint_;
  NodeId id_;
  std::string version_;
  RoutingTable table_;
  bool always_on_;
  double duty_fraction_;
  double duty_phase_;
  std::uint64_t ids_used_ = 1;
};

}  // namespace reuse::dht
