// The assembled BitTorrent DHT overlay.
//
// Builds one DhtPeer per BitTorrent user of the World, assigns public
// endpoints through the appropriate sharing mechanism (direct, home NAT,
// CGN port multiplexing, dynamic lease), seeds routing tables with a random
// contact graph that includes *stale* endpoints (old ports leaked into other
// peers' tables — the false-NAT signal the paper's ping verification must
// reject), and drives churn: reboots regenerate node_ids and usually ports;
// dynamic subscribers move to new addresses on their pool's lease timescale.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/peer.h"
#include "internet/world.h"
#include "netbase/rng.h"
#include "simnet/event_queue.h"
#include "simnet/nat.h"
#include "simnet/transport.h"

namespace reuse::dht {

struct DhtNetworkConfig {
  std::uint64_t seed = 2;
  /// Contacts seeded into each peer's routing table (subject to k-bucket
  /// capacity limits).
  std::size_t contacts_per_peer = 32;
  /// Fraction of peers that changed ports before the crawl, leaving an old
  /// endpoint in circulation.
  double stale_endpoint_fraction = 0.18;
  /// Of the links pointing at such a peer, the share using the old endpoint.
  double stale_link_share = 0.30;
  PeerBehavior behavior;
  sim::TransportConfig transport;
  /// Per-peer reboot rate; each reboot draws a fresh node_id.
  double reboot_rate_per_day = 0.08;
  /// Probability a reboot also changes the port / NAT mapping.
  double port_change_on_reboot = 0.9;
  /// Whether dynamic subscribers change address mid-crawl at their pool's
  /// lease rate.
  bool dynamic_address_churn = true;
  /// Bootstrap table size.
  std::size_t bootstrap_contacts = 400;
};

struct DhtChurnStats {
  std::uint64_t reboots = 0;
  std::uint64_t port_changes = 0;
  std::uint64_t address_changes = 0;
};

class DhtNetwork {
 public:
  using DhtTransport = sim::Transport<DhtRequest, DhtResponse>;

  DhtNetwork(const inet::World& world, sim::EventQueue& events,
             const DhtNetworkConfig& config);

  DhtNetwork(const DhtNetwork&) = delete;
  DhtNetwork& operator=(const DhtNetwork&) = delete;

  [[nodiscard]] DhtTransport& transport() { return transport_; }
  [[nodiscard]] const DhtTransport& transport() const { return transport_; }

  [[nodiscard]] net::Endpoint bootstrap_endpoint() const {
    return peers_.front().endpoint();
  }

  [[nodiscard]] std::size_t peer_count() const { return peers_.size() - 1; }
  /// Peer by index; index 0 is the bootstrap node.
  [[nodiscard]] const DhtPeer& peer_at(std::size_t index) const {
    return peers_[index];
  }

  /// Schedules reboot/address churn across the window. Call once, before
  /// running the crawl.
  void schedule_churn(net::TimeWindow window);

  /// Distinct node_ids ever used (grows with reboots) — the §4 crawl-stats
  /// denominator.
  [[nodiscard]] std::uint64_t total_node_ids_used() const;

  /// Distinct public addresses currently hosting at least one peer.
  [[nodiscard]] std::size_t distinct_addresses() const;

  [[nodiscard]] const DhtChurnStats& churn_stats() const { return churn_; }

 private:
  void bind_peer(std::size_t index);
  void unbind_peer(std::size_t index);
  net::Endpoint assign_endpoint(const inet::User& user);
  net::Ipv4Address claim_dynamic_address(std::uint32_t pool_index);
  void reboot_peer(std::size_t index);
  void move_dynamic_peer(std::size_t index);
  void schedule_reboots(std::size_t index, net::TimeWindow window);
  void schedule_moves(std::size_t index, net::TimeWindow window);

  const inet::World& world_;
  sim::EventQueue& events_;
  DhtNetworkConfig config_;
  net::Rng rng_;
  DhtTransport transport_;
  std::deque<DhtPeer> peers_;  ///< [0] = bootstrap; stable references
  std::unordered_map<net::Ipv4Address, sim::NatDevice> nat_devices_;
  std::unordered_map<std::uint32_t, std::unordered_set<net::Ipv4Address>>
      pool_occupancy_;
  DhtChurnStats churn_;
};

}  // namespace reuse::dht
