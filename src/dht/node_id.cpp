#include "dht/node_id.h"

#include <bit>
#include <cstdio>

#include "netbase/rng.h"

namespace reuse::dht {

NodeId NodeId::derive(std::uint32_t private_address, std::uint64_t nonce) {
  // A keyed splitmix chain standing in for SHA-1: uniform, deterministic,
  // and collision-free in practice at simulation scale — the properties the
  // protocol relies on.
  std::uint64_t state =
      (std::uint64_t{private_address} << 32) ^ nonce ^ 0x5bd1e995abcdefULL;
  std::array<std::uint32_t, 5> words{};
  for (std::size_t i = 0; i < 5; ++i) {
    words[i] = static_cast<std::uint32_t>(net::splitmix64(state) >> 32);
  }
  return NodeId(words);
}

int NodeId::bucket_index(const NodeId& other) const {
  for (std::size_t i = 0; i < 5; ++i) {
    const std::uint32_t diff = words_[i] ^ other.words_[i];
    if (diff != 0) {
      return static_cast<int>(159 - (i * 32 +
                                     static_cast<std::size_t>(
                                         std::countl_zero(diff))));
    }
  }
  return -1;
}

std::string NodeId::to_hex() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%08x%08x%08x%08x%08x", words_[0],
                words_[1], words_[2], words_[3], words_[4]);
  return buffer;
}

}  // namespace reuse::dht
