#include "dht/network.h"

#include <stdexcept>

#include "internet/lease.h"

namespace reuse::dht {
namespace {

/// The bootstrap node lives outside the generated address space (the World
/// allocates upwards from 1.0.0.0 and never reaches this block).
const net::Endpoint kBootstrapEndpoint{
    net::Ipv4Address::from_octets(203, 0, 113, 1), 6881};

}  // namespace

DhtNetwork::DhtNetwork(const inet::World& world, sim::EventQueue& events,
                       const DhtNetworkConfig& config)
    : world_(world),
      events_(events),
      config_(config),
      rng_(config.seed),
      transport_(events, net::Rng(config.seed ^ 0x7a57ULL), config.transport) {
  // Bootstrap node: user id 0, always online.
  PeerBehavior always_on;
  always_on.always_on_fraction = 1.0;
  peers_.emplace_back(inet::UserId{0}, rng_(), kBootstrapEndpoint, always_on);
  bind_peer(0);

  // One peer per BitTorrent user.
  for (const inet::UserId id : world_.bittorrent_users()) {
    const inet::User& user = world_.user(id);
    const net::Endpoint endpoint = assign_endpoint(user);
    peers_.emplace_back(id, user.seed, endpoint, config_.behavior);
    bind_peer(peers_.size() - 1);
  }

  // Stale endpoints: some peers changed ports before the crawl began; the
  // old endpoint still circulates in routing tables but answers nothing.
  std::vector<net::Endpoint> old_endpoints(peers_.size());
  std::vector<bool> has_old(peers_.size(), false);
  for (std::size_t i = 1; i < peers_.size(); ++i) {
    if (!rng_.bernoulli(config_.stale_endpoint_fraction)) continue;
    // Old ports are drawn from a range no live binding uses (NAT mappings
    // and fresh client ports all start at 1024), so stale entries are
    // guaranteed silent rather than accidentally hitting a neighbour.
    old_endpoints[i] = net::Endpoint{
        peers_[i].endpoint().address,
        static_cast<std::uint16_t>(512 + rng_.uniform(500))};
    has_old[i] = true;
  }

  // Random contact graph. Each peer learns `contacts_per_peer` random other
  // peers; links to a port-changed peer use the stale endpoint some of the
  // time.
  const std::size_t n = peers_.size();
  if (n > 2) {
    for (std::size_t i = 1; i < n; ++i) {
      for (std::size_t c = 0; c < config_.contacts_per_peer; ++c) {
        std::size_t j = 1 + rng_.uniform(n - 1);
        if (j == i) continue;
        const bool use_stale = has_old[j] && rng_.bernoulli(config_.stale_link_share);
        peers_[i].table().insert(NodeContact{
            use_stale ? old_endpoints[j] : peers_[j].endpoint(),
            peers_[j].id()});
      }
    }
    // Bootstrap learns a broad random sample (it answers the crawl's first
    // get_nodes, so it must open the graph).
    const std::size_t sample =
        std::min(config_.bootstrap_contacts, n - 1);
    for (const std::size_t j : rng_.sample_indices(n - 1, sample)) {
      peers_[0].table().insert(
          NodeContact{peers_[j + 1].endpoint(), peers_[j + 1].id()});
    }
  }
}

net::Endpoint DhtNetwork::assign_endpoint(const inet::User& user) {
  switch (user.attachment) {
    case inet::AttachmentKind::kStatic: {
      return net::Endpoint{user.fixed_address,
                           static_cast<std::uint16_t>(1024 + rng_.uniform(60000))};
    }
    case inet::AttachmentKind::kHomeNat:
    case inet::AttachmentKind::kCgn: {
      auto [it, inserted] = nat_devices_.try_emplace(
          user.fixed_address, user.fixed_address,
          static_cast<std::uint16_t>(1024));
      return it->second.bind(user.id);
    }
    case inet::AttachmentKind::kDynamic: {
      const net::Ipv4Address address = claim_dynamic_address(user.pool_index);
      return net::Endpoint{address,
                           static_cast<std::uint16_t>(1024 + rng_.uniform(60000))};
    }
  }
  throw std::logic_error("assign_endpoint: unknown attachment");
}

net::Ipv4Address DhtNetwork::claim_dynamic_address(std::uint32_t pool_index) {
  const inet::DynamicPoolInfo& pool = world_.pool(pool_index);
  auto& occupied = pool_occupancy_[pool_index];
  // DHCP grants are exclusive: draw until we land on a free address. Pools
  // are provisioned with headroom (subscription ratio < 1), so this loop is
  // short.
  for (int attempts = 0; attempts < 1024; ++attempts) {
    const net::Ipv4Address candidate = inet::draw_pool_address(pool, rng_);
    if (occupied.insert(candidate).second) return candidate;
  }
  throw std::runtime_error("claim_dynamic_address: pool exhausted");
}

void DhtNetwork::bind_peer(std::size_t index) {
  transport_.bind(peers_[index].endpoint(),
                  [this, index](const net::Endpoint&, const DhtRequest& request) {
                    return peers_[index].handle(request, events_.now());
                  });
}

void DhtNetwork::unbind_peer(std::size_t index) {
  transport_.unbind(peers_[index].endpoint());
}

void DhtNetwork::schedule_churn(net::TimeWindow window) {
  for (std::size_t i = 1; i < peers_.size(); ++i) {
    schedule_reboots(i, window);
    const inet::User& user = world_.user(peers_[i].user());
    if (config_.dynamic_address_churn &&
        user.attachment == inet::AttachmentKind::kDynamic) {
      schedule_moves(i, window);
    }
  }
}

void DhtNetwork::schedule_reboots(std::size_t index, net::TimeWindow window) {
  if (config_.reboot_rate_per_day <= 0.0) return;
  const double mean_gap_seconds = 86400.0 / config_.reboot_rate_per_day;
  net::SimTime t = window.begin;
  for (;;) {
    t = t + net::Duration(static_cast<std::int64_t>(
            std::max(1.0, rng_.exponential(mean_gap_seconds))));
    if (t >= window.end) break;
    events_.schedule_at(t, [this, index] { reboot_peer(index); });
  }
}

void DhtNetwork::schedule_moves(std::size_t index, net::TimeWindow window) {
  const inet::User& user = world_.user(peers_[index].user());
  const inet::DynamicPoolInfo& pool = world_.pool(user.pool_index);
  net::SimTime t = window.begin;
  for (;;) {
    t = t + net::Duration(static_cast<std::int64_t>(
            std::max(60.0, rng_.exponential(pool.mean_lease_seconds))));
    if (t >= window.end) break;
    events_.schedule_at(t, [this, index] { move_dynamic_peer(index); });
  }
}

void DhtNetwork::reboot_peer(std::size_t index) {
  DhtPeer& peer = peers_[index];
  peer.reboot(rng_());
  ++churn_.reboots;
  if (!rng_.bernoulli(config_.port_change_on_reboot)) return;
  ++churn_.port_changes;
  unbind_peer(index);
  const inet::User& user = world_.user(peer.user());
  switch (user.attachment) {
    case inet::AttachmentKind::kHomeNat:
    case inet::AttachmentKind::kCgn: {
      auto it = nat_devices_.find(user.fixed_address);
      peer.set_endpoint(it->second.bind(user.id));
      break;
    }
    case inet::AttachmentKind::kStatic:
    case inet::AttachmentKind::kDynamic: {
      peer.set_endpoint(net::Endpoint{
          peer.endpoint().address,
          static_cast<std::uint16_t>(1024 + rng_.uniform(60000))});
      break;
    }
  }
  bind_peer(index);
}

void DhtNetwork::move_dynamic_peer(std::size_t index) {
  DhtPeer& peer = peers_[index];
  const inet::User& user = world_.user(peer.user());
  ++churn_.address_changes;
  unbind_peer(index);
  pool_occupancy_[user.pool_index].erase(peer.endpoint().address);
  const net::Ipv4Address address = claim_dynamic_address(user.pool_index);
  peer.set_endpoint(net::Endpoint{
      address, static_cast<std::uint16_t>(1024 + rng_.uniform(60000))});
  bind_peer(index);
}

std::uint64_t DhtNetwork::total_node_ids_used() const {
  std::uint64_t total = 0;
  for (const DhtPeer& peer : peers_) total += peer.ids_used();
  return total - peers_.front().ids_used();  // exclude bootstrap
}

std::size_t DhtNetwork::distinct_addresses() const {
  std::unordered_set<net::Ipv4Address> addresses;
  for (std::size_t i = 1; i < peers_.size(); ++i) {
    addresses.insert(peers_[i].endpoint().address);
  }
  return addresses.size();
}

}  // namespace reuse::dht
