// Kademlia-style k-bucket routing table.
//
// Peers answer get_nodes from this structure: the k contacts XOR-closest to
// the requested target. Bucket capacities bound memory per peer and give the
// lookup the logarithmic structure real DHT crawls exploit. Storage is a
// single flat vector (tables hold a few dozen contacts at simulation scale),
// with per-bucket occupancy counters enforcing the k-bucket policy.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "dht/messages.h"
#include "dht/node_id.h"

namespace reuse::dht {

class RoutingTable {
 public:
  static constexpr std::size_t kBucketCapacity = 8;
  static constexpr int kBucketCount = 160;

  explicit RoutingTable(NodeId own_id) : own_id_(own_id) {}

  /// Inserts a contact; a full bucket drops the newcomer (the classic
  /// "old contacts are good contacts" policy, which is also what keeps stale
  /// entries alive in real tables). Duplicate ids are ignored.
  void insert(const NodeContact& contact);

  /// Replaces the stored endpoint for `id` if present (peer re-announced
  /// after a rebind); otherwise behaves like insert().
  void update(const NodeContact& contact);

  /// The up-to `count` contacts closest to `target` by XOR distance.
  [[nodiscard]] std::vector<NodeContact> closest(const NodeId& target,
                                                 std::size_t count) const;

  [[nodiscard]] std::size_t size() const { return contacts_.size(); }
  [[nodiscard]] const NodeId& own_id() const { return own_id_; }

  /// All contacts, unspecified order (test/diagnostic use).
  [[nodiscard]] const std::vector<NodeContact>& all_contacts() const {
    return contacts_;
  }

 private:
  [[nodiscard]] int bucket_for(const NodeId& id) const;

  NodeId own_id_;
  std::vector<NodeContact> contacts_;
  std::array<std::uint8_t, kBucketCount> bucket_sizes_{};
};

}  // namespace reuse::dht
