#include "dht/peer.h"

#include <cmath>

#include "netbase/rng.h"

namespace reuse::dht {
namespace {

const char* const kClientVersions[] = {"UT355", "UT360", "LT110", "LT120",
                                       "qB445", "qB460", "TR300", "DE210"};

}  // namespace

DhtPeer::DhtPeer(inet::UserId user, std::uint64_t seed, net::Endpoint endpoint,
                 const PeerBehavior& behavior)
    : user_(user), seed_(seed), endpoint_(endpoint), id_(), table_(NodeId{}) {
  net::Rng rng(seed);
  // The private (pre-NAT) address feeds node_id derivation, per the paper.
  private_address_ = static_cast<std::uint32_t>(rng());
  id_ = NodeId::derive(private_address_, rng());
  table_ = RoutingTable(id_);
  version_ = kClientVersions[rng.uniform(std::size(kClientVersions))];
  always_on_ = rng.bernoulli(behavior.always_on_fraction);
  duty_fraction_ = rng.uniform_real(behavior.duty_min, behavior.duty_max);
  duty_phase_ = rng.uniform_real();
}

bool DhtPeer::online(net::SimTime t) const {
  if (always_on_) return true;
  const double day_position =
      std::fmod(static_cast<double>(t.seconds()) / 86400.0 + duty_phase_, 1.0);
  return day_position < duty_fraction_;
}

std::optional<DhtResponse> DhtPeer::handle(const DhtRequest& request,
                                           net::SimTime now) const {
  if (!online(now)) return std::nullopt;
  DhtResponse response;
  response.responder_id = id_;
  response.version = version_;
  if (const auto* get_nodes = std::get_if<GetNodesRequest>(&request)) {
    response.neighbors = table_.closest(get_nodes->target, kNeighborsPerReply);
  }
  return response;
}

void DhtPeer::reboot(std::uint64_t nonce) {
  id_ = NodeId::derive(private_address_, nonce);
  ++ids_used_;
  // The routing table survives in practice (clients persist it), so only the
  // identity changes; own_id drift inside the table is harmless here because
  // bucket placement only shapes which neighbours are returned.
}

}  // namespace reuse::dht
