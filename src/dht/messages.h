// KRPC-style message types exchanged between the crawler and DHT peers.
//
// The paper's crawler uses exactly two verbs: `get_nodes` (neighbour
// discovery) and `bt_ping` (liveness with node_id echo). Responses carry the
// responder's node_id and client version, which is what the crawler logs.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dht/node_id.h"
#include "netbase/ipv4.h"

namespace reuse::dht {

/// A (endpoint, node_id) pair as carried in get_nodes replies.
struct NodeContact {
  net::Endpoint endpoint;
  NodeId id;

  friend bool operator==(const NodeContact&, const NodeContact&) = default;
};

struct GetNodesRequest {
  NodeId target;  ///< ids closest to this are returned
};

struct BtPingRequest {};

using DhtRequest = std::variant<GetNodesRequest, BtPingRequest>;

/// Unified response: ping replies leave `neighbors` empty.
struct DhtResponse {
  NodeId responder_id;
  std::string version;  ///< client software tag, e.g. "LT1.2"
  std::vector<NodeContact> neighbors;
};

/// Neighbours returned per get_nodes — eight, per the protocol description
/// in the paper (a new user learns eight neighbours).
inline constexpr std::size_t kNeighborsPerReply = 8;

}  // namespace reuse::dht
