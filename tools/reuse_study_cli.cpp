// reuse_study — run the end-to-end study at a chosen scale and export its
// artifacts: the reused-address list, per-list reuse counts, the dynamic
// prefix list, and a machine-readable summary.
//
//   reuse_study [--seed N] [--ases N] [--crawl-days N] [--probes N]
//               [--preset NAME | --list-presets]
//               [--jobs N] [--out-dir DIR] [--census]
//               [--cache [--cache-file PATH]] [--resume-days K]
//               [--chaos [--chaos-seed N]] [--metrics-out FILE]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/cache.h"
#include "analysis/greylist.h"
#include "analysis/manifest.h"
#include "analysis/impact.h"
#include "analysis/presets.h"
#include "analysis/scenario.h"
#include "blocklist/parse.h"
#include "netbase/flags.h"
#include "netbase/stats.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "7");
  flags.define("ases", "autonomous systems in the synthetic Internet", "300");
  flags.define("crawl-days", "simulated crawl length", "3");
  flags.define("probes", "Atlas-style probes", "2000");
  flags.define("jobs",
               "worker threads for the parallel stages (0 = all hardware "
               "threads); results are identical for every value",
               "1");
  flags.define("out-dir", "directory for exported artifacts", ".");
  flags.define("preset",
               "scenario preset applied on top of the flags (see "
               "--list-presets)");
  flags.define_bool("list-presets", "list the preset registry and exit");
  flags.define_bool("census", "also run the ICMP census baseline");
  flags.define_bool("cache",
                    "reuse the on-disk scenario cache (fingerprint-keyed "
                    "file, honours $REUSE_CACHE_DIR)");
  flags.define("cache-file", "explicit cache file path (implies --cache)");
  flags.define("resume-days",
               "evolve the cached base scenario this many extra days through "
               "the incremental pipeline instead of re-simulating the full "
               "span (implies --cache; products are byte-identical to a "
               "fresh extended run)",
               "0");
  flags.define_bool("chaos",
                    "inject the default fault plan (loss bursts, bootstrap "
                    "and feed outages, corrupted feeds, Atlas gaps) and "
                    "print the degradation report");
  flags.define("chaos-seed", "seed for the chaos fault plan", "1");
  flags.define("metrics-out",
               "write the run manifest (config fingerprint, fault plan, "
               "stage timings, full metrics snapshot) to this file");
  flags.define("metrics-format",
               "encoding for --metrics-out: json (run manifest) or "
               "prometheus (metrics text exposition)",
               "json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("reuse_study",
                             "full IMC'20 reused-address study on a synthetic "
                             "Internet, with exported artifacts");
    if (!flags.error().empty()) std::cerr << "\nerror: " << flags.error() << '\n';
    return flags.get_bool("help") ? 0 : 2;
  }
  if (flags.get_bool("list-presets")) {
    for (const analysis::ScenarioPreset& preset :
         analysis::scenario_presets()) {
      std::cout << preset.name << " — " << preset.summary << '\n';
    }
    return 0;
  }

  analysis::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed").value_or(7));
  config.world = inet::test_world_config(config.seed);
  config.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(300));
  config.crawl_days = static_cast<int>(flags.get_int("crawl-days").value_or(3));
  config.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(2000));
  config.run_census = flags.get_bool("census");
  const analysis::ScenarioPreset* preset = nullptr;
  if (flags.has("preset")) {
    preset = analysis::parse_preset(flags.get("preset"));
    if (preset == nullptr) {
      std::cerr << "error: unknown preset \"" << flags.get("preset")
                << "\" (valid: " << analysis::preset_names() << ")\n";
      return 2;
    }
    // Applied after the scale flags so the preset's mix knobs win over the
    // defaults but --ases/--probes keep controlling the scale.
    preset->apply(config);
  }
  const std::optional<int> jobs = net::parse_jobs(flags.get("jobs"));
  if (!jobs) {
    std::cerr << "error: --jobs must be a non-negative integer (0 = all "
                 "hardware threads), got \"" << flags.get("jobs") << "\"\n";
    return 2;
  }
  config.jobs = *jobs;
  const std::optional<net::MetricsFormat> metrics_format =
      net::parse_metrics_format(flags.get("metrics-format"));
  if (!metrics_format) {
    std::cerr << "error: --metrics-format must be \"json\" or "
                 "\"prometheus\", got \""
              << flags.get("metrics-format") << "\"\n";
    return 2;
  }
  const bool chaos = flags.get_bool("chaos");
  if (chaos) {
    const auto chaos_seed =
        static_cast<std::uint64_t>(flags.get_int("chaos-seed").value_or(1));
    config.faults = analysis::default_chaos_plan(config, chaos_seed);
    // Under injected Atlas gaps, cap inter-change inference across the holes
    // so step 4 of the pipeline keeps judging churn, not outages.
    config.pipeline.max_change_gap = net::Duration::days(7);
  }
  config.finalize();

  const int resume_days =
      static_cast<int>(flags.get_int("resume-days").value_or(0));
  if (resume_days < 0) {
    std::cerr << "error: --resume-days must be non-negative, got "
              << resume_days << '\n';
    return 2;
  }
  if (resume_days > 0) {
    // The resumed products are only byte-identical to a fresh extended run
    // when base and extended runs resolve to the SAME abuse horizon, so the
    // base config must declare it up front: end of the last collection
    // period plus the resume window.
    std::int64_t last_end_seconds = 0;
    for (const net::TimeWindow& period : config.ecosystem.periods) {
      last_end_seconds = std::max(last_end_seconds, period.end.seconds());
    }
    config.horizon_days =
        static_cast<int>(last_end_seconds / 86400) + resume_days;
  }

  const bool use_cache = flags.get_bool("cache") || flags.has("cache-file") ||
                         resume_days > 0;
  if (use_cache) {
    // Fail fast on an unusable cache path — silently simulating for minutes
    // and then failing (or quietly not caching) helps nobody.
    const std::string cache_path = flags.has("cache-file")
                                       ? flags.get("cache-file")
                                       : analysis::default_cache_path(config);
    if (const auto error = analysis::preflight_cache_path(cache_path)) {
      std::cerr << "error: " << *error << '\n';
      return 1;
    }
  }

  std::cerr << "simulating (seed " << config.seed << ", "
            << config.world.as_count << " ASes)...\n";
  analysis::EvolvePath evolve_path = analysis::EvolvePath::kFreshRun;
  const analysis::CachedScenario s = [&] {
    if (resume_days > 0) {
      // Ensure the base cache exists (a no-op load when it already does),
      // then evolve from it — so the first --resume-days invocation costs
      // base + tail, and every later one just the tail.
      {
        const analysis::CachedScenario base =
            analysis::run_scenario_cached(config, flags.get("cache-file"));
        std::cerr << (base.cache_hit
                          ? "loaded base scenario from cache\n"
                          : "simulated base scenario and wrote cache\n");
      }
      analysis::EvolvedScenario evolved = analysis::evolve_scenario_cached(
          config, resume_days, flags.get("cache-file"));
      evolve_path = evolved.path;
      return std::move(evolved.scenario);
    }
    if (use_cache) {
      return analysis::run_scenario_cached(config, flags.get("cache-file"));
    }
    analysis::Scenario fresh = analysis::run_scenario(config);
    analysis::CachedScenario wrapped{std::move(fresh.config),
                                     std::move(fresh.world),
                                     std::move(fresh.catalogue),
                                     std::move(fresh.ecosystem),
                                     std::move(fresh.crawl),
                                     std::move(fresh.fleet),
                                     std::move(fresh.pipeline),
                                     std::move(fresh.census),
                                     std::move(fresh.degradation),
                                     /*cache_hit=*/false};
    wrapped.stage_times = std::move(fresh.stage_times);
    return wrapped;
  }();
  if (resume_days > 0) {
    std::cerr << (evolve_path == analysis::EvolvePath::kResumed
                      ? "resumed cached base scenario (+" +
                            std::to_string(resume_days) + " days)\n"
                      : "no usable base cache; simulated the extended span "
                        "fresh\n");
  } else if (use_cache) {
    std::cerr << (s.cache_hit ? "loaded crawl+ecosystem from cache\n"
                              : "simulated fresh and wrote cache\n");
  }

  const std::unique_ptr<net::ThreadPool> pool =
      analysis::make_scenario_pool(config.jobs);
  const analysis::ReuseImpact impact = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.pipeline.dynamic_prefixes, pool.get());

  const std::filesystem::path out_dir(flags.get("out-dir"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  // 1. The published artifact: reused blocklisted addresses.
  const auto reused = analysis::build_reused_address_list(
      s.ecosystem.store, s.crawl.nated_set, s.pipeline.dynamic_prefixes);
  {
    std::ofstream os(out_dir / "reused_addresses.txt");
    std::vector<net::Ipv4Address> addresses;
    addresses.reserve(reused.size());
    for (const auto& entry : reused) addresses.push_back(entry.address);
    blocklist::write_list(os, "reused blocklisted addresses", addresses);
  }

  // 2. Dynamic prefixes.
  {
    std::ofstream os(out_dir / "dynamic_prefixes.txt");
    os << "# dynamically allocated /24 prefixes (Atlas pipeline)\n";
    for (const auto& prefix : s.pipeline.dynamic_prefixes.to_vector()) {
      os << prefix.to_string() << '\n';
    }
  }

  // 3. Per-list reuse counts, CSV.
  {
    net::AsciiTable table({"list", "category", "addresses", "nated", "dynamic"});
    for (const auto& counts : impact.per_list) {
      const auto& info = s.catalogue[counts.list - 1];
      table.add_row({info.name, std::string(to_string(info.category)),
                     std::to_string(counts.total_addresses),
                     std::to_string(counts.nated_addresses),
                     std::to_string(counts.dynamic_addresses)});
    }
    std::ofstream os(out_dir / "per_list_reuse.csv");
    os << table.to_csv();
  }

  // 4. Human summary.
  net::AsciiTable summary({"metric", "value"});
  summary.add_row({"blocklisted addresses",
                   net::with_thousands(static_cast<std::int64_t>(
                       s.ecosystem.store.address_count()))});
  summary.add_row({"NATed blocklisted", net::with_thousands(static_cast<std::int64_t>(
                                            impact.nated_blocklisted_addresses))});
  summary.add_row({"dynamic blocklisted",
                   net::with_thousands(static_cast<std::int64_t>(
                       impact.dynamic_blocklisted_addresses))});
  summary.add_row({"lists with NATed entries",
                   net::percent(impact.fraction_lists_with_nated())});
  summary.add_row({"lists with dynamic entries",
                   net::percent(impact.fraction_lists_with_dynamic())});
  summary.add_row({"reused-address list size",
                   net::with_thousands(static_cast<std::int64_t>(reused.size()))});
  std::cout << summary.to_string();

  if (chaos || s.degradation.degraded()) {
    std::cout << "\nDegradation report\n" << s.degradation.to_string();
    if (!s.degradation.reconciles()) {
      std::cerr << "error: fault ledger does not reconcile\n";
      return 1;
    }
  }
  std::cerr << "stage times: " << s.stage_times.to_json(config.jobs) << '\n';
  if (flags.has("metrics-out")) {
    analysis::RunManifestInfo manifest;
    manifest.tool = "reuse_study";
    manifest.config = &s.config;
    manifest.stage_times = &s.stage_times;
    if (use_cache) manifest.cache_hit = s.cache_hit;
    if (preset != nullptr) manifest.preset = preset->name;
    if (const auto error = analysis::write_run_manifest(
            flags.get("metrics-out"), manifest, *metrics_format)) {
      std::cerr << "error: " << *error << '\n';
      return 1;
    }
    std::cerr << "run manifest written to " << flags.get("metrics-out")
              << '\n';
  }
  std::cerr << "artifacts written to " << out_dir.string() << "/\n";
  return 0;
}
