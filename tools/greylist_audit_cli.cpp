// greylist_audit — split a blocklist into block/greylist using a
// reused-address list (the operator workflow of §6).
//
//   greylist_audit --blocklist feed.txt --reused reused.txt
//                  [--block-out block.txt] [--grey-out greylist.txt]
//
// The reused list accepts both bare addresses (NATed) and CIDR prefixes
// (dynamic pools) in standard blocklist text format.
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/manifest.h"
#include "blocklist/parse.h"
#include "netbase/flags.h"
#include "netbase/prefix_trie.h"
#include "netbase/stats.h"

namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream is(path);
  if (!is) {
    ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  ok = true;
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("blocklist", "the feed to audit (one IP/CIDR per line)");
  flags.define("reused", "the reused-address list (IPs and/or CIDRs)");
  flags.define("block-out", "file for entries safe to hard-block");
  flags.define("grey-out", "file for entries to greylist instead");
  flags.define("metrics-out",
               "write the run manifest (metrics snapshot + tool name) to "
               "this file");
  flags.define("metrics-format",
               "encoding for --metrics-out: json (run manifest) or "
               "prometheus (metrics text exposition)",
               "json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help") ||
      !flags.has("blocklist") || !flags.has("reused")) {
    std::cerr << flags.usage(
        "greylist_audit",
        "divert reused-address listings to a greylist (IMC'20 §6)");
    if (!flags.error().empty()) std::cerr << "\nerror: " << flags.error() << '\n';
    return flags.get_bool("help") ? 0 : 2;
  }

  const std::optional<net::MetricsFormat> metrics_format =
      net::parse_metrics_format(flags.get("metrics-format"));
  if (!metrics_format) {
    std::cerr << "error: --metrics-format must be \"json\" or "
                 "\"prometheus\", got \""
              << flags.get("metrics-format") << "\"\n";
    return 2;
  }

  bool ok = true;
  const std::string feed_text = read_file(flags.get("blocklist"), ok);
  if (!ok) {
    std::cerr << "error: cannot open " << flags.get("blocklist") << '\n';
    return 1;
  }
  const std::string reused_text = read_file(flags.get("reused"), ok);
  if (!ok) {
    std::cerr << "error: cannot open " << flags.get("reused") << '\n';
    return 1;
  }

  const blocklist::ParsedList feed = blocklist::parse_list_text(feed_text);
  const blocklist::ParsedList reused = blocklist::parse_list_text(reused_text);

  net::PrefixSet reused_set;
  for (const net::Ipv4Address address : reused.addresses) {
    reused_set.insert(net::Ipv4Prefix(address, 32));
  }
  for (const net::Ipv4Prefix& prefix : reused.prefixes) {
    reused_set.insert(prefix);
  }

  std::vector<net::Ipv4Address> block;
  std::vector<net::Ipv4Address> grey;
  for (const net::Ipv4Address address : feed.addresses) {
    (reused_set.contains_address(address) ? grey : block).push_back(address);
  }

  std::cerr << "feed entries: " << feed.addresses.size() << " (skipped "
            << feed.skipped_lines << " lines)\n"
            << "reused knowledge: " << reused_set.size() << " entries\n"
            << "-> hard-block " << block.size() << ", greylist "
            << grey.size() << " ("
            << net::percent(feed.addresses.empty()
                                ? 0.0
                                : static_cast<double>(grey.size()) /
                                      static_cast<double>(feed.addresses.size()))
            << " of the feed)\n";

  auto write_out = [&](const std::string& flag, const char* title,
                       const std::vector<net::Ipv4Address>& addresses) {
    if (!flags.has(flag)) return true;
    std::ofstream os(flags.get(flag));
    if (!os) {
      std::cerr << "error: cannot write " << flags.get(flag) << '\n';
      return false;
    }
    blocklist::write_list(os, title, addresses);
    return true;
  };
  if (!write_out("block-out", "hard-block entries", block)) return 1;
  if (!write_out("grey-out", "greylist entries (reused addresses)", grey)) return 1;

  if (flags.has("metrics-out")) {
    analysis::RunManifestInfo manifest;
    manifest.tool = "greylist_audit";
    if (const auto error = analysis::write_run_manifest(
            flags.get("metrics-out"), manifest, *metrics_format)) {
      std::cerr << "error: " << *error << '\n';
      return 1;
    }
    std::cerr << "run manifest written to " << flags.get("metrics-out") << '\n';
  }
  return 0;
}
