// reuse_lookupd — compile a reuse-aware serving snapshot and query it at
// traffic rates (the serving side of the paper's §6 mitigation).
//
// Default flow: run the scenario (cache-aware, --jobs-aware), compile its
// blocklist/NAT/dynamic products into the binary snapshot artifact, save
// it under --out-dir, reload it from disk (proving the round-trip), then
// replay a deterministic synthetic query workload against the lookup
// engine and write BENCH_lookup.json with throughput and p50/p99 latency.
//
//   reuse_lookupd [--seed N] [--ases N] [--crawl-days N] [--probes N]
//                 [--jobs N] [--cache [--cache-file PATH]] [--out-dir DIR]
//                 [--snapshot-out PATH] [--snapshot-in PATH]
//                 [--queries N] [--batch N] [--threads N] [--qps N]
//                 [--workload-seed N] [--swap-mid-run] [--bench-out PATH]
//                 [--query IP] [--metrics-out FILE]
//                 [--metrics-format {json,prometheus}]
//                 [--serve] [--clients N] [--deadline-ms N]
//                 [--queue-depth N] [--chaos-clients N]
//
// --snapshot-in skips the simulation and serves an existing artifact;
// --query answers one address and exits instead of replaying a workload.
//
// --serve runs the concurrent front end instead of the in-process replay:
// the snapshot is served through LookupServer (sharded workers, bounded
// queues, explicit SHED backpressure), an open-loop multi-client load
// generator drives it, an optional chaos-client plan injects protocol
// faults alongside, and a mid-run reload sequence proves last-good
// fallback (one deliberately corrupted artifact, then a good one). The
// run writes BENCH_lookupd.json and exits 1 unless the server ledger
// reconciles exactly: served + shed + rejected == submitted.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/cache.h"
#include "analysis/manifest.h"
#include "analysis/scenario.h"
#include "netbase/flags.h"
#include "serve/client.h"
#include "serve/lookup.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/workload.h"

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed for the producing scenario", "7");
  flags.define("ases", "autonomous systems in the synthetic Internet", "300");
  flags.define("crawl-days", "simulated crawl length", "3");
  flags.define("probes", "Atlas-style probes", "2000");
  flags.define("jobs",
               "worker threads for the scenario and the snapshot compile "
               "(0 = all hardware threads); artifact bytes are identical "
               "for every value",
               "1");
  flags.define_bool("cache",
                    "reuse the on-disk scenario cache (fingerprint-keyed "
                    "file, honours $REUSE_CACHE_DIR)");
  flags.define("cache-file", "explicit cache file path (implies --cache)");
  flags.define("out-dir", "directory for the compiled snapshot artifact", ".");
  flags.define("snapshot-out",
               "explicit artifact path (default <out-dir>/reuse_snapshot.bin)");
  flags.define("snapshot-in",
               "serve an existing artifact instead of simulating");
  flags.define("queries", "total queries to replay", "1000000");
  flags.define("batch", "addresses per query batch", "64");
  flags.define("threads",
               "query threads for the replay (0 = all hardware threads)",
               "1");
  flags.define("qps",
               "offered load in queries/second across all threads "
               "(0 = unthrottled)",
               "0");
  flags.define("workload-seed", "seed for the synthetic query mix", "1");
  flags.define_bool("swap-mid-run",
                    "reload the artifact and atomically swap it in once "
                    "half the batches have completed");
  flags.define("bench-out", "benchmark JSON output path", "BENCH_lookup.json");
  flags.define("query", "answer one dotted-quad address and exit");
  flags.define_bool("serve",
                    "serve the snapshot through the concurrent front end "
                    "(sharded workers, bounded queues, SHED backpressure) "
                    "under a multi-client load generator; writes "
                    "BENCH_lookupd.json");
  flags.define("clients", "concurrent load-generator clients for --serve",
               "8");
  flags.define("deadline-ms",
               "queued requests older than this are shed (--serve)", "1000");
  flags.define("queue-depth",
               "pending frames a session may queue before SHED (--serve)",
               "64");
  flags.define("chaos-clients",
               "seeded fault-injecting clients to run alongside the load "
               "(0 = none); their ledger must reconcile exactly", "0");
  flags.define("metrics-out",
               "write the run manifest (snapshot fingerprint + metrics "
               "snapshot) to this file");
  flags.define("metrics-format",
               "encoding for --metrics-out: json (run manifest) or "
               "prometheus (metrics text exposition)",
               "json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("reuse_lookupd",
                             "compile a reuse-aware blocklist snapshot and "
                             "serve it to a synthetic query workload");
    if (!flags.error().empty()) std::cerr << "\nerror: " << flags.error() << '\n';
    return flags.get_bool("help") ? 0 : 2;
  }

  const std::optional<int> jobs = net::parse_jobs(flags.get("jobs"));
  if (!jobs) {
    std::cerr << "error: --jobs must be a non-negative integer (0 = all "
                 "hardware threads), got \"" << flags.get("jobs") << "\"\n";
    return 2;
  }
  const std::optional<int> threads = net::parse_jobs(flags.get("threads"));
  if (!threads) {
    std::cerr << "error: --threads must be a non-negative integer (0 = all "
                 "hardware threads), got \"" << flags.get("threads") << "\"\n";
    return 2;
  }
  const std::optional<net::MetricsFormat> metrics_format =
      net::parse_metrics_format(flags.get("metrics-format"));
  if (!metrics_format) {
    std::cerr << "error: --metrics-format must be \"json\" or "
                 "\"prometheus\", got \""
              << flags.get("metrics-format") << "\"\n";
    return 2;
  }
  // Serving knobs are validated parse_jobs-style: garbage or out-of-range
  // text exits 2 with a diagnostic, never becomes a salvaged number.
  const auto bounded_flag = [&](const std::string& name, std::int64_t low,
                                std::int64_t high) -> std::optional<std::int64_t> {
    const auto value = net::parse_bounded_int(flags.get(name), low, high);
    if (!value) {
      std::cerr << "error: --" << name << " must be an integer in [" << low
                << ", " << high << "], got \"" << flags.get(name) << "\"\n";
    }
    return value;
  };
  const auto serve_clients = bounded_flag("clients", 1, 4096);
  if (!serve_clients) return 2;
  const auto deadline_ms = bounded_flag("deadline-ms", 1, 3'600'000);
  if (!deadline_ms) return 2;
  const auto queue_depth = bounded_flag("queue-depth", 1, 1 << 20);
  if (!queue_depth) return 2;
  const auto chaos_clients = bounded_flag("chaos-clients", 0, 4096);
  if (!chaos_clients) return 2;
  if (flags.get_bool("serve") && flags.has("query")) {
    std::cerr << "error: --serve and --query are mutually exclusive\n";
    return 2;
  }
  // Validate the query address before any simulation or artifact load:
  // garbage exits 2 immediately, with the offending text echoed back.
  std::optional<net::Ipv4Address> query_address;
  if (flags.has("query")) {
    query_address = net::Ipv4Address::parse(flags.get("query"));
    if (!query_address) {
      std::cerr << "error: --query expects a dotted-quad IPv4 address, got \""
                << flags.get("query") << "\"\n";
      return 2;
    }
  }

  analysis::RunManifestInfo manifest;
  manifest.tool = "reuse_lookupd";
  analysis::ScenarioConfig config;
  std::string snapshot_path;
  std::shared_ptr<const serve::CompiledSnapshot> snapshot;

  if (flags.has("snapshot-in")) {
    snapshot_path = flags.get("snapshot-in");
    std::string load_error;
    auto loaded = serve::CompiledSnapshot::load(snapshot_path, &load_error);
    if (!loaded) {
      std::cerr << "error: " << load_error << '\n';
      return 1;
    }
    snapshot =
        std::make_shared<const serve::CompiledSnapshot>(*std::move(loaded));
  } else {
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed").value_or(7));
    config.world = inet::test_world_config(config.seed);
    config.world.as_count =
        static_cast<std::size_t>(flags.get_int("ases").value_or(300));
    config.crawl_days =
        static_cast<int>(flags.get_int("crawl-days").value_or(3));
    config.fleet.probe_count =
        static_cast<std::size_t>(flags.get_int("probes").value_or(2000));
    config.run_census = false;  // the serving artifact never needs the census
    config.jobs = *jobs;
    config.finalize();
    manifest.config = &config;

    const bool use_cache = flags.get_bool("cache") || flags.has("cache-file");
    if (use_cache) {
      const std::string cache_path = flags.has("cache-file")
                                         ? flags.get("cache-file")
                                         : analysis::default_cache_path(config);
      if (const auto error = analysis::preflight_cache_path(cache_path)) {
        std::cerr << "error: " << *error << '\n';
        return 1;
      }
    }

    std::cerr << "simulating (seed " << config.seed << ", "
              << config.world.as_count << " ASes)...\n";
    const analysis::CachedScenario s = [&] {
      if (use_cache) {
        return analysis::run_scenario_cached(config, flags.get("cache-file"));
      }
      analysis::Scenario fresh = analysis::run_scenario(config);
      analysis::CachedScenario wrapped{std::move(fresh.config),
                                       std::move(fresh.world),
                                       std::move(fresh.catalogue),
                                       std::move(fresh.ecosystem),
                                       std::move(fresh.crawl),
                                       std::move(fresh.fleet),
                                       std::move(fresh.pipeline),
                                       std::move(fresh.census),
                                       std::move(fresh.degradation),
                                       /*cache_hit=*/false};
      wrapped.stage_times = std::move(fresh.stage_times);
      return wrapped;
    }();
    if (use_cache) {
      manifest.cache_hit = s.cache_hit;
      std::cerr << (s.cache_hit ? "loaded crawl+ecosystem from cache\n"
                                : "simulated fresh and wrote cache\n");
    }

    const std::filesystem::path out_dir(flags.get("out-dir"));
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    snapshot_path = flags.has("snapshot-out")
                        ? flags.get("snapshot-out")
                        : (out_dir / "reuse_snapshot.bin").string();

    const std::unique_ptr<net::ThreadPool> pool =
        analysis::make_scenario_pool(config.jobs);
    const serve::CompiledSnapshot built =
        serve::SnapshotBuilder()
            .with_store(s.ecosystem.store)
            .with_nated(s.crawl.nated_set)
            .with_dynamic(s.pipeline.dynamic_prefixes)
            .with_catalogue(s.catalogue)
            .with_source_fingerprint(analysis::config_fingerprint(config))
            .build(pool.get());
    if (!built.save(snapshot_path)) {
      std::cerr << "error: cannot write snapshot artifact " << snapshot_path
                << '\n';
      return 1;
    }
    std::cerr << "compiled snapshot: " << built.entry_count() << " entries, "
              << built.bucket_count() << " /24 buckets, "
              << built.dynamic24_count() << " dynamic /24s, fingerprint "
              << built.fingerprint_hex() << " -> " << snapshot_path << '\n';

    // Serve what an operator would load, not what we happen to hold in
    // memory: reload the artifact so the round-trip is proven on every run.
    auto reloaded = serve::CompiledSnapshot::load(snapshot_path);
    if (!reloaded || reloaded->fingerprint() != built.fingerprint()) {
      std::cerr << "error: snapshot artifact failed reload verification\n";
      return 1;
    }
    snapshot =
        std::make_shared<const serve::CompiledSnapshot>(*std::move(reloaded));
  }
  manifest.snapshot_fingerprint = snapshot->fingerprint_hex();

  serve::LookupEngine engine;
  engine.publish(snapshot);

  if (flags.get_bool("serve")) {
    serve::ServerConfig server_config;
    server_config.workers =
        *threads == 0 ? static_cast<int>(net::ThreadPool::hardware_jobs())
                      : *threads;
    server_config.max_queue = static_cast<std::size_t>(*queue_depth);
    server_config.deadline_ms = static_cast<int>(*deadline_ms);
    server_config.stall_timeout_ms = 250;  // bounds the chaos stall clients
    serve::LookupServer server(engine, server_config);

    serve::LoadConfig load_config;
    load_config.seed = static_cast<std::uint64_t>(
        flags.get_int("workload-seed").value_or(1));
    load_config.clients = static_cast<int>(*serve_clients);
    load_config.batch_size =
        static_cast<std::size_t>(flags.get_int("batch").value_or(64));
    const auto queries = static_cast<std::uint64_t>(
        flags.get_int("queries").value_or(1000000));
    load_config.batches_per_client = std::max<std::uint64_t>(
        1, queries / (static_cast<std::uint64_t>(load_config.clients) *
                      load_config.batch_size));
    load_config.target_qps = flags.get_double("qps").value_or(0.0);

    // Mid-run reload sequence: one deliberately corrupted copy first (the
    // failure must leave the last-good snapshot serving), then the real
    // artifact, then a snapshot *delta* applied onto the live snapshot.
    // The delta is an identity diff — same verdicts, so the deterministic
    // workload is undisturbed — but the apply path (fingerprint gate,
    // merge, re-seal, epoch publish) runs for real under live queries.
    const std::string corrupt_path = snapshot_path + ".corrupt";
    const std::string delta_path = snapshot_path + ".delta";
    {
      std::ifstream in(snapshot_path, std::ios::binary);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      const std::string artifact = bytes.str();
      std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
      // A mid-write artifact: the header promises more payload than exists.
      out.write(artifact.data(),
                static_cast<std::streamsize>(artifact.size() / 2));
    }
    const bool delta_saved =
        serve::SnapshotBuilder::diff(*snapshot, *snapshot).save(delta_path);
    std::uint64_t reload_attempts_failed = 0;
    bool delta_applied = false;
    std::thread reloader([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      std::string why;
      if (!server.reload(corrupt_path, &why)) {
        ++reload_attempts_failed;
        std::cerr << "reload of corrupted copy rejected (last-good kept): "
                  << why << '\n';
      }
      if (!server.reload(snapshot_path, &why)) {
        std::cerr << "error: reload of good artifact failed: " << why << '\n';
      }
      if (delta_saved) {
        delta_applied = server.reload(delta_path, &why);
        if (!delta_applied) {
          std::cerr << "error: delta reload failed: " << why << '\n';
        }
      }
    });

    std::cerr << "serving: " << load_config.clients << " clients, "
              << server_config.workers << " workers, queue depth "
              << server_config.max_queue << ", deadline "
              << server_config.deadline_ms << " ms, "
              << *chaos_clients << " chaos clients...\n";
    serve::ChaosLedger chaos;
    std::thread chaos_thread;
    if (*chaos_clients > 0) {
      chaos_thread = std::thread([&] {
        serve::ChaosConfig chaos_config;
        chaos_config.seed = load_config.seed;
        chaos_config.clients = static_cast<int>(*chaos_clients);
        chaos = serve::run_chaos_clients(server, *snapshot, chaos_config);
      });
    }
    const serve::LoadReport load =
        serve::run_load(server, *snapshot, load_config);
    if (chaos_thread.joinable()) chaos_thread.join();
    reloader.join();
    server.drain();
    std::error_code cleanup_ec;
    std::filesystem::remove(corrupt_path, cleanup_ec);

    const serve::ServerStats stats = server.stats();
    // The no-silent-drops law, cross-checked server- and client-side:
    // every frame the clients put on the wire is served, shed, or
    // rejected, and the chaos injection ledger matches the rejection
    // ledger category by category.
    bool reconciled = stats.reconciles();
    reconciled &= stats.served + stats.shed_total() ==
                  load.submitted + chaos.valid_sent;
    reconciled &= stats.rejected_torn == chaos.torn_sent;
    reconciled &= stats.rejected_garbage == chaos.garbage_sent;
    reconciled &= stats.rejected_oversized == chaos.oversized_sent;
    reconciled &= stats.clients_evicted == chaos.stalls;
    reconciled &= server.reloads() >= 1;
    reconciled &= server.reload_failures() == reload_attempts_failed &&
                  reload_attempts_failed == 1;
    reconciled &= delta_applied;

    std::ostringstream json;
    json.precision(3);
    json << std::fixed;
    json << "{\n"
         << "  \"workload_seed\": " << load_config.seed << ",\n"
         << "  \"clients\": " << load_config.clients << ",\n"
         << "  \"chaos_clients\": " << *chaos_clients << ",\n"
         << "  \"workers\": " << server_config.workers << ",\n"
         << "  \"queue_depth\": " << server_config.max_queue << ",\n"
         << "  \"deadline_ms\": " << server_config.deadline_ms << ",\n"
         << "  \"batch\": " << load_config.batch_size << ",\n"
         << "  \"batches_per_client\": " << load_config.batches_per_client
         << ",\n"
         << "  \"submitted\": " << stats.submitted_total() << ",\n"
         << "  \"served\": " << stats.served << ",\n"
         << "  \"shed\": " << stats.shed_total() << ",\n"
         << "  \"rejected\": " << stats.rejected_total() << ",\n"
         << "  \"evicted\": " << stats.clients_evicted << ",\n"
         << "  \"served_listed\": " << stats.served_listed << ",\n"
         << "  \"served_reused\": " << stats.served_reused << ",\n"
         << "  \"reloads\": " << server.reloads() << ",\n"
         << "  \"reload_failures\": " << server.reload_failures() << ",\n"
         << "  \"delta_applied\": " << (delta_applied ? "true" : "false")
         << ",\n"
         << "  \"wall_seconds\": " << load.wall_seconds << ",\n"
         << "  \"throughput_qps\": " << load.throughput_qps << ",\n"
         << "  \"p50_nanos\": " << load.p50_nanos << ",\n"
         << "  \"p99_nanos\": " << load.p99_nanos << ",\n"
         << "  \"p999_nanos\": " << load.p999_nanos << ",\n"
         << "  \"max_nanos\": " << load.max_nanos << ",\n"
         << "  \"snapshot_fingerprint\": \"" << snapshot->fingerprint_hex()
         << "\",\n"
         << "  \"reconciled\": " << (reconciled ? "true" : "false") << "\n"
         << "}\n";

    const std::string bench_path =
        flags.has("bench-out") ? flags.get("bench-out") : "BENCH_lookupd.json";
    std::ofstream bench(bench_path);
    if (!bench) {
      std::cerr << "error: cannot write " << bench_path << '\n';
      return 1;
    }
    bench << json.str();
    std::cout << json.str();
    if (!reconciled) {
      std::cerr << "error: serving ledger failed to reconcile (see "
                << bench_path << ")\n";
      return 1;
    }
    std::cerr << "wrote " << bench_path << " ("
              << static_cast<std::uint64_t>(load.throughput_qps)
              << " frames/s, p99 " << load.p99_nanos << " ns, "
              << stats.shed_total() << " shed, " << stats.rejected_total()
              << " rejected)\n";
  } else if (flags.has("query")) {
    const net::Ipv4Address& address = *query_address;
    const serve::Verdict verdict = engine.verdict(address);
    std::cout << address.to_string() << ": listed="
              << (verdict.listed() ? "yes" : "no")
              << " nated=" << (verdict.nated() ? "yes" : "no")
              << " dynamic_slash24=" << (verdict.dynamic() ? "yes" : "no")
              << " advice="
              << (verdict.greylist()
                      ? "greylist"
                      : (verdict.listed() ? "block" : "allow"))
              << '\n';
  } else {
    serve::WorkloadConfig workload;
    workload.seed = static_cast<std::uint64_t>(
        flags.get_int("workload-seed").value_or(1));
    workload.query_count =
        static_cast<std::uint64_t>(flags.get_int("queries").value_or(1000000));
    workload.batch_size =
        static_cast<std::size_t>(flags.get_int("batch").value_or(64));
    workload.threads = *threads == 0
                           ? static_cast<int>(net::ThreadPool::hardware_jobs())
                           : *threads;
    workload.target_qps = flags.get_double("qps").value_or(0.0);
    const bool swap_mid_run = flags.get_bool("swap-mid-run");
    if (swap_mid_run) {
      // The swapped-in snapshot is a second load of the same artifact —
      // answers stay identical, so mid-run verdicts remain correct while
      // the pointer genuinely changes under traffic.
      auto next_day = serve::CompiledSnapshot::load(snapshot_path);
      if (!next_day) {
        std::cerr << "error: cannot reload " << snapshot_path
                  << " for the mid-run swap\n";
        return 1;
      }
      workload.swap_to = std::make_shared<const serve::CompiledSnapshot>(
          *std::move(next_day));
    }

    std::cerr << "replaying " << workload.query_count << " queries (batch "
              << workload.batch_size << ", " << workload.threads
              << " threads" << (swap_mid_run ? ", mid-run swap" : "")
              << ")...\n";
    const serve::WorkloadReport report =
        serve::run_workload(engine, *snapshot, workload);

    std::ostringstream json;
    json.precision(3);
    json << std::fixed;
    json << "{\n"
         << "  \"workload_seed\": " << workload.seed << ",\n"
         << "  \"queries\": " << report.queries << ",\n"
         << "  \"batches\": " << report.batches << ",\n"
         << "  \"batch_size\": " << workload.batch_size << ",\n"
         << "  \"threads\": " << workload.threads << ",\n"
         << "  \"target_qps\": " << workload.target_qps << ",\n"
         << "  \"swap_mid_run\": " << (swap_mid_run ? "true" : "false")
         << ",\n"
         << "  \"swapped\": " << (report.swapped ? "true" : "false") << ",\n"
         << "  \"snapshot\": {\n"
         << "    \"entries\": " << snapshot->entry_count() << ",\n"
         << "    \"buckets\": " << snapshot->bucket_count() << ",\n"
         << "    \"dynamic24\": " << snapshot->dynamic24_count() << ",\n"
         << "    \"top_lists\": " << snapshot->top_lists().size() << ",\n"
         << "    \"fingerprint\": \"" << snapshot->fingerprint_hex()
         << "\",\n"
         << "    \"source_fingerprint\": \""
         << hex64(snapshot->source_fingerprint()) << "\"\n"
         << "  },\n"
         << "  \"listed_hits\": " << report.listed_hits << ",\n"
         << "  \"reused_hits\": " << report.reused_hits << ",\n"
         << "  \"wall_seconds\": " << report.wall_seconds << ",\n"
         << "  \"throughput_qps\": " << report.throughput_qps << ",\n"
         << "  \"p50_nanos\": " << report.p50_nanos << ",\n"
         << "  \"p99_nanos\": " << report.p99_nanos << ",\n"
         << "  \"max_nanos\": " << report.max_nanos << "\n"
         << "}\n";

    const std::string bench_path = flags.get("bench-out");
    std::ofstream bench(bench_path);
    if (!bench) {
      std::cerr << "error: cannot write " << bench_path << '\n';
      return 1;
    }
    bench << json.str();
    std::cout << json.str();
    std::cerr << "wrote " << bench_path << " ("
              << static_cast<std::uint64_t>(report.throughput_qps)
              << " qps, p99 " << report.p99_nanos << " ns/batch)\n";
  }

  if (flags.has("metrics-out")) {
    if (const auto error = analysis::write_run_manifest(
            flags.get("metrics-out"), manifest, *metrics_format)) {
      std::cerr << "error: " << *error << '\n';
      return 1;
    }
    std::cerr << "run manifest written to " << flags.get("metrics-out")
              << '\n';
  }
  return 0;
}
