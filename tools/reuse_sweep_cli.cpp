// reuse_sweep — comparative scenario sweep: presets × parameter axes, each
// cell run through the scenario cache, joined into one report.
//
//   reuse_sweep [--preset NAME]... [--axis name=v1,v2]... [--seed N]
//               [--ases N] [--probes N] [--crawl-days N] [--jobs N]
//               [--cache-dir DIR] [--cache-budget-mb N] [--out-dir DIR]
//               [--cell-manifests] [--inject-fail N] [--list-presets]
//
// The report pair (sweep_report.md deterministic, sweep_report.json with
// wall times and cache attribution) lands in --out-dir. Exit 0 when every
// cell succeeded, 1 when any cell failed (the report is still written),
// 2 on bad flags.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/presets.h"
#include "netbase/flags.h"
#include "sweep/sweep.h"

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define_multi("preset",
                     "scenario preset to include (repeatable, in report "
                     "order; first is the baseline; default: all presets)");
  flags.define_multi("axis",
                     "parameter axis, e.g. --axis days=60,120 --axis "
                     "cgn_share=0.2,0.5 (repeatable; cells are the cross "
                     "product)");
  flags.define("seed", "master seed for the base scenario", "7");
  flags.define("ases", "autonomous systems in the synthetic Internet", "120");
  flags.define("probes", "Atlas-style probes", "800");
  flags.define("crawl-days", "simulated crawl length", "2");
  flags.define("jobs",
               "concurrent chains (0 = all hardware threads); the report is "
               "byte-identical for every value",
               "1");
  flags.define("cache-dir",
               "directory for the per-cell scenario caches (created if "
               "missing; a warm re-run resolves unchanged cells from here)",
               "sweep_cache");
  flags.define("cache-budget-mb",
               "evict oldest cache files beyond this many MiB after the "
               "sweep (0 = unlimited; the sweep's own cells are never "
               "evicted)",
               "0");
  flags.define("out-dir", "directory for sweep_report.{md,json}", ".");
  flags.define_bool("cell-manifests",
                    "write a per-cell run manifest (with preset and "
                    "sweep_cell_id) under <out-dir>/manifests/");
  flags.define("inject-fail",
               "fault-isolation test hook: the cell at this expansion index "
               "throws mid-run (-1 = off)",
               "-1");
  flags.define_bool("list-presets", "list the preset registry and exit");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("reuse_sweep",
                             "comparative scenario sweep across ISP-mix "
                             "presets and parameter axes");
    if (!flags.error().empty()) std::cerr << "\nerror: " << flags.error() << '\n';
    return flags.get_bool("help") ? 0 : 2;
  }
  if (flags.get_bool("list-presets")) {
    for (const analysis::ScenarioPreset& preset :
         analysis::scenario_presets()) {
      std::cout << preset.name << " — " << preset.summary << '\n';
    }
    return 0;
  }

  sweep::SweepConfig sweep_config;
  sweep_config.base.seed =
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(7));
  sweep_config.base.world = inet::test_world_config(sweep_config.base.seed);
  sweep_config.base.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(120));
  sweep_config.base.crawl_days =
      static_cast<int>(flags.get_int("crawl-days").value_or(2));
  sweep_config.base.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(800));
  // The census is the one stage whose cost scales with the address space
  // rather than the interesting populations; sweeps compare many cells, so
  // it stays off (the headline metrics never read it).
  sweep_config.base.run_census = false;

  const std::vector<std::string> preset_flags = flags.get_multi("preset");
  if (preset_flags.empty()) {
    for (const analysis::ScenarioPreset& preset :
         analysis::scenario_presets()) {
      sweep_config.presets.push_back(&preset);
    }
  } else {
    for (const std::string& name : preset_flags) {
      const analysis::ScenarioPreset* preset = analysis::parse_preset(name);
      if (preset == nullptr) {
        std::cerr << "error: unknown preset \"" << name
                  << "\" (valid: " << analysis::preset_names() << ")\n";
        return 2;
      }
      sweep_config.presets.push_back(preset);
    }
  }

  for (const std::string& axis_text : flags.get_multi("axis")) {
    std::string error;
    const auto axis = sweep::parse_axis(axis_text, &error);
    if (!axis) {
      std::cerr << "error: " << error << '\n';
      return 2;
    }
    for (const sweep::SweepAxis& existing : sweep_config.axes) {
      if (existing.name == axis->name) {
        std::cerr << "error: axis \"" << axis->name << "\" given twice\n";
        return 2;
      }
    }
    sweep_config.axes.push_back(*axis);
  }

  const std::optional<int> jobs = net::parse_jobs(flags.get("jobs"));
  if (!jobs) {
    std::cerr << "error: --jobs must be a non-negative integer (0 = all "
                 "hardware threads), got \"" << flags.get("jobs") << "\"\n";
    return 2;
  }
  sweep_config.jobs = *jobs;
  const std::optional<std::int64_t> budget_mb =
      net::parse_bounded_int(flags.get("cache-budget-mb"), 0, 1 << 20);
  if (!budget_mb) {
    std::cerr << "error: --cache-budget-mb must be an integer in [0, 2^20], "
                 "got \"" << flags.get("cache-budget-mb") << "\"\n";
    return 2;
  }
  sweep_config.cache_budget_bytes = *budget_mb * 1024 * 1024;
  sweep_config.cache_dir = flags.get("cache-dir");
  sweep_config.inject_fail_cell =
      static_cast<int>(flags.get_int("inject-fail").value_or(-1));

  const std::filesystem::path out_dir(flags.get("out-dir"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (flags.get_bool("cell-manifests")) {
    sweep_config.manifest_dir = (out_dir / "manifests").string();
  }

  const std::size_t cell_count =
      sweep::expand_cells(sweep_config).size();
  std::cerr << "sweep: " << sweep_config.presets.size() << " presets x "
            << sweep_config.axes.size() << " axes = " << cell_count
            << " cells (jobs " << sweep_config.jobs << ")\n";

  const sweep::SweepReport report = sweep::run_sweep(sweep_config);

  {
    std::ofstream os(out_dir / "sweep_report.md");
    os << sweep::render_report_markdown(report);
  }
  {
    std::ofstream os(out_dir / "sweep_report.json");
    os << sweep::render_report_json(report);
  }
  std::cout << sweep::render_report_markdown(report);
  std::cerr << "cells: " << report.cells.size() << " (fresh " << report.fresh
            << ", cache hits " << report.cache_hits << ", resumed "
            << report.resumed << ", failed " << report.cells_failed << ")\n"
            << "cache dir: " << report.cache_dir_bytes << " bytes";
  if (report.cache_files_evicted > 0) {
    std::cerr << " after evicting " << report.cache_files_evicted
              << " file(s), " << report.cache_bytes_evicted << " bytes";
  }
  std::cerr << "\nreports written to " << out_dir.string() << "/\n";
  if (report.cells_failed > 0) {
    std::cerr << "error: " << report.cells_failed << " cell(s) failed\n";
    return 1;
  }
  return 0;
}
