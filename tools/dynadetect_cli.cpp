// dynadetect — run the paper's dynamic-address pipeline on a connection log.
//
// Input: a CSV of probe connection records (time,probe_id,address,asn), the
// schema RIPE-Atlas-style logs reduce to. Output: the detected dynamic /24
// prefixes, one per line, plus a funnel report on stderr.
//
//   dynadetect --log connections.csv [--min-allocations N]
//              [--daily-hours H] [--prefix-length L] [--out prefixes.txt]
//              [--metrics-out FILE]
#include <fstream>
#include <iostream>

#include "analysis/manifest.h"
#include "dynadetect/pipeline.h"
#include "netbase/flags.h"
#include "netbase/table.h"

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("log", "input connection-log CSV (time,probe_id,address,asn)");
  flags.define("out", "output file for dynamic prefixes (default: stdout)");
  flags.define("min-allocations",
               "fixed allocation threshold; 0 = find the knee (paper)", "0");
  flags.define("daily-hours",
               "max mean hours between changes for a qualifying probe", "24");
  flags.define("prefix-length", "expansion prefix length (paper: 24)", "24");
  flags.define("metrics-out",
               "write the run manifest (metrics snapshot + tool name) to "
               "this file");
  flags.define("metrics-format",
               "encoding for --metrics-out: json (run manifest) or "
               "prometheus (metrics text exposition)",
               "json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help") ||
      !flags.has("log")) {
    std::cerr << flags.usage("dynadetect",
                             "detect dynamically allocated /24 prefixes from "
                             "probe connection logs (IMC'20 §3.2)");
    if (!flags.error().empty()) std::cerr << "\nerror: " << flags.error() << '\n';
    return flags.get_bool("help") ? 0 : 2;
  }

  const std::optional<net::MetricsFormat> metrics_format =
      net::parse_metrics_format(flags.get("metrics-format"));
  if (!metrics_format) {
    std::cerr << "error: --metrics-format must be \"json\" or "
                 "\"prometheus\", got \""
              << flags.get("metrics-format") << "\"\n";
    return 2;
  }

  std::ifstream log_file(flags.get("log"));
  if (!log_file) {
    std::cerr << "error: cannot open " << flags.get("log") << '\n';
    return 1;
  }
  const auto records = atlas::read_csv(log_file);
  if (!records) {
    std::cerr << "error: malformed connection log\n";
    return 1;
  }

  dynadetect::PipelineConfig config;
  config.min_allocations =
      static_cast<int>(flags.get_int("min-allocations").value_or(0));
  config.daily_threshold =
      net::Duration::hours(flags.get_int("daily-hours").value_or(24));
  config.expand_prefix_length =
      static_cast<int>(flags.get_int("prefix-length").value_or(24));
  const dynadetect::PipelineResult result =
      dynadetect::run_pipeline(*records, config);

  net::AsciiTable funnel({"stage", "probes"});
  funnel.add_row({"total", std::to_string(result.probes_total)});
  funnel.add_row({"multi-AS (dropped)", std::to_string(result.probes_multi_as)});
  funnel.add_row({"single-AS with changes",
                  std::to_string(result.probes_with_changes)});
  funnel.add_row({"above knee (" + std::to_string(result.knee_allocations) + ")",
                  std::to_string(result.probes_above_knee)});
  funnel.add_row({"daily changers", std::to_string(result.probes_daily)});
  std::cerr << funnel.to_string();
  std::cerr << "dynamic /" << config.expand_prefix_length
            << " prefixes: " << result.dynamic_prefixes.size() << '\n';

  std::ostream* out = &std::cout;
  std::ofstream out_file;
  if (flags.has("out")) {
    out_file.open(flags.get("out"));
    if (!out_file) {
      std::cerr << "error: cannot write " << flags.get("out") << '\n';
      return 1;
    }
    out = &out_file;
  }
  for (const net::Ipv4Prefix& prefix : result.dynamic_prefixes.to_vector()) {
    *out << prefix.to_string() << '\n';
  }
  if (flags.has("metrics-out")) {
    analysis::RunManifestInfo manifest;
    manifest.tool = "dynadetect";  // no scenario: config/stages render null
    if (const auto error = analysis::write_run_manifest(
            flags.get("metrics-out"), manifest, *metrics_format)) {
      std::cerr << "error: " << *error << '\n';
      return 1;
    }
  }
  return 0;
}
