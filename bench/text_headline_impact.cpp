// §5 / abstract — the paper's headline impact numbers in one table, plus
// detector validation against the simulator's ground truth (which the paper,
// measuring the real Internet, could not have).
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("§5 headline", "impact of blocklisting reused addresses");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const analysis::ReuseImpact impact = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.pipeline.dynamic_prefixes);
  const analysis::ListingDurations durations = analysis::compute_listing_durations(
      s.ecosystem.store, s.crawl.nated_set, s.pipeline.dynamic_prefixes);
  const net::IntDistribution users =
      analysis::users_behind_blocklisted_nats(s.ecosystem.store, s.crawl.nated);
  const net::EmpiricalCdf nat_cdf(std::vector<double>(durations.nated_days));
  const net::EmpiricalCdf dyn_cdf(std::vector<double>(durations.dynamic_days));

  analysis::PaperComparison report("headline results");
  report.row("blocklists monitored", "151", std::to_string(impact.lists_total),
             "Table 2 rows sum to 149");
  report.row("distinct blocklisted addresses", "2.2M",
             net::compact_count(
                 static_cast<double>(s.ecosystem.store.address_count())));
  report.row("avg addresses per list", "30K",
             net::compact_count(static_cast<double>(
                 s.ecosystem.store.listing_count() / impact.lists_total)));
  report.row("lists containing NATed addresses", "60%",
             net::percent(impact.fraction_lists_with_nated(), 0));
  report.row("lists containing dynamic addresses", "53%",
             net::percent(impact.fraction_lists_with_dynamic(), 0));
  report.row("NATed listings", "45.1K",
             net::compact_count(static_cast<double>(impact.nated_listings)));
  report.row("dynamic listings", "30.6K",
             net::compact_count(static_cast<double>(impact.dynamic_listings)));
  report.row("NATed listings > dynamic listings", "yes",
             impact.nated_listings > impact.dynamic_listings ? "yes" : "NO");
  report.row("max users affected by one listing", "78",
             std::to_string(users.max_value()));
  report.row("max days a reused address stayed listed", "44",
             net::fixed(std::max(nat_cdf.max(), dyn_cdf.max()), 0));
  std::cout << report.to_string() << '\n';

  // Ground-truth validation (simulation-only capability).
  const auto nat_validation =
      analysis::validate_nat_detection(s.world, s.crawl.nated_set);
  const auto dyn_validation = analysis::validate_dynamic_detection(
      s.world, s.pipeline.dynamic_prefixes);
  net::AsciiTable validation({"detector", "detected", "true positives",
                              "precision"});
  validation.add_row(
      {"NAT (crawler)", net::with_thousands(static_cast<std::int64_t>(nat_validation.detected)),
       net::with_thousands(static_cast<std::int64_t>(nat_validation.true_positives)),
       net::percent(nat_validation.precision())});
  validation.add_row(
      {"dynamic (pipeline)",
       net::with_thousands(static_cast<std::int64_t>(dyn_validation.detected)),
       net::with_thousands(static_cast<std::int64_t>(dyn_validation.true_positives)),
       net::percent(dyn_validation.precision())});
  std::cout << "Ground-truth validation (the paper's design goal was"
               " high-precision detection):\n"
            << validation.to_string();
  return 0;
}
