// Table 2 — the blocklist dataset: lists per maintainer, plus collection
// health for each maintainer's feeds under an injected outage/corruption
// spell (the paper's own collection was split in two by an outage).
#include "bench_common.h"

#include <map>

#include "blocklist/catalogue.h"
#include "blocklist/ecosystem.h"
#include "internet/abuse.h"
#include "internet/world.h"
#include "simnet/faults.h"

int main() {
  using namespace reuse;
  bench::print_banner("Table 2", "blocklists per maintainer (BLAG dataset)");

  const auto catalogue = blocklist::build_catalogue(bench::kBenchSeed);

  net::AsciiTable table({"maintainer", "lists", "primary category",
                         "operator-named (*)"});
  int total = 0;
  for (const auto& row : blocklist::table2_rows()) {
    table.add_row({std::string(row.maintainer), std::to_string(row.list_count),
                   std::string(to_string(row.primary_category)),
                   row.used_by_operators ? "*" : ""});
    total += row.list_count;
  }
  table.add_row({"Total", std::to_string(total), "", ""});
  std::cout << table.to_string() << '\n';

  std::map<blocklist::ListCategory, int> by_category;
  for (const auto& info : catalogue) ++by_category[info.category];
  net::AsciiTable categories({"instantiated category", "lists"});
  for (const auto& [category, count] : by_category) {
    categories.add_row({std::string(to_string(category)), std::to_string(count)});
  }
  std::cout << categories.to_string() << '\n';

  analysis::PaperComparison report("Table 2 bookkeeping");
  report.row("maintainers", "41",
             std::to_string(blocklist::table2_rows().size()));
  report.row("total monitored lists", "151 (stated)",
             std::to_string(catalogue.size()),
             "published rows sum to 149; we encode the rows");
  report.row("operator-named maintainers (*)", "7 (rows marked *)", "7");
  std::cout << report.to_string();

  // Collection health per maintainer: drive the catalogue over a small
  // world's abuse stream with a feed-outage + feed-corruption spell and
  // aggregate each list's FeedHealth under its maintainer — which feeds a
  // collector would have to re-fetch, and how many lines each spell cost.
  std::cout << "\nFeed health under an injected outage+corruption spell\n";
  inet::WorldConfig world_config = inet::test_world_config(bench::kBenchSeed);
  world_config.as_count = 60;
  const inet::World world(world_config);

  blocklist::EcosystemConfig eco;
  eco.seed = bench::kBenchSeed ^ 0xb10cULL;
  eco.periods = blocklist::paper_periods();

  inet::AbuseGenConfig abuse;
  abuse.window = net::TimeWindow{net::SimTime(-15 * 86400),
                                 net::SimTime(104 * 86400)};
  abuse.user_events_per_day = world.config().abuse_events_per_day_user;
  abuse.server_events_per_day = world.config().abuse_events_per_day_server;
  abuse.seed = bench::kBenchSeed ^ 0xab5eULL;
  const auto events = inet::generate_abuse(world, abuse);

  sim::FaultPlan plan;
  plan.seed = 99;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedOutage,
      net::TimeWindow{net::SimTime(5 * 86400), net::SimTime(9 * 86400)}, 0.3,
      1});
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedCorruption,
      net::TimeWindow{net::SimTime(20 * 86400), net::SimTime(23 * 86400)}, 0.3,
      2});
  sim::FaultInjector injector(plan);
  const auto result =
      blocklist::simulate_ecosystem(catalogue, events, eco, &injector);

  struct MaintainerHealth {
    std::int64_t recorded = 0, missed = 0, quarantined = 0, salvaged = 0;
    std::uint64_t lines_skipped = 0, entries_discarded = 0;
  };
  std::map<std::string, MaintainerHealth> by_maintainer;
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    const blocklist::FeedHealth& health = result.stats.per_list[i];
    MaintainerHealth& agg = by_maintainer[catalogue[i].maintainer];
    agg.recorded += health.days_recorded;
    agg.missed += health.days_missed;
    agg.quarantined += health.days_quarantined;
    agg.salvaged += health.days_salvaged;
    agg.lines_skipped += health.lines_skipped;
    agg.entries_discarded += health.entries_discarded;
  }
  net::AsciiTable health_table({"maintainer", "days ok", "missed",
                                "quarantined", "salvaged", "lines skipped",
                                "entries lost"});
  for (const auto& [maintainer, agg] : by_maintainer) {
    if (agg.missed == 0 && agg.quarantined == 0 && agg.salvaged == 0) continue;
    health_table.add_row(
        {maintainer, std::to_string(agg.recorded), std::to_string(agg.missed),
         std::to_string(agg.quarantined), std::to_string(agg.salvaged),
         std::to_string(agg.lines_skipped),
         std::to_string(agg.entries_discarded)});
  }
  std::cout << health_table.to_string();
  std::cout << "(maintainers with fully clean collections omitted; "
            << result.stats.snapshots_missed << " dumps missed, "
            << result.stats.feeds_quarantined << " quarantined, "
            << result.stats.feeds_salvaged << " salvaged across the spell)\n";
  return 0;
}
