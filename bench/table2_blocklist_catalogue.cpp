// Table 2 — the blocklist dataset: lists per maintainer.
#include "bench_common.h"

#include <map>

#include "blocklist/catalogue.h"

int main() {
  using namespace reuse;
  bench::print_banner("Table 2", "blocklists per maintainer (BLAG dataset)");

  const auto catalogue = blocklist::build_catalogue(bench::kBenchSeed);

  net::AsciiTable table({"maintainer", "lists", "primary category",
                         "operator-named (*)"});
  int total = 0;
  for (const auto& row : blocklist::table2_rows()) {
    table.add_row({std::string(row.maintainer), std::to_string(row.list_count),
                   std::string(to_string(row.primary_category)),
                   row.used_by_operators ? "*" : ""});
    total += row.list_count;
  }
  table.add_row({"Total", std::to_string(total), "", ""});
  std::cout << table.to_string() << '\n';

  std::map<blocklist::ListCategory, int> by_category;
  for (const auto& info : catalogue) ++by_category[info.category];
  net::AsciiTable categories({"instantiated category", "lists"});
  for (const auto& [category, count] : by_category) {
    categories.add_row({std::string(to_string(category)), std::to_string(count)});
  }
  std::cout << categories.to_string() << '\n';

  analysis::PaperComparison report("Table 2 bookkeeping");
  report.row("maintainers", "41",
             std::to_string(blocklist::table2_rows().size()));
  report.row("total monitored lists", "151 (stated)",
             std::to_string(catalogue.size()),
             "published rows sum to 149; we encode the rows");
  report.row("operator-named maintainers (*)", "7 (rows marked *)", "7");
  std::cout << report.to_string();
  return 0;
}
