// Figure 7 — how long addresses stay in blocklists, by reuse class.
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 7", "duration distribution of listings");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const analysis::ListingDurations durations = analysis::compute_listing_durations(
      s.ecosystem.store, s.crawl.nated_set, s.pipeline.dynamic_prefixes);

  const net::EmpiricalCdf all(std::vector<double>(durations.all_days));
  const net::EmpiricalCdf nated(std::vector<double>(durations.nated_days));
  const net::EmpiricalCdf dynamic(std::vector<double>(durations.dynamic_days));

  auto to_series = [](const net::EmpiricalCdf& cdf, const char* label,
                      char glyph) {
    return net::ChartSeries{label, cdf.curve(120), glyph};
  };
  net::ChartOptions options;
  options.x_label = "(#) of days in blocklists";
  options.y_label = "CDF of listings";
  std::cout << net::render_chart({to_series(all, "all blocklisted", '#'),
                                  to_series(nated, "NATed", 'n'),
                                  to_series(dynamic, "dynamic", 'd')},
                                 options)
            << '\n';

  analysis::PaperComparison report("Figure 7 / §5 statistics");
  report.row("mean days listed: all addresses", "9",
             net::fixed(bench::mean_of(durations.all_days), 1));
  report.row("mean days listed: NATed", "10",
             net::fixed(bench::mean_of(durations.nated_days), 1));
  report.row("mean days listed: dynamic", "3",
             net::fixed(bench::mean_of(durations.dynamic_days), 1));
  report.row("removed within 2 days: all", "42%",
             net::percent(all.fraction_at_most(2.0)));
  report.row("removed within 2 days: NATed", "60%",
             net::percent(nated.fraction_at_most(2.0)));
  report.row("removed within 2 days: dynamic", "77.5%",
             net::percent(dynamic.fraction_at_most(2.0)));
  report.row("worst case (days)", "44",
             net::fixed(std::max({all.max(), nated.max(), dynamic.max()}), 0));
  report.row("ordering: dynamic removed fastest", "yes",
             dynamic.median() <= nated.median() &&
                     dynamic.median() <= all.median()
                 ? "yes"
                 : "NO");
  std::cout << report.to_string();
  return 0;
}
