// bench_scenario — end-to-end scenario wall-clock at --jobs 1 vs --jobs N,
// with a byte-identical-products check between the two runs.
//
//   bench_scenario [--seed N] [--ases N] [--probes N] [--jobs N]
//                  [--out PATH]
//
// Runs the scenario twice (serial, then parallel), verifies the product
// fingerprints match (exit 1 on mismatch — the determinism contract is the
// whole point), and writes a machine-readable BENCH_scenario.json with both
// runs' per-stage timings and the combined speedup over the parallelized
// stages (ecosystem + fleet + census). CI uploads the JSON as an artifact.
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/scenario.h"
#include "netbase/flags.h"
#include "netbase/thread_pool.h"

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "42");
  flags.define("ases", "autonomous systems in the synthetic Internet", "200");
  flags.define("probes", "Atlas-style probes", "2000");
  flags.define("jobs",
               "worker threads for the parallel run (0 = all hardware "
               "threads)",
               "0");
  flags.define("out", "output JSON path", "BENCH_scenario.json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("bench_scenario",
                            "scenario wall-clock at --jobs 1 vs --jobs N "
                            "with a determinism cross-check");
    if (!flags.error().empty()) {
      std::cerr << "\nerror: " << flags.error() << '\n';
    }
    return flags.get_bool("help") ? 0 : 2;
  }

  analysis::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed").value_or(42));
  config.world = inet::test_world_config(config.seed);
  config.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(200));
  config.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(2000));
  config.run_census = true;
  config.finalize();

  const std::optional<int> parsed_jobs = net::parse_jobs(flags.get("jobs"));
  if (!parsed_jobs) {
    std::cerr << "error: --jobs must be a non-negative integer (0 = all "
                 "hardware threads), got \""
              << flags.get("jobs") << "\"\n";
    return 2;
  }
  int jobs = *parsed_jobs;
  if (jobs == 0) jobs = static_cast<int>(net::ThreadPool::hardware_jobs());

  auto run_once = [&config](int run_jobs) {
    analysis::ScenarioConfig cfg = config;
    cfg.jobs = run_jobs;
    return analysis::run_scenario(std::move(cfg));
  };

  std::cerr << "[bench_scenario] serial run (--jobs 1)...\n";
  const analysis::Scenario serial = run_once(1);
  std::cerr << "[bench_scenario] parallel run (--jobs " << jobs << ")...\n";
  const analysis::Scenario parallel = run_once(jobs);

  const std::uint64_t serial_fp = analysis::products_fingerprint(
      serial.crawl, serial.ecosystem, serial.fleet, serial.pipeline,
      serial.census);
  const std::uint64_t parallel_fp = analysis::products_fingerprint(
      parallel.crawl, parallel.ecosystem, parallel.fleet, parallel.pipeline,
      parallel.census);
  if (serial_fp != parallel_fp) {
    std::cerr << "error: products differ between --jobs 1 and --jobs " << jobs
              << " (fingerprints " << std::hex << serial_fp << " vs "
              << parallel_fp << ")\n";
    return 1;
  }

  // The speedup claim covers the stages the thread pool actually touches;
  // crawl is inherently serial (one event queue) and would dilute it.
  auto parallel_stage_millis = [](const analysis::StageTimer& times) {
    return times.millis("ecosystem") + times.millis("fleet") +
           times.millis("census");
  };
  const double serial_millis = parallel_stage_millis(serial.stage_times);
  const double parallel_millis = parallel_stage_millis(parallel.stage_times);
  const double speedup =
      parallel_millis > 0.0 ? serial_millis / parallel_millis : 0.0;

  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"as_count\": " << config.world.as_count << ",\n"
       << "  \"probe_count\": " << config.fleet.probe_count << ",\n"
       << "  \"products_fingerprint\": \"" << std::hex << serial_fp << std::dec
       << "\",\n"
       << "  \"fingerprints_match\": true,\n"
       << "  \"serial\": " << serial.stage_times.to_json(1) << ",\n"
       << "  \"parallel\": " << parallel.stage_times.to_json(jobs) << ",\n"
       << "  \"parallel_stages\": [\"ecosystem\", \"fleet\", \"census\"],\n"
       << "  \"parallel_stages_serial_millis\": " << serial_millis << ",\n"
       << "  \"parallel_stages_parallel_millis\": " << parallel_millis << ",\n"
       << "  \"speedup\": " << speedup << "\n"
       << "}\n";

  const std::string out_path = flags.get("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << '\n';
    return 1;
  }
  out << json.str();
  std::cout << json.str();
  std::cerr << "[bench_scenario] wrote " << out_path << " (speedup "
            << speedup << "x over ecosystem+fleet+census at --jobs " << jobs
            << ")\n";
  return 0;
}
