// bench_scenario — end-to-end scenario wall-clock across a --jobs ladder,
// with a byte-identical-products check between every rung.
//
//   bench_scenario [--seed N] [--ases N] [--probes N] [--jobs LIST]
//                  [--runs N] [--out PATH] [--stages-out PATH]
//
// For each jobs value in LIST (comma-separated; 0 = all hardware threads;
// 1 is always measured first as the baseline) the scenario runs once as a
// warmup and then --runs times measured, and the per-stage medians are
// reported — a single sample is noise-dominated, and a noisy speedup figure
// makes regressions unattributable. Product fingerprints must match across
// every run at every jobs value (exit 1 otherwise — the determinism
// contract is the whole point). Output:
//   --out         BENCH_scenario.json: per-jobs median stage timings,
//                 speedups vs the serial baseline, hardware_jobs.
//   --stages-out  CSV with every individual sample (jobs,run,stage,millis)
//                 for CI artifact upload and offline analysis.
//
// Every stage of the scenario is pool-parallel now (the crawl runs as
// sharded vantage simulations, see crawler/sharded.h), so speedups are over
// the scenario total, not a stage subset. `hardware_jobs` records the
// machine's core budget: on a 1-core runner the expected speedup is ~1.0x
// (threads cannot beat physics), which is why CI gates the speedup only
// when the runner has the cores to back it.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/scenario.h"
#include "netbase/flags.h"
#include "netbase/json.h"
#include "netbase/thread_pool.h"

namespace {

using reuse::analysis::StageTiming;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

struct JobsReport {
  int jobs = 1;
  std::uint64_t fingerprint = 0;
  double total_millis = 0.0;                    ///< median over runs
  std::vector<std::pair<std::string, double>> stages;  ///< median per stage
  /// Median CPU attribution (cross-thread scope sums) for stages that
  /// record it — kept apart from wall-clock so sub-stage attribution can
  /// exceed its parent's wall without the report looking impossible.
  std::vector<std::pair<std::string, double>> stages_cpu;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "42");
  flags.define("ases", "autonomous systems in the synthetic Internet", "200");
  flags.define("probes", "Atlas-style probes", "2000");
  flags.define("jobs",
               "comma-separated jobs ladder to measure (0 = all hardware "
               "threads); 1 is always included as the baseline",
               "1,2,8");
  flags.define("runs", "timed runs per jobs value (after one warmup)", "3");
  flags.define("out", "output JSON path", "BENCH_scenario.json");
  flags.define("stages-out", "per-sample stage timing CSV path",
               "BENCH_scenario_stages.csv");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("bench_scenario",
                            "scenario wall-clock across a --jobs ladder "
                            "with a determinism cross-check");
    if (!flags.error().empty()) {
      std::cerr << "\nerror: " << flags.error() << '\n';
    }
    return flags.get_bool("help") ? 0 : 2;
  }

  analysis::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed").value_or(42));
  config.world = inet::test_world_config(config.seed);
  config.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(200));
  config.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(2000));
  config.run_census = true;
  config.finalize();

  // Parse the ladder; jobs 1 (the baseline every speedup divides by) is
  // forced to the front, duplicates dropped, order otherwise preserved.
  std::vector<int> ladder{1};
  {
    std::stringstream list(flags.get("jobs"));
    std::string token;
    while (std::getline(list, token, ',')) {
      const std::optional<int> parsed = net::parse_jobs(token);
      if (!parsed) {
        std::cerr << "error: --jobs entries must be non-negative integers "
                     "(0 = all hardware threads), got \""
                  << token << "\"\n";
        return 2;
      }
      int jobs = *parsed;
      if (jobs == 0) jobs = static_cast<int>(net::ThreadPool::hardware_jobs());
      if (std::find(ladder.begin(), ladder.end(), jobs) == ladder.end()) {
        ladder.push_back(jobs);
      }
    }
  }
  const int runs =
      std::max(1, static_cast<int>(flags.get_int("runs").value_or(3)));

  std::ostringstream csv;
  csv.precision(3);
  csv << std::fixed << "jobs,run,stage,millis,cpu_millis\n";

  std::vector<JobsReport> reports;
  for (const int jobs : ladder) {
    auto run_once = [&config, jobs] {
      analysis::ScenarioConfig cfg = config;
      cfg.jobs = jobs;
      return analysis::run_scenario(std::move(cfg));
    };
    std::cerr << "[bench_scenario] --jobs " << jobs << ": warmup...\n";
    {
      const analysis::Scenario warmup = run_once();
      (void)warmup;
    }

    JobsReport report;
    report.jobs = jobs;
    // Per-stage samples in first-seen stage order (run 0 defines it; every
    // run executes the same stages).
    std::vector<std::string> stage_order;
    std::map<std::string, std::vector<double>> samples;
    std::map<std::string, std::vector<double>> cpu_samples;
    std::vector<double> totals;
    for (int run = 0; run < runs; ++run) {
      std::cerr << "[bench_scenario] --jobs " << jobs << ": run " << (run + 1)
                << "/" << runs << "...\n";
      const analysis::Scenario scenario = run_once();
      const std::uint64_t fingerprint = analysis::products_fingerprint(
          scenario.crawl, scenario.ecosystem, scenario.fleet,
          scenario.pipeline, scenario.census);
      if (report.fingerprint == 0) report.fingerprint = fingerprint;
      if (fingerprint != report.fingerprint) {
        std::cerr << "error: products differ between runs at --jobs " << jobs
                  << " (fingerprints " << std::hex << report.fingerprint
                  << " vs " << fingerprint << ")\n";
        return 1;
      }
      totals.push_back(scenario.stage_times.total_millis());
      for (const StageTiming& timing : scenario.stage_times.timings()) {
        if (samples.find(timing.stage) == samples.end()) {
          stage_order.push_back(timing.stage);
        }
        samples[timing.stage].push_back(timing.millis);
        if (timing.cpu_millis > 0.0) {
          cpu_samples[timing.stage].push_back(timing.cpu_millis);
        }
        csv << jobs << ',' << run << ',' << timing.stage << ','
            << timing.millis << ',' << timing.cpu_millis << '\n';
      }
    }
    report.total_millis = median(totals);
    for (const std::string& stage : stage_order) {
      report.stages.emplace_back(stage, median(samples[stage]));
      if (const auto it = cpu_samples.find(stage); it != cpu_samples.end()) {
        report.stages_cpu.emplace_back(stage, median(it->second));
      }
    }
    reports.push_back(std::move(report));
  }

  // The determinism contract: identical products at every rung.
  for (const JobsReport& report : reports) {
    if (report.fingerprint != reports.front().fingerprint) {
      std::cerr << "error: products differ between --jobs 1 and --jobs "
                << report.jobs << " (fingerprints " << std::hex
                << reports.front().fingerprint << " vs " << report.fingerprint
                << ")\n";
      return 1;
    }
  }

  const double serial_millis = reports.front().total_millis;
  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"as_count\": " << config.world.as_count << ",\n"
       << "  \"probe_count\": " << config.fleet.probe_count << ",\n"
       << "  \"crawl_shards\": " << config.crawl_shards << ",\n"
       << "  \"runs\": " << runs << ",\n"
       << "  \"warmup_runs\": 1,\n"
       << "  \"hardware_jobs\": " << net::ThreadPool::hardware_jobs() << ",\n"
       << "  \"products_fingerprint\": \"" << std::hex
       << reports.front().fingerprint << std::dec << "\",\n"
       << "  \"fingerprints_match\": true,\n"
       << "  \"timings\": {";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const JobsReport& report = reports[i];
    if (i > 0) json << ",";
    json << "\n    \"" << report.jobs << "\": {\"total_millis\": "
         << report.total_millis << ", \"stages\": {";
    for (std::size_t s = 0; s < report.stages.size(); ++s) {
      if (s > 0) json << ", ";
      json << '"' << net::json_escape(report.stages[s].first)
           << "\": " << report.stages[s].second;
    }
    json << "}";
    if (!report.stages_cpu.empty()) {
      json << ", \"stages_cpu\": {";
      for (std::size_t s = 0; s < report.stages_cpu.size(); ++s) {
        if (s > 0) json << ", ";
        json << '"' << net::json_escape(report.stages_cpu[s].first)
             << "\": " << report.stages_cpu[s].second;
      }
      json << "}";
    }
    json << "}";
  }
  json << "\n  },\n  \"speedups\": {";
  double jobs2_speedup = 0.0;
  bool first = true;
  for (const JobsReport& report : reports) {
    if (report.jobs == 1) continue;
    const double speedup =
        report.total_millis > 0.0 ? serial_millis / report.total_millis : 0.0;
    if (report.jobs == 2) jobs2_speedup = speedup;
    if (!first) json << ", ";
    first = false;
    json << '"' << report.jobs << "\": " << speedup;
  }
  // Kept for older tooling: "speedup" is the --jobs 2 rung (the CI-gated
  // one), or the first non-serial rung when 2 was not measured.
  double headline = jobs2_speedup;
  if (headline == 0.0 && reports.size() > 1) {
    headline = reports[1].total_millis > 0.0
                   ? serial_millis / reports[1].total_millis
                   : 0.0;
  }
  json << "},\n  \"speedup\": " << headline << "\n}\n";

  const std::string out_path = flags.get("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << '\n';
    return 1;
  }
  out << json.str();
  std::cout << json.str();

  const std::string stages_path = flags.get("stages-out");
  std::ofstream stages_out(stages_path);
  if (!stages_out) {
    std::cerr << "error: cannot write " << stages_path << '\n';
    return 1;
  }
  stages_out << csv.str();
  std::cerr << "[bench_scenario] wrote " << out_path << " and " << stages_path
            << " (headline speedup " << headline << "x)\n";
  return 0;
}
