// Ablation — the allocation-count threshold (the paper's knee at 8).
//
// Sweeps fixed thresholds against the kneedle-detected one and shows how the
// qualifying-probe population, the emitted prefix set, and precision against
// ground truth respond. The takeaway the paper relies on: the knee sits in a
// near-empty band of the allocation distribution, so any threshold in that
// band selects essentially the same churner population.
#include "bench_common.h"

#include "atlas/fleet.h"
#include "dynadetect/pipeline.h"
#include "internet/world.h"

int main() {
  using namespace reuse;
  bench::print_banner("Ablation", "allocation-count (knee) threshold");

  auto config = analysis::bench_scenario_config(bench::kBenchSeed);
  const inet::World world(config.world);
  const atlas::AtlasFleet fleet(world, config.fleet);

  auto precision_of = [&](const net::PrefixSet& prefixes) {
    if (prefixes.size() == 0) return 1.0;
    std::size_t hits = 0;
    for (const auto& prefix : prefixes.to_vector()) {
      hits += world.fast_dynamic_prefixes().contains_prefix(prefix);
    }
    return static_cast<double>(hits) / static_cast<double>(prefixes.size());
  };

  net::AsciiTable table({"threshold", "qualifying probes", "dynamic /24s",
                         "precision vs fast pools"});
  const dynadetect::PipelineResult automatic =
      dynadetect::run_pipeline(fleet.compressed_log(), config.pipeline);
  table.add_row({"kneedle (" + std::to_string(automatic.knee_allocations) + ")",
                 std::to_string(automatic.probes_daily),
                 std::to_string(automatic.dynamic_prefixes.size()),
                 net::percent(precision_of(automatic.dynamic_prefixes))});
  for (const int threshold : {2, 4, 8, 16, 32, 128, 512, 2048}) {
    dynadetect::PipelineConfig pipeline_config = config.pipeline;
    pipeline_config.min_allocations = threshold;
    const dynadetect::PipelineResult result =
        dynadetect::run_pipeline(fleet.compressed_log(), pipeline_config);
    table.add_row({std::to_string(threshold),
                   std::to_string(result.probes_daily),
                   std::to_string(result.dynamic_prefixes.size()),
                   net::percent(precision_of(result.dynamic_prefixes))});
  }
  std::cout << table.to_string() << '\n'
            << "Reading: thresholds 2-8 (the paper's band) select nearly the\n"
               "same probes because the daily-change filter already removes\n"
               "slow churners; large thresholds start losing real fast pools.\n";
  return 0;
}
