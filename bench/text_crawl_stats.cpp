// §4 (Detection) — the crawl statistics the paper reports in prose.
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("§4 text", "BitTorrent crawl statistics");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const auto& stats = s.crawl.stats;
  const net::PrefixSet blocklisted = s.ecosystem.store.blocklisted_slash24s();

  std::size_t nated_blocklisted = 0;
  for (const auto& [address, users] : s.crawl.nated) {
    nated_blocklisted += s.ecosystem.store.contains_address(address);
  }

  analysis::PaperComparison report("crawl statistics (paper §4)");
  report.row("blocklisted /24s the crawl is restricted to", "899K",
             net::compact_count(static_cast<double>(blocklisted.size())));
  report.row("bt_ping messages sent", "1.6B",
             net::compact_count(static_cast<double>(stats.pings_sent)));
  report.row("bt_ping responses", "779M",
             net::compact_count(static_cast<double>(stats.ping_responses)));
  report.row("ping response rate", "48.6%",
             net::percent(stats.ping_response_rate()));
  report.row("unique BitTorrent IPs discovered", "48.7M",
             net::compact_count(static_cast<double>(s.crawl.evidence.size())));
  report.row("unique node_ids observed", "203M",
             net::compact_count(static_cast<double>(s.crawl.distinct_node_ids)));
  report.row("node_ids per IP (churn signature)", "4.2",
             s.crawl.evidence.empty()
                 ? "n/a"
                 : net::fixed(static_cast<double>(s.crawl.distinct_node_ids) /
                                  static_cast<double>(s.crawl.evidence.size()),
                              1));
  report.row("NATed IPs", "2M",
             net::compact_count(static_cast<double>(s.crawl.nated.size())));
  report.row("NATed share of discovered IPs", "4.1%",
             net::percent(static_cast<double>(s.crawl.nated.size()) /
                          static_cast<double>(s.crawl.evidence.size())));
  report.row("NATed + blocklisted IPs", "29.7K",
             net::compact_count(static_cast<double>(nated_blocklisted)));
  std::cout << report.to_string() << '\n';

  net::AsciiTable extra({"operational detail", "value"});
  extra.add_row({"get_nodes sent",
                 net::with_thousands(static_cast<std::int64_t>(stats.get_nodes_sent))});
  extra.add_row({"get_nodes responses",
                 net::with_thousands(static_cast<std::int64_t>(stats.get_nodes_responses))});
  extra.add_row({"verification rounds",
                 net::with_thousands(static_cast<std::int64_t>(stats.verification_rounds))});
  extra.add_row({"endpoints skipped by restriction",
                 net::with_thousands(static_cast<std::int64_t>(
                     stats.endpoints_skipped_restricted))});
  extra.add_row({"DHT population (ground truth)",
                 net::with_thousands(static_cast<std::int64_t>(s.crawl.dht_peers))});
  std::cout << extra.to_string();
  return 0;
}
