// Extension — multi-vantage crawling (§3.1's suggested improvement).
//
// The paper rate-limited one crawler to spare its network and suggested
// distributing the crawl over several vantage points. This experiment crawls
// identical worlds with 1, 2 and 4 vantages in two regimes: a generous
// per-vantage budget (showing equal coverage at ~1/K per-network burden) and
// a binding budget (showing extra vantages buying coverage per day).
#include "bench_common.h"

#include "crawler/vantage.h"
#include "dht/network.h"
#include "internet/world.h"
#include "simnet/event_queue.h"

int main() {
  using namespace reuse;
  bench::print_banner("Extension (§3.1)", "multi-vantage crawl coverage");

  inet::WorldConfig world_config = inet::test_world_config(bench::kBenchSeed);
  world_config.as_count = 150;
  const inet::World world(world_config);

  auto run = [&](std::size_t vantages, std::size_t budget_per_second) {
    sim::EventQueue events;
    dht::DhtNetworkConfig dht_config;
    dht_config.seed = bench::kBenchSeed ^ 0xd47;
    dht::DhtNetwork network(world, events, dht_config);
    const net::TimeWindow window{net::SimTime(0), net::SimTime(86400)};
    network.schedule_churn(window);

    crawler::VantageConfig config;
    config.base.seed = bench::kBenchSeed ^ 0xc4a3;
    config.base.messages_per_second = budget_per_second;
    config.vantage_count = vantages;
    crawler::MultiVantageCrawler crawler(network.transport(), events,
                                         network.bootstrap_endpoint(), config);
    crawler.start(window);
    events.run_until(window.end + net::Duration::minutes(10));
    return crawler.merged();
  };

  auto emit = [](net::AsciiTable& table, std::size_t vantages,
                 const crawler::MergedResults& merged) {
    const std::uint64_t total_messages =
        merged.stats.get_nodes_sent + merged.stats.pings_sent;
    table.add_row(
        {std::to_string(vantages),
         net::with_thousands(static_cast<std::int64_t>(merged.evidence.size())),
         net::with_thousands(static_cast<std::int64_t>(merged.nated.size())),
         net::with_thousands(
             static_cast<std::int64_t>(total_messages / vantages)),
         net::with_thousands(static_cast<std::int64_t>(total_messages))});
  };

  std::cout << "A. Etiquette regime (generous 100 msg/s per vantage):\n";
  net::AsciiTable relaxed({"vantages", "IPs discovered", "NATed found",
                           "msgs/vantage", "total msgs"});
  for (const std::size_t vantages :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    emit(relaxed, vantages, run(vantages, 100));
  }
  std::cout << relaxed.to_string() << '\n';

  std::cout << "B. Rate-bound regime (tight 3 msg/s per vantage):\n";
  net::AsciiTable tight({"vantages", "IPs discovered", "NATed found",
                         "msgs/vantage", "total msgs"});
  for (const std::size_t vantages :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    emit(tight, vantages, run(vantages, 3));
  }
  std::cout << tight.to_string() << '\n'
            << "Reading: (A) when the per-network budget is generous, K\n"
               "vantages reach the same coverage while each network carries\n"
               "~1/K of the probe traffic — the paper's burden argument.\n"
               "(B) when the budget binds (the paper's actual situation,\n"
               "having been rate-limited by its administrators), extra\n"
               "vantages buy additional coverage per day. Partitions are\n"
               "disjoint: no address is ever probed by two vantages.\n";
  return 0;
}
