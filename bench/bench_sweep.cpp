// bench_sweep — cold vs warm sweep wall-clock and cache attribution.
//
//   bench_sweep [--seed N] [--ases N] [--probes N] [--jobs N]
//               [--cache-dir DIR] [--out PATH]
//
// Runs the same small preset × days matrix twice against one cache
// directory: the cold leg starts from an empty dir (every chain head is a
// fresh simulation, later days cells resume it), the warm leg re-runs the
// identical matrix and must resolve cells from the caches the cold leg
// wrote. Gates encoded in the output for CI (jq):
//
//   cells_failed == 0           both legs fault-free
//   warm_cache_hit_ratio >= 0.5 the warm leg actually reused the cache
//   fingerprint_match == true   cold and warm reports agree byte-for-byte
//                               on every deterministic field
//
// Output: BENCH_sweep.json (cold/warm millis, cells/sec, hit ratio).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/presets.h"
#include "netbase/flags.h"
#include "sweep/sweep.h"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_millis(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "11");
  flags.define("ases", "autonomous systems in the synthetic Internet", "80");
  flags.define("probes", "Atlas-style probes", "600");
  flags.define("jobs", "concurrent chains (0 = all hardware threads)", "1");
  flags.define("cache-dir", "cache directory shared by both legs",
               "bench_sweep_cache");
  flags.define("out", "output JSON path", "BENCH_sweep.json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("bench_sweep",
                             "cold vs warm comparative-sweep wall-clock");
    if (!flags.error().empty()) {
      std::cerr << "\nerror: " << flags.error() << '\n';
    }
    return flags.get_bool("help") ? 0 : 2;
  }
  const std::optional<int> jobs = net::parse_jobs(flags.get("jobs"));
  if (!jobs) {
    std::cerr << "error: --jobs must be a non-negative integer, got \""
              << flags.get("jobs") << "\"\n";
    return 2;
  }

  sweep::SweepConfig config;
  config.base.seed =
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(11));
  config.base.world = inet::test_world_config(config.base.seed);
  config.base.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(80));
  config.base.crawl_days = 1;
  config.base.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(600));
  config.base.run_census = false;
  config.jobs = *jobs;
  config.cache_dir = flags.get("cache-dir");
  // 2 presets × 2 days values: each preset forms one chain whose 10-day
  // cell resumes the 6-day one, so the cold leg exercises both the fresh
  // and the resumed paths, and the warm leg must hit on all 4 cells.
  config.presets = {analysis::parse_preset("baseline"),
                    analysis::parse_preset("cgn_dominant")};
  std::string error;
  config.axes = {*sweep::parse_axis("days=6,10", &error)};

  std::error_code ec;
  std::filesystem::remove_all(config.cache_dir, ec);  // cold means cold

  std::cerr << "[bench_sweep] cold sweep...\n";
  const auto cold_start = Clock::now();
  const sweep::SweepReport cold = sweep::run_sweep(config);
  const double cold_millis = elapsed_millis(cold_start);

  std::cerr << "[bench_sweep] warm sweep...\n";
  const auto warm_start = Clock::now();
  const sweep::SweepReport warm = sweep::run_sweep(config);
  const double warm_millis = elapsed_millis(warm_start);

  const std::size_t cells = warm.cells.size();
  const std::size_t failed = cold.cells_failed + warm.cells_failed;
  const double warm_hit_ratio =
      cells == 0 ? 0.0
                 : static_cast<double>(warm.cache_hits) /
                       static_cast<double>(cells);
  const bool fingerprint_match =
      cold.report_fingerprint == warm.report_fingerprint;
  const double warm_speedup =
      warm_millis > 0.0 ? cold_millis / warm_millis : 0.0;
  const double cold_cells_per_sec =
      cold_millis > 0.0 ? 1000.0 * static_cast<double>(cells) / cold_millis
                        : 0.0;

  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"seed\": " << config.base.seed << ",\n"
       << "  \"as_count\": " << config.base.world.as_count << ",\n"
       << "  \"probe_count\": " << config.base.fleet.probe_count << ",\n"
       << "  \"jobs\": " << config.jobs << ",\n"
       << "  \"cells\": " << cells << ",\n"
       << "  \"cells_failed\": " << failed << ",\n"
       << "  \"cold_millis\": " << cold_millis << ",\n"
       << "  \"warm_millis\": " << warm_millis << ",\n"
       << "  \"warm_speedup\": " << warm_speedup << ",\n"
       << "  \"cold_cells_per_sec\": " << cold_cells_per_sec << ",\n"
       << "  \"cold_fresh\": " << cold.fresh << ",\n"
       << "  \"cold_resumed\": " << cold.resumed << ",\n"
       << "  \"warm_cache_hits\": " << warm.cache_hits << ",\n"
       << "  \"warm_cache_hit_ratio\": " << warm_hit_ratio << ",\n"
       << "  \"cache_dir_bytes\": " << warm.cache_dir_bytes << ",\n"
       << "  \"fingerprint_match\": "
       << (fingerprint_match ? "true" : "false") << ",\n"
       << "  \"report_fingerprint\": \"" << std::hex
       << cold.report_fingerprint << std::dec << "\"\n"
       << "}\n";

  const std::string out_path = flags.get("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << '\n';
    return 1;
  }
  out << json.str();
  std::cout << json.str();
  std::cerr << "[bench_sweep] wrote " << out_path << " (warm " << warm_speedup
            << "x, hit ratio " << warm_hit_ratio << ")\n";
  if (failed != 0) {
    std::cerr << "error: " << failed << " cell(s) failed across the legs\n";
    return 1;
  }
  if (!fingerprint_match) {
    std::cerr << "error: cold and warm reports disagree — the sweep is not "
                 "deterministic across cache states\n";
    return 1;
  }
  return 0;
}
