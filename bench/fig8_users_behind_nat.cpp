// Figure 8 — number of users behind blocklisted NATed addresses (the lower
// bound the crawler verifies: concurrent responders with distinct ids/ports).
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 8", "users behind NATed blocklisted addresses");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const net::IntDistribution users =
      analysis::users_behind_blocklisted_nats(s.ecosystem.store, s.crawl.nated);

  net::ChartSeries series{"CDF of blocklisted NATed IPs", {}, '#'};
  for (std::int64_t v = 2; v <= users.max_value(); ++v) {
    series.points.emplace_back(static_cast<double>(v),
                               users.fraction_at_most(v));
  }
  net::ChartOptions options;
  options.x_label = "(#) of users with the same IP address";
  options.y_label = "CDF of IP addresses";
  std::cout << net::render_chart({series}, options) << '\n';

  const double exactly_two =
      users.fraction_at_most(2) - users.fraction_at_most(1);

  analysis::PaperComparison report("Figure 8 / §5 statistics");
  report.row("blocklisted NATed addresses measured", "29.7K",
             net::with_thousands(users.total()));
  report.row("share with exactly 2 concurrent users", "68.5%",
             net::percent(exactly_two));
  report.row("share with < 10 concurrent users", "97.8%",
             net::percent(users.fraction_at_most(9)));
  report.row("maximum users behind one IP", "78",
             std::to_string(users.max_value()));
  std::cout << report.to_string() << '\n';

  net::AsciiTable distribution({"concurrent users", "addresses"});
  for (const auto& [value, count] : users.counts()) {
    if (value <= 10 || count > 1) {
      distribution.add_row({std::to_string(value),
                            net::with_thousands(count)});
    }
  }
  std::cout << distribution.to_string();
  return 0;
}
