// bench_worldscale — throughput and peak-RSS of the world-scale preset.
//
//   bench_worldscale [--seed N] [--ases N] [--probes N] [--out PATH]
//
// Runs the world_scale scenario (1M+ addresses, ~100k probes by default;
// --ases/--probes scale it down for CI) in three configurations and writes
// BENCH_worldscale.json:
//
//   base_jobs1   the preset as-is, serial
//   base_jobs8   same config, --jobs 8 — products must fingerprint-identical
//   days2x_jobs1 ecosystem periods stretched to twice the day count — the
//                streaming-evolution memory check: peak RSS may grow only
//                marginally when the simulated time doubles, because per-day
//                feed state folds into compressed runs instead of
//                accumulating
//
// Peak RSS is VmHWM from /proc/self/status, which is a *process-lifetime*
// high-water mark: it never decreases, so measuring three configurations in
// one process would report the max of all three everywhere. Each
// configuration therefore runs in a forked child that reports its numbers
// through a temp file and exits; the parent only composes the JSON.
//
// Exit status: 1 when the jobs-1/jobs-8 fingerprints diverge (determinism
// is a hard contract) or a child fails; 0 otherwise. Soft acceptance
// numbers (addresses/sec, RSS growth ratio) are reported in the JSON for CI
// to gate with jq.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/scenario.h"
#include "netbase/flags.h"
#include "netbase/json.h"
#include "netbase/mem.h"

namespace {

using reuse::analysis::Scenario;
using reuse::analysis::ScenarioConfig;
using reuse::analysis::StageTiming;

struct RunSpec {
  std::string name;
  int jobs = 1;
  int days_scale = 1;  ///< multiplier on the ecosystem period windows
};

/// Child-side: run one configuration and dump flat "key value" lines (plus
/// "stage <name> <millis>" triples) for the parent to pick up. Text lines
/// instead of JSON so the parent needs no parser beyond operator>>.
void run_child(ScenarioConfig config, const RunSpec& spec,
               const std::string& report_path) {
  config.jobs = spec.jobs;
  if (spec.days_scale != 1) {
    // Stretch every collection period in place: begin/end scale together,
    // so both the covered days and the inter-period gap multiply. finalize()
    // has already filled the paper defaults, so this rewrites them.
    for (reuse::net::TimeWindow& period : config.ecosystem.periods) {
      period.begin = reuse::net::SimTime(period.begin.seconds() *
                                         spec.days_scale);
      period.end = reuse::net::SimTime(period.end.seconds() * spec.days_scale);
    }
  }
  const Scenario scenario = reuse::analysis::run_scenario(std::move(config));

  const std::uint64_t addresses =
      static_cast<std::uint64_t>(scenario.world.prefix_count()) * 256;
  const std::uint64_t fingerprint = reuse::analysis::products_fingerprint(
      scenario.crawl, scenario.ecosystem, scenario.fleet, scenario.pipeline,
      scenario.census);
  std::int64_t eco_days = 0;
  for (const reuse::net::TimeWindow& period :
       scenario.config.ecosystem.periods) {
    eco_days += (period.end.seconds() - period.begin.seconds()) / 86400;
  }

  std::ofstream report(report_path);
  report.precision(3);
  report << std::fixed;
  report << "addresses " << addresses << '\n'
         << "prefix_count " << scenario.world.prefix_count() << '\n'
         << "eco_days " << eco_days << '\n'
         << "peak_rss_bytes " << reuse::net::peak_rss_bytes() << '\n'
         << "total_millis " << scenario.stage_times.total_millis() << '\n'
         << "fingerprint " << std::hex << fingerprint << std::dec << '\n'
         << "fleet_records " << scenario.fleet.record_count() << '\n'
         << "fleet_runs " << scenario.fleet.compressed_log().run_count()
         << '\n'
         << "fleet_log_bytes "
         << scenario.fleet.compressed_log().memory_bytes() << '\n'
         << "store_listings " << scenario.ecosystem.store.listing_count()
         << '\n'
         << "store_bytes " << scenario.ecosystem.store.memory_bytes() << '\n';
  for (const StageTiming& timing : scenario.stage_times.timings()) {
    report << "stage " << timing.stage << ' ' << timing.millis << '\n';
  }
  report.flush();
  // Skip static destructors: the world at this scale takes a while to tear
  // down and the process is done reporting.
  _exit(report.good() ? 0 : 1);
}

struct RunReport {
  std::map<std::string, std::string> values;
  std::vector<std::pair<std::string, double>> stages;

  [[nodiscard]] double number(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? 0.0 : std::stod(it->second);
  }
  [[nodiscard]] std::string text(const std::string& key) const {
    const auto it = values.find(key);
    return it == values.end() ? std::string{} : it->second;
  }
};

bool read_report(const std::string& path, RunReport* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "stage") {
      std::string stage;
      double millis = 0.0;
      fields >> stage >> millis;
      out->stages.emplace_back(stage, millis);
    } else {
      std::string value;
      fields >> value;
      out->values[key] = value;
    }
  }
  return !out->values.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "42");
  flags.define("ases",
               "autonomous systems (0 = world_scale preset default)", "0");
  flags.define("probes", "Atlas-style probes (0 = preset default)", "0");
  flags.define("out", "output JSON path", "BENCH_worldscale.json");
  flags.define_bool("help", "show this help");
  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("bench_worldscale",
                            "world-scale throughput and peak-RSS bench "
                            "(forks one child per configuration)");
    if (!flags.error().empty()) {
      std::cerr << "\nerror: " << flags.error() << '\n';
    }
    return flags.get_bool("help") ? 0 : 2;
  }

  analysis::ScenarioConfig config = analysis::world_scale_scenario_config(
      static_cast<std::uint64_t>(flags.get_int("seed").value_or(42)));
  if (const long long ases = flags.get_int("ases").value_or(0); ases > 0) {
    config.world.as_count = static_cast<std::size_t>(ases);
  }
  if (const long long probes = flags.get_int("probes").value_or(0);
      probes > 0) {
    config.fleet.probe_count = static_cast<std::size_t>(probes);
  }

  const std::vector<RunSpec> specs = {
      {"base_jobs1", 1, 1},
      {"base_jobs8", 8, 1},
      {"days2x_jobs1", 1, 2},
  };
  const std::string out_path = flags.get("out");

  std::map<std::string, RunReport> reports;
  for (const RunSpec& spec : specs) {
    const std::string report_path = out_path + "." + spec.name + ".tmp";
    std::cerr << "[bench_worldscale] " << spec.name << ": running...\n";
    const pid_t child = fork();
    if (child < 0) {
      std::cerr << "error: fork failed\n";
      return 1;
    }
    if (child == 0) {
      run_child(config, spec, report_path);  // _exits, never returns
    }
    int status = 0;
    if (waitpid(child, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      std::cerr << "error: child for " << spec.name << " failed\n";
      return 1;
    }
    RunReport report;
    if (!read_report(report_path, &report)) {
      std::cerr << "error: no report from " << spec.name << '\n';
      return 1;
    }
    std::remove(report_path.c_str());
    reports[spec.name] = std::move(report);
    std::cerr << "[bench_worldscale] " << spec.name << ": "
              << report_path << " collected\n";
  }

  const RunReport& base = reports.at("base_jobs1");
  const RunReport& jobs8 = reports.at("base_jobs8");
  const RunReport& days2x = reports.at("days2x_jobs1");

  const bool fingerprints_match =
      base.text("fingerprint") == jobs8.text("fingerprint");
  const double base_seconds = base.number("total_millis") / 1000.0;
  const double addresses = base.number("addresses");
  const double addresses_per_sec =
      base_seconds > 0.0 ? addresses / base_seconds : 0.0;
  const double rss_growth =
      base.number("peak_rss_bytes") > 0.0
          ? days2x.number("peak_rss_bytes") / base.number("peak_rss_bytes")
          : 0.0;
  // The headline peak is the worst run of the suite, not the serial
  // baseline's: a memory regression that only shows under --jobs 8 must
  // move the gated number. (This previously copied base_jobs1's peak,
  // hiding a ~280 MB jobs=8 excursion from the CI gate.)
  double peak_rss_bytes = 0.0;
  for (const RunSpec& spec : specs) {
    peak_rss_bytes =
        std::max(peak_rss_bytes, reports.at(spec.name).number("peak_rss_bytes"));
  }

  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"seed\": " << flags.get_int("seed").value_or(42) << ",\n"
       << "  \"as_count\": " << config.world.as_count << ",\n"
       << "  \"probe_count\": " << config.fleet.probe_count << ",\n"
       << "  \"addresses\": " << static_cast<std::uint64_t>(addresses)
       << ",\n"
       << "  \"addresses_per_sec\": " << addresses_per_sec << ",\n"
       << "  \"peak_rss_bytes\": "
       << static_cast<std::uint64_t>(peak_rss_bytes) << ",\n"
       << "  \"rss_growth_days2x\": " << rss_growth << ",\n"
       << "  \"fingerprint_match_jobs_1_8\": "
       << (fingerprints_match ? "true" : "false") << ",\n"
       << "  \"products_fingerprint\": \""
       << net::json_escape(base.text("fingerprint")) << "\",\n"
       << "  \"runs\": {";
  bool first_run = true;
  for (const RunSpec& spec : specs) {
    const RunReport& report = reports.at(spec.name);
    if (!first_run) json << ",";
    first_run = false;
    json << "\n    \"" << spec.name << "\": {\n"
         << "      \"jobs\": " << spec.jobs << ",\n"
         << "      \"eco_days\": "
         << static_cast<std::int64_t>(report.number("eco_days")) << ",\n"
         << "      \"addresses\": "
         << static_cast<std::uint64_t>(report.number("addresses")) << ",\n"
         << "      \"peak_rss_bytes\": "
         << static_cast<std::uint64_t>(report.number("peak_rss_bytes"))
         << ",\n"
         << "      \"total_millis\": " << report.number("total_millis")
         << ",\n"
         << "      \"fleet_records\": "
         << static_cast<std::uint64_t>(report.number("fleet_records"))
         << ",\n"
         << "      \"fleet_runs\": "
         << static_cast<std::uint64_t>(report.number("fleet_runs")) << ",\n"
         << "      \"fleet_log_bytes\": "
         << static_cast<std::uint64_t>(report.number("fleet_log_bytes"))
         << ",\n"
         << "      \"store_listings\": "
         << static_cast<std::uint64_t>(report.number("store_listings"))
         << ",\n"
         << "      \"store_bytes\": "
         << static_cast<std::uint64_t>(report.number("store_bytes")) << ",\n"
         << "      \"products_fingerprint\": \""
         << net::json_escape(report.text("fingerprint")) << "\",\n"
         << "      \"stages\": {";
    bool first_stage = true;
    for (const auto& [stage, millis] : report.stages) {
      if (!first_stage) json << ", ";
      first_stage = false;
      json << '"' << net::json_escape(stage) << "\": " << millis;
    }
    // Per-stage throughput for the top-level stages ('.'-prefixed sub-stages
    // are already counted inside their parent).
    json << "},\n      \"stage_addresses_per_sec\": {";
    first_stage = true;
    for (const auto& [stage, millis] : report.stages) {
      if (stage.find('.') != std::string::npos) continue;
      if (!first_stage) json << ", ";
      first_stage = false;
      // Sub-millisecond stages (e.g. a skipped census) would divide into
      // absurd rates; report 0 instead of noise.
      const double per_sec =
          millis >= 1.0 ? report.number("addresses") / (millis / 1000.0) : 0.0;
      json << '"' << net::json_escape(stage) << "\": " << per_sec;
    }
    json << "}\n    }";
  }
  json << "\n  }\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << '\n';
    return 1;
  }
  out << json.str();
  std::cout << json.str();

  if (!fingerprints_match) {
    std::cerr << "error: products differ between --jobs 1 and --jobs 8 ("
              << base.text("fingerprint") << " vs " << jobs8.text("fingerprint")
              << ")\n";
    return 1;
  }
  std::cerr << "[bench_worldscale] wrote " << out_path << " ("
            << static_cast<std::uint64_t>(addresses) << " addresses, "
            << addresses_per_sec << " addresses/sec, RSS growth at 2x days "
            << rss_growth << "x)\n";
  return 0;
}
