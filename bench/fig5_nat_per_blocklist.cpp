// Figure 5 — NATed addresses per blocklist (sorted, log scale).
#include "bench_common.h"

#include <algorithm>

int main() {
  using namespace reuse;
  bench::print_banner("Figure 5", "NATed addresses in blocklists");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const analysis::ReuseImpact impact = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.pipeline.dynamic_prefixes);

  // Sorted per-list series (descending), as plotted.
  std::vector<double> counts;
  for (const auto& row : impact.per_list) {
    if (row.nated_addresses > 0) {
      counts.push_back(static_cast<double>(row.nated_addresses));
    }
  }
  std::sort(counts.rbegin(), counts.rend());
  net::ChartSeries series{"NATed addresses per list (sorted)", {}, '#'};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    series.points.emplace_back(static_cast<double>(i + 1), counts[i]);
  }
  net::ChartOptions options;
  options.log_y = true;
  options.x_label = "(#) of blocklists";
  options.y_label = "log(#) NATed addresses";
  std::cout << net::render_chart({series}, options) << '\n';

  // Top-10 concentration.
  const auto top = analysis::top_lists_by(impact, s.catalogue, true, 10);
  std::size_t top10_listings = 0;
  for (const auto& row : top) top10_listings += row.listings;

  analysis::PaperComparison report("Figure 5 / §5 statistics");
  report.row("blocklists with no NATed address", "61 (40%)",
             std::to_string(impact.lists_total - impact.lists_with_nated) +
                 " (" +
                 net::percent(1.0 - impact.fraction_lists_with_nated(), 0) +
                 ")");
  report.row("blocklists with >= 1 NATed address", "60%",
             net::percent(impact.fraction_lists_with_nated(), 0));
  report.row("NATed listings", "45.1K",
             net::compact_count(static_cast<double>(impact.nated_listings)));
  report.row("distinct NATed blocklisted addresses", "29.7K",
             net::compact_count(
                 static_cast<double>(impact.nated_blocklisted_addresses)));
  report.row("avg NATed addresses per affected list", "501",
             impact.lists_with_nated == 0
                 ? "0"
                 : net::fixed(static_cast<double>(impact.nated_listings) /
                                  static_cast<double>(impact.lists_with_nated),
                              0));
  report.row("top-10 lists' share of NATed listings", "65.9%",
             impact.nated_listings == 0
                 ? "n/a"
                 : net::percent(static_cast<double>(top10_listings) /
                                static_cast<double>(impact.nated_listings)));
  std::cout << report.to_string() << '\n';

  net::AsciiTable top_table({"rank", "list", "NATed addresses"});
  for (std::size_t i = 0; i < top.size() && i < 5; ++i) {
    top_table.add_row({std::to_string(i + 1), top[i].name,
                       net::with_thousands(static_cast<std::int64_t>(top[i].listings))});
  }
  std::cout << "Top lists by NATed addresses (paper: Stopforumspam, Nixspam,"
               " Alienvault):\n"
            << top_table.to_string();
  return 0;
}
