// Figure 4 — detecting NATed and dynamic addresses: both detection funnels,
// with each stage joined against the blocklisted address set.
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 4", "the two detection funnels");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const auto& store = s.ecosystem.store;

  // --- NAT side -------------------------------------------------------------
  std::size_t nated_blocklisted = 0;
  for (const auto& [address, users] : s.crawl.nated) {
    nated_blocklisted += store.contains_address(address);
  }

  analysis::PaperComparison nat("NATed addresses (BitTorrent crawl)");
  nat.row("BitTorrent IPs discovered", "48.7M",
          net::compact_count(static_cast<double>(s.crawl.evidence.size())));
  nat.row("NATed IPs (verified concurrent sharing)", "2M",
          net::compact_count(static_cast<double>(s.crawl.nated.size())));
  nat.row("NATed + blocklisted IPs", "29.7K",
          net::compact_count(static_cast<double>(nated_blocklisted)));
  std::cout << nat.to_string() << '\n';

  // --- Dynamic side ----------------------------------------------------------
  // Count blocklisted addresses inside each pipeline stage's footprint.
  auto blocklisted_within = [&](const net::PrefixSet& prefixes) {
    std::size_t count = 0;
    for (const net::Ipv4Address address : store.sorted_addresses()) {
      count += prefixes.contains_address(address);
    }
    return count;
  };
  const std::size_t stage0 = blocklisted_within(s.pipeline.all_probe_prefixes);
  const std::size_t stage1 =
      blocklisted_within(s.pipeline.single_as_change_prefixes);
  const std::size_t stage2 = blocklisted_within(s.pipeline.above_knee_prefixes);
  const std::size_t stage3 = blocklisted_within(s.pipeline.dynamic_prefixes);

  analysis::PaperComparison dyn("Dynamic addresses (Atlas pipeline)");
  dyn.row("blocklisted addrs in probe-covered /24s", "53.7K",
          net::compact_count(static_cast<double>(stage0)));
  dyn.row("... probes changing addresses in same AS", "34.4K",
          net::compact_count(static_cast<double>(stage1)));
  dyn.row("... probes with frequent changes (knee)", "33.1K",
          net::compact_count(static_cast<double>(stage2)));
  dyn.row("... probes changing addresses daily", "22.7K",
          net::compact_count(static_cast<double>(stage3)));
  std::cout << dyn.to_string() << '\n';

  // Shape check: each stage must shrink the set.
  std::cout << "funnel monotone: "
            << ((stage0 >= stage1 && stage1 >= stage2 && stage2 >= stage3)
                    ? "yes"
                    : "NO (violated)")
            << "\n";
  return 0;
}
