// Figure 6 — dynamic addresses per blocklist: our Atlas pipeline (RIPE) vs
// the Cai et al. ICMP census baseline.
#include "bench_common.h"

#include <algorithm>

int main() {
  using namespace reuse;
  bench::print_banner("Figure 6",
                      "dynamic addresses in blocklists, RIPE vs census");

  const analysis::CachedScenario s =
      bench::load_bench_scenario(/*with_census=*/true);

  const analysis::ReuseImpact ours = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.pipeline.dynamic_prefixes);
  const analysis::ReuseImpact cai = analysis::compute_reuse_impact(
      s.ecosystem.store, s.catalogue, s.crawl.nated_set,
      s.census.dynamic_blocks);

  auto sorted_counts = [](const analysis::ReuseImpact& impact) {
    std::vector<double> counts;
    for (const auto& row : impact.per_list) {
      if (row.dynamic_addresses > 0) {
        counts.push_back(static_cast<double>(row.dynamic_addresses));
      }
    }
    std::sort(counts.rbegin(), counts.rend());
    return counts;
  };
  const auto ripe_counts = sorted_counts(ours);
  const auto cai_counts = sorted_counts(cai);

  net::ChartSeries ripe{"RIPE pipeline", {}, 'r'};
  for (std::size_t i = 0; i < ripe_counts.size(); ++i) {
    ripe.points.emplace_back(static_cast<double>(i + 1), ripe_counts[i]);
  }
  net::ChartSeries census{"Cai et al. census", {}, 'c'};
  for (std::size_t i = 0; i < cai_counts.size(); ++i) {
    census.points.emplace_back(static_cast<double>(i + 1), cai_counts[i]);
  }
  net::ChartOptions options;
  options.log_y = true;
  options.x_label = "(#) of blocklists";
  options.y_label = "log(#) dynamic addresses";
  std::cout << net::render_chart({ripe, census}, options) << '\n';

  const auto top = analysis::top_lists_by(ours, s.catalogue, false, 10);
  std::size_t top10 = 0;
  for (const auto& row : top) top10 += row.listings;

  analysis::PaperComparison report("Figure 6 / §5 statistics");
  report.row("blocklists with no dynamic address", "72 (47%)",
             std::to_string(ours.lists_total - ours.lists_with_dynamic) +
                 " (" +
                 net::percent(1.0 - ours.fraction_lists_with_dynamic(), 0) +
                 ")");
  report.row("blocklists with >= 1 dynamic address", "53%",
             net::percent(ours.fraction_lists_with_dynamic(), 0));
  report.row("dynamic listings (our technique)", "30.6K",
             net::compact_count(static_cast<double>(ours.dynamic_listings)));
  report.row("dynamic listings (Cai et al. census)", "29.8K",
             net::compact_count(static_cast<double>(cai.dynamic_listings)),
             "roughly the same total, different lists");
  report.row("distinct dynamic blocklisted addresses", "22.7K",
             net::compact_count(
                 static_cast<double>(ours.dynamic_blocklisted_addresses)));
  report.row("avg dynamic addresses per affected list", "387",
             ours.lists_with_dynamic == 0
                 ? "0"
                 : net::fixed(static_cast<double>(ours.dynamic_listings) /
                                  static_cast<double>(ours.lists_with_dynamic),
                              0));
  report.row("top-10 lists' share of dynamic listings", "72.6%",
             ours.dynamic_listings == 0
                 ? "n/a"
                 : net::percent(static_cast<double>(top10) /
                                static_cast<double>(ours.dynamic_listings)));
  report.row("census /24s vs pipeline /24s", "(coverage differs)",
             net::with_thousands(static_cast<std::int64_t>(
                 s.census.dynamic_blocks.size())) +
                 " vs " +
                 net::with_thousands(static_cast<std::int64_t>(
                     s.pipeline.dynamic_prefixes.size())));
  std::cout << report.to_string();
  return 0;
}
