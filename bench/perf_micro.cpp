// Microbenchmarks for the performance-sensitive building blocks
// (google-benchmark). These back the engineering claims in DESIGN.md:
// longest-prefix match and the DHT routing path are the hot loops when the
// analysis joins millions of addresses.
#include <benchmark/benchmark.h>

#include <sstream>

#include "blocklist/catalogue.h"
#include "blocklist/ecosystem.h"
#include "blocklist/store.h"
#include "dht/node_id.h"
#include "dht/routing_table.h"
#include "netbase/interval_set.h"
#include "netbase/kneedle.h"
#include "netbase/prefix_trie.h"
#include "netbase/rng.h"
#include "netbase/stats.h"
#include "netbase/thread_pool.h"

namespace {

using namespace reuse;

void BM_PrefixTrieInsert(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  net::Rng rng(1);
  std::vector<net::Ipv4Prefix> prefixes;
  prefixes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    prefixes.emplace_back(net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                          24);
  }
  for (auto _ : state) {
    net::PrefixTrie<std::uint32_t> trie;
    for (std::size_t i = 0; i < count; ++i) {
      trie.insert(prefixes[i], static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_PrefixTrieInsert)->Arg(1000)->Arg(100000);

void BM_PrefixTrieLookup(benchmark::State& state) {
  net::Rng rng(2);
  net::PrefixTrie<std::uint32_t> trie;
  for (std::uint32_t i = 0; i < 100000; ++i) {
    trie.insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(rng())), 24), i);
  }
  std::vector<net::Ipv4Address> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.emplace_back(static_cast<std::uint32_t>(rng()));
  }
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.lookup_ptr(probes[index++ & 1023]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PrefixTrieLookup);

void BM_RoutingTableClosest(benchmark::State& state) {
  net::Rng rng(3);
  auto random_id = [&rng] {
    std::array<std::uint32_t, 5> words{};
    for (auto& w : words) w = static_cast<std::uint32_t>(rng());
    return dht::NodeId(words);
  };
  dht::RoutingTable table(random_id());
  for (int i = 0; i < 256; ++i) {
    table.insert({net::Endpoint{net::Ipv4Address(static_cast<std::uint32_t>(i)), 1},
                  random_id()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.closest(random_id(), 8));
  }
}
BENCHMARK(BM_RoutingTableClosest);

void BM_NodeIdDerive(benchmark::State& state) {
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dht::NodeId::derive(0x0A000001, nonce++));
  }
}
BENCHMARK(BM_NodeIdDerive);

void BM_IntervalSetInsert(benchmark::State& state) {
  net::Rng rng(4);
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  for (int i = 0; i < 4096; ++i) {
    const auto begin = static_cast<std::int64_t>(rng.uniform(100000));
    spans.emplace_back(begin, begin + 1 + static_cast<std::int64_t>(rng.uniform(50)));
  }
  for (auto _ : state) {
    net::IntervalSet set;
    for (const auto& [begin, end] : spans) set.insert(begin, end);
    benchmark::DoNotOptimize(set.measure());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_IntervalSetInsert);

void BM_Kneedle(benchmark::State& state) {
  std::vector<double> curve;
  for (int i = 0; i < 10000; ++i) {
    curve.push_back(1000.0 / (1.0 + i * 0.01));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::find_knee(curve));
  }
}
BENCHMARK(BM_Kneedle);

// The two cache-restore strategies for the blocklist presence store. The
// cache loader used to replay every listed day through record(); it now
// inserts whole intervals through record_span(). Synthetic listings mirror
// the bench-scale store: a few multi-week presence intervals per listing.
std::vector<std::pair<std::int64_t, std::int64_t>> listing_spans(
    net::Rng& rng) {
  std::vector<std::pair<std::int64_t, std::int64_t>> spans;
  std::int64_t day = static_cast<std::int64_t>(rng.uniform(10));
  const std::size_t intervals = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < intervals; ++i) {
    const auto length = 3 + static_cast<std::int64_t>(rng.uniform(28));
    spans.emplace_back(day, day + length);
    day += length + 2 + static_cast<std::int64_t>(rng.uniform(10));
  }
  return spans;
}

void BM_StoreRestorePerDay(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  net::Rng rng(9);
  std::int64_t listed_days = 0;
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> listings;
  for (std::size_t i = 0; i < count; ++i) {
    listings.push_back(listing_spans(rng));
    for (const auto& [begin, end] : listings.back()) listed_days += end - begin;
  }
  for (auto _ : state) {
    blocklist::SnapshotStore store;
    for (std::size_t i = 0; i < count; ++i) {
      const net::Ipv4Address address(static_cast<std::uint32_t>(i));
      for (const auto& [begin, end] : listings[i]) {
        for (std::int64_t day = begin; day < end; ++day) {
          store.record(1, address, day);
        }
      }
    }
    benchmark::DoNotOptimize(store.listing_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          listed_days);
}
BENCHMARK(BM_StoreRestorePerDay)->Arg(10000);

void BM_StoreRestoreSpan(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  net::Rng rng(9);
  std::int64_t listed_days = 0;
  std::vector<std::vector<std::pair<std::int64_t, std::int64_t>>> listings;
  for (std::size_t i = 0; i < count; ++i) {
    listings.push_back(listing_spans(rng));
    for (const auto& [begin, end] : listings.back()) listed_days += end - begin;
  }
  for (auto _ : state) {
    blocklist::SnapshotStore store;
    for (std::size_t i = 0; i < count; ++i) {
      const net::Ipv4Address address(static_cast<std::uint32_t>(i));
      for (const auto& [begin, end] : listings[i]) {
        store.record_span(1, address, begin, end);
      }
    }
    benchmark::DoNotOptimize(store.listing_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          listed_days);
}
BENCHMARK(BM_StoreRestoreSpan)->Arg(10000);

void BM_IntDistributionCdfSweep(benchmark::State& state) {
  // One fraction_at_most() query per x value, as the Figure 8 chart does.
  net::Rng rng(10);
  net::IntDistribution distribution;
  for (int i = 0; i < 100000; ++i) {
    distribution.add(2 + static_cast<std::int64_t>(rng.pareto(2.0, 1.7)));
  }
  for (auto _ : state) {
    double sum = 0.0;
    for (std::int64_t v = 1; v <= distribution.max_value(); ++v) {
      sum += distribution.fraction_at_most(v);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_IntDistributionCdfSweep);

void BM_EmpiricalCdfBuild(benchmark::State& state) {
  net::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.exponential(9.0));
  for (auto _ : state) {
    net::EmpiricalCdf cdf{std::vector<double>(samples)};
    benchmark::DoNotOptimize(cdf.median());
  }
}
BENCHMARK(BM_EmpiricalCdfBuild);

void BM_RngDistributions(benchmark::State& state) {
  net::Rng rng(6);
  double sink = 0;
  for (auto _ : state) {
    sink += rng.exponential(2.0) + rng.pareto(2.0, 1.5) +
            static_cast<double>(rng.poisson(5.0));
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RngDistributions);

std::vector<inet::AbuseEvent> synthetic_abuse_events(std::size_t count) {
  net::Rng rng(8);
  std::vector<inet::AbuseEvent> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    inet::AbuseEvent event;
    event.time_seconds = static_cast<std::int64_t>(i) * 10;
    event.source = net::Ipv4Address(static_cast<std::uint32_t>(rng.uniform(1 << 20)));
    event.category = static_cast<inet::AbuseCategory>(rng.uniform(5));
    events.push_back(event);
  }
  return events;
}

void BM_EcosystemThroughput(benchmark::State& state) {
  // Event-processing rate of the blocklist ecosystem (events/second).
  const auto catalogue = blocklist::build_catalogue(7);
  const auto events = synthetic_abuse_events(50000);
  blocklist::EcosystemConfig config;
  config.periods = {{net::SimTime(0), net::SimTime(10 * 86400)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        blocklist::simulate_ecosystem(catalogue, events, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_EcosystemThroughput);

void BM_EcosystemThroughputParallel(benchmark::State& state) {
  // Per-feed parallel evolution at a given pool size; Arg(1) is the serial
  // baseline (no pool). Throughput is effective events/second across feeds.
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto catalogue = blocklist::build_catalogue(7);
  const auto events = synthetic_abuse_events(50000);
  blocklist::EcosystemConfig config;
  config.periods = {{net::SimTime(0), net::SimTime(10 * 86400)}};
  net::ThreadPool pool(jobs);
  net::ThreadPool* handle = jobs > 1 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocklist::simulate_ecosystem(
        catalogue, events, config, nullptr, handle));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_EcosystemThroughputParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<int>(reuse::net::ThreadPool::hardware_jobs()));

void BM_ParallelForOverhead(benchmark::State& state) {
  // Dispatch + join cost of parallel_for against a trivial body, at 1, 10
  // and 100k items: the crossover where fan-out starts paying for itself.
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto jobs = static_cast<std::size_t>(state.range(1));
  net::ThreadPool pool(jobs);
  std::vector<std::uint64_t> sink(count, 0);
  for (auto _ : state) {
    pool.parallel_for(count, [&](std::size_t i) { sink[i] += i; });
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ParallelForOverhead)
    ->Args({1, 1})
    ->Args({10, 1})
    ->Args({100000, 1})
    ->Args({1, 4})
    ->Args({10, 4})
    ->Args({100000, 4});

void BM_ParallelForSerialBaseline(benchmark::State& state) {
  // The same trivial body as BM_ParallelForOverhead run as a plain loop —
  // the zero-overhead reference line.
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> sink(count, 0);
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) sink[i] += i;
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_ParallelForSerialBaseline)->Arg(1)->Arg(10)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
