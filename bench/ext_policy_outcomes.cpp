// Extension — quantifying §6's recommendation.
//
// The paper argues operators should greylist reused listings instead of
// hard-blocking them. This experiment (not a figure in the paper; built on
// its published mitigation discussion) simulates a week of traffic from the
// blocklisted address space under three policies and reports the bystander
// harm each one inflicts versus the abuse each one admits.
#include "bench_common.h"

#include "analysis/policy_sim.h"

int main() {
  using namespace reuse;
  bench::print_banner("Extension (§6)",
                      "filtering-policy outcomes on blocklisted traffic");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const analysis::PolicySimConfig config;
  const std::vector<analysis::PolicyOutcome> outcomes =
      analysis::simulate_policies(s.world, s.ecosystem.store,
                                  s.crawl.nated_set,
                                  s.pipeline.dynamic_prefixes, config);

  net::AsciiTable table({"policy", "legit sessions", "blocked (harm)",
                         "delayed", "abuse sessions", "admitted (escape)",
                         "harm rate", "escape rate"});
  for (const analysis::PolicyOutcome& outcome : outcomes) {
    table.add_row(
        {std::string(to_string(outcome.policy)),
         net::with_thousands(static_cast<std::int64_t>(outcome.legit_sessions)),
         net::with_thousands(static_cast<std::int64_t>(outcome.legit_blocked)),
         net::with_thousands(static_cast<std::int64_t>(outcome.legit_delayed)),
         net::with_thousands(static_cast<std::int64_t>(outcome.abuse_sessions)),
         net::with_thousands(static_cast<std::int64_t>(outcome.abuse_admitted)),
         net::percent(outcome.bystander_harm_rate()),
         net::percent(outcome.abuse_escape_rate())});
  }
  std::cout << table.to_string() << '\n';

  const auto& block = outcomes[1];
  const auto& greylist = outcomes[2];
  std::cout << "Reading: hard-blocking punishes every legitimate session from\n"
               "the blocklisted space ("
            << net::with_thousands(static_cast<std::int64_t>(block.legit_blocked))
            << " over the simulated week); greylisting the reused entries\n"
               "recovers "
            << net::percent(
                   block.legit_blocked == 0
                       ? 0.0
                       : 1.0 - static_cast<double>(greylist.legit_blocked) /
                                   static_cast<double>(block.legit_blocked))
            << " of that harm while still suppressing "
            << net::percent(1.0 - greylist.abuse_escape_rate())
            << " of abuse\nsessions — the quantified version of the paper's"
               " §6 recommendation.\n";
  return 0;
}
