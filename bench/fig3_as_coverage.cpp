// Figure 3 — CDF of blocklisted and reused addresses across ASes: how much
// of the blocklisted address space each technique can observe.
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 3", "per-AS coverage of the two techniques");

  const analysis::CachedScenario s = bench::load_bench_scenario();
  const analysis::AsCoverage coverage = analysis::compute_as_coverage(
      s.world, s.ecosystem.store, s.crawl.evidence,
      s.pipeline.all_probe_prefixes);

  net::ChartOptions options;
  options.log_x = true;
  options.x_label = "(#) of ASes (sorted by blocklisted addresses)";
  options.y_label = "CDF of ASes carrying each footprint";
  net::ChartSeries blocklisted{"blocklisted addresses",
                               coverage.curve_blocklisted(), '#'};
  net::ChartSeries bittorrent{"blocklisted BitTorrent addresses",
                              coverage.curve_bittorrent(), 'b'};
  net::ChartSeries ripe{"blocklisted RIPE-prefix addresses",
                        coverage.curve_ripe(), 'r'};
  std::cout << net::render_chart({blocklisted, bittorrent, ripe}, options)
            << '\n';

  const double total = static_cast<double>(coverage.ases_with_blocklisted);

  // Top-10 AS concentration and the flagship AS, as §4 reports.
  std::size_t top10 = 0;
  std::size_t top10_bt = 0;
  std::size_t top10_ripe = 0;
  std::size_t all_blocklisted = 0;
  for (const auto& row : coverage.rows) all_blocklisted += row.blocklisted;
  for (std::size_t i = 0; i < coverage.rows.size() && i < 10; ++i) {
    const auto& row = coverage.rows[coverage.rows.size() - 1 - i];
    top10 += row.blocklisted;
    top10_bt += row.blocklisted_bittorrent;
    top10_ripe += row.blocklisted_ripe;
  }
  const analysis::AsCoverageRow& biggest = coverage.rows.back();
  const inet::AsInfo* biggest_as = s.world.find_as(biggest.asn);

  analysis::PaperComparison report("Figure 3 / §4 coverage statistics");
  report.row("ASes with blocklisted addresses", "26K",
             net::with_thousands(static_cast<std::int64_t>(total)));
  report.row("...also hosting crawled BitTorrent addresses", "29.6%",
             net::percent(coverage.ases_with_bittorrent / total));
  report.row("...also covered by Atlas-probe prefixes", "17.1%",
             net::percent(coverage.ases_with_ripe / total));
  report.row("top-10 ASes' share of blocklisted addresses", "27.7%",
             net::percent(static_cast<double>(top10) /
                          static_cast<double>(all_blocklisted)));
  report.row("top-10: share using BitTorrent", "6.4%",
             net::percent(static_cast<double>(top10_bt) /
                          static_cast<double>(top10)));
  report.row("top-10: share in RIPE prefixes", "0.7%",
             net::percent(static_cast<double>(top10_ripe) /
                          static_cast<double>(top10)));
  report.row("most blocklisted AS", "AS4134 (9% of all)",
             (biggest_as != nullptr ? biggest_as->name : "?") + " (" +
                 net::percent(static_cast<double>(biggest.blocklisted) /
                              static_cast<double>(all_blocklisted)) +
                 ")");
  report.row("AS4134: blocklisted using BitTorrent", "3%",
             net::percent(static_cast<double>(biggest.blocklisted_bittorrent) /
                          static_cast<double>(biggest.blocklisted)));
  report.row("AS4134: blocklisted in RIPE prefixes", "0.4%",
             net::percent(static_cast<double>(biggest.blocklisted_ripe) /
                          static_cast<double>(biggest.blocklisted)));
  std::cout << report.to_string();
  return 0;
}
