// Shared scaffolding for the experiment (bench) binaries.
//
// Every binary regenerates one table or figure of the paper from the same
// bench-scale scenario (seed 42). The first binary to run simulates the
// expensive parts (crawl + blocklist ecosystem, ~2 minutes) and caches them
// in a file keyed by the full config fingerprint (see analysis/cache.h),
// placed in $REUSE_CACHE_DIR or the working directory; the rest reload in
// about a second. Saves are atomic, so running several binaries
// concurrently is safe. Delete reuse_scenario_*.cache to force a fresh
// simulation; stale files from older configs or calibrations are simply
// never loaded (distinct fingerprint, distinct name).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/cache.h"
#include "analysis/impact.h"
#include "analysis/report.h"
#include "netbase/chart.h"
#include "netbase/flags.h"
#include "netbase/stats.h"
#include "netbase/table.h"

namespace bench {

inline constexpr std::uint64_t kBenchSeed = 42;

/// Worker threads for the parallel scenario stages, from $REUSE_JOBS
/// (0 = all hardware threads; unset = 1). Results are identical for every
/// value, so this is purely a wall-clock knob. An invalid value (negative,
/// garbage, trailing characters) aborts with an error instead of silently
/// running serial — a typo'd REUSE_JOBS=-8 benchmark would otherwise look
/// like a real slowdown.
inline int jobs_from_env() {
  const char* raw = std::getenv("REUSE_JOBS");
  if (raw == nullptr || *raw == '\0') return 1;
  const std::optional<int> jobs = reuse::net::parse_jobs(raw);
  if (!jobs) {
    std::cerr << "error: REUSE_JOBS must be a non-negative integer "
                 "(0 = all hardware threads), got \""
              << raw << "\"\n";
    std::exit(2);
  }
  return *jobs;
}

/// Loads (or simulates and caches) the standard bench scenario.
/// `with_census` additionally runs the ICMP census baseline (~30 s, only
/// Figure 6 needs it).
inline reuse::analysis::CachedScenario load_bench_scenario(
    bool with_census = false) {
  auto config = reuse::analysis::bench_scenario_config(kBenchSeed);
  config.run_census = with_census;
  config.jobs = jobs_from_env();
  std::cerr << "[bench] preparing scenario (seed " << kBenchSeed << ")...\n";
  auto scenario = reuse::analysis::run_scenario_cached(std::move(config));
  std::cerr << (scenario.cache_hit
                    ? "[bench] loaded crawl+ecosystem from cache\n"
                    : "[bench] simulated fresh and wrote cache\n");
  return scenario;
}

inline double mean_of(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (const double sample : samples) sum += sample;
  return sum / static_cast<double>(samples.size());
}

/// Header line every binary prints first.
inline void print_banner(const std::string& experiment,
                         const std::string& what) {
  std::cout << "==========================================================\n"
            << experiment << " — " << what << "\n"
            << "(scaled reproduction; compare shapes/ratios, not absolute\n"
            << " counts — see EXPERIMENTS.md)\n"
            << "==========================================================\n\n";
}

}  // namespace bench
