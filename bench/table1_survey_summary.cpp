// Table 1 — summary of survey responses on blocklist usage.
#include "bench_common.h"

#include "survey/survey.h"

int main() {
  using namespace reuse;
  bench::print_banner("Table 1", "operator survey summary");

  const survey::SurveySummary summary =
      survey::summarize(survey::embedded_survey());

  analysis::PaperComparison report("Table 1 (65 respondents)");
  report.row("use external blocklists", "85%",
             net::percent(summary.external_usage_fraction, 0));
  report.row("maintain internal blocklists", "70%",
             net::percent(summary.internal_usage_fraction, 0));
  report.row("paid-for blocklists (avg)", "2",
             net::fixed(summary.paid_lists_mean, 0));
  report.row("paid-for blocklists (max)", "39",
             std::to_string(summary.paid_lists_max));
  report.row("public blocklists (avg)", "10",
             net::fixed(summary.public_lists_mean, 0));
  report.row("public blocklists (max)", "68",
             std::to_string(summary.public_lists_max));
  report.row("directly block listed IPs", "59%",
             net::percent(summary.direct_block_fraction, 0));
  report.row("feed a threat-intelligence system", "35%",
             net::percent(summary.threat_intel_fraction, 0));
  report.row("answered the reuse questions", "34",
             std::to_string(summary.reuse_question_respondents));
  report.row("see CGN hurting accuracy", "56%",
             net::percent(summary.cgn_concern_fraction, 0));
  report.row("see dynamic addressing hurting accuracy", "76%",
             net::percent(summary.dynamic_concern_fraction, 0));
  report.row("use >= 2 list types", "55%",
             net::percent(summary.multi_type_fraction, 0));
  std::cout << report.to_string();
  return 0;
}
