// bench_incremental — wall-clock of the incremental pipeline against the
// from-scratch baseline, with byte-identity checks on both legs.
//
//   bench_incremental [--seed N] [--ases N] [--probes N] [--base-days N]
//                     [--extra-days K] [--jobs N] [--cache-dir DIR]
//                     [--out PATH]
//
// The scenario is deliberately ecosystem-dominated (one long collection
// period, a 1-day crawl, no census): that is the regime the incremental
// pipeline exists for, where re-simulating N+K days from scratch costs
// ~(N+K)/K times the resumed tail. Three timed legs:
//
//   1. base        run_scenario_cached() of the N-day base (cold cache) —
//                  the producer every later evolve resumes from.
//   2. fresh       run_scenario() of the extended N+K config, no cache —
//                  the from-scratch cost a resume avoids.
//   3. resume      evolve_scenario_cached() +K days from the base cache.
//
// The resumed products MUST fingerprint-identical to the fresh run (exit 1
// otherwise — byte-identity is the incremental pipeline's contract, and a
// fast-but-divergent resume would be worse than useless). The serve-side
// leg compiles both runs' snapshots, diffs them, and times delta apply()
// against a full SnapshotBuilder rebuild, verifying the applied artifact
// hashes to the rebuilt one. Output: BENCH_incremental.json with
// resume_speedup (fresh/resume — CI gates >= 2x) and the delta figures.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/cache.h"
#include "analysis/scenario.h"
#include "netbase/flags.h"
#include "netbase/thread_pool.h"
#include "serve/snapshot.h"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_millis(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reuse;
  net::FlagParser flags;
  flags.define("seed", "master seed", "11");
  flags.define("ases", "autonomous systems in the synthetic Internet", "120");
  flags.define("probes", "Atlas-style probes", "800");
  flags.define("base-days", "length of the base collection period", "240");
  flags.define("extra-days", "days the resume leg extends the base by", "30");
  flags.define("jobs",
               "worker threads (0 = all hardware threads); identical "
               "products for every value",
               "1");
  flags.define("cache-dir", "directory for the bench's cache files", ".");
  flags.define("out", "output JSON path", "BENCH_incremental.json");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv) || flags.get_bool("help")) {
    std::cerr << flags.usage("bench_incremental",
                             "incremental-pipeline resume and snapshot-delta "
                             "wall-clock vs the from-scratch baseline");
    if (!flags.error().empty()) {
      std::cerr << "\nerror: " << flags.error() << '\n';
    }
    return flags.get_bool("help") ? 0 : 2;
  }

  const int base_days =
      std::max(2, static_cast<int>(flags.get_int("base-days").value_or(240)));
  const int extra_days =
      std::max(1, static_cast<int>(flags.get_int("extra-days").value_or(30)));
  const std::optional<int> jobs = net::parse_jobs(flags.get("jobs"));
  if (!jobs) {
    std::cerr << "error: --jobs must be a non-negative integer, got \""
              << flags.get("jobs") << "\"\n";
    return 2;
  }

  analysis::ScenarioConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed").value_or(11));
  config.world = inet::test_world_config(config.seed);
  config.world.as_count =
      static_cast<std::size_t>(flags.get_int("ases").value_or(120));
  config.crawl_days = 1;
  config.fleet.probe_count =
      static_cast<std::size_t>(flags.get_int("probes").value_or(800));
  config.run_census = false;
  config.jobs = *jobs;
  // One long collection period, horizon declared past it: the exact shape
  // --resume-days sets up, and the one where resume pays off most.
  config.ecosystem.periods = {net::TimeWindow{
      net::SimTime(0),
      net::SimTime(static_cast<std::int64_t>(base_days) * 86400)}};
  config.horizon_days = base_days + extra_days;
  config.finalize();

  const std::filesystem::path cache_dir(flags.get("cache-dir"));
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string base_path =
      (cache_dir / "bench_incremental_base.cache").string();
  const std::string ext_path =
      (cache_dir / "bench_incremental_extended.cache").string();
  std::remove(base_path.c_str());  // cold start: leg 1 must simulate
  std::remove(ext_path.c_str());

  std::cerr << "[bench_incremental] base run (" << base_days << " days)...\n";
  const auto base_start = Clock::now();
  const analysis::CachedScenario base =
      analysis::run_scenario_cached(config, base_path);
  const double base_millis = elapsed_millis(base_start);
  if (base.cache_hit) {
    std::cerr << "error: base leg hit a cache that was just removed\n";
    return 1;
  }

  const analysis::ScenarioConfig extended =
      analysis::extend_scenario_days(config, extra_days);
  std::cerr << "[bench_incremental] fresh extended run (" << base_days << "+"
            << extra_days << " days)...\n";
  const auto fresh_start = Clock::now();
  const analysis::Scenario fresh = analysis::run_scenario(extended);
  const double fresh_millis = elapsed_millis(fresh_start);
  const std::uint64_t fresh_fingerprint = analysis::products_fingerprint(
      fresh.crawl, fresh.ecosystem, fresh.fleet, fresh.pipeline, fresh.census);

  std::cerr << "[bench_incremental] resume (+" << extra_days << " days)...\n";
  const auto resume_start = Clock::now();
  analysis::EvolvedScenario evolved =
      analysis::evolve_scenario_cached(config, extra_days, base_path, ext_path);
  const double resume_millis = elapsed_millis(resume_start);
  if (evolved.path != analysis::EvolvePath::kResumed) {
    std::cerr << "error: evolve fell back to a fresh run (base cache "
                 "unusable) — the bench measured nothing\n";
    return 1;
  }
  const analysis::CachedScenario& resumed = evolved.scenario;
  const std::uint64_t resumed_fingerprint = analysis::products_fingerprint(
      resumed.crawl, resumed.ecosystem, resumed.fleet, resumed.pipeline,
      resumed.census);
  if (resumed_fingerprint != fresh_fingerprint) {
    std::cerr << "error: resumed products diverge from the fresh run "
                 "(fingerprints "
              << std::hex << resumed_fingerprint << " vs " << fresh_fingerprint
              << ")\n";
    return 1;
  }

  // Serve-side leg: ship the +K change to lookupd as a delta and compare
  // against recompiling the whole snapshot.
  const std::unique_ptr<net::ThreadPool> pool =
      analysis::make_scenario_pool(config.jobs);
  const serve::CompiledSnapshot snap_base =
      serve::SnapshotBuilder()
          .with_store(base.ecosystem.store)
          .with_nated(base.crawl.nated_set)
          .with_dynamic(base.pipeline.dynamic_prefixes)
          .with_catalogue(base.catalogue)
          .build(pool.get());
  const auto rebuild_start = Clock::now();
  const serve::CompiledSnapshot snap_next =
      serve::SnapshotBuilder()
          .with_store(resumed.ecosystem.store)
          .with_nated(resumed.crawl.nated_set)
          .with_dynamic(resumed.pipeline.dynamic_prefixes)
          .with_catalogue(resumed.catalogue)
          .build(pool.get());
  const double rebuild_millis = elapsed_millis(rebuild_start);
  const serve::SnapshotDelta delta =
      serve::SnapshotBuilder::diff(snap_base, snap_next);
  std::string error;
  const auto apply_start = Clock::now();
  const std::optional<serve::CompiledSnapshot> applied =
      delta.apply(snap_base, &error);
  const double apply_millis = elapsed_millis(apply_start);
  if (!applied) {
    std::cerr << "error: delta apply failed: " << error << '\n';
    return 1;
  }
  if (applied->fingerprint() != snap_next.fingerprint()) {
    std::cerr << "error: delta-applied snapshot diverges from the rebuilt "
                 "one\n";
    return 1;
  }

  const double resume_speedup =
      resume_millis > 0.0 ? fresh_millis / resume_millis : 0.0;
  const double apply_speedup =
      apply_millis > 0.0 ? rebuild_millis / apply_millis : 0.0;
  std::ostringstream json;
  json.precision(3);
  json << std::fixed;
  json << "{\n"
       << "  \"seed\": " << config.seed << ",\n"
       << "  \"as_count\": " << config.world.as_count << ",\n"
       << "  \"probe_count\": " << config.fleet.probe_count << ",\n"
       << "  \"base_days\": " << base_days << ",\n"
       << "  \"extra_days\": " << extra_days << ",\n"
       << "  \"jobs\": " << config.jobs << ",\n"
       << "  \"hardware_jobs\": " << net::ThreadPool::hardware_jobs() << ",\n"
       << "  \"base_millis\": " << base_millis << ",\n"
       << "  \"fresh_millis\": " << fresh_millis << ",\n"
       << "  \"resume_millis\": " << resume_millis << ",\n"
       << "  \"resume_speedup\": " << resume_speedup << ",\n"
       << "  \"fingerprints_match\": true,\n"
       << "  \"products_fingerprint\": \"" << std::hex << fresh_fingerprint
       << std::dec << "\",\n"
       << "  \"delta\": {\n"
       << "    \"removed\": " << delta.removed_count() << ",\n"
       << "    \"upserts\": " << delta.upsert_count() << ",\n"
       << "    \"dynamic24_removed\": " << delta.dynamic24_removed_count()
       << ",\n"
       << "    \"dynamic24_added\": " << delta.dynamic24_added_count() << ",\n"
       << "    \"apply_millis\": " << apply_millis << ",\n"
       << "    \"rebuild_millis\": " << rebuild_millis << ",\n"
       << "    \"apply_speedup\": " << apply_speedup << ",\n"
       << "    \"fingerprint_match\": true\n"
       << "  }\n"
       << "}\n";

  const std::string out_path = flags.get("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot write " << out_path << '\n';
    return 1;
  }
  out << json.str();
  std::cout << json.str();
  std::cerr << "[bench_incremental] wrote " << out_path << " (resume "
            << resume_speedup << "x, delta apply " << apply_speedup << "x)\n";
  return 0;
}
