// Microbenchmarks for the serving layer (google-benchmark): snapshot
// compile cost, point and batched verdict latency, and the engine's pin
// overhead on top of a raw snapshot query. These back the BENCH_lookup.json
// throughput numbers with per-operation detail.
#include <benchmark/benchmark.h>

#include "netbase/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace {

using namespace reuse;

/// A clustered synthetic world at benchmark scale; mirrors the equivalence
/// test's shape so the measured lookups hit populated /24 buckets.
struct BenchWorld {
  blocklist::SnapshotStore store;
  std::unordered_set<net::Ipv4Address> nated;
  net::PrefixSet dynamic;

  explicit BenchWorld(std::size_t listings) {
    net::Rng rng(7);
    constexpr std::uint32_t kBases[] = {0x0a000000, 0x42000000, 0xc0a80000};
    for (std::size_t i = 0; i < listings; ++i) {
      const std::uint32_t base = kBases[rng.uniform(std::size(kBases))];
      const net::Ipv4Address address(
          base | static_cast<std::uint32_t>(rng.uniform(1u << 18)));
      store.record(static_cast<blocklist::ListId>(1 + rng.uniform(12)),
                   address, static_cast<std::int64_t>(rng.uniform(30)));
      if (rng.bernoulli(0.25)) nated.insert(address);
    }
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t base = kBases[rng.uniform(std::size(kBases))];
      dynamic.insert(net::Ipv4Prefix(
          net::Ipv4Address(base |
                           static_cast<std::uint32_t>(rng.uniform(1u << 18))),
          static_cast<int>(rng.uniform_int(22, 26))));
    }
  }

  [[nodiscard]] serve::CompiledSnapshot compile() const {
    return serve::SnapshotBuilder()
        .with_store(store)
        .with_nated(nated)
        .with_dynamic(dynamic)
        .build();
  }
};

std::vector<net::Ipv4Address> probe_mix(const serve::CompiledSnapshot& snapshot,
                                        std::size_t count) {
  net::Rng rng(99);
  const auto listed = snapshot.entries_matching(serve::kVerdictListed);
  std::vector<net::Ipv4Address> probes;
  probes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 && !listed.empty()) {
      probes.push_back(listed[rng.uniform(listed.size())]);
    } else {
      probes.emplace_back(static_cast<std::uint32_t>(rng()));
    }
  }
  return probes;
}

void BM_SnapshotBuild(benchmark::State& state) {
  const BenchWorld world(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const serve::CompiledSnapshot snapshot = world.compile();
    benchmark::DoNotOptimize(snapshot.fingerprint());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SnapshotBuild)->Arg(10000)->Arg(100000);

void BM_SnapshotVerdict(benchmark::State& state) {
  const BenchWorld world(100000);
  const serve::CompiledSnapshot snapshot = world.compile();
  const auto probes = probe_mix(snapshot, 1024);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot.verdict(probes[index++ & 1023]).bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotVerdict);

void BM_EngineVerdict(benchmark::State& state) {
  const BenchWorld world(100000);
  serve::LookupEngine engine;
  engine.publish(
      std::make_shared<const serve::CompiledSnapshot>(world.compile()));
  const auto probes = probe_mix(*engine.snapshot(), 1024);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.verdict(probes[index++ & 1023]).bits);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineVerdict);

void BM_EngineVerdictBatch(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const BenchWorld world(100000);
  serve::LookupEngine engine;
  engine.publish(
      std::make_shared<const serve::CompiledSnapshot>(world.compile()));
  const auto probes = probe_mix(*engine.snapshot(), 4096);
  std::vector<serve::Verdict> verdicts(batch_size);
  std::size_t offset = 0;
  for (auto _ : state) {
    engine.verdict_batch(
        std::span<const net::Ipv4Address>(probes).subspan(offset, batch_size),
        verdicts);
    benchmark::DoNotOptimize(verdicts.data());
    offset = (offset + batch_size) & 4095;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_EngineVerdictBatch)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
