// Figure 9 — blocklist types used by operators who reported reuse issues.
#include "bench_common.h"

#include "survey/survey.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 9",
                      "blocklist types of operators with reuse issues");

  const auto usage = survey::reuse_issue_type_usage(survey::embedded_survey());
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [label, fraction] : usage) {
    bars.emplace_back(label, fraction * 100.0);
  }
  std::cout << net::render_bars(bars, 50, "%") << '\n';

  analysis::PaperComparison report("Figure 9 reading");
  report.row("bar order (low to high)",
             "VOIP ... Reputation, Spam",
             usage.front().first + " ... " + usage[usage.size() - 2].first +
                 ", " + usage.back().first);
  report.row("highest-usage type", "Spam", usage.back().first);
  report.row("spam/reputation lists dominate", "yes",
             usage.back().second > 0.8 ? "yes" : "no",
             "paper: spam & reputation lists have highest"
             " consequences for reused addresses");
  std::cout << report.to_string();
  return 0;
}
