// Ablation — why the bt_ping verification step exists (§3.1).
//
// Compares the paper's rule (flag an IP only on >= 2 concurrent responders
// with distinct node_ids and ports) against the naive alternative (flag any
// IP ever seen with two ports). Stale routing-table entries make the naive
// rule wrong; ground truth quantifies by how much.
#include "bench_common.h"

int main() {
  using namespace reuse;
  bench::print_banner("Ablation", "ping verification vs naive multi-port");

  const analysis::CachedScenario s = bench::load_bench_scenario();

  std::size_t naive_flagged = 0;
  std::size_t naive_correct = 0;
  std::size_t verified_flagged = 0;
  std::size_t verified_correct = 0;
  for (const auto& [address, evidence] : s.crawl.evidence) {
    const bool truly_shared = s.world.is_shared_address(address);
    if (evidence.ports.size() >= 2) {
      ++naive_flagged;
      naive_correct += truly_shared;
    }
    if (evidence.is_nated()) {
      ++verified_flagged;
      verified_correct += truly_shared;
    }
  }

  net::AsciiTable table({"policy", "flagged as NATed", "truly shared",
                         "precision"});
  table.add_row({"naive: >= 2 ports ever seen",
                 net::with_thousands(static_cast<std::int64_t>(naive_flagged)),
                 net::with_thousands(static_cast<std::int64_t>(naive_correct)),
                 naive_flagged == 0
                     ? "n/a"
                     : net::percent(static_cast<double>(naive_correct) /
                                    static_cast<double>(naive_flagged))});
  table.add_row({"paper: >= 2 concurrent responders",
                 net::with_thousands(static_cast<std::int64_t>(verified_flagged)),
                 net::with_thousands(static_cast<std::int64_t>(verified_correct)),
                 verified_flagged == 0
                     ? "n/a"
                     : net::percent(static_cast<double>(verified_correct) /
                                    static_cast<double>(verified_flagged))});
  std::cout << table.to_string() << '\n';

  std::cout << "Reading: port churn and stale routing-table entries make\n"
               "multi-port sightings common on single-user IPs; only the\n"
               "concurrent-response rule achieves the high-precision\n"
               "detection the paper's measurements rest on. The cost is\n"
               "recall: verified detections are a strict subset.\n";
  return 0;
}
